//! Block low-rank compression of a kernel matrix — the paper's §11
//! outlook ("we plan to extend our study by integrating our GPU
//! implementation of the randomized algorithm … for [the] HSS solver"),
//! using the library's [`BlrMatrix`] type.
//!
//! A smooth kernel `K(x, y) = 1/(1 + γ|x − y|)` on 1D point sets has
//! numerically low-rank off-diagonal blocks. [`BlrMatrix::compress`]
//! tiles the matrix, keeps the diagonal dense, and compresses every
//! off-diagonal tile with the randomized sampler — the building block of
//! an HSS/BLR solver. The demo reports the compression ratio and the
//! accuracy/speed of the compressed matrix-vector product.
//!
//! ```text
//! cargo run --release --example block_low_rank
//! ```
//!
//! [`BlrMatrix`]: rlra::core::BlrMatrix
//! [`BlrMatrix::compress`]: rlra::core::BlrMatrix::compress

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra::core::BlrMatrix;
use rlra::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1_024usize;
    let tiles = 8usize;
    let k = 12; // rank budget per off-diagonal tile
    let mut rng = StdRng::seed_from_u64(11);

    // Kernel matrix on uniformly spaced points (Cauchy kernel from the
    // rlra-data kernel library).
    let pts = rlra::data::uniform_points(n);
    let kernel = rlra::data::kernel_matrix(rlra::data::Kernel::Cauchy { gamma: 64.0 }, &pts);
    println!(
        "kernel matrix: {n} x {n}, {tiles} x {tiles} tiles of {}",
        n / tiles
    );

    // Compress with the randomized sampler (one power iteration).
    let cfg = SamplerConfig::new(k).with_p(6).with_q(1);
    let t = std::time::Instant::now();
    let blr = BlrMatrix::compress(&kernel, tiles, &cfg, &mut rng)?;
    let t_compress = t.elapsed();
    println!(
        "compression: {} stored entries vs {} dense ({:.1}% / {:.1}x), {} dense tiles, built in {t_compress:.2?}",
        blr.stored_entries(),
        n * n,
        100.0 / blr.compression_ratio(),
        blr.compression_ratio(),
        blr.dense_tiles(),
    );

    // Accuracy of the compressed operator.
    let rec = blr.to_dense()?;
    let err = rlra::matrix::norms::spectral_norm(rlra::matrix::ops::sub(&kernel, &rec)?.as_ref())
        / rlra::matrix::norms::spectral_norm(kernel.as_ref());
    println!("operator error |K - BLR| / |K| = {err:.2e}");

    // Compressed matvec vs dense matvec.
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin()).collect();
    let t = std::time::Instant::now();
    let mut y_dense = vec![0.0; n];
    rlra::blas::gemv(
        1.0,
        kernel.as_ref(),
        rlra::blas::Trans::No,
        &x,
        0.0,
        &mut y_dense,
    )?;
    let t_dense = t.elapsed();
    let t = std::time::Instant::now();
    let y_blr = blr.matvec(&x)?;
    let t_blr = t.elapsed();
    let rel: f64 = y_dense
        .iter()
        .zip(&y_blr)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
        / rlra::matrix::norms::vec_norm2(&y_dense);
    println!("matvec: dense {t_dense:.2?}, compressed {t_blr:.2?}, relative error {rel:.2e}");
    println!(
        "\nThis per-tile compression is exactly the kernel an HSS/BLR factorization calls\n\
         O(n log n) times — the workload the paper targets for its GPU sampler in §11."
    );
    Ok(())
}
