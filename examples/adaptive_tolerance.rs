//! The fixed-accuracy problem: "give me an approximation with error
//! below ε, I don't know the rank" — solved with the paper's adaptive
//! sampling-size scheme (Figure 3), including the interpolated-increment
//! variant.
//!
//! ```text
//! cargo run --release --example adaptive_tolerance
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra::prelude::*;
use rlra_core::adaptive::sample_fixed_accuracy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // Exponent-spectrum matrix (σ_i = 10^{-i/10}): the rank needed for a
    // given tolerance is ~10·log10(1/ε), but pretend we don't know that.
    let (m, n) = (2_000usize, 400usize);
    let spec = rlra::data::exponent_spectrum(n);
    let tm = rlra::data::matrix_with_spectrum(m, n, &spec, &mut rng)?;
    println!("matrix: {m} x {n} `exponent`");

    for tol in [1e-4, 1e-6, 1e-8] {
        let mut gpu = Gpu::k40c();
        let cfg = AdaptiveConfig {
            tol,
            q: 0,
            reorth: true,
            inc: IncStrategy::Interpolated { init: 8 },
            l_max: n,
            track_actual: false,
            finish: FinishMode::Incremental,
            deadline: None,
        };
        let (approx, adaptive) = sample_fixed_accuracy(&mut gpu, &tm.a, &cfg, &mut rng)?;
        let err = approx.relative_error(&tm.a, Some(tm.norm2()))?;
        println!(
            "\n  eps = {tol:.0e}: converged = {} in {} steps, rank = {}, \
             simulated K40c time = {:.2} ms",
            adaptive.converged,
            adaptive.steps.len(),
            adaptive.l(),
            adaptive.steps.last().map(|s| s.sim_time).unwrap_or(0.0) * 1e3,
        );
        println!("    achieved relative error {err:.2e} (estimate is pessimistic by design)");
        print!("    estimate trajectory: ");
        for s in &adaptive.steps {
            print!("{:.1e} ", s.estimate);
        }
        println!();
    }
    Ok(())
}
