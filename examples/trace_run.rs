//! Event-level tracing of a multi-GPU sampler run: attach a ring-buffer
//! tracer, export the Chrome trace + metrics JSON, and print the
//! terminal roofline summary.
//!
//! ```text
//! cargo run --release --example trace_run
//! ```
//!
//! Load `target/trace/trace_run.json` in `chrome://tracing` (or
//! <https://ui.perfetto.dev>) to see one track per simulated GPU plus
//! the comms and pipeline-stage tracks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra::prelude::*;
use rlra_core::multi::{sample_fixed_rank_multi_gpu, HostInput};
use rlra_obs::{roofline_summary, FanoutSink, Registry, RegistrySink};
use rlra_trace::{chrome_trace_json, metrics_json, parse_json, RingBufferSink, Tracer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 15 experiment on two simulated GPUs, with a tracer
    // attached. Dry run: the event stream and metrics are identical to a
    // compute run's.
    let (m, n) = (150_000usize, 2_500usize);
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let mut mg = MultiGpu::new(2, DeviceSpec::k40c(), ExecMode::DryRun)?;
    // Tee the event stream: a ring buffer retains events for the Chrome
    // export, while a RegistrySink streams the same charges into the
    // cross-run metric registry as they happen.
    let registry = Registry::new();
    mg.set_tracer(Some(Tracer::new(Box::new(FanoutSink::new(vec![
        Box::new(RingBufferSink::new(1 << 16)),
        Box::new(RegistrySink::new(registry.clone())),
    ])))));
    let mut rng = StdRng::seed_from_u64(1);
    let (_, rep) = sample_fixed_rank_multi_gpu(&mut mg, HostInput::Shape(m, n), &cfg, &mut rng)?;

    println!("{rep}");

    // Export both documents.
    let tracer = mg.take_tracer().expect("tracer survives the run");
    let events = tracer.events();
    let dir = std::path::Path::new("target/trace");
    std::fs::create_dir_all(dir)?;
    let trace_path = dir.join("trace_run.json");
    let chrome = chrome_trace_json(&events);
    std::fs::write(&trace_path, &chrome)?;
    let metrics_path = dir.join("trace_run_metrics.json");
    std::fs::write(&metrics_path, metrics_json(&rep.metrics))?;

    // Self-check: the Chrome document is valid JSON with a non-empty
    // event array, and the traced per-device seconds agree with the
    // report's timeline (max across devices, like the breakdown).
    let doc = parse_json(&chrome).expect("chrome trace parses");
    let n_events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .map_or(0, <[_]>::len);
    assert!(n_events > 0, "trace must carry events");
    assert!(!events.is_empty(), "ring buffer must carry events");
    let traced: f64 = (0..rep.devices)
        .map(|d| {
            events
                .iter()
                .filter(|e| e.charged_device() == Some(d))
                .map(rlra_trace::TraceEvent::duration)
                .sum()
        })
        .fold(0.0, f64::max);
    assert!(
        (traced - rep.seconds).abs() <= 1e-9 * rep.seconds.max(1.0),
        "traced device time {traced} vs report {}",
        rep.seconds
    );

    // The roofline summary reads the registry: fold the finished run's
    // aggregates in, next to the streamed per-event histograms.
    registry.ingest_metrics(&rep.metrics);
    println!("{}", roofline_summary(&registry.snapshot()));
    println!("[trace]   {} ({n_events} events)", trace_path.display());
    println!("[metrics] {}", metrics_path.display());
    println!("\nopen the trace in chrome://tracing or https://ui.perfetto.dev");
    Ok(())
}
