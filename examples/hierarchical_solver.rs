//! A hierarchical (HODLR) direct solver built on the randomized sampler —
//! the working version of the paper's §11 plan to put its GPU sampler
//! inside an HSS solver.
//!
//! We assemble a dense kernel system `(K + λI)·x = b` (a regularized
//! kernel regression / integral equation), compress it hierarchically
//! with random sampling, and solve it directly in `O(k²·n·log²n)` via
//! the recursive Woodbury factorization — then compare against the dense
//! `O(n³)` solve.
//!
//! ```text
//! cargo run --release --example hierarchical_solver
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra::core::HodlrMatrix;
use rlra::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1_024usize;
    let mut rng = StdRng::seed_from_u64(5);

    // System matrix: exponential kernel + ridge shift (well conditioned).
    let pts = rlra::data::uniform_points(n);
    let mut a = rlra::data::kernel_matrix(rlra::data::Kernel::Exponential { gamma: 24.0 }, &pts);
    for i in 0..n {
        a[(i, i)] += 1.0;
    }
    let b: Vec<f64> = pts
        .iter()
        .map(|&x| (7.0 * x).sin() + 0.3 * (23.0 * x).cos())
        .collect();
    println!("system: (K + I) x = b, n = {n} (exponential kernel)");

    // --- Hierarchical compression + direct solve ----------------------------
    let cfg = SamplerConfig::new(12).with_p(6).with_q(1);
    let t = std::time::Instant::now();
    let h = HodlrMatrix::compress(&a, 64, &cfg, &mut rng)?;
    let t_compress = t.elapsed();
    println!(
        "HODLR: {} levels, compression {:.1}x, built in {t_compress:.2?}",
        h.levels(),
        h.compression_ratio()
    );
    let t = std::time::Instant::now();
    let x_h = h.solve(&b)?;
    let t_solve = t.elapsed();

    // --- Dense reference (Cholesky of the SPD system) ------------------------
    let t = std::time::Instant::now();
    let r = rlra::lapack::cholesky_upper(&a)?;
    let mut x_d = b.clone();
    rlra::blas::trsv(
        r.as_ref(),
        rlra::blas::UpLo::Upper,
        rlra::blas::Trans::Yes,
        rlra::blas::Diag::NonUnit,
        &mut x_d,
    )?;
    rlra::blas::trsv(
        r.as_ref(),
        rlra::blas::UpLo::Upper,
        rlra::blas::Trans::No,
        rlra::blas::Diag::NonUnit,
        &mut x_d,
    )?;
    let t_dense = t.elapsed();

    // --- Compare --------------------------------------------------------------
    let mut resid = b.clone();
    rlra::blas::gemv(
        1.0,
        a.as_ref(),
        rlra::blas::Trans::No,
        &x_h,
        -1.0,
        &mut resid,
    )?;
    // resid = A x_h − b after the call above with beta = −1 flips sign of b.
    let rel_resid = rlra::matrix::norms::vec_norm2(&resid) / rlra::matrix::norms::vec_norm2(&b);
    let diff: f64 = x_h
        .iter()
        .zip(&x_d)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt()
        / rlra::matrix::norms::vec_norm2(&x_d);
    println!("\nsolve times: HODLR {t_solve:.2?} vs dense Cholesky {t_dense:.2?}");
    println!("HODLR residual |Ax - b| / |b| = {rel_resid:.2e}");
    println!("solution difference vs dense  = {diff:.2e}");
    // --- Bonus: loose-rank HODLR as a CG preconditioner ----------------------
    let mut rng2 = StdRng::seed_from_u64(6);
    let loose = HodlrMatrix::compress(&a, 64, &SamplerConfig::new(4).with_p(4), &mut rng2)?;
    let plain = rlra::core::pcg(&a, &b, rlra::core::identity_preconditioner, 1e-10, 2000)?;
    let pre = rlra::core::pcg(&a, &b, |r| loose.solve(r), 1e-10, 2000)?;
    println!(
        "\nas preconditioner (rank-4 HODLR): CG iterations {} -> {}",
        plain.iterations, pre.iterations
    );

    println!(
        "\nThe compression step runs two randomized samplings per node across {} levels — on\n\
         the paper's GPU these are GEMM-bound and an order of magnitude faster than QP3-based\n\
         compression, which is the §11 motivation in one sentence.",
        h.levels()
    );
    Ok(())
}
