//! Head-to-head: random sampling vs truncated QP3 on the simulated K40c,
//! sweeping the number of power iterations — a miniature of the paper's
//! Figures 6 + 14 in one run: accuracy AND simulated time side by side.
//!
//! ```text
//! cargo run --release --example compare_qrcp
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra::prelude::*;
use rlra_core::qp3_low_rank_gpu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);

    // A slowly decaying spectrum, where power iterations visibly help.
    let (m, n) = (2_000usize, 500usize);
    let values: Vec<f64> = (0..n).map(|i| 0.97f64.powi(i as i32)).collect();
    let spec = rlra::data::Spectrum {
        name: "slow-decay",
        values,
    };
    let tm = rlra::data::matrix_with_spectrum(m, n, &spec, &mut rng)?;
    let k = 30;
    println!("matrix: {m} x {n} `slow-decay` (sigma_i = 0.97^i), target rank k = {k}");

    // Baseline: truncated QP3 on the simulated device.
    let mut gpu = Gpu::k40c();
    let a_dev = gpu.resident(&tm.a);
    let (qp3, t_qp3) = qp3_low_rank_gpu(&mut gpu, &a_dev, k)?;
    let qp3 = qp3.expect("compute mode");
    let err_qp3 = qp3.relative_error(&tm.a, Some(tm.norm2()))?;
    println!(
        "\n  {:>10} {:>12} {:>14} {:>9}",
        "method", "error", "sim time", "speedup"
    );
    println!(
        "  {:>10} {:>12.3e} {:>11.2} ms {:>9}",
        "QP3",
        err_qp3,
        t_qp3 * 1e3,
        "1.0x"
    );

    for q in [0usize, 1, 2, 4] {
        let cfg = SamplerConfig::new(k).with_q(q);
        let mut gpu = Gpu::k40c();
        let a_dev = gpu.resident(&tm.a);
        let (rs, rep) = sample_fixed_rank_gpu(&mut gpu, &a_dev, &cfg, &mut rng)?;
        let rs = rs.expect("compute mode");
        let err = rs.relative_error(&tm.a, Some(tm.norm2()))?;
        println!(
            "  {:>10} {:>12.3e} {:>11.2} ms {:>8.1}x",
            format!("RS q={q}"),
            err,
            rep.seconds * 1e3,
            t_qp3 / rep.seconds
        );
    }

    let optimal = tm.sigma_after(k) / tm.norm2();
    println!("\n  optimal rank-{k} error (Eckart-Young): {optimal:.3e}");
    println!("  the paper's story: q = 0 already matches QP3's error class on fast-decaying");
    println!("  spectra; on slow decay a power iteration or two closes the gap — while still");
    println!("  running several times faster than QP3.");
    Ok(())
}
