//! Population clustering on a HapMap-like genotype matrix — the paper's
//! real-world application (§6: "Computing a low-rank approximation on
//! such data can be used for population clustering").
//!
//! We generate a synthetic SNP matrix with four hidden populations
//! (Balding–Nichols model, standing in for the non-redistributable
//! International HapMap data), compute a low-rank approximation by
//! random sampling, project the individuals onto the leading directions,
//! and cluster them with k-means. The recovered clusters are then scored
//! against the true population labels.
//!
//! ```text
//! cargo run --release --example population_clustering
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlra::data::{hapmap_like, HapmapConfig};
use rlra::matrix::Mat;
use rlra::prelude::*;
use rlra_blas::Trans;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2015);

    // 3,000 SNPs × 200 individuals from 4 populations.
    let cfg = HapmapConfig {
        snps: 3_000,
        individuals: 200,
        populations: 4,
        fst: 0.12,
    };
    let a = hapmap_like(&cfg, &mut rng)?;
    println!(
        "genotype matrix: {} SNPs x {} individuals, {} populations (synthetic HapMap)",
        cfg.snps, cfg.individuals, cfg.populations
    );

    // Center the columns (remove the mean genotype) so the leading
    // directions capture population structure, not allele frequency.
    let a = center_rows(&a);

    // Rank-8 randomized approximation with one power iteration (the
    // genotype spectrum decays slowly — exactly the case q > 0 helps,
    // per the paper's Figure 6 hapmap column).
    let k = 8;
    let sampler = SamplerConfig::new(k).with_q(1);
    let approx = sample_fixed_rank(&a, &sampler, &mut rng)?;
    let err = approx.relative_error(&a, None)?;
    println!("rank-{k} approximation error (relative, q = 1): {err:.3}");

    // Embed individuals: rows of R (k × n) are the coordinates of the
    // permuted columns; un-permute to recover per-individual positions.
    let coords = individual_coordinates(&approx);

    // k-means with 4 centers on the k-dimensional embedding.
    let labels = kmeans(&coords, cfg.populations, 50, &mut rng);

    // Score: cluster purity against the true population labels.
    let truth: Vec<usize> = (0..cfg.individuals).map(|j| cfg.population_of(j)).collect();
    let purity = cluster_purity(&labels, &truth, cfg.populations);
    println!(
        "cluster purity vs. true populations: {:.1}%",
        purity * 100.0
    );
    if purity > 0.9 {
        println!("populations recovered — the low-rank embedding separates the cohorts.");
    } else {
        println!("warning: weak separation (try more SNPs or higher Fst).");
    }
    Ok(())
}

/// Subtracts the row mean from every row (SNP-wise centering).
fn center_rows(a: &Mat) -> Mat {
    let (m, n) = a.shape();
    let mut out = a.clone();
    for i in 0..m {
        let mean: f64 = (0..n).map(|j| a[(i, j)]).sum::<f64>() / n as f64;
        for j in 0..n {
            out[(i, j)] -= mean;
        }
    }
    out
}

/// Per-individual coordinates in the rank-k embedding: column `j` of
/// `R·Pᵀ` (the triangular factor un-permuted).
fn individual_coordinates(approx: &LowRankApprox) -> Vec<Vec<f64>> {
    let k = approx.rank();
    let n = approx.r.cols();
    let inv = approx.perm.inverse();
    let r_unperm = inv.apply_cols(&approx.r).expect("permutation applies");
    (0..n)
        .map(|j| (0..k).map(|i| r_unperm[(i, j)]).collect())
        .collect()
}

/// Plain Lloyd's k-means on small data.
fn kmeans(points: &[Vec<f64>], kc: usize, iters: usize, rng: &mut StdRng) -> Vec<usize> {
    let n = points.len();
    let dim = points[0].len();
    // Initialize centers with distinct random points.
    let mut centers: Vec<Vec<f64>> = (0..kc)
        .map(|_| points[rng.gen_range(0..n)].clone())
        .collect();
    let mut labels = vec![0usize; n];
    for _ in 0..iters {
        // Assign.
        for (i, p) in points.iter().enumerate() {
            let mut best = (f64::INFINITY, 0usize);
            for (c, center) in centers.iter().enumerate() {
                let d: f64 = p.iter().zip(center).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best.0 {
                    best = (d, c);
                }
            }
            labels[i] = best.1;
        }
        // Update.
        let mut sums = vec![vec![0.0f64; dim]; kc];
        let mut counts = vec![0usize; kc];
        for (p, &l) in points.iter().zip(&labels) {
            counts[l] += 1;
            for (s, v) in sums[l].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..kc {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centers[c] = sums[c].clone();
            } else {
                centers[c] = points[rng.gen_range(0..n)].clone();
            }
        }
    }
    labels
}

/// Fraction of individuals whose cluster's majority population matches
/// their own.
fn cluster_purity(labels: &[usize], truth: &[usize], k: usize) -> f64 {
    let mut correct = 0usize;
    for c in 0..k {
        let members: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == c)
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut counts = vec![0usize; k];
        for &i in &members {
            counts[truth[i]] += 1;
        }
        correct += counts.iter().max().copied().unwrap_or(0);
    }
    correct as f64 / labels.len() as f64
}

// Quiet the unused-import lint when the example is built standalone.
#[allow(unused_imports)]
use Trans as _Trans;
