//! Strong scaling of random sampling over multiple simulated GPUs — the
//! paper's §4 distribution scheme and Figure 15 experiment, at both a
//! verifiable (compute) scale and the paper's full scale (dry run).
//!
//! ```text
//! cargo run --release --example multi_gpu_scaling
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra::prelude::*;
use rlra_core::multi::{sample_fixed_rank_multi_gpu, scaling_report, HostInput};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1);

    // --- Part 1: verify numerics — multi-GPU == correct ---------------------
    let spec = rlra::data::power_spectrum(200);
    let tm = rlra::data::matrix_with_spectrum(600, 200, &spec, &mut rng)?;
    let cfg = SamplerConfig::new(12).with_q(1);
    println!("numerics check on a 600 x 200 matrix across 3 simulated GPUs:");
    let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
    let (approx, rep) =
        sample_fixed_rank_multi_gpu(&mut mg, HostInput::Values(&tm.a), &cfg, &mut rng)?;
    let approx = approx.expect("compute mode returns the factorization");
    let err = approx.relative_error(&tm.a, Some(tm.norm2()))?;
    println!(
        "  rank-12 relative error = {err:.2e}, comms = {:.1}% of simulated time",
        100.0 * rep.comms / rep.seconds
    );

    // --- Part 2: the paper's strong-scaling study (dry run, full size) ------
    let (m, n) = (150_000usize, 2_500usize);
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    println!("\nstrong scaling at the paper's size ((m; n) = ({m}; {n}), l;p;q = 64;10;1):");
    println!(
        "  {:>4} {:>12} {:>9} {:>9}",
        "n_g", "time", "speedup", "comms"
    );
    let mut t1 = 0.0;
    for ng in 1..=3 {
        let rep = scaling_report(ng, m, n, &cfg, &mut rng)?;
        if ng == 1 {
            t1 = rep.seconds;
        }
        println!(
            "  {:>4} {:>9.2} ms {:>8.2}x {:>8.1}%",
            ng,
            rep.seconds * 1e3,
            t1 / rep.seconds,
            100.0 * rep.comms / rep.seconds
        );
    }
    println!("\npaper reference: 2.4x on two GPUs, 3.8x on three (superlinear GEMM: the");
    println!("per-GPU chunks are less tall-skinny, so the GEMM kernel runs more efficiently).");
    Ok(())
}
