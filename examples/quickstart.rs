//! Quickstart: compute a rank-k approximation of a dense matrix with
//! random sampling, compare it against the deterministic QP3 baseline
//! and against the optimal (SVD) error.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // A 1,000 × 300 matrix with the paper's "power" spectrum
    // (σ_i = (i+1)^-3): strongly compressible.
    let (m, n) = (1_000usize, 300usize);
    let spec = rlra::data::power_spectrum(n);
    let tm = rlra::data::matrix_with_spectrum(m, n, &spec, &mut rng)?;
    println!(
        "matrix: {m} x {n}, spectrum `{}`, kappa(A) = {:.1e}",
        spec.name,
        spec.condition()
    );

    let k = 20;
    let cfg = SamplerConfig::new(k); // p = 10, q = 0, Gaussian sampling

    // --- Random sampling (the paper's algorithm) ---------------------------
    let t = std::time::Instant::now();
    let rs = sample_fixed_rank(&tm.a, &cfg, &mut rng)?;
    let t_rs = t.elapsed();
    let err_rs = rs.relative_error(&tm.a, Some(tm.norm2()))?;

    // --- Truncated QP3 (the deterministic baseline) -------------------------
    let t = std::time::Instant::now();
    let qp3 = qp3_low_rank(&tm.a, k)?;
    let t_qp3 = t.elapsed();
    let err_qp3 = qp3.relative_error(&tm.a, Some(tm.norm2()))?;

    // --- The theoretical optimum (Eckart–Young) ------------------------------
    let optimal = tm.sigma_after(k) / tm.norm2();

    println!("\nrank-{k} approximation (relative spectral error):");
    println!("  random sampling : {err_rs:.3e}   ({t_rs:.2?} on this CPU)");
    println!("  truncated QP3   : {err_qp3:.3e}   ({t_qp3:.2?} on this CPU)");
    println!("  optimal (SVD)   : {optimal:.3e}");

    // Use the approximation: fast matrix-vector products.
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let y = rs.apply(&x)?;
    println!(
        "\napplied A~ to a vector: |y| = {:.4}",
        rlra::matrix::norms::vec_norm2(&y)
    );

    // And on the simulated K40c, the timing the paper reports:
    let mut gpu = Gpu::k40c();
    let a_dev = gpu.resident(&tm.a);
    let (_, report) = sample_fixed_rank_gpu(&mut gpu, &a_dev, &cfg, &mut rng)?;
    println!(
        "\nsimulated K40c time: {:.3} ms, breakdown:",
        report.seconds * 1e3
    );
    for (phase, secs) in report.timeline.breakdown() {
        println!("  {phase:>12}: {:.3} ms", secs * 1e3);
    }
    Ok(())
}
