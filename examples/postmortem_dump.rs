//! Flight-recorder walkthrough: arm a [`FlightDeck`] on a simulated GPU,
//! inject a fail-stop mid-run, and dump the postmortem bundle an
//! operator would read — `MANIFEST.json`, the event tail, the metrics
//! snapshot — into `target/postmortem` (or `$RLRA_POSTMORTEM_DIR`).
//! A second leg injects a silent bit flip under a detect-only integrity
//! guard and dumps the resulting `silent-corruption` bundle (with the
//! corrupting kernel attributed in the manifest) into the `sdc/`
//! subdirectory.
//!
//! ```text
//! cargo run --release --example postmortem_dump
//! ```
//!
//! CI runs this after the perf-smoke gate and uploads the bundle as an
//! artifact, so every pipeline leaves an inspectable incident trail.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra::prelude::*;
use rlra_core::backend::{
    run_fixed_rank, run_fixed_rank_protected, GpuExec, Input, IntegrityGuard, IntegrityMode,
    IntegrityPolicy, NumericGuard,
};
use rlra_core::{postmortem_dir, FlightDeck};
use rlra_data::testmat::decay_matrix;
use rlra_gpu::{FaultPlan, SdcPlan};
use rlra_obs::prometheus_text;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (a, _) = decay_matrix(400, 120, 0.6, 42);
    let cfg = SamplerConfig::new(16).with_p(8).with_q(1);

    // The deck tees every event into the live registry and a bounded
    // flight recorder; the injector kills device 0 at its 6th launch.
    let deck = FlightDeck::default();
    let mut gpu = Gpu::k40c();
    gpu.set_injector(Some(FaultPlan::default().fail_stop(0, 6).injector_for(0)));
    gpu.set_tracer(Some(deck.tracer()));

    let mut exec = GpuExec::new(&mut gpu);
    let mut rng = StdRng::seed_from_u64(9);
    let err = run_fixed_rank(&mut exec, Input::Values(&a), &cfg, &mut rng)
        .expect_err("the injected fail-stop must kill the un-recovered run");
    println!("incident: {err}");

    let dir = postmortem_dir();
    let written = deck
        .dump_on_error(&err, None, &dir)?
        .expect("a device fault is a run-level incident");
    for path in &written {
        println!("[postmortem] {}", path.display());
    }

    // Second leg: a silent bit flip in the power-iteration GEMM under a
    // detect-only guard — the checksum verification kills the run with
    // the corrupting kernel named, and the bundle records it.
    let sdc_deck = FlightDeck::default();
    let mut gpu = Gpu::k40c();
    gpu.set_sdc_injector(Some(
        SdcPlan::new()
            .bit_flip(0, 0, "power_c", 3, 5, 54)
            .injector_for(0),
    ));
    gpu.set_tracer(Some(sdc_deck.tracer()));
    let mut exec = GpuExec::new(&mut gpu);
    let mut rng = StdRng::seed_from_u64(9);
    let mut guard = NumericGuard::default();
    let mut iguard = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::DetectOnly));
    let err = run_fixed_rank_protected(
        &mut exec,
        Input::Values(&a),
        &cfg,
        &mut rng,
        &mut guard,
        &mut iguard,
    )
    .expect_err("detect-only corruption must kill the run");
    println!("\nincident: {err}");
    let written = sdc_deck
        .dump_on_error(&err, None, &dir.join("sdc"))?
        .expect("silent corruption is a run-level incident");
    for path in &written {
        println!("[postmortem] {}", path.display());
    }

    // What a scrape of the same registry would have served.
    println!("\n{}", prometheus_text(&deck.registry().snapshot()));
    Ok(())
}
