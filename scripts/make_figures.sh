#!/usr/bin/env bash
# Regenerates every table/figure of the paper plus the ablation and
# what-if studies. CSV outputs land in target/figures/.
#
#   scripts/make_figures.sh [--full]
#
# --full runs the numerical experiments (fig06/16/17) at the paper's
# sizes instead of the reduced defaults (slow on CPU).
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  table1 fig06_errors fig07_tsqr fig08_sampling fig09_shortwide
  fig10_model fig11_rows fig12_cols fig13_rank fig14_iters
  fig15_multigpu fig16_adaptive fig17_adaptive_time fig18_gemm
  table5_costs
  ablation_orth ablation_pivoting ablation_oversampling ablation_sampling ablation_blr
  whatif_comm_cost whatif_distributed whatif_future_gpus whatif_faults
)

cargo build --release -p rlra-bench --bins
for b in "${BINS[@]}"; do
  echo
  echo "########## $b ##########"
  cargo run -q --release -p rlra-bench --bin "$b" -- "$@"
done
echo
echo "CSV outputs: target/figures/"
