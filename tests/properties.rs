//! Cross-crate property-based tests: the randomized sampler's invariants
//! under randomly drawn shapes, spectra and configurations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra::prelude::*;

fn decay_matrix(m: usize, n: usize, decay: f64, seed: u64) -> (rlra::matrix::Mat, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec_values: Vec<f64> = (0..n.min(m)).map(|i| decay.powi(i as i32)).collect();
    let spec = rlra::data::Spectrum {
        name: "prop",
        values: spec_values.clone(),
    };
    let tm = rlra::data::matrix_with_spectrum(m, n, &spec, &mut rng).unwrap();
    (tm.a, spec_values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Q stays orthonormal and R upper-trapezoidal for arbitrary shapes
    /// and sampler settings.
    #[test]
    fn sampler_invariants(
        m in 40usize..120,
        n_extra in 0usize..40,
        k in 2usize..8,
        p in 0usize..6,
        q in 0usize..3,
        seed in 0u64..500,
    ) {
        let n = k + p + 10 + n_extra; // ensure l <= n
        let m = m.max(n + 1); // tall
        let (a, _) = decay_matrix(m, n, 0.7, seed);
        let cfg = SamplerConfig::new(k).with_p(p).with_q(q);
        let lr = sample_fixed_rank(&a, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert!(rlra::lapack::householder::orthogonality_error(&lr.q) < 1e-9);
        prop_assert_eq!(lr.q.shape(), (m, k));
        prop_assert_eq!(lr.r.shape(), (k, n));
        for j in 0..k {
            for i in j + 1..k {
                prop_assert_eq!(lr.r[(i, j)], 0.0);
            }
        }
    }

    /// The error bound ‖AP − QR‖ ≤ c·σ_{k+1} holds with a generous
    /// constant across spectra and configurations.
    #[test]
    fn error_bound_property(
        k in 3usize..8,
        q in 0usize..3,
        decay_pct in 30usize..80,
        seed in 0u64..500,
    ) {
        let decay = decay_pct as f64 / 100.0;
        let (m, n) = (100, 40);
        let (a, spec) = decay_matrix(m, n, decay, seed);
        let cfg = SamplerConfig::new(k).with_p(8).with_q(q);
        let lr = sample_fixed_rank(&a, &cfg, &mut StdRng::seed_from_u64(seed + 1)).unwrap();
        let err = lr.error_spectral(&a).unwrap();
        let sigma_k1 = spec[k];
        prop_assert!(err < 50.0 * sigma_k1, "err {} vs sigma {}", err, sigma_k1);
        // And never better than the Eckart–Young optimum.
        prop_assert!(err > 0.9 * sigma_k1);
    }

    /// Simulated time is monotone in each problem dimension.
    #[test]
    fn sim_time_monotone(
        m in 2_000usize..20_000,
        n in 300usize..2_000,
        q in 0usize..3,
        seed in 0u64..100,
    ) {
        let cfg = SamplerConfig::new(30).with_p(10).with_q(q);
        let time = |mm: usize, nn: usize| {
            let mut gpu = Gpu::k40c_dry();
            let a = gpu.resident_shape(mm, nn);
            let (_, rep) = sample_fixed_rank_gpu(&mut gpu, &a, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
            rep.seconds
        };
        prop_assert!(time(m * 2, n) > time(m, n));
        prop_assert!(time(m, n * 2) > time(m, n));
    }

    /// The same seed gives the same factorization (reproducibility),
    /// different seeds (almost surely) different pivots or factors.
    #[test]
    fn reproducibility(seed in 0u64..300) {
        let (a, _) = decay_matrix(60, 30, 0.6, 7);
        let cfg = SamplerConfig::new(5).with_p(5);
        let r1 = sample_fixed_rank(&a, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        let r2 = sample_fixed_rank(&a, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(r1.q.as_slice(), r2.q.as_slice());
        prop_assert_eq!(r1.perm.as_slice(), r2.perm.as_slice());
    }
}
