//! End-to-end integration tests spanning the whole workspace: generator →
//! sampler → factors → error bounds, across all three execution paths
//! (CPU, single simulated GPU, multi-GPU).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra::prelude::*;
use rlra_core::multi::{sample_fixed_rank_multi_gpu, HostInput};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The three test-matrix families of the paper's Table 1, at test scale.
fn table1_matrices(m: usize, n: usize) -> Vec<(&'static str, rlra::matrix::Mat, f64, f64)> {
    let mut out = Vec::new();
    let mut r = rng(100);
    for spec in [
        rlra::data::power_spectrum(n),
        rlra::data::exponent_spectrum(n),
    ] {
        let tm = rlra::data::matrix_with_spectrum(m, n, &spec, &mut r).unwrap();
        let s_k1 = tm.sigma_after(20);
        let norm = tm.norm2();
        out.push((spec.name, tm.a, norm, s_k1));
    }
    let cfg = rlra::data::HapmapConfig {
        snps: m,
        individuals: n,
        populations: 4,
        fst: 0.1,
    };
    let a = rlra::data::hapmap_like(&cfg, &mut r).unwrap();
    let sv = rlra::lapack::singular_values(&a).unwrap();
    out.push(("hapmap", a, sv[0], sv[20]));
    out
}

#[test]
fn fixed_rank_error_bound_on_all_table1_families() {
    let k = 20;
    for (name, a, norm, sigma_k1) in table1_matrices(300, 120) {
        for q in [0usize, 1] {
            let cfg = SamplerConfig::new(k).with_q(q);
            let approx = sample_fixed_rank(&a, &cfg, &mut rng(1)).unwrap();
            let err = approx.error_spectral(&a).unwrap();
            // Halko-style bound with a generous constant; also sanity
            // against the trivial bound.
            assert!(
                err <= 30.0 * sigma_k1 + 1e-12,
                "{name} q={q}: err {err:e} vs sigma_k1 {sigma_k1:e}"
            );
            assert!(
                err <= 2.0 * norm,
                "{name}: error cannot blow past the matrix norm"
            );
        }
    }
}

#[test]
fn rs_error_same_order_as_qp3_like_fig6() {
    // Figure 6's qualitative claim: q = 0 random sampling matches QP3's
    // error to within roughly an order of magnitude.
    let k = 20;
    for (name, a, _norm, _s) in table1_matrices(300, 120) {
        let qp3 = qp3_low_rank(&a, k).unwrap();
        let e_qp3 = qp3.error_spectral(&a).unwrap();
        let cfg = SamplerConfig::new(k);
        let rs = sample_fixed_rank(&a, &cfg, &mut rng(2)).unwrap();
        let e_rs = rs.error_spectral(&a).unwrap();
        assert!(
            e_rs < 15.0 * e_qp3 + 1e-13,
            "{name}: RS {e_rs:e} should be within an order of QP3 {e_qp3:e}"
        );
    }
}

#[test]
fn cpu_gpu_and_multigpu_paths_agree_numerically() {
    let spec = rlra::data::power_spectrum(100);
    let tm = rlra::data::matrix_with_spectrum(250, 100, &spec, &mut rng(3)).unwrap();
    let cfg = SamplerConfig::new(10).with_q(1);

    let cpu = sample_fixed_rank(&tm.a, &cfg, &mut rng(7)).unwrap();

    let mut gpu = Gpu::k40c();
    let a_dev = gpu.resident(&tm.a);
    let (gpu_lr, _) = sample_fixed_rank_gpu(&mut gpu, &a_dev, &cfg, &mut rng(7)).unwrap();
    let gpu_lr = gpu_lr.unwrap();

    // CPU and single-GPU use the same kernel sequence and seed: identical.
    assert_eq!(cpu.perm.as_slice(), gpu_lr.perm.as_slice());
    assert!(cpu.q.approx_eq(&gpu_lr.q, 1e-10));
    assert!(cpu.r.approx_eq(&gpu_lr.r, 1e-10));

    // Multi-GPU runs the same unified pipeline on the host: identical too.
    let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
    let (multi, _) =
        sample_fixed_rank_multi_gpu(&mut mg, HostInput::Values(&tm.a), &cfg, &mut rng(7)).unwrap();
    let multi = multi.unwrap();
    assert_eq!(cpu.perm.as_slice(), multi.perm.as_slice());
    assert_eq!(cpu.q, multi.q);
    assert_eq!(cpu.r, multi.r);
}

#[test]
fn factors_are_well_formed_invariants() {
    let spec = rlra::data::exponent_spectrum(80);
    let tm = rlra::data::matrix_with_spectrum(200, 80, &spec, &mut rng(4)).unwrap();
    let cfg = SamplerConfig::new(15).with_q(2);
    let lr = sample_fixed_rank(&tm.a, &cfg, &mut rng(5)).unwrap();
    // Q orthonormal.
    assert!(rlra::lapack::householder::orthogonality_error(&lr.q) < 1e-10);
    // R upper-trapezoidal in the leading k columns.
    for j in 0..lr.rank() {
        for i in j + 1..lr.rank() {
            assert_eq!(lr.r[(i, j)], 0.0);
        }
    }
    // Permutation is valid.
    let mut seen = vec![false; lr.perm.len()];
    for &p in lr.perm.as_slice() {
        assert!(!seen[p]);
        seen[p] = true;
    }
}

#[test]
fn adaptive_and_fixed_rank_consistency() {
    // The adaptive scheme run to tolerance eps should produce a basis at
    // least as good as a fixed-rank run with the same final l.
    let spec = rlra::data::exponent_spectrum(100);
    let tm = rlra::data::matrix_with_spectrum(300, 100, &spec, &mut rng(6)).unwrap();
    let mut gpu = Gpu::k40c();
    let cfg = AdaptiveConfig::new(1e-4, 8);
    let res = adaptive_sample(&mut gpu, &tm.a, &cfg, &mut rng(8)).unwrap();
    assert!(res.converged);
    let actual = rlra_core::estimate::actual_error(&tm.a, &res.basis).unwrap();
    assert!(
        actual <= cfg.tol,
        "certified: actual {actual:e} <= estimate <= tol"
    );
}

#[test]
fn gpu_dry_run_timing_is_deterministic_and_mode_independent() {
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let run = || {
        let mut gpu = Gpu::k40c_dry();
        let a = gpu.resident_shape(30_000, 1_000);
        let (_, rep) = sample_fixed_rank_gpu(&mut gpu, &a, &cfg, &mut rng(9)).unwrap();
        rep.seconds
    };
    let t1 = run();
    let t2 = run();
    assert_eq!(t1, t2, "simulated timing must be deterministic");
}

#[test]
fn fft_and_gaussian_sampling_same_quality() {
    let spec = rlra::data::power_spectrum(90);
    let tm = rlra::data::matrix_with_spectrum(256, 90, &spec, &mut rng(10)).unwrap();
    let sigma = tm.sigma_after(12);
    let g = sample_fixed_rank(&tm.a, &SamplerConfig::new(12), &mut rng(11)).unwrap();
    let f = sample_fixed_rank(
        &tm.a,
        &SamplerConfig::new(12).with_sampling(SamplingKind::Fft(rlra::fft::SrftScheme::Full)),
        &mut rng(12),
    )
    .unwrap();
    for (name, lr) in [("gaussian", g), ("fft", f)] {
        let e = lr.error_spectral(&tm.a).unwrap();
        assert!(e < 30.0 * sigma, "{name}: {e:e} vs sigma {sigma:e}");
    }
}
