//! Integration tests of the beyond-the-paper extensions: randomized SVD,
//! CUR, tournament Step 2, TSQR / mixed-precision orthogonalization in
//! the pipeline, and the distributed-cluster study.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra::prelude::*;
use rlra_core::{qp3_cluster_time, sample_fixed_rank_cluster, Step2Kind};
use rlra_gpu::{Cluster, NetworkSpec};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn power_matrix(m: usize, n: usize, seed: u64) -> (rlra::matrix::Mat, rlra::data::Spectrum) {
    let spec = rlra::data::power_spectrum(n);
    let tm = rlra::data::matrix_with_spectrum(m, n, &spec, &mut rng(seed)).unwrap();
    (tm.a, tm.spectrum)
}

#[test]
fn rsvd_cur_and_qr_forms_agree_on_quality() {
    let (a, spec) = power_matrix(200, 90, 1);
    let k = 12;
    let cfg = SamplerConfig::new(k).with_q(1);
    let sigma_k1 = spec.sigma_after(k);

    let qr_form = sample_fixed_rank(&a, &cfg, &mut rng(2)).unwrap();
    let svd_form = randomized_svd(&a, &cfg, &mut rng(3)).unwrap();
    let cur_form = cur_decomposition(&a, &cfg, &mut rng(4)).unwrap();

    let e_qr = qr_form.error_spectral(&a).unwrap();
    let e_svd = svd_form.error_spectral(&a).unwrap();
    let e_cur = cur_form.error_spectral(&a).unwrap();

    assert!(e_qr < 30.0 * sigma_k1, "QR form {e_qr:e}");
    assert!(e_svd < 30.0 * sigma_k1, "SVD form {e_svd:e}");
    // CUR is constrained to actual rows/columns — allow a wider factor.
    assert!(e_cur < 150.0 * sigma_k1, "CUR form {e_cur:e}");
    // SVD finishing is the tightest of the three.
    assert!(e_svd <= e_qr * 1.2 + 1e-14);
}

#[test]
fn rsvd_sigma_matches_library_svds() {
    let (a, _) = power_matrix(120, 60, 5);
    let cfg = SamplerConfig::new(8).with_p(12).with_q(2);
    let rsvd = randomized_svd(&a, &cfg, &mut rng(6)).unwrap();
    let jac = rlra::lapack::svd_jacobi(&a).unwrap();
    let gk = rlra::lapack::svd_golub_kahan(&a).unwrap();
    for i in 0..rsvd.rank() {
        assert!((jac.sigma[i] - gk.sigma[i]).abs() < 1e-9 * (1.0 + jac.sigma[i]));
        assert!(
            (rsvd.sigma[i] - jac.sigma[i]).abs() < 1e-2 * jac.sigma[i],
            "sigma_{i}: rsvd {:e} vs exact {:e}",
            rsvd.sigma[i],
            jac.sigma[i]
        );
    }
}

#[test]
fn tournament_step2_full_pipeline() {
    let (a, spec) = power_matrix(150, 80, 7);
    let k = 10;
    let cfg = SamplerConfig::new(k).with_step2(Step2Kind::Tournament);
    let lr = sample_fixed_rank(&a, &cfg, &mut rng(8)).unwrap();
    assert!(rlra::lapack::householder::orthogonality_error(&lr.q) < 1e-10);
    let err = lr.error_spectral(&a).unwrap();
    assert!(
        err < 40.0 * spec.sigma_after(k),
        "tournament pipeline error {err:e}"
    );
}

#[test]
fn orthogonalization_schemes_interchangeable_in_power_iteration() {
    // TSQR and mixed-precision CholQR produce the same subspace as
    // CholQR2 on well-conditioned sampled matrices.
    let (a, _) = power_matrix(100, 50, 9);
    let b0 = {
        let omega = rlra::matrix::gaussian_mat(12, 100, &mut rng(10));
        let mut b = rlra::matrix::Mat::zeros(12, 50);
        rlra::blas::gemm(
            1.0,
            omega.as_ref(),
            rlra::blas::Trans::No,
            a.as_ref(),
            rlra::blas::Trans::No,
            0.0,
            b.as_mut(),
        )
        .unwrap();
        b
    };
    let (q_chol, _) = rlra::lapack::cholqr_rows2(&b0).unwrap();
    let t = rlra::lapack::tsqr(&b0.transpose(), 32).unwrap();
    let q_tsqr = t.q.transpose();
    let (q_mixed, _) = rlra::lapack::cholqr_rows_mixed(&b0).unwrap();
    // Same projector (row space).
    let proj = |q: &rlra::matrix::Mat| {
        rlra::blas::naive::gemm_ref(q, rlra::blas::Trans::Yes, q, rlra::blas::Trans::No)
    };
    let p0 = proj(&q_chol);
    assert!(rlra::matrix::ops::max_abs_diff(&proj(&q_tsqr), &p0).unwrap() < 1e-9);
    assert!(rlra::matrix::ops::max_abs_diff(&proj(&q_mixed), &p0).unwrap() < 1e-9);
}

#[test]
fn cluster_study_reproduces_section11_prediction() {
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let speedup = |nodes: usize, net: NetworkSpec| -> f64 {
        let mut cl =
            Cluster::new(nodes, 2, DeviceSpec::k40c(), net.clone(), ExecMode::DryRun).unwrap();
        let rs = sample_fixed_rank_cluster(&mut cl, 400_000, 2_500, &cfg, &mut rng(11))
            .unwrap()
            .seconds;
        let mut cl2 = Cluster::new(nodes, 2, DeviceSpec::k40c(), net, ExecMode::DryRun).unwrap();
        qp3_cluster_time(&mut cl2, 400_000, 2_500, 64) / rs
    };
    let s1 = speedup(1, NetworkSpec::infiniband_fdr());
    let s4 = speedup(4, NetworkSpec::infiniband_fdr());
    assert!(s4 > s1, "gap widens with nodes: {s1:.1} -> {s4:.1}");
    // And the slower network favors random sampling more.
    let s4_eth = speedup(4, NetworkSpec::ethernet_10g());
    assert!(
        s4_eth > s4 * 0.95,
        "10GbE at least comparable: {s4_eth:.1} vs {s4:.1}"
    );
}

#[test]
fn dd_arithmetic_integrates_with_pipeline_scale_data() {
    // The doubled-precision Gram survives a condition number the plain
    // pipeline component cannot.
    use rlra::lapack::dd::{dd_dot, Dd};
    let x: Vec<f64> = (0..1000).map(|i| 10f64.powi((i % 30) - 15)).collect();
    let exact = dd_dot(&x, &x);
    let plain: f64 = x.iter().map(|v| v * v).sum();
    // Both agree to f64 precision on this well-posed sum...
    assert!((exact.to_f64() - plain).abs() < 1e-9 * plain);
    // ...but dd keeps ~30 extra digits of the residual.
    let residual = exact.sub(Dd::from_f64(exact.to_f64()));
    assert!(residual.to_f64().abs() < 1e-10 * plain);
}

#[test]
fn interpolative_decomposition_end_to_end() {
    let (a, spec) = power_matrix(120, 70, 30);
    let k = 9;
    let id =
        interpolative_decomposition(&a, &SamplerConfig::new(k).with_p(8), &mut rng(31)).unwrap();
    assert_eq!(id.rank(), k);
    assert!(id.error_spectral(&a).unwrap() < 60.0 * spec.sigma_after(k));
    assert!(id.max_coeff() < 20.0);
}

#[test]
fn matrix_market_roundtrip_through_the_pipeline() {
    // Export a generated matrix, re-import it, and confirm the sampler
    // produces the identical factorization (same seed).
    let (a, _) = power_matrix(60, 30, 32);
    let dir = std::env::temp_dir().join("rlra_ext_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pipeline.mtx");
    rlra::data::write_matrix_market(&path, &a).unwrap();
    let back = rlra::data::read_matrix_market(&path).unwrap();
    let cfg = SamplerConfig::new(5);
    let lr1 = sample_fixed_rank(&a, &cfg, &mut rng(33)).unwrap();
    let lr2 = sample_fixed_rank(&back, &cfg, &mut rng(33)).unwrap();
    assert_eq!(lr1.perm.as_slice(), lr2.perm.as_slice());
    assert!(lr1.q.approx_eq(&lr2.q, 1e-12));
    let _ = std::fs::remove_file(&path);
}
