//! Integration tests pinning the paper's *headline performance claims*
//! against the simulated-GPU reproduction. Each test names the paper
//! section/figure it checks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra::prelude::*;
use rlra_core::multi::scaling_report;
use rlra_core::qp3_low_rank_gpu;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn rs_time(m: usize, n: usize, k: usize, p: usize, q: usize) -> f64 {
    let mut gpu = Gpu::k40c_dry();
    let a = gpu.resident_shape(m, n);
    let cfg = SamplerConfig::new(k).with_p(p).with_q(q);
    let (_, rep) = sample_fixed_rank_gpu(&mut gpu, &a, &cfg, &mut rng(1)).unwrap();
    rep.seconds
}

fn qp3_time(m: usize, n: usize, k: usize) -> f64 {
    let mut gpu = Gpu::k40c_dry();
    let a = gpu.resident_shape(m, n);
    let (_, t) = qp3_low_rank_gpu(&mut gpu, &a, k).unwrap();
    t
}

/// Abstract: "random sampling can be up to 12.8× faster than the
/// deterministic approach" (q = 0 at (m; n) = (50,000; 2,500)).
#[test]
fn headline_q0_speedup() {
    let s = qp3_time(50_000, 2_500, 64) / rs_time(50_000, 2_500, 54, 10, 0);
    assert!(s > 8.0 && s < 20.0, "q=0 speedup {s:.1} (paper: 12.8)");
}

/// §9: q = 1 speedup up to 6.6× at the same configuration.
#[test]
fn headline_q1_speedup() {
    let s = qp3_time(50_000, 2_500, 64) / rs_time(50_000, 2_500, 54, 10, 1);
    assert!(s > 4.0 && s < 10.0, "q=1 speedup {s:.1} (paper: 6.6)");
}

/// Figure 11: both times grow linearly in m, QP3 with the steeper slope.
#[test]
fn fig11_linear_growth_with_steeper_qp3_slope() {
    let rs_slope =
        (rs_time(50_000, 2_500, 54, 10, 1) - rs_time(25_000, 2_500, 54, 10, 1)) / 25_000.0;
    let qp3_slope = (qp3_time(50_000, 2_500, 64) - qp3_time(25_000, 2_500, 64)) / 25_000.0;
    assert!(
        qp3_slope > 4.0 * rs_slope,
        "QP3 slope {qp3_slope:e} vs RS {rs_slope:e}"
    );
    // Paper's fitted slopes: 9.34e-6 (QP3) and 1.15e-6 (RS) seconds/row.
    assert!(
        qp3_slope > 4e-6 && qp3_slope < 2e-5,
        "QP3 slope {qp3_slope:e}"
    );
    assert!(rs_slope > 4e-7 && rs_slope < 4e-6, "RS slope {rs_slope:e}");
}

/// §9: at m = 50,000 the run is dominated by Step 1, with the GEMM at
/// ~75 % of total time.
#[test]
fn fig11_gemm_dominates_at_large_m() {
    let mut gpu = Gpu::k40c_dry();
    let a = gpu.resident_shape(50_000, 2_500);
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let (_, rep) = sample_fixed_rank_gpu(&mut gpu, &a, &cfg, &mut rng(2)).unwrap();
    let gemm = rep.timeline.get(Phase::Sampling) + rep.timeline.get(Phase::GemmIter);
    let frac = gemm / rep.seconds;
    assert!(
        frac > 0.6 && frac < 0.9,
        "GEMM fraction {frac:.2} (paper: ~0.75)"
    );
    let step1 = gemm + rep.timeline.get(Phase::Prng) + rep.timeline.get(Phase::OrthIter);
    assert!(
        step1 / rep.seconds > 0.7,
        "Step 1 fraction {:.2} (paper: ~0.78)",
        step1 / rep.seconds
    );
}

/// Figure 14: random sampling beats QP3 for power iterations up to
/// q ≈ 12 (we accept 9–14 as the crossover).
#[test]
fn fig14_crossover_between_9_and_14_iterations() {
    let t_qp3 = qp3_time(50_000, 2_500, 64);
    let mut crossover = None;
    for q in 0..=16 {
        if rs_time(50_000, 2_500, 54, 10, q) > t_qp3 {
            crossover = Some(q);
            break;
        }
    }
    let q = crossover.expect("RS must eventually exceed QP3");
    assert!((9..=14).contains(&q), "crossover at q = {q} (paper: 12)");
}

/// Figure 15: strong scaling 2.4× / 3.8× on 2 / 3 GPUs with superlinear
/// GEMM and small-but-growing comms.
#[test]
fn fig15_strong_scaling_bands() {
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let r1 = scaling_report(1, 150_000, 2_500, &cfg, &mut rng(3)).unwrap();
    let r2 = scaling_report(2, 150_000, 2_500, &cfg, &mut rng(3)).unwrap();
    let r3 = scaling_report(3, 150_000, 2_500, &cfg, &mut rng(3)).unwrap();
    let s2 = r1.seconds / r2.seconds;
    let s3 = r1.seconds / r3.seconds;
    assert!(
        s2 > 2.0,
        "2-GPU speedup {s2:.2} should be (super)linear (paper: 2.4, 2.8 GEMM)"
    );
    assert!(s3 > 3.0, "3-GPU speedup {s3:.2} (paper: 3.8, 5.1 GEMM)");
    assert!(r2.comms / r2.seconds < 0.05);
    assert!(r3.comms / r3.seconds < 0.08);
    assert!(r3.comms / r3.seconds > r2.comms / r2.seconds);
}

/// Figure 13: random sampling outperforms QP3 across the whole ℓ range
/// (32–512).
#[test]
fn fig13_rs_wins_across_rank_range() {
    for l in [32usize, 128, 512] {
        let t_rs = rs_time(50_000, 2_500, l - 10, 10, 1);
        let t_qp3 = qp3_time(50_000, 2_500, l);
        assert!(t_rs < t_qp3, "l = {l}: RS {t_rs} vs QP3 {t_qp3}");
    }
}

/// Figure 12: QP3's time grows faster with n than random sampling's.
#[test]
fn fig12_column_scaling() {
    let rs_ratio = rs_time(50_000, 5_000, 54, 10, 1) / rs_time(50_000, 500, 54, 10, 1);
    let qp3_ratio = qp3_time(50_000, 5_000, 64) / qp3_time(50_000, 500, 64);
    assert!(
        qp3_ratio > rs_ratio,
        "QP3 column-scaling {qp3_ratio:.2} should exceed RS {rs_ratio:.2}"
    );
}

/// Figures 7/9 economics, end to end: replacing CholQR with HHQR inside
/// the power iteration must visibly slow the orthogonalization phase.
/// (We check the CholQR path keeps Orth well under the GEMM time — the
/// property that makes the paper's pipeline GEMM-bound.)
#[test]
fn orthogonalization_is_cheap_relative_to_gemm() {
    let mut gpu = Gpu::k40c_dry();
    let a = gpu.resident_shape(50_000, 2_500);
    let cfg = SamplerConfig::new(54).with_p(10).with_q(2);
    let (_, rep) = sample_fixed_rank_gpu(&mut gpu, &a, &cfg, &mut rng(4)).unwrap();
    let orth = rep.timeline.get(Phase::OrthIter);
    let gemm = rep.timeline.get(Phase::GemmIter);
    assert!(
        orth < 0.2 * gemm,
        "Orth {orth} should be a small fraction of GEMM {gemm}"
    );
}
