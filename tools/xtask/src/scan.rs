//! Item-level structure on top of the token stream: functions (with
//! bodies as token ranges), `impl` blocks, `#[cfg(test)]` regions, and
//! the `// analyze: allow(lint, reason)` escape-hatch annotations.

use crate::lex::{lex, Lexed, Tok, TokKind};
use std::ops::Range;
use std::path::PathBuf;

/// How far above an item an `analyze: allow` comment may sit (same line
/// plus up to this many lines above, so attributes and a short doc line
/// can come between the annotation and the item).
pub const ALLOW_WINDOW: u32 = 3;

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// Trait being implemented (`None` for inherent impls).
    pub trait_name: Option<String>,
    /// Base name of the implementing type (`GpuExec` for
    /// `impl Executor for GpuExec<'_>`).
    pub self_type: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Token range of the impl body (exclusive of the braces).
    pub body: Range<usize>,
}

/// A function item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Whether the declaration carries `pub` (any visibility scope).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body (exclusive of the braces); `None` for
    /// bodyless declarations (trait method signatures).
    pub body: Option<Range<usize>>,
    /// Index into [`FileModel::impls`] of the enclosing impl, if any.
    pub impl_idx: Option<usize>,
    /// Inside a `#[cfg(test)]` module / carries `#[cfg(test)]`/`#[test]`.
    pub in_test: bool,
    /// Declared inside a `trait { .. }` definition (default methods).
    pub in_trait_def: bool,
    /// Number of declared parameters, excluding any `self` receiver.
    pub param_count: usize,
    /// Whether the signature declares a return type (`-> ..`).
    pub has_return_type: bool,
    /// Whether the declared return type mentions `Result`.
    pub returns_result: bool,
}

impl FnInfo {
    /// Whether the function returns `()` or `Result<()>` — the shape of
    /// a charging hook (work happens for effect, nothing is handed
    /// back), as opposed to an accessor returning a value.
    pub fn returns_unit_or_result(&self) -> bool {
        !self.has_return_type || self.returns_result
    }
}

/// One `use` declaration leaf: `segments` is the full imported path and
/// `alias` the name it binds locally (`*` for glob imports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// Full path segments, e.g. `["rlra_gpu", "algos", "gpu_cholqr"]`.
    pub segments: Vec<String>,
    /// Locally bound name (the last segment unless renamed with `as`);
    /// `*` for glob imports, where `segments` is the module prefix.
    pub alias: String,
}

/// A parsed `// analyze: allow(lint, reason)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line of the comment.
    pub line: u32,
    /// Lint name inside `allow(..)`.
    pub lint: String,
    /// Justification after the comma (may be empty — the analyzer
    /// reports empty reasons).
    pub reason: String,
}

/// Lexed + structurally scanned source file.
#[derive(Debug)]
pub struct FileModel {
    /// Path the file was read from (repo-relative where possible).
    pub path: PathBuf,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// All function items, in source order.
    pub fns: Vec<FnInfo>,
    /// All impl blocks, in source order.
    pub impls: Vec<ImplInfo>,
    /// Token ranges under `#[cfg(test)]` (modules, fns, impls).
    pub test_ranges: Vec<Range<usize>>,
    /// Escape-hatch annotations.
    pub allows: Vec<Allow>,
    /// Flattened `use` declarations (one entry per imported leaf).
    pub uses: Vec<UseDecl>,
}

impl FileModel {
    /// Scans `src` (from `path`, used only for reporting).
    pub fn new(path: PathBuf, src: &str) -> Self {
        let lexed = lex(src);
        let allows = parse_allows(&lexed);
        let mut model = FileModel {
            path,
            lexed,
            fns: Vec::new(),
            impls: Vec::new(),
            test_ranges: Vec::new(),
            allows,
            uses: Vec::new(),
        };
        scan_items(&mut model);
        model
    }

    /// Whether token index `idx` falls in a `#[cfg(test)]` region.
    pub fn in_test_range(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|r| r.contains(&idx))
    }

    /// Finds an allow annotation for `lint` attached at `line` (same
    /// line or up to [`ALLOW_WINDOW`] lines above).
    pub fn allow_at(&self, lint: &str, line: u32) -> Option<&Allow> {
        self.allows.iter().find(|a| {
            a.lint == lint && a.line <= line && line.saturating_sub(a.line) <= ALLOW_WINDOW
        })
    }

    /// Like [`Self::allow_at`], but also accepts an annotation on the
    /// enclosing impl (one annotation exempting a whole backend impl).
    pub fn allow_for_fn(&self, lint: &str, f: &FnInfo) -> Option<&Allow> {
        self.allow_at(lint, f.line).or_else(|| {
            f.impl_idx
                .and_then(|i| self.allow_at(lint, self.impls[i].line))
        })
    }
}

/// Extracts `analyze: allow(lint, reason)` annotations from comments.
fn parse_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("analyze:") else {
            continue;
        };
        let rest = c.text[pos + "analyze:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            continue;
        };
        let inner = &args[..close];
        let (lint, reason) = match inner.split_once(',') {
            Some((l, r)) => (l.trim().to_string(), r.trim().to_string()),
            None => (inner.trim().to_string(), String::new()),
        };
        out.push(Allow {
            line: c.line,
            lint,
            reason,
        });
    }
    out
}

/// Scope kinds tracked while walking the brace structure.
#[derive(Debug)]
enum Scope {
    /// Plain expression/statement block (or one we don't care about).
    Block,
    /// `mod name { .. }`; `test` is true under `#[cfg(test)]`.
    Mod { test: bool, open: usize },
    /// `impl .. { .. }`; index into `FileModel::impls`.
    Impl { idx: usize, test: bool, open: usize },
    /// `trait Name { .. }` definition body.
    TraitDef,
    /// Function body; index into `FileModel::fns`.
    FnBody { idx: usize, test: bool, open: usize },
}

fn scan_items(model: &mut FileModel) {
    let toks: &[Tok] = &model.lexed.toks;
    let n = toks.len();
    let mut i = 0usize;
    let mut scopes: Vec<Scope> = Vec::new();
    let mut saw_pub = false;
    let mut pending_test_attr = false;

    let enclosing_test = |scopes: &[Scope]| {
        scopes.iter().any(|s| {
            matches!(
                s,
                Scope::Mod { test: true, .. }
                    | Scope::Impl { test: true, .. }
                    | Scope::FnBody { test: true, .. }
            )
        })
    };
    let enclosing_trait_def =
        |scopes: &[Scope]| scopes.iter().any(|s| matches!(s, Scope::TraitDef));
    let enclosing_impl = |scopes: &[Scope]| {
        scopes.iter().rev().find_map(|s| match s {
            Scope::Impl { idx, .. } => Some(*idx),
            _ => None,
        })
    };

    while i < n {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.is_punct('#') => {
                // Attribute: #[..] attaches to the next item, #![..] is an
                // inner attribute (skipped).
                let inner = i + 1 < n && toks[i + 1].is_punct('!');
                let open = i + if inner { 2 } else { 1 };
                if open < n && toks[open].is_punct('[') {
                    let close = match_delim(toks, open, '[', ']');
                    if !inner {
                        let has = |s: &str| toks[open + 1..close].iter().any(|t| t.is_ident(s));
                        if (has("cfg") && has("test"))
                            || (toks[open + 1..close].len() == 1 && has("test"))
                            || (has("test") && has("proptest"))
                        {
                            pending_test_attr = true;
                        }
                    }
                    i = close + 1;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident => match t.text.as_str() {
                "pub" => {
                    saw_pub = true;
                    i += 1;
                    // pub(crate) / pub(in path)
                    if i < n && toks[i].is_punct('(') {
                        i = match_delim(toks, i, '(', ')') + 1;
                    }
                }
                "mod" => {
                    let test = pending_test_attr || enclosing_test(&scopes);
                    pending_test_attr = false;
                    saw_pub = false;
                    i += 1; // name
                    while i < n && !toks[i].is_punct('{') && !toks[i].is_punct(';') {
                        i += 1;
                    }
                    if i < n && toks[i].is_punct('{') {
                        scopes.push(Scope::Mod { test, open: i });
                    }
                    i += 1;
                }
                "trait" => {
                    pending_test_attr = false;
                    saw_pub = false;
                    while i < n && !toks[i].is_punct('{') && !toks[i].is_punct(';') {
                        i += 1;
                    }
                    if i < n && toks[i].is_punct('{') {
                        scopes.push(Scope::TraitDef);
                    }
                    i += 1;
                }
                "impl" => {
                    let line = t.line;
                    let test = pending_test_attr || enclosing_test(&scopes);
                    pending_test_attr = false;
                    saw_pub = false;
                    // Collect the header up to the body brace. The trait
                    // name (if any) is the last top-level identifier
                    // before `for`; the self type is the last top-level
                    // identifier after it (or overall, for inherent
                    // impls). Generic arguments are excluded by angle
                    // depth so `impl<E: Executor> T for Recovering<E>`
                    // yields (`T`, `Recovering`).
                    let mut trait_name: Option<String> = None;
                    let mut last_ident: Option<String> = None;
                    let mut paren = 0i32;
                    let mut angle = 0i32;
                    let mut in_where = false;
                    i += 1;
                    while i < n && !(toks[i].is_punct('{') && paren == 0) {
                        let s = &toks[i];
                        if s.is_punct('-') && i + 1 < n && toks[i + 1].is_punct('>') {
                            i += 2; // `->` in an `Fn()` bound, not an angle close
                            continue;
                        }
                        if s.is_punct('(') {
                            paren += 1;
                        } else if s.is_punct(')') {
                            paren -= 1;
                        } else if s.is_punct('<') {
                            angle += 1;
                        } else if s.is_punct('>') {
                            angle -= 1;
                        } else if s.is_punct(';') {
                            break; // `impl Trait for Type;` (unparsable junk) — bail
                        } else if s.kind == TokKind::Ident && paren == 0 && angle == 0 && !in_where
                        {
                            match s.text.as_str() {
                                "for" => {
                                    if trait_name.is_none() {
                                        trait_name = last_ident.take();
                                    }
                                }
                                "where" => in_where = true,
                                "mut" | "dyn" | "const" | "unsafe" => {}
                                other => last_ident = Some(other.to_string()),
                            }
                        }
                        i += 1;
                    }
                    if i < n && toks[i].is_punct('{') {
                        model.impls.push(ImplInfo {
                            trait_name,
                            self_type: last_ident,
                            line,
                            body: 0..0, // patched when the scope closes
                        });
                        scopes.push(Scope::Impl {
                            idx: model.impls.len() - 1,
                            test,
                            open: i,
                        });
                    }
                    i += 1;
                }
                "fn" => {
                    let line = t.line;
                    let is_pub = saw_pub;
                    let test = pending_test_attr || enclosing_test(&scopes);
                    saw_pub = false;
                    pending_test_attr = false;
                    i += 1;
                    let name = if i < n && toks[i].kind == TokKind::Ident {
                        toks[i].text.clone()
                    } else {
                        String::new()
                    };
                    // Scan the signature for the body `{` or a `;`,
                    // recording the parameter-list range and the return
                    // type along the way. Angle depth distinguishes the
                    // parameter parens from parens inside generic bounds
                    // (`fn f<T: Fn(usize)>(x: T)`).
                    let mut depth = 0i32;
                    let mut angle = 0i32;
                    let mut params: Option<Range<usize>> = None;
                    let mut params_open: Option<usize> = None;
                    let mut has_return_type = false;
                    let mut returns_result = false;
                    let mut in_where = false;
                    while i < n {
                        let s = &toks[i];
                        if s.is_punct('-') && i + 1 < n && toks[i + 1].is_punct('>') {
                            if depth == 0 && angle == 0 {
                                has_return_type = true;
                            }
                            i += 2;
                            continue;
                        }
                        if s.is_punct('(') || s.is_punct('[') {
                            if s.is_punct('(') && depth == 0 && angle == 0 && params.is_none() {
                                params_open = Some(i);
                            }
                            depth += 1;
                        } else if s.is_punct(')') || s.is_punct(']') {
                            depth -= 1;
                            if s.is_punct(')') && depth == 0 && params.is_none() {
                                if let Some(open) = params_open.take() {
                                    params = Some(open + 1..i);
                                }
                            }
                        } else if s.is_punct('<') {
                            angle += 1;
                        } else if s.is_punct('>') {
                            angle -= 1;
                        } else if depth == 0 && s.kind == TokKind::Ident {
                            if s.text == "where" {
                                in_where = true;
                            } else if has_return_type && !in_where && s.text == "Result" {
                                returns_result = true;
                            }
                        } else if depth == 0 && (s.is_punct(';') || s.is_punct('{')) {
                            let with_body = s.is_punct('{');
                            let param_count = params
                                .as_ref()
                                .map(|r| count_params(&toks[r.clone()]))
                                .unwrap_or(0);
                            model.fns.push(FnInfo {
                                name,
                                is_pub,
                                line,
                                body: None, // patched when the scope closes
                                impl_idx: enclosing_impl(&scopes),
                                in_test: test,
                                in_trait_def: enclosing_trait_def(&scopes),
                                param_count,
                                has_return_type,
                                returns_result,
                            });
                            if with_body {
                                scopes.push(Scope::FnBody {
                                    idx: model.fns.len() - 1,
                                    test,
                                    open: i,
                                });
                            }
                            i += 1;
                            break;
                        }
                        i += 1;
                    }
                }
                "macro_rules" => {
                    // Skip the whole macro definition body.
                    pending_test_attr = false;
                    saw_pub = false;
                    while i < n && !toks[i].is_punct('{') {
                        i += 1;
                    }
                    if i < n {
                        i = match_delim(toks, i, '{', '}') + 1;
                    }
                }
                "use" => {
                    saw_pub = false;
                    pending_test_attr = false;
                    // Parse the use tree by peeking ahead WITHOUT
                    // consuming tokens: lints that pattern-match the raw
                    // stream (determinism) rely on import paths staying
                    // visible.
                    let mut end = i + 1;
                    while end < n && !toks[end].is_punct(';') {
                        end += 1;
                    }
                    let mut cursor = i + 1;
                    parse_use_tree(&toks[..end], &mut cursor, &mut Vec::new(), &mut model.uses);
                    i += 1;
                }
                "struct" | "enum" | "union" | "const" | "static" | "type" | "extern" => {
                    saw_pub = false;
                    pending_test_attr = false;
                    i += 1;
                }
                _ => i += 1,
            },
            TokKind::Punct if t.is_punct('{') => {
                scopes.push(Scope::Block);
                i += 1;
            }
            TokKind::Punct if t.is_punct('}') => {
                match scopes.pop() {
                    Some(Scope::Mod { test: true, open }) => {
                        model.test_ranges.push(open..i + 1);
                    }
                    Some(Scope::Impl { idx, test, open }) => {
                        model.impls[idx].body = open + 1..i;
                        if test {
                            model.test_ranges.push(open..i + 1);
                        }
                    }
                    Some(Scope::FnBody { idx, test, open }) => {
                        model.fns[idx].body = Some(open + 1..i);
                        if test {
                            model.test_ranges.push(open..i + 1);
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Counts declared parameters in a parameter-list token slice (the
/// tokens between the signature parens), excluding any `self` receiver.
/// Commas inside nested parens, brackets, or generic angles do not
/// count (`x: HashMap<K, V>` is one parameter).
fn count_params(toks: &[Tok]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut commas = 0usize;
    let (mut depth, mut angle) = (0i32, 0i32);
    let mut k = 0usize;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('-') && k + 1 < toks.len() && toks[k + 1].is_punct('>') {
            k += 2; // `->` inside an `Fn()` bound
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct(',') && depth == 0 && angle == 0 {
            commas += 1;
        }
        k += 1;
    }
    let mut count = commas + 1;
    if toks.last().map(|t| t.is_punct(',')).unwrap_or(false) {
        count -= 1; // trailing comma
    }
    // Skip a `&'a mut self` / `mut self` / `self: Pin<..>` receiver.
    let mut k = 0usize;
    while k < toks.len()
        && (toks[k].is_punct('&') || toks[k].kind == TokKind::Lifetime || toks[k].is_ident("mut"))
    {
        k += 1;
    }
    if k < toks.len() && toks[k].is_ident("self") {
        count = count.saturating_sub(1);
    }
    count
}

/// Recursive-descent parse of one `use` tree (`a::b::{c, d as e, f::*}`)
/// into flat [`UseDecl`] leaves. `i` is advanced past the consumed
/// tokens; `prefix` carries the path segments accumulated so far.
fn parse_use_tree(toks: &[Tok], i: &mut usize, prefix: &mut Vec<String>, out: &mut Vec<UseDecl>) {
    let base = prefix.len();
    let n = toks.len();
    loop {
        if *i >= n {
            break;
        }
        if toks[*i].is_punct('{') {
            *i += 1;
            while *i < n && !toks[*i].is_punct('}') {
                parse_use_tree(toks, i, prefix, out);
                if *i < n && toks[*i].is_punct(',') {
                    *i += 1;
                }
            }
            if *i < n {
                *i += 1; // '}'
            }
            break;
        }
        if toks[*i].is_punct('*') {
            out.push(UseDecl {
                segments: prefix.clone(),
                alias: "*".to_string(),
            });
            *i += 1;
            break;
        }
        if toks[*i].kind != TokKind::Ident {
            *i += 1; // leading `::` or stray punctuation
            continue;
        }
        let seg = toks[*i].text.clone();
        *i += 1;
        let more = *i + 1 < n && toks[*i].is_punct(':') && toks[*i + 1].is_punct(':');
        if more {
            prefix.push(seg);
            *i += 2;
            continue;
        }
        // Leaf segment: `self` in a group re-imports the prefix module.
        let mut alias = seg.clone();
        let mut segments = prefix.clone();
        if seg == "self" {
            alias = prefix.last().cloned().unwrap_or(seg);
        } else {
            segments.push(seg);
        }
        if *i < n && toks[*i].is_ident("as") {
            *i += 1;
            if *i < n && toks[*i].kind == TokKind::Ident {
                alias = toks[*i].text.clone();
                *i += 1;
            }
        }
        out.push(UseDecl { segments, alias });
        break;
    }
    prefix.truncate(base);
}

/// Index of the delimiter matching `toks[open]` (which must be `open_c`);
/// returns the last token index if unbalanced.
fn match_delim(toks: &[Tok], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct(open_c) {
            depth += 1;
        } else if toks[i].is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::new(PathBuf::from("test.rs"), src)
    }

    #[test]
    fn finds_pub_fns_and_bodies() {
        let m = model("pub fn a() { b(); }\nfn b() {}\n");
        assert_eq!(m.fns.len(), 2);
        assert!(m.fns[0].is_pub);
        assert!(!m.fns[1].is_pub);
        assert!(m.fns[0].body.is_some());
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let m = model("fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n");
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test);
        assert_eq!(m.test_ranges.len(), 2); // the mod and the fn body
    }

    #[test]
    fn impl_trait_detection() {
        let m = model(
            "impl<'a> Executor for GpuExec<'a> { fn go(&self) {} }\nimpl Plain { fn p() {} }",
        );
        assert_eq!(m.impls.len(), 2);
        assert_eq!(m.impls[0].trait_name.as_deref(), Some("Executor"));
        assert_eq!(m.impls[1].trait_name, None);
        assert_eq!(m.fns[0].impl_idx, Some(0));
        assert_eq!(m.fns[1].impl_idx, Some(1));
    }

    #[test]
    fn trait_default_methods_are_marked() {
        let m = model("trait T { fn d(&self) { x(); } fn s(&self); }\nfn free() {}");
        assert!(m.fns[0].in_trait_def);
        assert!(m.fns[1].in_trait_def);
        assert!(m.fns[1].body.is_none());
        assert!(!m.fns[2].in_trait_def);
    }

    #[test]
    fn allow_annotations_parse() {
        let m = model("// analyze: allow(panic, table is const non-empty)\nfn f() {}\n");
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].lint, "panic");
        assert!(m.allows[0].reason.contains("const"));
        assert!(m.allow_at("panic", 2).is_some());
        assert!(m.allow_at("determinism", 2).is_none());
        assert!(m.allow_at("panic", 2 + ALLOW_WINDOW + 1).is_none());
    }

    #[test]
    fn test_attr_marks_fn() {
        let m = model("#[test]\nfn t() { x.unwrap(); }\nfn lib() {}\n");
        assert!(m.fns[0].in_test);
        assert!(!m.fns[1].in_test);
    }

    #[test]
    fn impl_self_type_is_recorded() {
        let m = model(
            "impl<'a> Executor for GpuExec<'a> { }\n\
             impl<E: Executor> Executor for Recovering<E> { }\n\
             impl Plain { }\n\
             impl Trait for rlra_core::backend::ClusterExec where Self: Sized { }\n",
        );
        assert_eq!(m.impls[0].self_type.as_deref(), Some("GpuExec"));
        assert_eq!(m.impls[1].self_type.as_deref(), Some("Recovering"));
        assert_eq!(m.impls[1].trait_name.as_deref(), Some("Executor"));
        assert_eq!(m.impls[2].self_type.as_deref(), Some("Plain"));
        assert_eq!(m.impls[3].self_type.as_deref(), Some("ClusterExec"));
    }

    #[test]
    fn signature_details_are_recorded() {
        let m = model(
            "fn a() {}\n\
             fn b(x: usize, m: HashMap<K, V>) -> f64 { 0.0 }\n\
             fn c(&mut self, dims: [usize; 3]) -> Result<(), Error> { Ok(()) }\n\
             fn d<T: Fn(usize, usize) -> bool>(f: T) {}\n\
             trait T { fn e(&self, a: A, b: B); }\n",
        );
        let by = |n: &str| m.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by("a").param_count, 0);
        assert!(!by("a").has_return_type);
        assert!(by("a").returns_unit_or_result());
        assert_eq!(by("b").param_count, 2);
        assert!(by("b").has_return_type);
        assert!(!by("b").returns_result);
        assert!(!by("b").returns_unit_or_result());
        assert_eq!(by("c").param_count, 1);
        assert!(by("c").returns_result);
        assert!(by("c").returns_unit_or_result());
        assert_eq!(by("d").param_count, 1);
        assert!(!by("d").has_return_type);
        assert_eq!(by("e").param_count, 2);
        assert!(by("e").body.is_none());
    }

    #[test]
    fn use_declarations_flatten() {
        let m = model(
            "use rlra_gpu::algos::gpu_cholqr;\n\
             use rlra_core::backend::{Executor, cpu::CpuExec as Host, self};\n\
             use crate::lints::*;\n\
             fn f() {}\n",
        );
        let u = &m.uses;
        assert!(u.contains(&UseDecl {
            segments: vec!["rlra_gpu".into(), "algos".into(), "gpu_cholqr".into()],
            alias: "gpu_cholqr".into(),
        }));
        assert!(u.contains(&UseDecl {
            segments: vec!["rlra_core".into(), "backend".into(), "Executor".into()],
            alias: "Executor".into(),
        }));
        assert!(u.contains(&UseDecl {
            segments: vec![
                "rlra_core".into(),
                "backend".into(),
                "cpu".into(),
                "CpuExec".into(),
            ],
            alias: "Host".into(),
        }));
        assert!(u.contains(&UseDecl {
            segments: vec!["rlra_core".into(), "backend".into()],
            alias: "backend".into(),
        }));
        assert!(u.contains(&UseDecl {
            segments: vec!["crate".into(), "lints".into()],
            alias: "*".into(),
        }));
        // The import tokens stay in the stream for pattern lints.
        assert!(m.lexed.toks.iter().any(|t| t.is_ident("gpu_cholqr")));
    }
}
