//! Findings: what a lint reports, rendered as `file:line` diagnostics.

use std::fmt;
use std::path::PathBuf;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Lint name (`cost`, `determinism`, `panic`, `flops`, `allow`).
    pub lint: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// Sorts findings by (file, line, lint) for stable output.
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
}
