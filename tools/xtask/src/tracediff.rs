//! `cargo xtask tracediff` — the perf-regression gate.
//!
//! Aligns two telemetry JSON documents (a checked-in baseline and a
//! fresh run) series-by-series and reports the deltas. The documents
//! may be any of the workspace's export formats, detected by their top
//! keys:
//!
//! - **bench** (`"records"`) — repo-root `BENCH_*.json` written by
//!   `rlra-bench`: per-config `modeled_s` is gated, `wall_s` and the
//!   wall percentiles are informational (host noise) unless `--wall`;
//! - **hotpaths** (`"modeled"`) — `BENCH_hotpaths.json`: per-kernel
//!   modeled seconds/launches and per-phase seconds are gated, the
//!   `"wall"` block is informational unless `--wall`;
//! - **metrics** (`"devices"`) — `rlra_trace::metrics_json`: per-device
//!   busy/wait seconds, per-phase seconds, and per-kernel seconds are
//!   gated (all modeled);
//! - **chrome trace** (`"traceEvents"`) — summed `dur` per event name,
//!   gated.
//!
//! A series is a **regression** when it is gated and its value grew by
//! more than the threshold (default 10%); series that shrink, appear,
//! or disappear are reported but do not fail the gate (a new kernel is
//! a review concern, not a perf regression). Identical documents always
//! pass.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use rlra_trace::json::{parse_json, Json};

/// Default regression threshold, in percent.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// Gate options.
#[derive(Debug, Clone, Copy)]
pub struct DiffOpts {
    /// Fail when a gated series grows by more than this many percent.
    pub threshold_pct: f64,
    /// Gate wall-clock series too (off by default: host noise).
    pub wall: bool,
}

impl Default for DiffOpts {
    fn default() -> Self {
        DiffOpts {
            threshold_pct: DEFAULT_THRESHOLD_PCT,
            wall: false,
        }
    }
}

/// One extracted series: a value plus whether the gate applies to it.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Series {
    value: f64,
    gated: bool,
}

/// One aligned delta between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Series key, e.g. `kernel/gemm/seconds`.
    pub key: String,
    /// Baseline value (`None` when the series is new).
    pub base: Option<f64>,
    /// Current value (`None` when the series disappeared).
    pub cur: Option<f64>,
    /// Relative change in percent (`None` for added/removed series or a
    /// zero baseline with zero current).
    pub pct: Option<f64>,
    /// Whether this series grew past the threshold — a gate failure.
    pub regression: bool,
}

/// The aligned diff of two documents.
#[derive(Debug)]
pub struct DiffReport {
    /// Every aligned series, sorted by key; unchanged ones included.
    pub deltas: Vec<Delta>,
    /// Number of gate failures (`deltas` entries with `regression`).
    pub regressions: usize,
}

impl DiffReport {
    /// Renders the report for stderr: changed series first, then a
    /// one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let changed =
                d.pct.is_some_and(|p| p.abs() > 1e-9) || d.base.is_none() || d.cur.is_none();
            if !changed {
                continue;
            }
            let marker = if d.regression { "REGRESSION" } else { "info" };
            let _ = match (d.base, d.cur) {
                (Some(b), Some(c)) => writeln!(
                    out,
                    "  [{marker}] {}: {b:.6e} -> {c:.6e} ({:+.1}%)",
                    d.key,
                    d.pct.unwrap_or(0.0)
                ),
                (None, Some(c)) => writeln!(out, "  [{marker}] {}: added ({c:.6e})", d.key),
                (Some(b), None) => writeln!(out, "  [{marker}] {}: removed (was {b:.6e})", d.key),
                (None, None) => Ok(()),
            };
        }
        let _ = writeln!(
            out,
            "tracediff: {} series compared, {} regression(s)",
            self.deltas.len(),
            self.regressions
        );
        out
    }
}

/// Diffs two telemetry documents (JSON text).
///
/// # Errors
///
/// Returns a message when either document fails to parse or has an
/// unrecognized shape.
pub fn diff_docs(baseline: &str, current: &str, opts: &DiffOpts) -> Result<DiffReport, String> {
    let base = extract(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = extract(current).map_err(|e| format!("current: {e}"))?;

    let mut keys: Vec<&String> = base.keys().chain(cur.keys()).collect();
    keys.sort();
    keys.dedup();

    let mut deltas = Vec::new();
    let mut regressions = 0usize;
    for key in keys {
        let b = base.get(key);
        let c = cur.get(key);
        let gated = b.or(c).is_some_and(|s| s.gated || opts.wall);
        let (pct, regression) = match (b, c) {
            (Some(b), Some(c)) => {
                let pct = if b.value.abs() > 0.0 {
                    Some((c.value - b.value) / b.value * 100.0)
                } else if c.value.abs() > 0.0 {
                    Some(f64::INFINITY)
                } else {
                    None
                };
                let reg = gated && pct.is_some_and(|p| p > opts.threshold_pct);
                (pct, reg)
            }
            _ => (None, false),
        };
        regressions += usize::from(regression);
        deltas.push(Delta {
            key: key.clone(),
            base: b.map(|s| s.value),
            cur: c.map(|s| s.value),
            pct,
            regression,
        });
    }
    Ok(DiffReport {
        deltas,
        regressions,
    })
}

/// Parses a document and extracts its comparable series.
fn extract(doc: &str) -> Result<BTreeMap<String, Series>, String> {
    let j = parse_json(doc)?;
    if j.get("records").is_some() {
        Ok(extract_bench(&j))
    } else if j.get("modeled").is_some() {
        Ok(extract_hotpaths(&j))
    } else if j.get("devices").is_some() {
        Ok(extract_metrics(&j))
    } else if j.get("traceEvents").is_some() {
        Ok(extract_chrome(&j))
    } else {
        Err(
            "unrecognized document shape (expected one of: bench `records`, \
             hotpaths `modeled`, metrics `devices`, chrome `traceEvents`)"
                .to_string(),
        )
    }
}

/// Object members, when `j` is an object.
fn members(j: &Json) -> &[(String, Json)] {
    match j {
        Json::Obj(m) => m,
        _ => &[],
    }
}

fn extract_bench(j: &Json) -> BTreeMap<String, Series> {
    let mut out = BTreeMap::new();
    for rec in j.get("records").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(config) = rec.get("config").and_then(Json::as_str) else {
            continue;
        };
        for (field, gated) in [
            ("modeled_s", true),
            ("wall_s", false),
            ("wall_p50", false),
            ("wall_p99", false),
            ("wall_p999", false),
        ] {
            if let Some(v) = rec.get(field).and_then(Json::as_num) {
                out.insert(
                    format!("bench/{config}/{field}"),
                    Series { value: v, gated },
                );
            }
        }
    }
    out
}

fn extract_hotpaths(j: &Json) -> BTreeMap<String, Series> {
    let mut out = BTreeMap::new();
    let modeled = j.get("modeled");
    for (kernel, stats) in modeled
        .and_then(|m| m.get("kernels"))
        .map_or(&[][..], members)
    {
        for (field, v) in members(stats) {
            if let Some(v) = v.as_num() {
                out.insert(
                    format!("kernel/{kernel}/{field}"),
                    Series {
                        value: v,
                        gated: true,
                    },
                );
            }
        }
    }
    for (phase, v) in modeled
        .and_then(|m| m.get("phases"))
        .map_or(&[][..], members)
    {
        if let Some(v) = v.as_num() {
            out.insert(
                format!("phase/{phase}"),
                Series {
                    value: v,
                    gated: true,
                },
            );
        }
    }
    for (series, stats) in j.get("wall").map_or(&[][..], members) {
        for (field, v) in members(stats) {
            if let Some(v) = v.as_num() {
                out.insert(
                    format!("wall/{series}/{field}"),
                    Series {
                        value: v,
                        gated: false,
                    },
                );
            }
        }
    }
    out
}

fn extract_metrics(j: &Json) -> BTreeMap<String, Series> {
    let mut out = BTreeMap::new();
    for dev in j.get("devices").and_then(Json::as_arr).unwrap_or(&[]) {
        let id = dev
            .get("device")
            .and_then(Json::as_num)
            .map_or_else(|| "?".to_string(), |d| format!("{d}"));
        for field in ["busy_seconds", "wait_seconds", "bytes_moved"] {
            if let Some(v) = dev.get(field).and_then(Json::as_num) {
                out.insert(
                    format!("device/{id}/{field}"),
                    Series {
                        value: v,
                        gated: true,
                    },
                );
            }
        }
        for (phase, v) in dev.get("phase_seconds").map_or(&[][..], members) {
            if let Some(v) = v.as_num() {
                let key = format!("device/{id}/phase/{phase}");
                out.insert(
                    key,
                    Series {
                        value: v,
                        gated: true,
                    },
                );
            }
        }
        for (kernel, stats) in dev.get("kernels").map_or(&[][..], members) {
            for field in ["seconds", "launches", "flops"] {
                if let Some(v) = stats.get(field).and_then(Json::as_num) {
                    out.insert(
                        format!("device/{id}/kernel/{kernel}/{field}"),
                        Series {
                            value: v,
                            gated: true,
                        },
                    );
                }
            }
        }
    }
    out
}

fn extract_chrome(j: &Json) -> BTreeMap<String, Series> {
    let mut out: BTreeMap<String, Series> = BTreeMap::new();
    for ev in j.get("traceEvents").and_then(Json::as_arr).unwrap_or(&[]) {
        let (Some(name), Some(dur)) = (
            ev.get("name").and_then(Json::as_str),
            ev.get("dur").and_then(Json::as_num),
        ) else {
            continue;
        };
        out.entry(format!("event/{name}/dur_us"))
            .or_insert(Series {
                value: 0.0,
                gated: true,
            })
            .value += dur;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH: &str = r#"{
        "bench": "adaptive", "schema_version": 2,
        "records": [
            { "config": "a/restart", "wall_s": 0.04, "modeled_s": 0.0030 },
            { "config": "a/incremental", "wall_s": 0.05, "modeled_s": 0.0050 }
        ]
    }"#;

    #[test]
    fn identical_documents_pass_clean() {
        let rep = diff_docs(BENCH, BENCH, &DiffOpts::default()).unwrap();
        assert_eq!(rep.regressions, 0);
        assert_eq!(rep.deltas.len(), 4);
        assert!(rep.deltas.iter().all(|d| d.pct == Some(0.0)));
    }

    #[test]
    fn seeded_regression_fails_the_gate_and_wall_noise_does_not() {
        // modeled_s of one config grows 66% (gated); wall_s doubles
        // (informational).
        let cur = BENCH
            .replace("0.0030", "0.0050")
            .replace("\"wall_s\": 0.04", "\"wall_s\": 0.08");
        let rep = diff_docs(BENCH, &cur, &DiffOpts::default()).unwrap();
        assert_eq!(rep.regressions, 1, "{:#?}", rep.deltas);
        let reg = rep.deltas.iter().find(|d| d.regression).unwrap();
        assert_eq!(reg.key, "bench/a/restart/modeled_s");
        // --wall arms the host-time series too.
        let rep = diff_docs(
            BENCH,
            &cur,
            &DiffOpts {
                wall: true,
                ..DiffOpts::default()
            },
        )
        .unwrap();
        assert_eq!(rep.regressions, 2);
    }

    #[test]
    fn improvements_and_small_drifts_pass() {
        let cur = BENCH
            .replace("0.0030", "0.0010") // large improvement
            .replace("0.0050", "0.00052"); // +4%, under the 10% gate
        let rep = diff_docs(BENCH, &cur, &DiffOpts::default()).unwrap();
        assert_eq!(rep.regressions, 0, "{:#?}", rep.deltas);
    }

    #[test]
    fn metrics_documents_align_kernels_and_phases() {
        let base = r#"{"retries":0,"fallbacks":0,"total_launches":3,"recovery_seconds":0,
            "devices":[{"device":0,"name":"K40c","launches":3,"syncs":1,
              "busy_seconds":1.0,"wait_seconds":0.1,"bytes_moved":8.0,
              "peak_gflops":1430,"peak_gbs":288,"utilization":0.9,
              "phase_seconds":{"Sample":0.6,"Factor":0.4},
              "kernels":{"gemm":{"launches":2,"seconds":0.8,"flops":1e9,"bytes":4.0,"gflops":1.2,"gbs":0.1}}}]}"#;
        let cur = base.replace("\"seconds\":0.8", "\"seconds\":1.2");
        let rep = diff_docs(base, &cur, &DiffOpts::default()).unwrap();
        assert_eq!(rep.regressions, 1, "{:#?}", rep.deltas);
        assert!(rep
            .deltas
            .iter()
            .any(|d| d.key == "device/0/kernel/gemm/seconds" && d.regression));
    }

    #[test]
    fn chrome_traces_sum_dur_per_name() {
        let base = r#"{"traceEvents":[
            {"name":"gemm","ph":"X","ts":0,"dur":5.0},
            {"name":"gemm","ph":"X","ts":10,"dur":5.0},
            {"name":"syrk","ph":"X","ts":20,"dur":2.0}]}"#;
        let cur = base.replace("\"dur\":2.0", "\"dur\":4.0");
        let rep = diff_docs(base, &cur, &DiffOpts::default()).unwrap();
        assert_eq!(rep.regressions, 1);
        assert!(rep
            .deltas
            .iter()
            .any(|d| d.key == "event/syrk/dur_us" && d.regression));
        assert!(rep
            .deltas
            .iter()
            .any(|d| d.key == "event/gemm/dur_us" && d.pct == Some(0.0)));
    }

    #[test]
    fn added_and_removed_series_inform_but_do_not_gate() {
        let cur = BENCH.replace("a/incremental", "b/incremental");
        let rep = diff_docs(BENCH, &cur, &DiffOpts::default()).unwrap();
        assert_eq!(rep.regressions, 0, "{:#?}", rep.deltas);
        assert!(rep.deltas.iter().any(|d| d.base.is_none()));
        assert!(rep.deltas.iter().any(|d| d.cur.is_none()));
    }

    #[test]
    fn unrecognized_shapes_error() {
        assert!(diff_docs("{\"x\":1}", "{\"x\":1}", &DiffOpts::default()).is_err());
        assert!(diff_docs("not json", "{}", &DiffOpts::default()).is_err());
    }
}
