//! # rlra-analyze
//!
//! Repo-specific static analysis for the rlra workspace, run as
//! `cargo xtask analyze`. Six invariants the compiler cannot see:
//!
//! 1. **cost** — every simulated GPU kernel and every Executor stage
//!    hook charges the analytic cost model (no free kernels).
//! 2. **determinism** — no wall clock / entropy in library crates; the
//!    simulated clock and seeded RNGs are the only legal sources.
//! 3. **panic** — no `unwrap`/`expect`/`panic!`/`todo!` in the serving
//!    crates' library code; errors are `MatrixError` returns.
//! 4. **flops** — every BLAS level-2/3 routine has a flop formula in
//!    `rlra-blas::flops`.
//! 5. **trace** — every clock/timeline charging site in `rlra-gpu`
//!    also emits a trace event, so the event stream stays complete
//!    and the golden-trace reconciliation holds.
//! 6. **numerics** — every CholQR call site in library code goes
//!    through the `NumericGuard` fallback ladder (counted, traced,
//!    policy-controlled), so breakdowns can neither abort a rescuable
//!    run nor escalate silently.
//!
//! Deliberate exceptions carry `// analyze: allow(lint, reason)` on or
//! just above the offending line; an allow without a reason is itself
//! reported. The analyzer is dependency-free (the build container is
//! offline): a small hand-rolled lexer + item scanner stand in for
//! `syn`, which is all these token-shaped invariants need.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lex;
pub mod lints;
pub mod scan;
pub mod workspace;

use diag::Finding;
use scan::FileModel;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Loads and scans every file a lint needs, keyed by absolute path,
/// reporting paths relative to `root`.
struct Loader {
    root: PathBuf,
    cache: BTreeMap<PathBuf, FileModel>,
}

impl Loader {
    fn new(root: &Path) -> Self {
        Loader {
            root: root.to_path_buf(),
            cache: BTreeMap::new(),
        }
    }

    fn load(&mut self, path: &Path) -> Result<&FileModel, String> {
        if !self.cache.contains_key(path) {
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(&self.root)
                .map(Path::to_path_buf)
                .unwrap_or_else(|_| path.to_path_buf());
            self.cache
                .insert(path.to_path_buf(), FileModel::new(rel, &src));
        }
        Ok(&self.cache[path])
    }

    fn load_all(&mut self, paths: &[PathBuf]) -> Result<(), String> {
        for p in paths {
            self.load(p)?;
        }
        Ok(())
    }

    fn get_all(&self, paths: &[PathBuf]) -> Vec<&FileModel> {
        paths.iter().filter_map(|p| self.cache.get(p)).collect()
    }
}

/// Runs all six lints (plus the allow-reason check) on the workspace
/// at `root`. Returns the sorted findings; empty means clean.
///
/// # Errors
///
/// Returns a message when a source file cannot be read.
pub fn analyze(root: &Path) -> Result<Vec<Finding>, String> {
    let mut loader = Loader::new(root);

    let det_paths = workspace::determinism_files(root);
    let trace_paths = workspace::trace_files(root);
    let panic_paths = workspace::panic_files(root);
    let graph_paths = workspace::cost_graph_files(root);
    let algo_paths = workspace::cost_algo_files(root);
    let exec_paths = workspace::cost_executor_files(root);
    let routine_paths = workspace::flops_routine_files(root);
    let flops_path = workspace::flops_file(root);
    let numerics_paths = workspace::numerics_files(root);

    loader.load_all(&det_paths)?;
    loader.load_all(&trace_paths)?;
    loader.load_all(&panic_paths)?;
    loader.load_all(&graph_paths)?;
    loader.load_all(&algo_paths)?;
    loader.load_all(&exec_paths)?;
    loader.load_all(&routine_paths)?;
    loader.load(&flops_path)?;
    loader.load_all(&numerics_paths)?;

    let mut findings = Vec::new();
    for f in loader.get_all(&det_paths) {
        findings.extend(lints::determinism::check(f));
    }
    for f in loader.get_all(&panic_paths) {
        findings.extend(lints::panics::check(f));
    }
    for f in loader.get_all(&trace_paths) {
        findings.extend(lints::trace::check(f));
    }
    findings.extend(lints::cost::check(
        &loader.get_all(&algo_paths),
        &loader.get_all(&exec_paths),
        &loader.get_all(&graph_paths),
    ));
    findings.extend(lints::flops::check(
        &loader.get_all(&routine_paths),
        &loader.cache[&flops_path],
    ));
    for f in loader.get_all(&numerics_paths) {
        findings.extend(lints::numerics::check(f));
    }
    for f in loader.cache.values() {
        findings.extend(lints::check_allow_reasons(f));
    }

    diag::sort(&mut findings);
    findings.dedup();
    Ok(findings)
}
