//! # rlra-analyze
//!
//! Repo-specific static analysis for the rlra workspace, run as
//! `cargo xtask analyze`. Ten invariants the compiler cannot see:
//!
//! 1. **cost** — every simulated GPU kernel and every Executor stage
//!    hook *reaches* a cost-model charge, directly or through any
//!    callee on the whole-workspace call graph (no free kernels).
//! 2. **determinism** — no wall clock / entropy in library crates; the
//!    simulated clock and seeded RNGs are the only legal sources. An
//!    `allow(determinism, ..)` is site-local: callers that reach an
//!    allowed carrier need their own allow (flow layer, on the graph).
//! 3. **panic** — no `unwrap`/`expect`/`panic!`/`todo!` in the serving
//!    crates' library code; errors are `MatrixError` returns.
//! 4. **flops** — every BLAS level-2/3 routine has a flop formula in
//!    `rlra-blas::flops`.
//! 5. **trace** — every clock/timeline charging site in `rlra-gpu`
//!    reaches a trace emit (directly or through callees), so the event
//!    stream stays complete and the golden-trace reconciliation holds.
//! 6. **numerics** — every CholQR call site in library code goes
//!    through the `NumericGuard` fallback ladder (counted, traced,
//!    policy-controlled), so breakdowns can neither abort a rescuable
//!    run nor escalate silently.
//! 7. **hook_parity** — every silently-defaulted `Executor` hook is
//!    implemented on all four backends (cpu/gpu/multi/cluster), so a
//!    deleted backend impl cannot make its work free.
//! 8. **flops_sig** — every `charge_kernel` site prices with the
//!    cost-model method its kernel name demands, at the model's arity,
//!    with dims wiring that agrees (no gemm charged as trsm).
//! 9. **discard** — no `let _ = ..` and no dropped `Result` statements
//!    on the serving path; a swallowed error defeats the
//!    breakdown-recovery ladder.
//! 10. **metrics** — telemetry record sites name their series through
//!     the registered `obs::names` table (which stays complete), and
//!     the wall-clock funnel — the one determinism exemption — keeps a
//!     time-opaque public surface, so wall time flows into the registry
//!     and never out.
//!
//! Deliberate exceptions carry `// analyze: allow(lint, reason)` on or
//! just above the offending line; an allow without a reason is itself
//! reported. The analyzer is dependency-free (the build container is
//! offline): a small hand-rolled lexer + item scanner stand in for
//! `syn`, and [`graph`] builds the interprocedural layer on top of
//! them. Files load in parallel ([`par`], over `rayon::join`); pass
//! [`Options::serial`] to force the sequential path (the findings are
//! identical — order is restored by the final sort either way).
//!
//! Output formats: human diagnostics, versioned JSON, and SARIF 2.1.0
//! ([`output`]); regression gating against a checked-in baseline
//! ([`baseline`]). The binary also hosts `cargo xtask tracediff`
//! ([`tracediff`]) — the telemetry perf gate that aligns two
//! metrics/bench/Chrome-trace JSON exports and fails on modeled-time
//! regressions past a threshold.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod diag;
pub mod graph;
pub mod lex;
pub mod lints;
pub mod output;
pub mod par;
pub mod resolve;
pub mod scan;
pub mod tracediff;
pub mod workspace;

use diag::Finding;
use graph::Graph;
use scan::FileModel;
use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::time::Instant;
use workspace::Scope;

/// Analyzer knobs.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Load and scan files sequentially instead of via `rayon::join`
    /// (for the parallel==serial equivalence check and debugging).
    pub serial: bool,
}

/// An analysis run: the findings plus per-phase wall time.
#[derive(Debug)]
pub struct Analysis {
    /// Sorted, deduplicated findings; empty means clean.
    pub findings: Vec<Finding>,
    /// `(phase, seconds)` — file loading, graph construction, and each
    /// lint, in execution order.
    pub timings: Vec<(String, f64)>,
}

/// All scanned files, keyed by absolute path, reporting
/// workspace-relative paths.
struct Loaded {
    cache: BTreeMap<PathBuf, FileModel>,
}

impl Loaded {
    /// Loads every path (absolute), in parallel unless `serial`.
    fn load(root: &Path, paths: &[PathBuf], serial: bool) -> Result<Self, String> {
        let one = |p: &PathBuf| -> Result<FileModel, String> {
            let src = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            let rel = p
                .strip_prefix(root)
                .map(Path::to_path_buf)
                .unwrap_or_else(|_| p.clone());
            Ok(FileModel::new(rel, &src))
        };
        let models: Vec<Result<FileModel, String>> = if serial {
            paths.iter().map(one).collect()
        } else {
            par::par_map(paths, &one)
        };
        let mut cache = BTreeMap::new();
        for (p, m) in paths.iter().zip(models) {
            cache.insert(p.clone(), m?);
        }
        Ok(Loaded { cache })
    }

    fn get_all(&self, paths: &[PathBuf]) -> Vec<&FileModel> {
        paths.iter().filter_map(|p| self.cache.get(p)).collect()
    }
}

/// Runs all ten lints (plus the allow-reason check) on the workspace
/// at `root`. Returns the sorted findings; empty means clean.
///
/// # Errors
///
/// Returns a message when a source file cannot be read.
pub fn analyze(root: &Path) -> Result<Vec<Finding>, String> {
    analyze_with(root, &Options::default()).map(|a| a.findings)
}

/// [`analyze`], with knobs and per-phase timings.
///
/// # Errors
///
/// Returns a message when a source file cannot be read.
pub fn analyze_with(root: &Path, opts: &Options) -> Result<Analysis, String> {
    let mut timings: Vec<(String, f64)> = Vec::new();
    let timed = |timings: &mut Vec<(String, f64)>, phase: &str, t0: Instant| {
        timings.push((phase.to_string(), t0.elapsed().as_secs_f64()));
    };

    // One union load over every scope (the graph scope is a superset,
    // but scopes outside `crates/` — none today — would extend it).
    let t0 = Instant::now();
    let scope_paths = |s: Scope| workspace::files_for(root, s);
    let det_paths = scope_paths(Scope::Determinism);
    let panic_paths = scope_paths(Scope::Panic);
    let trace_paths = scope_paths(Scope::Trace);
    let numerics_paths = scope_paths(Scope::Numerics);
    let algo_paths = scope_paths(Scope::CostAlgos);
    let exec_paths = scope_paths(Scope::CostExecutors);
    let routine_paths = scope_paths(Scope::FlopsRoutines);
    let formula_paths = scope_paths(Scope::FlopsFormulas);
    let discard_paths = scope_paths(Scope::Discard);
    let parity_paths = scope_paths(Scope::HookParity);
    let flops_sig_paths = scope_paths(Scope::FlopsSig);
    let metrics_paths = scope_paths(Scope::Metrics);
    let metrics_names_paths = scope_paths(Scope::MetricsNames);
    let graph_paths = scope_paths(Scope::Graph);

    let mut union: Vec<PathBuf> = Vec::new();
    for set in [
        &det_paths,
        &panic_paths,
        &trace_paths,
        &numerics_paths,
        &algo_paths,
        &exec_paths,
        &routine_paths,
        &formula_paths,
        &discard_paths,
        &parity_paths,
        &flops_sig_paths,
        &metrics_paths,
        &metrics_names_paths,
        &graph_paths,
    ] {
        union.extend(set.iter().cloned());
    }
    union.sort();
    union.dedup();
    let loaded = Loaded::load(root, &union, opts.serial)?;
    timed(&mut timings, "load", t0);

    let t0 = Instant::now();
    let graph = Graph::build(loaded.get_all(&graph_paths));
    timed(&mut timings, "graph", t0);

    let mut findings = Vec::new();

    let t0 = Instant::now();
    for f in loaded.get_all(&det_paths) {
        findings.extend(lints::determinism::check(f));
    }
    let det_scope: HashSet<&Path> = loaded
        .get_all(&det_paths)
        .iter()
        .map(|f| f.path.as_path())
        .collect();
    findings.extend(lints::determinism::check_flow(&graph, &det_scope));
    timed(&mut timings, "determinism", t0);

    let t0 = Instant::now();
    for f in loaded.get_all(&panic_paths) {
        findings.extend(lints::panics::check(f));
    }
    timed(&mut timings, "panic", t0);

    let t0 = Instant::now();
    findings.extend(lints::trace::check(&graph, &loaded.get_all(&trace_paths)));
    timed(&mut timings, "trace", t0);

    let t0 = Instant::now();
    findings.extend(lints::cost::check(
        &graph,
        &loaded.get_all(&algo_paths),
        &loaded.get_all(&exec_paths),
    ));
    timed(&mut timings, "cost", t0);

    let t0 = Instant::now();
    if let Some(formulas) = formula_paths.first().and_then(|p| loaded.cache.get(p)) {
        findings.extend(lints::flops::check(
            &loaded.get_all(&routine_paths),
            formulas,
        ));
    }
    timed(&mut timings, "flops", t0);

    let t0 = Instant::now();
    for f in loaded.get_all(&numerics_paths) {
        findings.extend(lints::numerics::check(f));
    }
    timed(&mut timings, "numerics", t0);

    let t0 = Instant::now();
    findings.extend(lints::hook_parity::check(&loaded.get_all(&parity_paths)));
    timed(&mut timings, "hook_parity", t0);

    let t0 = Instant::now();
    findings.extend(lints::flops_sig::check(&loaded.get_all(&flops_sig_paths)));
    timed(&mut timings, "flops_sig", t0);

    let t0 = Instant::now();
    findings.extend(lints::discard::check(
        &graph,
        &loaded.get_all(&discard_paths),
    ));
    timed(&mut timings, "discard", t0);

    let t0 = Instant::now();
    let names_file = metrics_names_paths
        .first()
        .and_then(|p| loaded.cache.get(p));
    findings.extend(lints::metrics::check(
        &loaded.get_all(&metrics_paths),
        names_file,
    ));
    timed(&mut timings, "metrics", t0);

    let t0 = Instant::now();
    for f in loaded.cache.values() {
        findings.extend(lints::check_allow_reasons(f));
    }
    timed(&mut timings, "allow", t0);

    diag::sort(&mut findings);
    findings.dedup();
    Ok(Analysis { findings, timings })
}
