//! Baseline diffing: `cargo xtask analyze --diff` compares the current
//! findings against the checked-in baseline
//! (`tools/xtask/analyze-baseline.json`) and fails only on
//! *regressions* — findings not present in the baseline. Keys are the
//! `(file, lint, message)` triple **without** line numbers, so
//! unrelated edits that shift code around don't churn the baseline.
//!
//! The intended steady state is an empty baseline (the workspace is
//! clean); the mechanism exists so a genuinely hard-to-fix finding can
//! be parked deliberately — visible in review as a baseline edit —
//! instead of blocking every CI run or being waved off with a
//! low-quality allow.

use crate::diag::Finding;
use crate::output::Record;
use std::collections::HashMap;
use std::path::Path;

/// The workspace-relative location of the checked-in baseline.
pub const BASELINE_PATH: &str = "tools/xtask/analyze-baseline.json";

/// A baseline comparison: what regressed and what got fixed.
#[derive(Debug, Default)]
pub struct Diff {
    /// Findings not covered by the baseline (failures).
    pub regressions: Vec<Record>,
    /// Baseline entries no longer observed (informational — the
    /// baseline can be shrunk).
    pub fixed: Vec<Record>,
}

fn key(r: &Record) -> (String, String, String) {
    (r.file.clone(), r.lint.clone(), r.message.clone())
}

/// Multiset-diffs `current` findings against `baseline` records.
pub fn diff(current: &[Finding], baseline: &[Record]) -> Diff {
    let mut pool: HashMap<(String, String, String), usize> = HashMap::new();
    for b in baseline {
        *pool.entry(key(b)).or_insert(0) += 1;
    }
    let mut out = Diff::default();
    for f in current {
        let r = Record::from(f);
        match pool.get_mut(&key(&r)) {
            Some(n) if *n > 0 => *n -= 1,
            _ => out.regressions.push(r),
        }
    }
    // Whatever remains unconsumed in the pool was fixed.
    for b in baseline {
        if let Some(n) = pool.get_mut(&key(b)) {
            if *n > 0 {
                *n -= 1;
                out.fixed.push(b.clone());
            }
        }
    }
    out
}

/// Loads the baseline file (analyzer JSON).
///
/// # Errors
///
/// Returns a message when the file is unreadable or malformed.
pub fn load(path: &Path) -> Result<Vec<Record>, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    crate::output::from_json(&src).map_err(|e| format!("{}: {e}", path.display()))
}

/// Writes `findings` as a fresh baseline.
///
/// # Errors
///
/// Returns a message when the file cannot be written.
pub fn write(path: &Path, findings: &[Finding]) -> Result<(), String> {
    std::fs::write(path, crate::output::to_json(findings, None))
        .map_err(|e| format!("cannot write baseline {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn finding(file: &str, line: u32, lint: &'static str, message: &str) -> Finding {
        Finding {
            file: PathBuf::from(file),
            line,
            lint,
            message: message.to_string(),
        }
    }

    #[test]
    fn line_shifts_do_not_regress() {
        let baseline = vec![Record {
            file: "a.rs".into(),
            line: 10,
            lint: "cost".into(),
            message: "free kernel".into(),
        }];
        let current = vec![finding("a.rs", 99, "cost", "free kernel")];
        let d = diff(&current, &baseline);
        assert!(d.regressions.is_empty());
        assert!(d.fixed.is_empty());
    }

    #[test]
    fn new_findings_regress_and_fixed_ones_surface() {
        let baseline = vec![Record {
            file: "a.rs".into(),
            line: 1,
            lint: "cost".into(),
            message: "old".into(),
        }];
        let current = vec![finding("b.rs", 2, "trace", "new")];
        let d = diff(&current, &baseline);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].file, "b.rs");
        assert_eq!(d.fixed.len(), 1);
        assert_eq!(d.fixed[0].file, "a.rs");
    }

    #[test]
    fn duplicates_are_multiset_counted() {
        let baseline = vec![Record {
            file: "a.rs".into(),
            line: 1,
            lint: "cost".into(),
            message: "dup".into(),
        }];
        let current = vec![
            finding("a.rs", 1, "cost", "dup"),
            finding("a.rs", 2, "cost", "dup"),
        ];
        let d = diff(&current, &baseline);
        assert_eq!(d.regressions.len(), 1); // second copy is new
    }
}
