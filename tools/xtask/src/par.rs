//! Order-preserving parallel map over slices, built on `rayon::join`
//! divide-and-conquer (the only primitive the offline rayon stub
//! provides — under the stub both halves run sequentially, so the
//! analyzer behaves identically with or without real parallelism).

/// Below this length the split overhead outweighs the win.
const THRESHOLD: usize = 8;

/// Maps `f` over `items`, splitting recursively across rayon workers.
/// The output order matches the input order regardless of scheduling.
pub fn par_map<T, U, F>(items: &[T], f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.len() <= THRESHOLD {
        return items.iter().map(f).collect();
    }
    let (lo, hi) = items.split_at(items.len() / 2);
    let (mut left, right) = rayon::join(|| par_map(lo, f), || par_map(hi, f));
    left.extend(right);
    left
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_preserved_across_the_threshold() {
        for n in [0usize, 1, THRESHOLD, THRESHOLD + 1, 100] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map(&items, &|x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }
}
