//! Whole-workspace call graph: one pass over every library
//! [`FileModel`], `use`-aware call resolution, and transitive
//! reachability facts (charges, trace emits, entropy carriers) with
//! cycle handling.
//!
//! Resolution is *precise-first*: a free call prefers a same-file
//! definition, then an exact `use`-imported path, and only then falls
//! back to the global name match; method calls (no receiver types
//! without a type system) always take the global union of same-named
//! functions. The fallback is deliberately permissive — the lints built
//! on the graph hunt *missing* obligations (free kernels, untraced
//! charges), where a false "satisfied" on a shared name is far cheaper
//! than drowning the signal in false positives.

use crate::lints::determinism::{carriers_in, Carrier};
use crate::resolve::{module_path, normalize_use, use_for_alias, ModulePath};
use crate::scan::{FileModel, FnInfo};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};

/// Index of a function node in [`Graph::nodes`].
pub type NodeId = usize;

/// Whether a callee name is a direct cost-model charge.
pub fn is_charge_name(name: &str) -> bool {
    name == "charge" || name.starts_with("charge_")
}

/// Whether a callee name counts as feeding the tracer.
pub fn is_emit_name(name: &str) -> bool {
    name == "emit" || name.starts_with("trace")
}

/// Keywords that can precede `(` without being calls.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "move", "else", "let", "mut", "ref",
    "unsafe", "as", "fn", "impl", "dyn", "where", "break", "continue", "await", "async", "pub",
    "use", "crate", "super",
];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (the identifier before `(`).
    pub name: String,
    /// Nearest `::` qualifier segment (`cost` in `cost::gemm(..)`,
    /// `Self` in `Self::helper(..)`), if any.
    pub qual: Option<String>,
    /// Whether the call is a method call (`recv.name(..)`).
    pub is_method: bool,
    /// Token index of the callee identifier in the file's stream.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
}

/// A function in the graph with its locally computed facts.
#[derive(Debug)]
pub struct Node {
    /// Index into [`Graph::files`].
    pub file: usize,
    /// Index into that file's [`FileModel::fns`].
    pub fn_idx: usize,
    /// Function name (for diagnostics and name-keyed resolution).
    pub name: String,
    /// Body calls `charge(..)` / `charge_*(..)` directly.
    pub direct_charge: bool,
    /// Body refuses with `MatrixError::Unsupported` (refused work is
    /// not free work — it never runs).
    pub direct_refusal: bool,
    /// Body calls `emit(..)` / `trace*(..)` directly.
    pub direct_emit: bool,
    /// First clock/timeline accumulation site in the body, if any
    /// (`<..>timeline.add(`, `clock +=`, `comms_inter +=`).
    pub trace_charge_line: Option<u32>,
    /// Entropy/wall-clock tokens in the body.
    pub carriers: Vec<Carrier>,
    /// Call sites, in body order.
    pub calls: Vec<CallSite>,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct Graph<'a> {
    /// The indexed files.
    pub files: Vec<&'a FileModel>,
    /// Crate/module location of each file (parallel to `files`).
    pub modules: Vec<ModulePath>,
    /// All non-test function nodes.
    pub nodes: Vec<Node>,
    node_at: HashMap<(PathBuf, usize), NodeId>,
    by_name: HashMap<String, Vec<NodeId>>,
    by_file_name: HashMap<(usize, String), Vec<NodeId>>,
    file_by_abs: HashMap<Vec<String>, Vec<usize>>,
    edges: Vec<Vec<NodeId>>,
    reach_charge: Vec<bool>,
    reach_emit: Vec<bool>,
    entropy_src: Vec<Option<NodeId>>,
}

/// Extracts the body facts of one function.
fn body_facts(file: &FileModel, f: &FnInfo) -> Option<Node> {
    let body = f.body.clone()?;
    let toks = &file.lexed.toks;
    let mut node = Node {
        file: 0,
        fn_idx: 0,
        name: f.name.clone(),
        direct_charge: false,
        direct_refusal: false,
        direct_emit: false,
        trace_charge_line: None,
        carriers: carriers_in(file, body.clone()),
        calls: Vec::new(),
    };
    for i in body.clone() {
        let t = &toks[i];
        if t.kind != crate::lex::TokKind::Ident {
            continue;
        }
        if t.text == "Unsupported" {
            node.direct_refusal = true;
        }
        let at = |k: usize| toks.get(i + k).filter(|_| body.contains(&(i + k)));
        // Trace charging sites: `<..>timeline.add(`, `clock +=`,
        // `comms_inter +=`.
        let timeline_add = t.text.ends_with("timeline")
            && at(1).map(|t| t.is_punct('.')).unwrap_or(false)
            && at(2).map(|t| t.is_ident("add")).unwrap_or(false)
            && at(3).map(|t| t.is_punct('(')).unwrap_or(false);
        let accum_add = (t.text == "clock" || t.text == "comms_inter")
            && at(1).map(|t| t.is_punct('+')).unwrap_or(false)
            && at(2).map(|t| t.is_punct('=')).unwrap_or(false);
        if (timeline_add || accum_add) && node.trace_charge_line.is_none() {
            node.trace_charge_line = Some(t.line);
        }
        // Calls: identifier directly followed by `(`.
        if !at(1).map(|t| t.is_punct('(')).unwrap_or(false) {
            continue;
        }
        if NON_CALL_IDENTS.contains(&t.text.as_str()) {
            continue;
        }
        if is_charge_name(&t.text) {
            node.direct_charge = true;
        }
        if is_emit_name(&t.text) {
            node.direct_emit = true;
        }
        let prev = |k: usize| {
            (i >= k)
                .then(|| &toks[i - k])
                .filter(|_| i - k >= body.start)
        };
        let is_method = prev(1).map(|t| t.is_punct('.')).unwrap_or(false);
        let qual = if prev(1).map(|t| t.is_punct(':')).unwrap_or(false)
            && prev(2).map(|t| t.is_punct(':')).unwrap_or(false)
        {
            prev(3)
                .filter(|t| t.kind == crate::lex::TokKind::Ident)
                .map(|t| t.text.clone())
        } else {
            None
        };
        node.calls.push(CallSite {
            name: t.text.clone(),
            qual,
            is_method,
            tok: i,
            line: t.line,
        });
    }
    Some(node)
}

impl<'a> Graph<'a> {
    /// Builds the graph over `files` (library sources, already scanned).
    pub fn build(files: Vec<&'a FileModel>) -> Self {
        let modules: Vec<ModulePath> = files.iter().map(|f| module_path(&f.path)).collect();

        let mut nodes: Vec<Node> = Vec::new();
        let mut node_at = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ji, f) in file.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let Some(mut node) = body_facts(file, f) else {
                    continue;
                };
                node.file = fi;
                node.fn_idx = ji;
                node_at.insert((file.path.clone(), ji), nodes.len());
                nodes.push(node);
            }
        }

        // Name indices for resolution.
        let mut by_name: HashMap<String, Vec<NodeId>> = HashMap::new();
        let mut by_file_name: HashMap<(usize, String), Vec<NodeId>> = HashMap::new();
        for (id, node) in nodes.iter().enumerate() {
            by_name.entry(node.name.clone()).or_default().push(id);
            by_file_name
                .entry((node.file, node.name.clone()))
                .or_default()
                .push(id);
        }
        let mut file_by_abs: HashMap<Vec<String>, Vec<usize>> = HashMap::new();
        for (fi, m) in modules.iter().enumerate() {
            file_by_abs.entry(m.abs()).or_default().push(fi);
        }

        let mut graph = Graph {
            files,
            modules,
            nodes,
            node_at,
            by_name,
            by_file_name,
            file_by_abs,
            edges: Vec::new(),
            reach_charge: Vec::new(),
            reach_emit: Vec::new(),
            entropy_src: Vec::new(),
        };

        let edges: Vec<Vec<NodeId>> = graph
            .nodes
            .iter()
            .map(|node| {
                let mut out: Vec<NodeId> = node
                    .calls
                    .iter()
                    .flat_map(|c| graph.resolve_call(node.file, c))
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        graph.edges = edges;

        // Reverse-BFS reachability from seed sets (cycle-safe: each
        // node is enqueued at most once).
        let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); graph.nodes.len()];
        for (from, outs) in graph.edges.iter().enumerate() {
            for to in outs {
                rev[*to].push(from);
            }
        }
        let reach_src = |seed: &dyn Fn(&Node) -> bool| -> Vec<Option<NodeId>> {
            let mut src: Vec<Option<NodeId>> = vec![None; graph.nodes.len()];
            let mut queue: VecDeque<NodeId> = VecDeque::new();
            for (id, n) in graph.nodes.iter().enumerate() {
                if seed(n) {
                    src[id] = Some(id);
                    queue.push_back(id);
                }
            }
            while let Some(id) = queue.pop_front() {
                let origin = src[id];
                for caller in &rev[id] {
                    if src[*caller].is_none() {
                        src[*caller] = origin;
                        queue.push_back(*caller);
                    }
                }
            }
            src
        };

        graph.reach_charge = reach_src(&|n: &Node| n.direct_charge || n.direct_refusal)
            .iter()
            .map(Option::is_some)
            .collect();
        graph.reach_emit = reach_src(&|n: &Node| n.direct_emit)
            .iter()
            .map(Option::is_some)
            .collect();
        // The wall-clock funnel file is exempt from entropy flow: its
        // allowed `Instant::now` is write-only into the metric registry
        // (the `metrics` lint enforces containment), so callers of
        // instrumented hot paths are not poisoned.
        let funnel: Vec<bool> = graph
            .files
            .iter()
            .map(|f| crate::workspace::is_wall_funnel(&f.path))
            .collect();
        graph.entropy_src =
            reach_src(&|n: &Node| !funnel[n.file] && n.carriers.iter().any(|c| c.allowed));

        graph
    }

    /// Resolves one call site from the file at index `fi` to candidate
    /// callee nodes, precise-first (see the module docs).
    pub fn resolve_call(&self, fi: usize, call: &CallSite) -> Vec<NodeId> {
        let in_files = |fis: &[usize], name: &str| -> Vec<NodeId> {
            fis.iter()
                .flat_map(|f| {
                    self.by_file_name
                        .get(&(*f, name.to_string()))
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                })
                .copied()
                .collect()
        };
        let global = || {
            self.by_name
                .get(call.name.as_str())
                .cloned()
                .unwrap_or_default()
        };
        if call.is_method {
            return global();
        }
        if let Some(q) = &call.qual {
            if q == "Self" || q == "self" {
                let same = in_files(&[fi], &call.name);
                return if same.is_empty() { global() } else { same };
            }
            // `use`-imported module or type qualifier.
            if let Some(decl) = use_for_alias(self.files[fi], q) {
                let abs = normalize_use(decl, &self.modules[fi]);
                if let Some(fis) = self.file_by_abs.get(&abs) {
                    let found = in_files(fis, &call.name);
                    if !found.is_empty() {
                        return found;
                    }
                }
                // The import may name a type inside a module file
                // (`use a::cpu::CpuExec; CpuExec::new()`).
                if abs.len() > 1 {
                    if let Some(fis) = self.file_by_abs.get(&abs[..abs.len() - 1]) {
                        let found = in_files(fis, &call.name);
                        if !found.is_empty() {
                            return found;
                        }
                    }
                }
            }
            // Qualifier matching a module file name or crate ident.
            let fis: Vec<usize> = self
                .modules
                .iter()
                .enumerate()
                .filter(|(_, m)| {
                    m.modules.last().map(String::as_str) == Some(q.as_str())
                        || (m.crate_ident == *q && m.modules.is_empty())
                })
                .map(|(i, _)| i)
                .collect();
            let found = in_files(&fis, &call.name);
            if !found.is_empty() {
                return found;
            }
            return global(); // type-qualified (`GpuExec::new`)
        }
        // Unqualified: same file, then exact import, then global.
        let same = in_files(&[fi], &call.name);
        if !same.is_empty() {
            return same;
        }
        if let Some(decl) = use_for_alias(self.files[fi], &call.name) {
            let abs = normalize_use(decl, &self.modules[fi]);
            if let (Some(target_name), true) = (abs.last(), abs.len() > 1) {
                if let Some(fis) = self.file_by_abs.get(&abs[..abs.len() - 1]) {
                    let found = in_files(fis, target_name);
                    if !found.is_empty() {
                        return found;
                    }
                }
            }
        }
        global()
    }

    /// All node ids.
    pub fn node_ids(&self) -> std::ops::Range<NodeId> {
        0..self.nodes.len()
    }

    /// Node for the `fn_idx`-th function of the file at `path`
    /// (workspace-relative), if indexed.
    pub fn node_id(&self, path: &Path, fn_idx: usize) -> Option<NodeId> {
        self.node_at.get(&(path.to_path_buf(), fn_idx)).copied()
    }

    /// The node record.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// The file a node lives in.
    pub fn file_of(&self, id: NodeId) -> &FileModel {
        self.files[self.nodes[id].file]
    }

    /// The scanned function record of a node.
    pub fn fn_info(&self, id: NodeId) -> &FnInfo {
        &self.file_of(id).fns[self.nodes[id].fn_idx]
    }

    /// Resolved callees of a node.
    pub fn callees(&self, id: NodeId) -> &[NodeId] {
        &self.edges[id]
    }

    /// Whether the node (transitively) reaches a `charge*` call or an
    /// `Unsupported` refusal.
    pub fn reaches_charge(&self, id: NodeId) -> bool {
        self.reach_charge[id]
    }

    /// Whether the node (transitively) reaches a trace emit.
    pub fn reaches_emit(&self, id: NodeId) -> bool {
        self.reach_emit[id]
    }

    /// The allowed entropy-carrier node this node (transitively)
    /// reaches, if any (itself, when it carries).
    pub fn entropy_source(&self, id: NodeId) -> Option<NodeId> {
        self.entropy_src[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fm(path: &str, src: &str) -> FileModel {
        FileModel::new(PathBuf::from(path), src)
    }

    #[test]
    fn transitive_charge_crosses_files_via_use() {
        let a = fm(
            "crates/gpu/src/algos.rs",
            "use crate::device::spend;\npub fn kernel(g: &Gpu) { spend(g); }\n\
             pub fn free_kernel(g: &Gpu) { helper(g); }\nfn helper(_g: &Gpu) {}\n",
        );
        let b = fm(
            "crates/gpu/src/device.rs",
            "pub fn spend(g: &Gpu) { g.charge_raw(1.0); }\n",
        );
        let g = Graph::build(vec![&a, &b]);
        let kernel = g.node_id(Path::new("crates/gpu/src/algos.rs"), 0).unwrap();
        let free = g.node_id(Path::new("crates/gpu/src/algos.rs"), 1).unwrap();
        assert!(g.reaches_charge(kernel));
        assert!(!g.reaches_charge(free));
    }

    #[test]
    fn cycles_terminate_and_do_not_charge() {
        let a = fm(
            "crates/gpu/src/a.rs",
            "pub fn ping(x: u32) { pong(x); }\npub fn pong(x: u32) { ping(x); }\n",
        );
        let g = Graph::build(vec![&a]);
        assert!(!g.reaches_charge(0));
        assert!(!g.reaches_charge(1));
    }

    #[test]
    fn same_file_definition_shadows_global() {
        // `helper` exists in both files; only b's charges. a's call must
        // resolve to a's own (non-charging) helper.
        let a = fm(
            "crates/gpu/src/a.rs",
            "pub fn kernel() { helper(); }\nfn helper() {}\n",
        );
        let b = fm(
            "crates/gpu/src/b.rs",
            "pub fn other() { helper(); }\nfn helper() { charge_raw(1.0); }\n",
        );
        let g = Graph::build(vec![&a, &b]);
        let kernel = g.node_id(Path::new("crates/gpu/src/a.rs"), 0).unwrap();
        let other = g.node_id(Path::new("crates/gpu/src/b.rs"), 0).unwrap();
        assert!(!g.reaches_charge(kernel));
        assert!(g.reaches_charge(other));
    }

    #[test]
    fn method_calls_take_global_union() {
        let a = fm(
            "crates/core/src/backend/cluster.rs",
            "impl Executor for ClusterExec { fn tsqr(&self) { self.panel(); } }\n\
             impl ClusterExec { fn panel(&self) { charge(1.0); } }\n",
        );
        let g = Graph::build(vec![&a]);
        let tsqr = g
            .node_id(Path::new("crates/core/src/backend/cluster.rs"), 0)
            .unwrap();
        assert!(g.reaches_charge(tsqr));
    }

    #[test]
    fn refusal_counts_as_charge() {
        let a = fm(
            "crates/core/src/backend/cpu.rs",
            "impl Executor for CpuExec { fn tsqr(&self) -> Result<(), MatrixError> { \
             Err(MatrixError::Unsupported(\"no tsqr\")) } }\n",
        );
        let g = Graph::build(vec![&a]);
        assert!(g.reaches_charge(0));
    }

    #[test]
    fn emit_reachability_is_transitive() {
        let a = fm(
            "crates/gpu/src/device.rs",
            "pub fn accrue(&mut self, s: f64) { self.clock += s; self.note(s); }\n\
             fn note(&self, s: f64) { self.trace_event(s); }\n\
             pub fn silent(&mut self, s: f64) { self.clock += s; }\n",
        );
        let g = Graph::build(vec![&a]);
        assert_eq!(g.node(0).trace_charge_line, Some(1));
        assert!(g.reaches_emit(0));
        assert!(g.node(2).trace_charge_line.is_some());
        assert!(!g.reaches_emit(2));
    }

    #[test]
    fn entropy_flows_from_allowed_carriers() {
        let a = fm(
            "crates/trace/src/export.rs",
            "// analyze: allow(determinism, export timestamps are cosmetic)\n\
             pub fn wall_stamp() -> f64 { SystemTime::now() }\n\
             pub fn caller() -> f64 { wall_stamp() }\n\
             pub fn clean() -> f64 { 0.0 }\n",
        );
        let g = Graph::build(vec![&a]);
        let stamp = g
            .node_id(Path::new("crates/trace/src/export.rs"), 0)
            .unwrap();
        let caller = g
            .node_id(Path::new("crates/trace/src/export.rs"), 1)
            .unwrap();
        let clean = g
            .node_id(Path::new("crates/trace/src/export.rs"), 2)
            .unwrap();
        assert_eq!(g.entropy_source(stamp), Some(stamp));
        assert_eq!(g.entropy_source(caller), Some(stamp));
        assert_eq!(g.entropy_source(clean), None);
    }
}
