//! `metrics` — telemetry-surface hygiene.
//!
//! Three halves of one contract around `rlra-obs`:
//!
//! 1. **Registered names** — every metric record site (`observe`,
//!    `counter_add`, `gauge_set`, `gauge_add`, `set_info`, `scoped`,
//!    `scoped_labeled`) names its series through a constant from
//!    `rlra_obs::names`. An inline string literal, or a constant the
//!    table does not define, forks the scrape surface under an
//!    unregistered spelling.
//! 2. **Complete table** — every name constant in `obs::names` appears
//!    in the `ALL` enumeration (and `ALL` references only defined
//!    constants), so exposition tests and dashboards can walk the whole
//!    surface.
//! 3. **Contained funnel** — the wall-clock funnel
//!    (`obs/src/walltime.rs`) is the one file the determinism analysis
//!    exempts; in exchange its public surface must stay time-opaque (no
//!    `pub fn` returning `f64`/`Duration`/`Instant`/..), and no other
//!    file in the telemetry scope may carry an `allow(determinism)`
//!    hatch. Wall time flows in, never out.

use crate::diag::Finding;
use crate::lex::{Tok, TokKind};
use crate::scan::FileModel;
use crate::workspace::is_wall_funnel;
use std::collections::BTreeSet;

/// Functions whose first argument is a metric name.
const RECORD_FNS: &[&str] = &[
    "observe",
    "counter_add",
    "gauge_set",
    "gauge_add",
    "set_info",
    "scoped",
    "scoped_labeled",
];

/// Return types a `pub fn` in the funnel file may not expose.
const TIME_SHAPED: &[&str] = &["f64", "f32", "Duration", "Instant", "SystemTime"];

/// Runs the metrics lint over the telemetry scope. `names_file` is the
/// `obs::names` table when present (fixture workspaces may omit it —
/// record sites then only reject inline literals).
pub fn check(files: &[&FileModel], names_file: Option<&FileModel>) -> Vec<Finding> {
    let table = names_file.map(names_table);
    let mut findings = Vec::new();
    if let Some(nf) = names_file {
        findings.extend(check_names_table(nf));
    }
    for file in files {
        findings.extend(check_record_sites(file, table.as_ref()));
        if is_wall_funnel(&file.path) {
            findings.extend(check_funnel_surface(file));
        } else {
            findings.extend(check_funnel_exclusive(file));
        }
    }
    findings
}

/// The name constants the table defines: every `pub const X: .. = "..";`.
fn names_table(file: &FileModel) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("const") || file.in_test_range(i) {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        // Value is a single string literal (skips `ALL`, whose value is
        // an array).
        let Some(eq) = toks[i..].iter().position(|t| t.is_punct('=')) else {
            continue;
        };
        if toks
            .get(i + eq + 1)
            .is_some_and(|t| t.str_content().is_some())
        {
            out.insert(name.text.clone());
        }
    }
    out
}

/// Table completeness: every defined constant is enumerated in `ALL`,
/// and `ALL` only references defined constants.
fn check_names_table(file: &FileModel) -> Vec<Finding> {
    let defined = names_table(file);
    let toks = &file.lexed.toks;
    let mut findings = Vec::new();

    // Locate `const ALL` and collect the identifiers inside its value.
    let mut enumerated: BTreeSet<String> = BTreeSet::new();
    let mut all_line = None;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("const") && toks.get(i + 1).is_some_and(|n| n.is_ident("ALL")) {
            all_line = Some(t.line);
            for t in toks[i + 2..].iter().take_while(|t| !t.is_punct(';')) {
                if t.kind == TokKind::Ident && defined.contains(&t.text) {
                    enumerated.insert(t.text.clone());
                } else if t.kind == TokKind::Ident
                    && t.text.chars().all(|c| c.is_ascii_uppercase() || c == '_')
                    && !t.is_ident("ALL")
                {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: t.line,
                        lint: "metrics",
                        message: format!(
                            "`ALL` references `{}`, which is not a name constant in this table",
                            t.text
                        ),
                    });
                }
            }
            break;
        }
    }
    let Some(all_line) = all_line else {
        return vec![Finding {
            file: file.path.clone(),
            line: 1,
            lint: "metrics",
            message: "the names table has no `ALL` enumeration — exposition tests cannot \
                      walk the metric surface"
                .to_string(),
        }];
    };
    for name in defined.difference(&enumerated) {
        findings.push(Finding {
            file: file.path.clone(),
            line: all_line,
            lint: "metrics",
            message: format!(
                "name constant `{name}` is missing from `ALL` — the metric surface is no \
                 longer enumerable"
            ),
        });
    }
    findings
}

/// Record sites: the first argument of a record fn must be (or contain)
/// a table constant — never an inline string literal, never an
/// unregistered SCREAMING_CASE constant.
fn check_record_sites(file: &FileModel, table: Option<&BTreeSet<String>>) -> Vec<Finding> {
    let toks = &file.lexed.toks;
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !RECORD_FNS.contains(&t.text.as_str()) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|p| p.is_punct('(')) {
            continue;
        }
        // A definition (`fn observe(..)`), not a call.
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        if file.in_test_range(i) || file.allow_at("metrics", t.line).is_some() {
            continue;
        }
        let arg = first_arg(&toks[i + 2..]);
        if arg.is_empty() {
            continue;
        }
        let upper = arg.iter().rev().find(|t| {
            t.kind == TokKind::Ident
                && t.text.len() > 1
                && t.text.chars().all(|c| c.is_ascii_uppercase() || c == '_')
        });
        match upper {
            Some(c) => {
                if let Some(table) = table {
                    if !table.contains(&c.text) {
                        findings.push(Finding {
                            file: file.path.clone(),
                            line: t.line,
                            lint: "metrics",
                            message: format!(
                                "`{}` records metric `{}`, which is not in the registered \
                                 `obs::names` table",
                                t.text, c.text
                            ),
                        });
                    }
                }
            }
            None => {
                if arg[0].str_content().is_some() {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: t.line,
                        lint: "metrics",
                        message: format!(
                            "`{}` names its metric with an inline string literal — use a \
                             constant from `obs::names` so the scrape surface stays \
                             enumerable",
                            t.text
                        ),
                    });
                }
                // A lowercase identifier (plumbing forwarding a name it
                // received) is accepted; the table test pins its source.
            }
        }
    }
    findings
}

/// Tokens of the first call argument: everything up to the matching
/// depth-0 `,` or `)`.
fn first_arg(toks: &[Tok]) -> &[Tok] {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" if depth == 0 => return &toks[..i],
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => return &toks[..i],
                _ => {}
            }
        }
    }
    toks
}

/// The funnel's public surface must stay time-opaque: no `pub fn`
/// returning a time-shaped type.
fn check_funnel_surface(file: &FileModel) -> Vec<Finding> {
    let toks = &file.lexed.toks;
    let mut findings = Vec::new();
    for f in &file.fns {
        if !f.is_pub || f.in_test || !f.has_return_type {
            continue;
        }
        let Some(body) = &f.body else { continue };
        // Signature tokens: from the `fn` keyword back from the body
        // start to the body open.
        let fn_kw = (0..body.start).rev().find(|&j| {
            toks[j].is_ident("fn") && toks.get(j + 1).is_some_and(|n| n.is_ident(&f.name))
        });
        let Some(fn_kw) = fn_kw else { continue };
        let sig = &toks[fn_kw..body.start];
        let Some(arrow) = sig
            .windows(2)
            .position(|w| w[0].is_punct('-') && w[1].is_punct('>'))
        else {
            continue;
        };
        if let Some(bad) = sig[arrow..]
            .iter()
            .find(|t| t.kind == TokKind::Ident && TIME_SHAPED.contains(&t.text.as_str()))
        {
            findings.push(Finding {
                file: file.path.clone(),
                line: f.line,
                lint: "metrics",
                message: format!(
                    "wall-clock funnel fn `{}` returns `{}` — the funnel must stay \
                     write-only (wall time flows into the registry, never out)",
                    f.name, bad.text
                ),
            });
        }
    }
    findings
}

/// Only the funnel file may hold a determinism escape hatch inside the
/// telemetry scope — a second sanctioned clock would defeat the
/// containment argument.
fn check_funnel_exclusive(file: &FileModel) -> Vec<Finding> {
    file.allows
        .iter()
        .filter(|a| a.lint == "determinism")
        .map(|a| Finding {
            file: file.path.clone(),
            line: a.line,
            lint: "metrics",
            message: "allow(determinism) outside the wall-clock funnel — obs/src/walltime.rs \
                      is the single sanctioned clock in telemetry scope"
                .to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fm(path: &str, src: &str) -> FileModel {
        FileModel::new(PathBuf::from(path), src)
    }

    fn names_fm() -> FileModel {
        fm(
            "crates/obs/src/names.rs",
            "pub const A_TOTAL: &str = \"rlra_a_total\";\n\
             pub const B_SECONDS: &str = \"rlra_b_seconds\";\n\
             pub const ALL: &[&str] = &[A_TOTAL, B_SECONDS];\n",
        )
    }

    #[test]
    fn literal_name_fires_and_constant_passes() {
        let names = names_fm();
        let bad = fm(
            "crates/core/src/x.rs",
            "pub fn f(r: &Registry) { r.counter_add(\"rlra_adhoc_total\", \"\", 1.0); }\n",
        );
        let ok = fm(
            "crates/core/src/y.rs",
            "pub fn f(r: &Registry) { r.counter_add(names::A_TOTAL, \"\", 1.0); }\n",
        );
        let f = check(&[&bad, &ok], Some(&names));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("inline string literal"));
    }

    #[test]
    fn unregistered_constant_fires() {
        let names = names_fm();
        let bad = fm(
            "crates/core/src/x.rs",
            "pub fn f(r: &Registry) { r.observe(names::C_SECONDS, \"\", 1.0); }\n",
        );
        let f = check(&[&bad], Some(&names));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not in the registered"));
    }

    #[test]
    fn missing_all_entry_fires() {
        let names = fm(
            "crates/obs/src/names.rs",
            "pub const A_TOTAL: &str = \"rlra_a_total\";\n\
             pub const B_SECONDS: &str = \"rlra_b_seconds\";\n\
             pub const ALL: &[&str] = &[A_TOTAL];\n",
        );
        let f = check(&[], Some(&names));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("B_SECONDS"));
        assert!(f[0].message.contains("missing from `ALL`"));
    }

    #[test]
    fn funnel_leak_and_foreign_determinism_allow_fire() {
        let funnel = fm(
            "crates/obs/src/walltime.rs",
            "pub fn elapsed() -> f64 { 0.0 }\npub fn registry() -> Registry { g() }\n",
        );
        let foreign = fm(
            "crates/core/src/x.rs",
            "// analyze: allow(determinism, sneaky second clock)\n\
             pub fn f() {}\n",
        );
        let f = check(&[&funnel, &foreign], None);
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|d| d.message.contains("returns `f64`")));
        assert!(f
            .iter()
            .any(|d| d.message.contains("single sanctioned clock")));
    }

    #[test]
    fn definitions_and_tests_are_exempt() {
        let defs = fm(
            "crates/obs/src/registry.rs",
            "impl Registry { pub fn observe(&self, name: &str, label: &str, v: f64) {} }\n\
             #[cfg(test)]\nmod tests {\n\
             #[test]\nfn t() { r.observe(\"adhoc\", \"\", 1.0); }\n}\n",
        );
        assert!(check(&[&defs], None).is_empty());
    }
}
