//! `flops` — flops-accounting coverage.
//!
//! The analytic cost model prices kernels from the flop formulas in
//! `rlra-blas::flops`. A BLAS level-2/3 routine added without a matching
//! `<routine>_flops` formula silently runs "free" in the model, so the
//! lint requires one formula per public routine.

use crate::diag::Finding;
use crate::scan::FileModel;
use std::collections::HashSet;

/// Runs the flops-coverage lint: every top-level `pub fn <name>` in
/// `routine_files` (level2.rs / level3.rs) needs `pub fn <name>_flops`
/// in `flops_file`.
pub fn check(routine_files: &[&FileModel], flops_file: &FileModel) -> Vec<Finding> {
    let formulas: HashSet<&str> = flops_file
        .fns
        .iter()
        .filter(|f| f.is_pub && !f.in_test)
        .map(|f| f.name.as_str())
        .collect();

    let mut findings = Vec::new();
    for file in routine_files {
        for f in &file.fns {
            if !f.is_pub || f.in_test || f.impl_idx.is_some() {
                continue;
            }
            let wanted = format!("{}_flops", f.name);
            if !formulas.contains(wanted.as_str()) && file.allow_for_fn("flops", f).is_none() {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: f.line,
                    lint: "flops",
                    message: format!(
                        "BLAS routine `{}` has no `{wanted}` formula in rlra-blas::flops — \
                         the cost model would price it as free",
                        f.name
                    ),
                });
            }
        }
    }
    findings
}
