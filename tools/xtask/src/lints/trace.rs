//! `trace` — every cost-charging site also feeds the tracer.
//!
//! The observability story rests on the event stream being *complete*:
//! the golden-trace tests reconcile per-device event durations against
//! the `Timeline` accumulators, which only holds if no site advances a
//! clock or a timeline without emitting a [`TraceEvent`]. The funnel
//! design makes that cheap to enforce — `Gpu::accrue` is the one place
//! single-device charges land — but nothing stops a future edit from
//! adding a shortcut, so this lint pins the invariant.
//!
//! A *charging site* in `rlra-gpu` library code is any of:
//!
//! - `<..>timeline.add(..)` — a direct timeline accumulation,
//! - `clock +=` — a direct simulated-clock advance,
//! - `comms_inter +=` — a direct comms accumulation.
//!
//! A function containing a charging site satisfies the lint if it
//! reaches the tracer — an `emit(..)` call or a `trace*(..)` helper —
//! directly **or through any callee on the workspace call graph** (a
//! charging funnel whose emit lives in a helper is fine; the event
//! still fires). Folds of an *already-traced* simulation (where the
//! sim's devices emitted the events) are exempted with
//! `// analyze: allow(trace, reason)`.

use crate::diag::Finding;
use crate::graph::Graph;
use crate::scan::FileModel;

/// Runs the trace lint over the `rlra-gpu` library files.
pub fn check(graph: &Graph<'_>, files: &[&FileModel]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        for (i, f) in file.fns.iter().enumerate() {
            if f.in_test || f.body.is_none() {
                continue;
            }
            let Some(id) = graph.node_id(&file.path, i) else {
                continue;
            };
            let Some(line) = graph.node(id).trace_charge_line else {
                continue;
            };
            if !graph.reaches_emit(id) && file.allow_for_fn("trace", f).is_none() {
                findings.push(Finding {
                    file: file.path.clone(),
                    line,
                    lint: "trace",
                    message: format!(
                        "`{}` charges a clock/timeline without reaching a trace emit — \
                         an untraced charge breaks the event-stream/Timeline reconciliation",
                        f.name
                    ),
                });
            }
        }
    }
    findings
}
