//! `trace` — every cost-charging site also feeds the tracer.
//!
//! The observability story rests on the event stream being *complete*:
//! the golden-trace tests reconcile per-device event durations against
//! the `Timeline` accumulators, which only holds if no site advances a
//! clock or a timeline without emitting a [`TraceEvent`]. The funnel
//! design makes that cheap to enforce — `Gpu::accrue` is the one place
//! single-device charges land — but nothing stops a future edit from
//! adding a shortcut, so this lint pins the invariant.
//!
//! A *charging site* in `rlra-gpu` library code is any of:
//!
//! - `<..>timeline.add(..)` — a direct timeline accumulation,
//! - `clock +=` — a direct simulated-clock advance,
//! - `comms_inter +=` — a direct comms accumulation.
//!
//! A function containing a charging site satisfies the lint if its body
//! also reaches the tracer: an `emit(..)` call or a `trace*(..)` helper
//! call. Folds of an *already-traced* simulation (where the sim's
//! devices emitted the events) are exempted with
//! `// analyze: allow(trace, reason)`.

use crate::diag::Finding;
use crate::lex::TokKind;
use crate::scan::{FileModel, FnInfo};

/// Whether a callee name counts as feeding the tracer.
fn is_emit_name(name: &str) -> bool {
    name == "emit" || name.starts_with("trace")
}

/// First charging-site line in `f`'s body, if any, plus whether the
/// body reaches the tracer.
fn body_facts(file: &FileModel, f: &FnInfo) -> (Option<u32>, bool) {
    let Some(body) = f.body.clone() else {
        return (None, false);
    };
    let toks = &file.lexed.toks[body];
    let mut charge_line = None;
    let mut emits = false;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = |k: usize| toks.get(i + k);
        // `<..>timeline.add(` — the identifier spelling catches both
        // `self.timeline` and `host_timeline` receivers.
        let timeline_add = t.text.ends_with("timeline")
            && next(1).map(|t| t.is_punct('.')).unwrap_or(false)
            && next(2).map(|t| t.is_ident("add")).unwrap_or(false)
            && next(3).map(|t| t.is_punct('(')).unwrap_or(false);
        // `clock +=` / `comms_inter +=` (single-char puncts: '+' '=').
        let accum_add = (t.text == "clock" || t.text == "comms_inter")
            && next(1).map(|t| t.is_punct('+')).unwrap_or(false)
            && next(2).map(|t| t.is_punct('=')).unwrap_or(false);
        if (timeline_add || accum_add) && charge_line.is_none() {
            charge_line = Some(t.line);
        }
        if is_emit_name(&t.text) && next(1).map(|t| t.is_punct('(')).unwrap_or(false) {
            emits = true;
        }
    }
    (charge_line, emits)
}

/// Runs the trace lint over one `rlra-gpu` library source file.
pub fn check(file: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &file.fns {
        if f.in_test || f.body.is_none() {
            continue;
        }
        let (charge_line, emits) = body_facts(file, f);
        let Some(line) = charge_line else {
            continue;
        };
        if !emits && file.allow_for_fn("trace", f).is_none() {
            findings.push(Finding {
                file: file.path.clone(),
                line,
                lint: "trace",
                message: format!(
                    "`{}` charges a clock/timeline without emitting a trace event — \
                     an untraced charge breaks the event-stream/Timeline reconciliation",
                    f.name
                ),
            });
        }
    }
    findings
}
