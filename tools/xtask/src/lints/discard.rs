//! `discard` — serving-path crates may not throw away `Result`s.
//!
//! The numerical self-healing work (breakdown guards, fallback ladder,
//! verified-accuracy retry) only functions if errors *propagate*: a
//! `let _ = fallible();` or a bare `fallible();` statement converts a
//! detected breakdown into silent wrong answers, which is strictly
//! worse than the panic the panic lint already forbids. Two shapes are
//! flagged in library (non-test) code of the serving-path crates:
//!
//! - **`let _ = expr;`** — explicit discard. The exact `_` binding
//!   only; `let _guard = ..` keeps the value alive and is fine.
//! - **bare `Result` statements** — a call in statement position whose
//!   value is dropped (`foo(x);` where `foo` returns `Result`).
//!   Resolution rides the workspace call graph: free calls resolve
//!   precise-first; method calls take the global same-name union and
//!   are flagged only when **every** candidate returns `Result`
//!   (without receiver types, a split vote proves nothing). Unknown
//!   callees (std, closures) are skipped — the lint hunts the repo's
//!   own fallible APIs.
//!
//! Intentional discards carry `// analyze: allow(discard, reason)`.

use crate::diag::Finding;
use crate::graph::Graph;
use crate::lex::{Tok, TokKind};
use crate::scan::FileModel;

/// Token index of the matching open delimiter for the close at `k`,
/// scanning backwards.
fn matching_open(toks: &[Tok], k: usize) -> Option<usize> {
    let mut depth = 0usize;
    for j in (0..=k).rev() {
        let t = &toks[j];
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Token index just past the matching close of the `(` at `open`.
fn matching_close(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
    }
    toks.len()
}

/// Walks from the callee ident at `i` back to the head of its receiver
/// chain (`self.sim.charge(..)` → the `self` token), staying inside
/// `lo..`.
fn chain_head(toks: &[Tok], i: usize, lo: usize) -> usize {
    let mut j = i;
    loop {
        if j <= lo {
            return j;
        }
        let prev = &toks[j - 1];
        if prev.is_punct('.') {
            // Skip the primary before the dot: `?`, a close delimiter
            // (back to its open), or an identifier/literal.
            let mut k = j - 1;
            if k > lo && toks[k - 1].is_punct('?') {
                k -= 1;
            }
            if k > lo && (toks[k - 1].is_punct(')') || toks[k - 1].is_punct(']')) {
                match matching_open(toks, k - 1) {
                    Some(open) if open >= lo => {
                        j = open;
                        continue;
                    }
                    _ => return j,
                }
            }
            if k > lo
                && (toks[k - 1].kind == TokKind::Ident || toks[k - 1].kind == TokKind::Literal)
            {
                j = k - 1;
                continue;
            }
            return j;
        }
        // `::` path segments: `module::helper(..)` → the first segment.
        if j >= lo + 3
            && prev.is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
            continue;
        }
        return j;
    }
}

/// Runs the discard lint over the serving-path files, using `graph` to
/// resolve which dropped calls return `Result`.
pub fn check(graph: &Graph<'_>, files: &[&FileModel]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let toks = &file.lexed.toks;

        // Shape 1: `let _ = expr;`
        for (i, t) in toks.iter().enumerate() {
            if t.is_ident("let")
                && toks.get(i + 1).map(|n| n.is_ident("_")).unwrap_or(false)
                && toks.get(i + 2).map(|n| n.is_punct('=')).unwrap_or(false)
                && !toks.get(i + 3).map(|n| n.is_punct('=')).unwrap_or(false)
                && !file.in_test_range(i)
                && file.allow_at("discard", t.line).is_none()
            {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: t.line,
                    lint: "discard",
                    message: "`let _ = ..` discards a value on the serving path — bind it, \
                              propagate it, or carry an allow(discard, reason)"
                        .into(),
                });
            }
        }

        // Shape 2: bare `Result` call statements.
        for (fi, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let Some(body) = &f.body else { continue };
            let Some(id) = graph.node_id(&file.path, fi) else {
                continue;
            };
            for call in &graph.node(id).calls {
                let end = matching_close(toks, call.tok + 1);
                if !toks.get(end).map(|t| t.is_punct(';')).unwrap_or(false) {
                    continue; // value is consumed (or `?`-propagated)
                }
                let head = chain_head(toks, call.tok, body.start);
                let at_stmt_start = head == body.start + 1
                    || toks
                        .get(head.wrapping_sub(1))
                        .map(|t| t.is_punct(';') || t.is_punct('{') || t.is_punct('}'))
                        .unwrap_or(false);
                if !at_stmt_start {
                    continue;
                }
                let candidates = graph.resolve_call(graph.node(id).file, call);
                if candidates.is_empty() {
                    continue; // unknown callee (std, closure): skip
                }
                let all_result = candidates.iter().all(|c| graph.fn_info(*c).returns_result);
                if !all_result {
                    continue;
                }
                if file.allow_at("discard", call.line).is_some() {
                    continue;
                }
                findings.push(Finding {
                    file: file.path.clone(),
                    line: call.line,
                    lint: "discard",
                    message: format!(
                        "`{}(..)` returns Result but the value is dropped — a swallowed \
                         error defeats the breakdown-recovery ladder",
                        call.name
                    ),
                });
            }
        }
    }
    findings
}
