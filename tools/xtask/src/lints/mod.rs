//! The six repo-specific invariant lints.
//!
//! | lint | invariant |
//! |---|---|
//! | `cost` | every simulated kernel / Executor stage hook charges the cost model |
//! | `determinism` | no wall clock or entropy in library code |
//! | `panic` | no `unwrap`/`expect`/`panic!`/`todo!` in library code |
//! | `flops` | every BLAS level-2/3 routine has a flops formula |
//! | `trace` | every clock/timeline charging site emits a trace event |
//! | `numerics` | every CholQR call site goes through the guard ladder |

pub mod cost;
pub mod determinism;
pub mod flops;
pub mod numerics;
pub mod panics;
pub mod trace;

use crate::diag::Finding;
use crate::scan::FileModel;

/// Reports malformed escape hatches: an `analyze: allow(..)` with no
/// justification is itself a violation (the hatch exists to *record*
/// why a site is exempt).
pub fn check_allow_reasons(file: &FileModel) -> Vec<Finding> {
    file.allows
        .iter()
        .filter(|a| a.reason.is_empty())
        .map(|a| Finding {
            file: file.path.clone(),
            line: a.line,
            lint: "allow",
            message: format!(
                "allow({}) without a justification — write `// analyze: allow({}, reason)`",
                a.lint, a.lint
            ),
        })
        .collect()
}
