//! The ten repo-specific invariant lints.
//!
//! | lint | invariant |
//! |---|---|
//! | `cost` | every simulated kernel / Executor stage hook reaches a charge (interprocedural) |
//! | `determinism` | no wall clock or entropy in library code, nor reached through callees |
//! | `panic` | no `unwrap`/`expect`/`panic!`/`todo!` in library code |
//! | `flops` | every BLAS level-2/3 routine has a flops formula |
//! | `trace` | every clock/timeline charging site reaches a trace emit (interprocedural) |
//! | `numerics` | every CholQR call site goes through the guard ladder |
//! | `hook_parity` | every silent-default Executor hook is implemented on all four backends |
//! | `flops_sig` | every kernel charge site passes the matching cost-model expression |
//! | `discard` | no `let _ =` / dropped `Result` on the serving path |
//! | `metrics` | record sites use registered `obs::names` constants; the wall-clock funnel stays write-only |
//!
//! `cost`, `trace`, `determinism` (flow layer), and `discard` consume
//! the whole-workspace call graph ([`crate::graph`]); the rest are
//! single-file token checks.

pub mod cost;
pub mod determinism;
pub mod discard;
pub mod flops;
pub mod flops_sig;
pub mod hook_parity;
pub mod metrics;
pub mod numerics;
pub mod panics;
pub mod trace;

use crate::diag::Finding;
use crate::scan::FileModel;

/// Reports malformed escape hatches: an `analyze: allow(..)` with no
/// justification is itself a violation (the hatch exists to *record*
/// why a site is exempt).
pub fn check_allow_reasons(file: &FileModel) -> Vec<Finding> {
    file.allows
        .iter()
        .filter(|a| a.reason.is_empty())
        .map(|a| Finding {
            file: file.path.clone(),
            line: a.line,
            lint: "allow",
            message: format!(
                "allow({}) without a justification — write `// analyze: allow({}, reason)`",
                a.lint, a.lint
            ),
        })
        .collect()
}
