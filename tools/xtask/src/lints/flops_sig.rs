//! `flops_sig` — kernel charge sites pass a *matching* cost expression.
//!
//! `Gpu::charge_kernel(phase, name, dims, flops, bytes, secs)` is the
//! funnel every simulated kernel's accounting goes through, but nothing
//! ties the `name`/`dims` a site reports to the `secs` expression it
//! computes: a gemm charged with `cost.trsm(..)` compiles, traces, and
//! quietly skews every figure the paper's Fig. 11–17 breakdowns rest
//! on. This lint pins the pairing:
//!
//! - every `charge_kernel(..)` call passes exactly six arguments, with
//!   a **literal** kernel name known to the pricing table below;
//! - the `secs` argument calls the cost-model method the table assigns
//!   to that kernel name (`"gemm"` must price via `CostModel::gemm`,
//!   not `trsm`);
//! - the cost call's arity matches the model's signature — arities are
//!   **derived** from the `impl CostModel` in scope, so the lint can
//!   never drift from the model it guards;
//! - for dimensional routines (gemm/syrk/trsm/fft), every plain-ident
//!   argument of the cost call also appears in the `dims` array —
//!   catching swapped or stale dimension wiring. Element-count
//!   routines (`blas1`, `curand`, ..) are exempt: they take products,
//!   not dims.
//!
//! A general sweep also checks the arity of *every* `cost.method(..)` /
//! `cost().method(..)` call in scope against the derived signature, so
//! sites that charge outside the funnel (`charge(phase, cost.gemm(..))`)
//! get the same arity guarantee.
//!
//! Sites that intentionally deviate carry
//! `// analyze: allow(flops_sig, reason)`.

use crate::diag::Finding;
use crate::lex::{Tok, TokKind};
use crate::scan::FileModel;
use std::collections::HashMap;
use std::ops::Range;

/// Kernel name → required cost-model method, and whether the routine is
/// *dimensional* (its cost args are matrix dims that must agree with
/// the reported `dims` array) or an element-count routine (exempt from
/// the dims check).
pub const KERNEL_PRICING: &[(&str, &str, bool)] = &[
    ("gemm", "gemm", true),
    ("syrk", "syrk", true),
    ("trsm", "trsm", true),
    // trmm is priced as a triangular multiply at trsm cost (same flop
    // count, same bandwidth shape).
    ("trmm", "trsm", true),
    ("launch", "launch", false),
    ("curand", "curand", false),
    ("fft", "fft_cols", true),
    ("gather", "blas1", false),
    ("health_scan", "blas1_reduce", false),
    // ABFT checksum encode/verify sweeps are streaming reductions over
    // the protected panel; the leading term is priced as blas1_reduce.
    ("abft", "blas1_reduce", false),
];

/// `CostModel` constructors/accessors that are not pricing methods.
const COST_ACCESSORS: &[&str] = &["new", "spec"];

/// Derives `method name → arity` from the `impl CostModel` block(s) in
/// `model_file`: the public pricing methods and their parameter counts
/// (receiver excluded). Deriving from source means the lint follows the
/// model when a signature changes instead of silently checking a stale
/// table.
fn model_arities(model_file: &FileModel) -> HashMap<String, usize> {
    let mut arities = HashMap::new();
    for (j, im) in model_file.impls.iter().enumerate() {
        if im.trait_name.is_some() || im.self_type.as_deref() != Some("CostModel") {
            continue;
        }
        for f in &model_file.fns {
            if f.impl_idx == Some(j)
                && f.is_pub
                && !f.in_test
                && !COST_ACCESSORS.contains(&f.name.as_str())
            {
                arities.insert(f.name.clone(), f.param_count);
            }
        }
    }
    arities
}

/// Token index just past the matching close of the delimiter opened at
/// `open` (`(`/`[`/`{`), or `toks.len()` if unbalanced.
fn matching_close(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
    }
    toks.len()
}

/// Splits the argument list opened at token `open` into top-level
/// comma-separated token ranges. Empty when the list is `()`.
fn split_args(toks: &[Tok], open: usize) -> Vec<Range<usize>> {
    let end = matching_close(toks, open);
    let inner = open + 1..end.saturating_sub(1);
    let mut args = Vec::new();
    let mut depth = 0usize;
    let mut start = inner.start;
    for k in inner.clone() {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(',') && depth == 0 {
            args.push(start..k);
            start = k + 1;
        }
    }
    if start < inner.end {
        args.push(start..inner.end);
    }
    args
}

/// The first `.method(` cost-model call inside `range`, as
/// `(method name token index, method name)` — the method must be one of
/// the derived model methods and the range must mention `cost`.
fn cost_call_in(
    toks: &[Tok],
    range: &Range<usize>,
    arities: &HashMap<String, usize>,
) -> Option<(usize, String)> {
    let mentions_cost = toks[range.clone()].iter().any(|t| t.is_ident("cost"));
    if !mentions_cost {
        return None;
    }
    for k in range.clone() {
        let t = &toks[k];
        if t.kind == TokKind::Ident
            && arities.contains_key(&t.text)
            && k > range.start
            && toks[k - 1].is_punct('.')
            && toks.get(k + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        {
            return Some((k, t.text.clone()));
        }
    }
    None
}

/// Runs the flops-signature lint over the scope files (the cost-model
/// file is located in-scope by its `impl CostModel` block, so fixtures
/// exercise the same path as the workspace).
pub fn check(files: &[&FileModel]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let arities: HashMap<String, usize> =
        files
            .iter()
            .map(|f| model_arities(f))
            .fold(HashMap::new(), |mut acc, m| {
                acc.extend(m);
                acc
            });
    if arities.is_empty() {
        return findings; // no cost model in scope — nothing to pair against
    }

    for file in files {
        let toks = &file.lexed.toks;
        for (i, t) in toks.iter().enumerate() {
            if file.in_test_range(i) {
                continue;
            }
            if t.is_ident("charge_kernel")
                && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            {
                if i > 0 && toks[i - 1].is_ident("fn") {
                    continue; // the funnel's own definition
                }
                if file.allow_at("flops_sig", t.line).is_some() {
                    continue;
                }
                check_site(file, i, &arities, &mut findings);
            }
            // General arity sweep: `cost.method(..)` / `cost().method(..)`.
            if t.kind == TokKind::Ident
                && arities.contains_key(&t.text)
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            {
                let recv_is_cost = (i >= 2 && toks[i - 2].is_ident("cost"))
                    || (i >= 4
                        && toks[i - 2].is_punct(')')
                        && toks[i - 3].is_punct('(')
                        && toks[i - 4].is_ident("cost"));
                if !recv_is_cost || file.allow_at("flops_sig", t.line).is_some() {
                    continue;
                }
                let want = arities[&t.text];
                let got = split_args(toks, i + 1).len();
                if got != want {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: t.line,
                        lint: "flops_sig",
                        message: format!(
                            "cost-model call `{}` passes {got} argument(s) but \
                             `CostModel::{}` takes {want}",
                            t.text, t.text
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Checks one `charge_kernel(..)` call site (callee ident at `i`).
fn check_site(
    file: &FileModel,
    i: usize,
    arities: &HashMap<String, usize>,
    findings: &mut Vec<Finding>,
) {
    let toks = &file.lexed.toks;
    let line = toks[i].line;
    let mut push = |line: u32, message: String| {
        findings.push(Finding {
            file: file.path.clone(),
            line,
            lint: "flops_sig",
            message,
        });
    };
    let args = split_args(toks, i + 1);
    if args.len() != 6 {
        push(
            line,
            format!(
                "charge_kernel takes 6 arguments (phase, name, dims, flops, bytes, secs); \
                 this site passes {}",
                args.len()
            ),
        );
        return;
    }
    // Kernel name: a single literal string.
    let name_arg = &args[1];
    let name = (name_arg.len() == 1)
        .then(|| toks[name_arg.start].str_content())
        .flatten();
    let Some(name) = name else {
        push(
            line,
            "charge_kernel's kernel name must be a literal string so the \
             flops↔charge pairing is checkable"
                .into(),
        );
        return;
    };
    let Some((_, method, dimensional)) =
        KERNEL_PRICING.iter().find(|(k, _, _)| *k == name).copied()
    else {
        push(
            line,
            format!(
                "unknown kernel name \"{name}\" — register it in \
                 flops_sig::KERNEL_PRICING with its cost-model method"
            ),
        );
        return;
    };
    // The secs argument must price via the assigned model method.
    let Some((mtok, got_method)) = cost_call_in(toks, &args[5], arities) else {
        push(
            line,
            format!(
                "charge_kernel(\"{name}\", ..) secs argument never calls the cost \
                 model — a hand-rolled duration dodges the analytic model"
            ),
        );
        return;
    };
    if got_method != method {
        push(
            toks[mtok].line,
            format!(
                "kernel \"{name}\" priced with `CostModel::{got_method}` — the pricing \
                 table assigns `CostModel::{method}`"
            ),
        );
        return;
    }
    let cost_args = split_args(toks, mtok + 1);
    let want = arities[&got_method];
    if cost_args.len() != want {
        push(
            toks[mtok].line,
            format!(
                "cost-model call `{got_method}` passes {} argument(s) but \
                 `CostModel::{got_method}` takes {want}",
                cost_args.len()
            ),
        );
        return;
    }
    // Dims agreement for dimensional routines: every plain-ident cost
    // argument must appear in the reported dims array.
    if dimensional {
        let dims_idents: Vec<&str> = toks[args[2].clone()]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        for ca in &cost_args {
            if ca.len() == 1 && toks[ca.start].kind == TokKind::Ident {
                let ident = toks[ca.start].text.as_str();
                if !dims_idents.contains(&ident) {
                    push(
                        toks[ca.start].line,
                        format!(
                            "kernel \"{name}\" cost argument `{ident}` does not appear \
                             in the reported dims array — dimension wiring disagrees"
                        ),
                    );
                }
            }
        }
    }
}
