//! `panic` — panic-freedom in library code.
//!
//! `rlra-core`, `rlra-gpu`, `rlra-blas` and `rlra-model` are the crates
//! a production service links against; a panic there takes down the
//! whole worker. Library code must return [`MatrixError`] instead.
//! That includes the `assert!`/`assert_eq!`/`assert_ne!` family, which
//! panics in release builds too (`debug_assert!` is fine: it compiles
//! out). `#[cfg(test)]` code is exempt; deliberate sites carry
//! `// analyze: allow(panic, reason)`.
//!
//! [`MatrixError`]: ../../../crates/matrix/src/error.rs

use crate::diag::Finding;
use crate::lex::TokKind;
use crate::scan::FileModel;

/// Method calls that are forbidden (`.name(`).
const FORBIDDEN_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that are forbidden (`name!`). Matching is by exact name, so
/// `debug_assert!` (compiled out of release builds) stays legal while
/// the always-on `assert!` family does not.
const FORBIDDEN_MACROS: &[&str] = &[
    "panic",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Runs the panic-freedom lint over one library source file.
pub fn check(file: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test_range(i) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_paren = toks.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false);
        let next_bang = toks.get(i + 1).map(|t| t.is_punct('!')).unwrap_or(false);

        let violation = if prev_dot && next_paren && FORBIDDEN_METHODS.contains(&t.text.as_str()) {
            Some(format!(
                ".{}() panics — convert to a MatrixError return (`?`, ok_or, map_err)",
                t.text
            ))
        } else if next_bang && FORBIDDEN_MACROS.contains(&t.text.as_str()) {
            Some(format!(
                "{}! panics — convert to a MatrixError return",
                t.text
            ))
        } else {
            None
        };
        if let Some(message) = violation {
            if file.allow_at("panic", t.line).is_none() {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: t.line,
                    lint: "panic",
                    message,
                });
            }
        }
    }
    findings
}
