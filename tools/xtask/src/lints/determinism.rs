//! `determinism` — no wall clock, no entropy in library code.
//!
//! Every run must be bit-reproducible from its seed: the cross-backend
//! equivalence tests (and every figure) depend on it. The simulated
//! clock (`Gpu::clock`) is the only legal time source and seeded RNGs
//! (`StdRng::seed_from_u64`) the only legal randomness source in
//! library crates. Bench binaries (`src/bin/`) and `#[cfg(test)]` code
//! may measure real time.

use crate::diag::Finding;
use crate::lex::TokKind;
use crate::scan::FileModel;

/// Identifiers that are forbidden anywhere they appear.
const FORBIDDEN_IDENTS: &[(&str, &str)] = &[
    ("thread_rng", "use a seeded RNG (`StdRng::seed_from_u64`)"),
    ("from_entropy", "use a seeded RNG (`StdRng::seed_from_u64`)"),
    ("SystemTime", "use the simulated clock (`Gpu::clock`)"),
];

/// Path segments (`a::b`) that are forbidden.
const FORBIDDEN_PATHS: &[(&str, &str, &str)] = &[
    ("Instant", "now", "use the simulated clock (`Gpu::clock`)"),
    (
        "rand",
        "random",
        "use a seeded RNG (`StdRng::seed_from_u64`)",
    ),
];

/// Runs the determinism lint over one library source file.
pub fn check(file: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test_range(i) {
            continue;
        }
        let mut flag = |what: &str, fix: &str| {
            if file.allow_at("determinism", t.line).is_none() {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: t.line,
                    lint: "determinism",
                    message: format!(
                        "`{what}` breaks seed-reproducibility in library code — {fix}"
                    ),
                });
            }
        };
        for (name, fix) in FORBIDDEN_IDENTS {
            if t.text == *name {
                flag(name, fix);
            }
        }
        for (head, tail, fix) in FORBIDDEN_PATHS {
            if t.text == *head
                && toks.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false)
                && toks.get(i + 2).map(|t| t.is_punct(':')).unwrap_or(false)
                && toks.get(i + 3).map(|t| t.is_ident(tail)).unwrap_or(false)
            {
                flag(&format!("{head}::{tail}"), fix);
            }
        }
    }
    findings
}
