//! `determinism` — no wall clock, no entropy in library code.
//!
//! Every run must be bit-reproducible from its seed: the cross-backend
//! equivalence tests (and every figure) depend on it. The simulated
//! clock (`Gpu::clock`) is the only legal time source and seeded RNGs
//! (`StdRng::seed_from_u64`) the only legal randomness source in
//! library crates. Bench binaries (`src/bin/`) and `#[cfg(test)]` code
//! may measure real time.
//!
//! Two layers:
//!
//! 1. **Direct** ([`check`]) — any forbidden token in a scoped file is
//!    flagged unless it carries an `allow(determinism, reason)`.
//! 2. **Flow** ([`check_flow`], over the call graph) — an allow is
//!    site-local, not transitive: a library function that *calls* an
//!    allowed entropy/wall-clock carrier pulls nondeterminism into code
//!    the carrier's justification never covered, so every caller needs
//!    its own allow (or to stop calling the carrier).

use crate::diag::Finding;
use crate::graph::Graph;
use crate::lex::TokKind;
use crate::scan::FileModel;
use std::collections::HashSet;
use std::ops::Range;

/// Identifiers that are forbidden anywhere they appear.
const FORBIDDEN_IDENTS: &[(&str, &str)] = &[
    ("thread_rng", "use a seeded RNG (`StdRng::seed_from_u64`)"),
    ("from_entropy", "use a seeded RNG (`StdRng::seed_from_u64`)"),
    ("SystemTime", "use the simulated clock (`Gpu::clock`)"),
];

/// Path segments (`a::b`) that are forbidden.
const FORBIDDEN_PATHS: &[(&str, &str, &str)] = &[
    ("Instant", "now", "use the simulated clock (`Gpu::clock`)"),
    (
        "rand",
        "random",
        "use a seeded RNG (`StdRng::seed_from_u64`)",
    ),
];

/// One occurrence of a forbidden entropy/wall-clock token.
#[derive(Debug, Clone)]
pub struct Carrier {
    /// 1-based line of the token.
    pub line: u32,
    /// What was found (`SystemTime`, `Instant::now`, …).
    pub what: String,
    /// Advice for the finding message.
    pub fix: &'static str,
    /// Whether an `allow(determinism, ..)` covers the site.
    pub allowed: bool,
}

/// Scans `range` of `file`'s token stream for forbidden entropy and
/// wall-clock sources. `#[cfg(test)]` regions never carry.
pub fn carriers_in(file: &FileModel, range: Range<usize>) -> Vec<Carrier> {
    let mut out = Vec::new();
    let toks = &file.lexed.toks;
    for i in range {
        let t = &toks[i];
        if t.kind != TokKind::Ident || file.in_test_range(i) {
            continue;
        }
        let mut push = |what: String, fix: &'static str| {
            out.push(Carrier {
                line: t.line,
                what,
                fix,
                allowed: file.allow_at("determinism", t.line).is_some(),
            });
        };
        for (name, fix) in FORBIDDEN_IDENTS {
            if t.text == *name {
                push((*name).to_string(), fix);
            }
        }
        for (head, tail, fix) in FORBIDDEN_PATHS {
            if t.text == *head
                && toks.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false)
                && toks.get(i + 2).map(|t| t.is_punct(':')).unwrap_or(false)
                && toks.get(i + 3).map(|t| t.is_ident(tail)).unwrap_or(false)
            {
                push(format!("{head}::{tail}"), fix);
            }
        }
    }
    out
}

/// Runs the direct determinism lint over one library source file.
pub fn check(file: &FileModel) -> Vec<Finding> {
    carriers_in(file, 0..file.lexed.toks.len())
        .into_iter()
        .filter(|c| !c.allowed)
        .map(|c| Finding {
            file: file.path.clone(),
            line: c.line,
            lint: "determinism",
            message: format!(
                "`{}` breaks seed-reproducibility in library code — {}",
                c.what, c.fix
            ),
        })
        .collect()
}

/// Runs the interprocedural flow check: library functions that reach an
/// *allowed* entropy/wall-clock carrier through calls are flagged
/// unless they carry their own allow. `scoped` restricts the flagged
/// callers to the determinism file scope (the carrier may sit anywhere
/// in the graph).
pub fn check_flow(graph: &Graph<'_>, scoped: &HashSet<&std::path::Path>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for id in graph.node_ids() {
        let file = graph.file_of(id);
        if !scoped.contains(file.path.as_path()) {
            continue;
        }
        let Some(src) = graph.entropy_source(id) else {
            continue;
        };
        if src == id {
            continue; // the carrier itself is covered by its own allow
        }
        let f = graph.fn_info(id);
        if file.allow_for_fn("determinism", f).is_some() {
            continue;
        }
        let carrier_file = graph.file_of(src);
        let carrier = graph.node(src);
        findings.push(Finding {
            file: file.path.clone(),
            line: f.line,
            lint: "determinism",
            message: format!(
                "`{}` transitively reaches the wall-clock/entropy carrier `{}` \
                 ({}:{}) — the carrier's allow is site-local; callers need \
                 their own allow(determinism, ..) or a simulated-clock path",
                f.name,
                carrier.name,
                carrier_file.path.display(),
                graph.fn_info(src).line,
            ),
        });
    }
    findings
}
