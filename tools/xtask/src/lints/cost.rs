//! `cost` — kernel-cost pairing.
//!
//! The simulation's performance story rests on every simulated kernel
//! charging the analytic cost model: a silently "free" kernel corrupts
//! every figure. Two sets of functions carry that obligation:
//!
//! 1. every `pub fn` in `rlra-gpu::algos` (the timed GPU algorithms), and
//! 2. every stage or charge hook of an `impl Executor for ..` in
//!    `rlra-core::backend`.
//!
//! "Charges" is a whole-workspace interprocedural fact on the call
//! graph: a function satisfies the lint if its body — or any function
//! it resolves to, transitively, across crates — reaches a
//! `charge(..)` / `charge_*(..)` call. A hook that *refuses* the
//! request with [`MatrixError::Unsupported`] is also fine: refused work
//! is not free work, it never runs.
//!
//! The graph's name-keyed fallback is deliberately permissive (see
//! [`crate::graph`]): this lint hunts *free* kernels, and a false
//! "charges" on a shared name is far cheaper than drowning the signal
//! in false positives.

use crate::diag::Finding;
use crate::graph::Graph;
use crate::scan::FileModel;

/// The Executor stage hooks that must charge (the non-stage methods —
/// `name`, `computes`, `supports`, `begin`, `finish`, `elapsed`,
/// `supports_adaptive`, `tracer` — manage lifecycle, not kernels).
pub const STAGE_HOOKS: &[&str] = &[
    "gaussian_sample",
    "srft_sample_rows",
    "orth_b",
    "gemm_to_c",
    "orth_c",
    "gemm_to_b",
    "step2_pivot",
    "tsqr",
    "adaptive_draw",
    "adaptive_orth",
    "adaptive_gemm_c",
    "adaptive_gemm_w",
    "adaptive_probe",
    "adaptive_finish",
    "adaptive_update_pivot",
    "adaptive_update_panel",
    "adaptive_update_trailing",
    "verify_probe",
    "checkpoint_hook",
];

/// The guard/recovery charge hooks: same obligation as the stage hooks
/// (an uncharged fallback or health check is free work), kept separate
/// because they price *exceptional* paths.
pub const CHARGE_HOOKS: &[&str] = &[
    "charge_fallback",
    "charge_health_check",
    "charge_recovery",
    "charge_speculation",
    "charge_checksum_encode",
    "verify_integrity",
];

/// Whether `name` is a cost-lint obligation on an Executor impl.
pub fn is_obligated_hook(name: &str) -> bool {
    STAGE_HOOKS.contains(&name) || CHARGE_HOOKS.contains(&name)
}

/// Runs the cost lint.
///
/// * `graph` — the workspace call graph (must index the files below).
/// * `algo_files` — files whose **pub fns** must all charge
///   (`rlra-gpu::algos`).
/// * `executor_files` — files whose `impl Executor for ..` hooks must
///   all charge (`rlra-core::backend`).
pub fn check(
    graph: &Graph<'_>,
    algo_files: &[&FileModel],
    executor_files: &[&FileModel],
) -> Vec<Finding> {
    let mut findings = Vec::new();

    let mut check_fn = |file: &FileModel, fn_idx: usize, what: &str| {
        let f = &file.fns[fn_idx];
        let charges = graph
            .node_id(&file.path, fn_idx)
            .map(|id| graph.reaches_charge(id))
            .unwrap_or(false);
        if !charges && file.allow_for_fn("cost", f).is_none() {
            findings.push(Finding {
                file: file.path.clone(),
                line: f.line,
                lint: "cost",
                message: format!(
                    "{what} `{}` never reaches a charge(..)/charge_* call — \
                     a free simulated kernel corrupts every timing figure",
                    f.name
                ),
            });
        }
    };

    for file in algo_files {
        for (i, f) in file.fns.iter().enumerate() {
            if f.is_pub && !f.in_test && f.body.is_some() {
                check_fn(file, i, "simulated kernel");
            }
        }
    }
    for file in executor_files {
        for (i, f) in file.fns.iter().enumerate() {
            if f.in_test || f.body.is_none() || f.in_trait_def {
                continue;
            }
            let in_executor_impl = f
                .impl_idx
                .map(|j| file.impls[j].trait_name.as_deref() == Some("Executor"))
                .unwrap_or(false);
            if in_executor_impl && is_obligated_hook(&f.name) {
                check_fn(file, i, "Executor stage hook");
            }
        }
    }
    findings
}
