//! `cost` — kernel-cost pairing.
//!
//! The simulation's performance story rests on every simulated kernel
//! charging the analytic cost model: a silently "free" kernel corrupts
//! every figure. Two sets of functions carry that obligation:
//!
//! 1. every `pub fn` in `rlra-gpu::algos` (the timed GPU algorithms), and
//! 2. every stage hook of an `impl Executor for ..` in
//!    `rlra-core::backend`.
//!
//! A function satisfies the lint if its body — or any function it calls,
//! transitively, within the analyzed files — reaches a `charge(..)` /
//! `charge_*(..)` call. A hook that *refuses* the request with
//! [`MatrixError::Unsupported`] is also fine: refused work is not free
//! work, it never runs.
//!
//! Call resolution is by name (the analyzer has no type information); if
//! several functions share a name, the callee is considered charging if
//! any of them charges. That is deliberate: this lint hunts *free*
//! kernels, and a false "charges" on a shared name is far cheaper than
//! drowning the signal in false positives.

use crate::diag::Finding;
use crate::lex::TokKind;
use crate::scan::{FileModel, FnInfo};
use std::collections::{HashMap, HashSet};

/// The Executor stage hooks that must charge (the non-stage methods —
/// `name`, `computes`, `supports`, `begin`, `finish`, `elapsed`,
/// `supports_adaptive` — manage lifecycle, not kernels).
pub const STAGE_HOOKS: &[&str] = &[
    "gaussian_sample",
    "srft_sample_rows",
    "orth_b",
    "gemm_to_c",
    "orth_c",
    "gemm_to_b",
    "step2_pivot",
    "tsqr",
    "adaptive_draw",
    "adaptive_orth",
    "adaptive_gemm_c",
    "adaptive_gemm_w",
    "adaptive_probe",
    "adaptive_finish",
    "adaptive_update_pivot",
    "adaptive_update_panel",
    "adaptive_update_trailing",
    "verify_probe",
];

/// Whether a callee name is a direct charge.
fn is_charge_name(name: &str) -> bool {
    name == "charge" || name.starts_with("charge_")
}

/// Collects the names called in a function body (free calls, method
/// calls, and path calls all reduce to "identifier followed by `(`"),
/// plus whether the body directly charges or refuses with `Unsupported`.
fn body_facts(file: &FileModel, f: &FnInfo) -> (HashSet<String>, bool) {
    let mut calls = HashSet::new();
    let mut direct = false;
    let Some(body) = f.body.clone() else {
        return (calls, false);
    };
    let toks = &file.lexed.toks[body];
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Unsupported" {
            direct = true;
        }
        let next_is_call = toks.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false);
        if next_is_call {
            if is_charge_name(&t.text) {
                direct = true;
            }
            calls.insert(t.text.clone());
        }
    }
    (calls, direct)
}

/// Name-keyed call graph over every function in `graph_files`.
struct CallGraph {
    /// name -> (called names, charges directly)
    nodes: HashMap<String, (HashSet<String>, bool)>,
}

impl CallGraph {
    fn build(graph_files: &[&FileModel]) -> Self {
        let mut nodes: HashMap<String, (HashSet<String>, bool)> = HashMap::new();
        for file in graph_files {
            for f in &file.fns {
                if f.in_test || f.body.is_none() {
                    continue;
                }
                let (calls, direct) = body_facts(file, f);
                let entry = nodes.entry(f.name.clone()).or_default();
                entry.0.extend(calls);
                entry.1 |= direct;
            }
        }
        CallGraph { nodes }
    }

    /// Whether `name` (transitively) reaches a charge call.
    fn reaches_charge(&self, name: &str, seen: &mut HashSet<String>) -> bool {
        if is_charge_name(name) {
            return true;
        }
        if !seen.insert(name.to_string()) {
            return false;
        }
        let Some((calls, direct)) = self.nodes.get(name) else {
            return false;
        };
        if *direct {
            return true;
        }
        calls.iter().any(|c| self.reaches_charge(c, seen))
    }
}

/// Runs the cost lint.
///
/// * `algo_files` — files whose **pub fns** must all charge
///   (`rlra-gpu::algos`).
/// * `executor_files` — files whose `impl Executor for ..` stage hooks
///   must all charge (`rlra-core::backend`).
/// * `graph_files` — everything indexed for transitive resolution
///   (should be a superset of the other two).
pub fn check(
    algo_files: &[&FileModel],
    executor_files: &[&FileModel],
    graph_files: &[&FileModel],
) -> Vec<Finding> {
    let graph = CallGraph::build(graph_files);
    let mut findings = Vec::new();

    let mut check_fn = |file: &FileModel, f: &FnInfo, what: &str| {
        let (calls, direct) = body_facts(file, f);
        let charges = direct
            || calls
                .iter()
                .any(|c| graph.reaches_charge(c, &mut HashSet::new()));
        if !charges && file.allow_for_fn("cost", f).is_none() {
            findings.push(Finding {
                file: file.path.clone(),
                line: f.line,
                lint: "cost",
                message: format!(
                    "{what} `{}` never reaches a charge(..)/charge_* call — \
                     a free simulated kernel corrupts every timing figure",
                    f.name
                ),
            });
        }
    };

    for file in algo_files {
        for f in &file.fns {
            if f.is_pub && !f.in_test && f.body.is_some() {
                check_fn(file, f, "simulated kernel");
            }
        }
    }
    for file in executor_files {
        for f in &file.fns {
            if f.in_test || f.body.is_none() || f.in_trait_def {
                continue;
            }
            let in_executor_impl = f
                .impl_idx
                .map(|i| file.impls[i].trait_name.as_deref() == Some("Executor"))
                .unwrap_or(false);
            if in_executor_impl && STAGE_HOOKS.contains(&f.name.as_str()) {
                check_fn(file, f, "Executor stage hook");
            }
        }
    }
    findings
}
