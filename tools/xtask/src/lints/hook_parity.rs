//! `hook_parity` — every silently-defaulted `Executor` hook is
//! implemented on all four backends.
//!
//! The `Executor` trait has two kinds of methods: *required* ones
//! (bodiless — the compiler forces every backend to implement them) and
//! *defaulted* ones. Most defaults are **silent no-ops** (`Ok(())`):
//! they exist so adding a hook doesn't break every backend at once,
//! but they also mean a backend that forgets to implement a hook gets
//! free work — the paper's Fig. 11–17 cost breakdowns silently lose a
//! kernel on that backend and no test fails. This lint closes the gap:
//!
//! - Every silently-defaulted hook (returns `()`/`Result<()>`, default
//!   body neither charges nor refuses) must be implemented on every
//!   backend in the table below, unless the hook is gated off (the
//!   `adaptive_*` hooks are only required where `supports_adaptive`
//!   returns `true`) or the impl header carries an
//!   `allow(hook_parity, reason)`.
//! - Every such hook must also be registered in the cost lint's
//!   obligation lists ([`super::cost::STAGE_HOOKS`] /
//!   [`super::cost::CHARGE_HOOKS`]) so its impls are charged-checked —
//!   a new hook cannot dodge both lints.
//!
//! Whether each *present* impl actually reaches a charge is the cost
//! lint's job (same obligation list, interprocedural on the graph);
//! this lint is about *presence*, which is exactly what deleting a
//! backend's charging impl violates.
//!
//! Accessor defaults (`supports_adaptive`, `elapsed`, `tracer` — they
//! return values, not work) and refusing defaults (`recover_device_loss`
//! returns `Unsupported`) are exempt: neither can silently lose a
//! charge.

use crate::diag::Finding;
use crate::lex::TokKind;
use crate::scan::FileModel;

/// The four backends that must implement every silent-default hook:
/// `(backend label, implementing type)`. The delegating
/// `Recovering<E>` wrapper and test doubles are deliberately absent.
pub const BACKENDS: &[(&str, &str)] = &[
    ("cpu", "CpuExec"),
    ("gpu", "GpuExec"),
    ("multi", "MultiGpuExec"),
    ("cluster", "ClusterExec"),
];

/// The trait whose hooks are checked.
const TRAIT_NAME: &str = "Executor";

/// A parity-required hook parsed from the trait definition.
struct Hook {
    name: String,
    line: u32,
    /// Only required where `supports_adaptive` returns `true`.
    gated_by_adaptive: bool,
}

/// Whether a body token range contains the ident `what`.
fn body_has_ident(file: &FileModel, body: &std::ops::Range<usize>, what: &str) -> bool {
    file.lexed.toks[body.clone()]
        .iter()
        .any(|t| t.is_ident(what))
}

/// Extracts the parity-required hooks from the trait-definition file:
/// defaulted methods returning `()`/`Result<()>` whose default body
/// neither charges nor refuses.
fn parity_hooks(trait_file: &FileModel) -> Vec<Hook> {
    let mut hooks = Vec::new();
    for f in &trait_file.fns {
        if !f.in_trait_def || f.in_test {
            continue;
        }
        let Some(body) = &f.body else {
            continue; // bodiless: the compiler enforces implementation
        };
        if !f.returns_unit_or_result() {
            continue; // accessor default (bool/f64/Option): no work to lose
        }
        let refuses = body_has_ident(trait_file, body, "Unsupported");
        let charges = trait_file.lexed.toks[body.clone()]
            .iter()
            .any(|t| t.kind == TokKind::Ident && crate::graph::is_charge_name(&t.text));
        if refuses || charges {
            continue; // the default already accounts (or refuses) the work
        }
        hooks.push(Hook {
            name: f.name.clone(),
            line: f.line,
            gated_by_adaptive: f.name.starts_with("adaptive_"),
        });
    }
    hooks
}

/// Runs the hook-parity lint over the `rlra-core::backend` files. The
/// trait definition is located by content (`trait Executor { .. }`), so
/// fixtures exercise the same code path as the workspace.
pub fn check(files: &[&FileModel]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Locate the trait definition file.
    let trait_file = files.iter().find(|f| {
        f.lexed
            .toks
            .windows(2)
            .any(|w| w[0].is_ident("trait") && w[1].is_ident(TRAIT_NAME))
    });
    let Some(trait_file) = trait_file else {
        return findings; // no trait in scope — nothing to check
    };
    let hooks = parity_hooks(trait_file);

    // Registration check: every parity-required hook must be a cost-lint
    // obligation, so its impls are charge-checked too.
    for h in &hooks {
        if !super::cost::is_obligated_hook(&h.name)
            && trait_file.allow_at("hook_parity", h.line).is_none()
        {
            findings.push(Finding {
                file: trait_file.path.clone(),
                line: h.line,
                lint: "hook_parity",
                message: format!(
                    "Executor hook `{}` has a silent default but is not registered in \
                     the cost lint's STAGE_HOOKS/CHARGE_HOOKS — its impls would never \
                     be charge-checked",
                    h.name
                ),
            });
        }
    }

    // Presence check per backend.
    for (label, ty) in BACKENDS {
        // Executor impls for this backend type (excluding test doubles).
        let impls: Vec<(&&FileModel, usize)> = files
            .iter()
            .flat_map(|file| {
                file.impls
                    .iter()
                    .enumerate()
                    .filter(|(_, im)| {
                        im.trait_name.as_deref() == Some(TRAIT_NAME)
                            && im.self_type.as_deref() == Some(*ty)
                            && !file.in_test_range(im.body.start)
                    })
                    .map(move |(j, _)| (file, j))
            })
            .collect();
        if impls.is_empty() {
            continue; // a backend absent from this scope is not "deleted"
        }
        let has_hook = |name: &str| {
            impls.iter().any(|(file, j)| {
                file.fns
                    .iter()
                    .any(|f| f.impl_idx == Some(*j) && f.name == name && !f.in_test)
            })
        };
        let adaptive_on = impls.iter().any(|(file, j)| {
            file.fns.iter().any(|f| {
                f.impl_idx == Some(*j)
                    && f.name == "supports_adaptive"
                    && f.body
                        .as_ref()
                        .map(|b| body_has_ident(file, b, "true"))
                        .unwrap_or(false)
            })
        });
        for h in &hooks {
            if h.gated_by_adaptive && !adaptive_on {
                continue;
            }
            if has_hook(&h.name) {
                continue;
            }
            let allowed = impls
                .iter()
                .any(|(file, j)| file.allow_at("hook_parity", file.impls[*j].line).is_some());
            if allowed {
                continue;
            }
            let (file, j) = impls[0];
            findings.push(Finding {
                file: file.path.clone(),
                line: file.impls[j].line,
                lint: "hook_parity",
                message: format!(
                    "backend `{label}` ({ty}) does not implement Executor hook `{}` — \
                     the silent trait default makes its work free on this backend",
                    h.name
                ),
            });
        }
    }
    findings
}
