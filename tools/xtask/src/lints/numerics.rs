//! `numerics` — raw CholQR call sites must go through the guard ladder.
//!
//! PR 5's robustness story rests on every orthogonalization in the
//! pipeline being able to *escalate*: CholQR breaks down on rank-deficient
//! blocks, and a call site that invokes it raw either aborts the whole
//! run on an input the shifted rung would have rescued, or — worse —
//! escalates silently, skewing the `breakdowns`/`fallbacks` accounting
//! that the what-if studies and the exported metrics rely on.
//!
//! Library code must therefore reach the kernels through
//! `NumericGuard::ladder_rows`/`ladder_tall` (which count, trace and
//! charge each rung), or carry an explicit
//! `// analyze: allow(numerics, reason)` explaining why the raw call is
//! sound (e.g. distributed CholQR schemes that reduce a Gram matrix
//! across devices, where the host-side guard re-runs the factorization
//! anyway).
//!
//! The lint is token-shaped: an identifier starting with `cholqr` or
//! `shifted_cholqr` followed by `(` is a call site; `fn`-definitions and
//! `#[cfg(test)]` regions are skipped. `rlra-lapack` (which defines the
//! kernels) and the guard module itself (which *is* the ladder) are
//! excluded from the scanned file set.

use crate::diag::Finding;
use crate::lex::TokKind;
use crate::scan::FileModel;

/// Whether an identifier names a CholQR-family kernel.
fn is_cholqr_name(name: &str) -> bool {
    name.starts_with("cholqr") || name.starts_with("shifted_cholqr")
}

/// Runs the numerics lint on one file.
pub fn check(file: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !is_cholqr_name(&t.text) {
            continue;
        }
        // Only calls: the identifier must open an argument list. Mentions
        // in `use` paths or signatures don't invoke the kernel.
        if !toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false) {
            continue;
        }
        // `fn cholqr_rows_distributed(..)` defines, it doesn't call.
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        if file.in_test_range(i) {
            continue;
        }
        if file.allow_at("numerics", t.line).is_some() {
            continue;
        }
        findings.push(Finding {
            file: file.path.clone(),
            line: t.line,
            lint: "numerics",
            message: format!(
                "raw `{}` call bypasses the orthogonalization fallback ladder — \
                 route it through `NumericGuard::ladder_rows`/`ladder_tall` or \
                 justify with `// analyze: allow(numerics, reason)`",
                t.text
            ),
        });
    }
    findings
}
