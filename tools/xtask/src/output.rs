//! Machine-readable output: versioned JSON and SARIF 2.1.0 rendering of
//! findings, plus a minimal JSON reader for round-tripping the checked
//! in baseline. Both are hand-rolled — the analyzer stays
//! dependency-free (the build container is offline).

use crate::diag::Finding;
use std::fmt::Write as _;

/// The JSON schema version `to_json` emits (bump on breaking change;
/// `from_json` accepts only this version).
pub const JSON_VERSION: u64 = 1;

/// An owned finding, as read back from JSON (the live [`Finding`] keeps
/// its lint name as `&'static str`, which deserialization cannot
/// produce).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Record {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name.
    pub lint: String,
    /// Human-readable description.
    pub message: String,
}

impl From<&Finding> for Record {
    fn from(f: &Finding) -> Self {
        Record {
            file: f.file.display().to_string(),
            line: f.line,
            lint: f.lint.to_string(),
            message: f.message.clone(),
        }
    }
}

/// Escapes `s` for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings (and optional per-lint timings, in seconds) as the
/// analyzer's versioned JSON document.
pub fn to_json(findings: &[Finding], timings: Option<&[(String, f64)]>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": {JSON_VERSION},");
    out.push_str("  \"tool\": \"rlra-analyze\",\n");
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}",
            esc(&f.file.display().to_string()),
            f.line,
            esc(f.lint),
            esc(&f.message)
        );
    }
    if findings.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
    if let Some(timings) = timings {
        out.push_str(",\n  \"timings\": {");
        for (i, (lint, secs)) in timings.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {:.6}", esc(lint), secs);
        }
        if timings.is_empty() {
            out.push('}');
        } else {
            out.push_str("\n  }");
        }
    }
    out.push_str("\n}\n");
    out
}

/// Renders findings as a SARIF 2.1.0 log (one run, one rule per lint).
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut rules: Vec<&str> = findings.iter().map(|f| f.lint).collect();
    rules.sort_unstable();
    rules.dedup();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"rlra-analyze\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n          \"rules\": [");
    for (i, r) in rules.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}            {{\"id\": \"{}\", \"name\": \"{}\"}}",
            esc(r),
            esc(r)
        );
    }
    if rules.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n          ]\n");
    }
    out.push_str("        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}\n          ]\n        }}",
            esc(f.lint),
            esc(&f.message),
            esc(&f.file.display().to_string()),
            f.line.max(1)
        );
    }
    if findings.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n      ]\n");
    }
    out.push_str("    }\n  ]\n}\n");
    out
}

/// A parsed JSON value (just enough for the analyzer's own documents).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\n\r".contains(b))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(b))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            // Surrogate pairs are not emitted by `esc`;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            members.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Parses an arbitrary JSON document.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

/// Reads an analyzer JSON document back into finding records.
///
/// # Errors
///
/// Rejects malformed JSON, a missing/mismatched `version`, or findings
/// lacking the required fields.
pub fn from_json(s: &str) -> Result<Vec<Record>, String> {
    let doc = parse_json(s)?;
    let version = doc
        .get("version")
        .and_then(Json::as_num)
        .ok_or("missing `version`")?;
    if version != JSON_VERSION as f64 {
        return Err(format!(
            "unsupported analyzer JSON version {version} (expected {JSON_VERSION})"
        ));
    }
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or("missing `findings` array")?;
    findings
        .iter()
        .map(|f| {
            Ok(Record {
                file: f
                    .get("file")
                    .and_then(Json::as_str)
                    .ok_or("finding without `file`")?
                    .to_string(),
                line: f
                    .get("line")
                    .and_then(Json::as_num)
                    .ok_or("finding without `line`")? as u32,
                lint: f
                    .get("lint")
                    .and_then(Json::as_str)
                    .ok_or("finding without `lint`")?
                    .to_string(),
                message: f
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("finding without `message`")?
                    .to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                file: PathBuf::from("crates/gpu/src/algos.rs"),
                line: 10,
                lint: "cost",
                message: "free kernel with \"quotes\" and\nnewline".into(),
            },
            Finding {
                file: PathBuf::from("crates/core/src/backend/cpu.rs"),
                line: 3,
                lint: "discard",
                message: "dropped Result".into(),
            },
        ]
    }

    #[test]
    fn json_roundtrips() {
        let findings = sample();
        let doc = to_json(&findings, Some(&[("cost".to_string(), 0.25)]));
        let records = from_json(&doc).unwrap();
        let expect: Vec<Record> = findings.iter().map(Record::from).collect();
        assert_eq!(records, expect);
    }

    #[test]
    fn empty_json_roundtrips() {
        let records = from_json(&to_json(&[], None)).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn sarif_is_wellformed_json_with_results() {
        let doc = to_sarif(&sample());
        let parsed = parse_json(&doc).unwrap();
        assert_eq!(parsed.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = parsed.get("runs").and_then(Json::as_arr).unwrap();
        let results = runs[0].get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").and_then(Json::as_str),
            Some("cost")
        );
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let doc = to_json(&[], None).replace("\"version\": 1", "\"version\": 99");
        assert!(from_json(&doc).is_err());
    }
}
