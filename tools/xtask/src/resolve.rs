//! Path resolution: maps workspace-relative file paths to crate idents
//! and module paths, and normalizes `use` paths to absolute segment
//! lists so the call graph can resolve qualified and imported calls.

use crate::scan::{FileModel, UseDecl};
use std::path::Path;

/// Crate directory (under `crates/`) → crate ident as it appears in
/// `use` paths. The facade crate lives at the workspace root `src/`.
const CRATE_IDENTS: &[(&str, &str)] = &[
    ("bench", "rlra_bench"),
    ("blas", "rlra_blas"),
    ("core", "rlra_core"),
    ("data", "rlra_data"),
    ("fft", "rlra_fft"),
    ("gpu", "rlra_gpu"),
    ("lapack", "rlra_lapack"),
    ("matrix", "rlra_matrix"),
    ("model", "rlra_perfmodel"),
    ("trace", "rlra_trace"),
];

/// Where a file sits in the crate graph: its crate ident plus the
/// module path from the crate root (`crates/core/src/backend/cpu.rs`
/// → crate `rlra_core`, modules `["backend", "cpu"]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModulePath {
    /// Crate ident (`rlra_gpu`, `rlra_core`, …; `rlra` for the facade).
    pub crate_ident: String,
    /// Module segments from the crate root (empty for `lib.rs`).
    pub modules: Vec<String>,
}

impl ModulePath {
    /// Absolute segments: crate ident followed by the module path.
    pub fn abs(&self) -> Vec<String> {
        let mut v = vec![self.crate_ident.clone()];
        v.extend(self.modules.iter().cloned());
        v
    }
}

/// Derives the [`ModulePath`] for a workspace-relative `.rs` path.
/// Unknown layouts (fixtures, tools) fall back to a crate ident derived
/// from the leading path component.
pub fn module_path(rel: &Path) -> ModulePath {
    let comps: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let (crate_ident, rest) = match comps.first().map(String::as_str) {
        Some("crates") if comps.len() >= 3 && comps[2] == "src" => {
            let ident = CRATE_IDENTS
                .iter()
                .find(|(dir, _)| *dir == comps[1])
                .map(|(_, ident)| (*ident).to_string())
                .unwrap_or_else(|| format!("rlra_{}", comps[1]));
            (ident, &comps[3..])
        }
        Some("src") => ("rlra".to_string(), &comps[1..]),
        Some(first) => (first.to_string(), &comps[1..]),
        None => ("rlra".to_string(), &comps[..0]),
    };
    let mut modules = Vec::new();
    for (i, c) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last {
            let stem = c.strip_suffix(".rs").unwrap_or(c);
            if stem != "lib" && stem != "mod" && stem != "main" {
                modules.push(stem.to_string());
            }
        } else {
            modules.push(c.clone());
        }
    }
    ModulePath {
        crate_ident,
        modules,
    }
}

/// Normalizes a `use` path to absolute segments: `crate::` becomes the
/// current crate ident, `self::` the current module, `super::` the
/// parent module. Already-absolute paths (external crate idents) pass
/// through unchanged.
pub fn normalize_use(decl: &UseDecl, at: &ModulePath) -> Vec<String> {
    let mut segs = decl.segments.clone();
    match segs.first().map(String::as_str) {
        Some("crate") => {
            segs.splice(..1, [at.crate_ident.clone()]);
        }
        Some("self") => {
            segs.splice(..1, at.abs());
        }
        Some("super") => {
            let mut parent = at.abs();
            while segs.first().map(String::as_str) == Some("super") {
                segs.remove(0);
                if parent.len() > 1 {
                    parent.pop();
                }
            }
            parent.extend(segs);
            segs = parent;
        }
        _ => {}
    }
    segs
}

/// Finds the use declaration in `file` binding local name `alias`
/// (exact-alias imports only; glob imports are not consulted — the
/// graph falls back to a global name match for those).
pub fn use_for_alias<'a>(file: &'a FileModel, alias: &str) -> Option<&'a UseDecl> {
    file.uses.iter().find(|u| u.alias == alias)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_paths_follow_layout() {
        let m = module_path(Path::new("crates/core/src/backend/cpu.rs"));
        assert_eq!(m.crate_ident, "rlra_core");
        assert_eq!(m.modules, ["backend", "cpu"]);
        let m = module_path(Path::new("crates/core/src/backend/mod.rs"));
        assert_eq!(m.modules, ["backend"]);
        let m = module_path(Path::new("crates/gpu/src/lib.rs"));
        assert_eq!(m.crate_ident, "rlra_gpu");
        assert!(m.modules.is_empty());
        let m = module_path(Path::new("crates/model/src/roofline.rs"));
        assert_eq!(m.crate_ident, "rlra_perfmodel");
        let m = module_path(Path::new("src/pipeline.rs"));
        assert_eq!(m.crate_ident, "rlra");
        assert_eq!(m.modules, ["pipeline"]);
    }

    #[test]
    fn use_paths_normalize() {
        let at = module_path(Path::new("crates/core/src/backend/cpu.rs"));
        let n = |segs: &[&str]| {
            normalize_use(
                &UseDecl {
                    segments: segs.iter().map(ToString::to_string).collect(),
                    alias: String::new(),
                },
                &at,
            )
        };
        assert_eq!(
            n(&["crate", "result", "Frame"]),
            ["rlra_core", "result", "Frame"]
        );
        assert_eq!(n(&["super", "guard"]), ["rlra_core", "backend", "guard"]);
        assert_eq!(n(&["rlra_gpu", "algos"]), ["rlra_gpu", "algos"]);
        assert_eq!(
            n(&["self", "helpers"]),
            ["rlra_core", "backend", "cpu", "helpers"]
        );
    }
}
