//! A minimal Rust lexer: just enough token structure for the invariant
//! lints, with comments captured separately (the `// analyze: allow`
//! escape hatch lives in comments, and doc-comment examples must never
//! trip a lint).
//!
//! The container this repo grows in is offline, so the analyzer cannot
//! depend on `syn`; the lints below only need identifier/punct streams
//! with line numbers, which this hand-rolled lexer provides without any
//! external crate.

/// Token classes the lints distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String/char/number literal (content irrelevant to the lints).
    Literal,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (single char for punctuation).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// For a string-literal token, the content between the quotes (the
    /// `r`/`b` prefix, `#` fences and quotes are stripped; escape
    /// sequences are left as written). `None` for any other token.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind != TokKind::Literal {
            return None;
        }
        let t = self.text.strip_prefix('b').unwrap_or(&self.text);
        let t = t.strip_prefix('r').unwrap_or(t);
        let t = t.trim_matches('#');
        let t = t.strip_prefix('"')?;
        t.strip_suffix('"').or(Some(t))
    }
}

/// A comment (line or block), captured for allow-annotation lookup.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Raw text, including the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: the token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated constructs are
/// tolerated (consumed to end of input) — the analyzer must never panic
/// on weird input, it reports on what it can see.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let is_id_start = |c: char| c.is_alphabetic() || c == '_';
    let is_id_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (including /// and //! doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            let start_line = line;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line: start_line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                }
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: b[start..i.min(n)].iter().collect(),
            });
            continue;
        }
        // Identifier — with lookahead for raw/byte string prefixes and
        // raw identifiers (`r#fn`).
        if is_id_start(c) {
            let start = i;
            while i < n && is_id_cont(b[i]) {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            // Raw identifier `r#name`: exactly one `#` followed by an
            // identifier start (a raw *string* has `"` after its `#`s).
            // Keep the `r#` prefix in the token text so a raw identifier
            // never collides with the keyword it escapes.
            if text == "r" && i + 1 < n && b[i] == '#' && is_id_start(b[i + 1]) {
                i += 1; // the '#'
                while i < n && is_id_cont(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
                continue;
            }
            // r"..", r#".."#, b"..", br#".."#, b'x'
            if (text == "r" || text == "b" || text == "br")
                && i < n
                && (b[i] == '"' || b[i] == '#' || (text == "b" && b[i] == '\''))
            {
                let start_line = line;
                if b[i] == '\'' {
                    // byte char literal
                    i = consume_char_literal(&b, i, &mut line);
                } else {
                    i = consume_raw_string(&b, i, &mut line);
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: b[start..i.min(n)].iter().collect(),
                    line: start_line,
                });
                continue;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        // Number literal.
        if c.is_ascii_digit() {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                let d = b[i];
                let exp_sign = (d == '+' || d == '-')
                    && matches!(b[i - 1], 'e' | 'E')
                    && i >= 2
                    && b[i - 2].is_ascii_digit();
                if d.is_alphanumeric() || d == '_' || d == '.' || exp_sign {
                    i += 1;
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // String literal. The raw source text (quotes included) is kept
        // on the token — the flops-signature lint reads kernel-name
        // strings — but the token kind stays `Literal`, so contents can
        // never match an identifier-shaped lint pattern.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '\n' {
                    line += 1;
                }
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // '\x' escape or 'a' (closing quote two ahead) => char literal.
            let is_char = (i + 1 < n && b[i + 1] == '\\')
                || (i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'');
            if is_char {
                let start = i;
                let start_line = line;
                i = consume_char_literal(&b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: b[start..i.min(n)].iter().collect(),
                    line: start_line,
                });
            } else {
                let start = i;
                i += 1;
                while i < n && is_id_cont(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }
        // Single punctuation character.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Consumes a char/byte-char literal starting at the opening `'` (or at
/// the `b` prefix's quote); returns the index past the closing quote.
fn consume_char_literal(b: &[char], mut i: usize, line: &mut u32) -> usize {
    debug_assert!(b[i] == '\'');
    i += 1;
    while i < b.len() {
        if b[i] == '\\' {
            i += 2;
            continue;
        }
        if b[i] == '\n' {
            *line += 1;
        }
        if b[i] == '\'' {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Consumes a raw string starting at the `#`s or `"` after the `r`/`br`
/// prefix; returns the index past the closing delimiter.
fn consume_raw_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != '"' {
        return i;
    }
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
        }
        if b[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts_with_lines() {
        let l = lex("fn a() {\n  b.c();\n}\n");
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["fn", "a", "b", "c"]);
        let b = l.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn comments_are_side_channel_not_tokens() {
        let l = lex("// x.unwrap()\n/* panic! */ let y = 1;\n/// doc.expect(\"b\")\n");
        assert_eq!(l.comments.len(), 3);
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.toks.iter().any(|t| t.is_ident("panic")));
        assert!(!l.toks.iter().any(|t| t.is_ident("expect")));
    }

    #[test]
    fn strings_and_chars_hide_contents() {
        let l = lex("let s = \"panic!(\\\")\"; let c = 'x'; let r = r#\"todo!()\"#;");
        assert!(!l.toks.iter().any(|t| t.is_ident("panic")));
        assert!(!l.toks.iter().any(|t| t.is_ident("todo")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            l.toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            3
        );
    }

    #[test]
    fn nested_block_comment() {
        let l = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn raw_identifiers_do_not_open_raw_strings() {
        // `r#fn` once mis-lexed as a raw-string opener, swallowing `#`
        // and leaving a bare `fn` keyword in the stream.
        let l = lex("fn r#fn() { r#loop(); }\nfn after() {}\n");
        assert!(l.toks.iter().any(|t| t.is_ident("after")));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "r#fn"));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "r#loop"));
        // The escaped keyword must not collide with the real `fn`s.
        assert_eq!(l.toks.iter().filter(|t| t.is_ident("fn")).count(), 2);
    }

    #[test]
    fn byte_char_literals_are_literals() {
        let l = lex(r"let a = b'x'; let q = b'\''; let nl = b'\n'; done();");
        assert!(l.toks.iter().any(|t| t.is_ident("done")));
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            3
        );
    }

    #[test]
    fn nested_raw_strings_close_on_matching_fence() {
        // The inner `"#` must not close an `r##"…"##` string.
        let l = lex("let s = r##\"contains \"# inner panic!()\"##; after();");
        assert!(l.toks.iter().any(|t| t.is_ident("after")));
        assert!(!l.toks.iter().any(|t| t.is_ident("panic")));
        let lit = l
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Literal)
            .expect("raw string lexed");
        assert_eq!(lit.str_content(), Some("contains \"# inner panic!()"));
    }

    #[test]
    fn lifetime_vs_char_ambiguities() {
        // 'a as a lifetime, 'a' as a char, b'a' as a byte char, all in
        // one stream, must not desynchronize the lexer.
        let l = lex(
            "fn f<'a>(x: &'a str, y: &'a str) -> char { let c = 'a'; let b = b'a'; c }\nfn g() {}",
        );
        assert!(l.toks.iter().any(|t| t.is_ident("g")));
        assert_eq!(
            l.toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            3
        );
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            2
        );
    }

    #[test]
    fn string_literal_content_is_kept_but_opaque() {
        let l = lex("charge(\"gemm\", 2);");
        let lit = l
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Literal && t.text.starts_with('"'))
            .expect("string lexed");
        assert_eq!(lit.str_content(), Some("gemm"));
        // Content must never surface as an identifier token.
        assert!(!l.toks.iter().any(|t| t.is_ident("gemm")));
    }
}
