//! Workspace layout: which files feed which lint.

use std::path::{Path, PathBuf};

/// Crates whose library code must be panic-free (the crates a serving
/// deployment links against on its hot path).
pub const PANIC_FREE_CRATES: &[&str] = &["core", "gpu", "blas", "model"];

/// Recursively collects `.rs` files under `dir` (sorted for stable
/// output). Missing directories yield an empty list.
pub fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect(dir, &mut out);
    out.sort();
    out
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Whether `path` is a binary target (`src/bin/..`) — exempt from the
/// determinism lint (bench binaries legitimately measure wall time).
pub fn is_bin_target(path: &Path) -> bool {
    path.components().any(|c| c.as_os_str() == "bin")
}

/// All library source files subject to the determinism lint: every
/// workspace crate's `src/` plus the facade crate's `src/`, minus
/// `src/bin/` targets (and minus the analyzer itself).
pub fn determinism_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            out.extend(
                rs_files(&dir.join("src"))
                    .into_iter()
                    .filter(|p| !is_bin_target(p)),
            );
        }
    }
    out.extend(rs_files(&root.join("src")));
    out
}

/// Library source files subject to the panic-freedom lint.
pub fn panic_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for c in PANIC_FREE_CRATES {
        out.extend(
            rs_files(&root.join("crates").join(c).join("src"))
                .into_iter()
                .filter(|p| !is_bin_target(p)),
        );
    }
    out
}

/// Files indexed for the cost lint's transitive call resolution.
pub fn cost_graph_files(root: &Path) -> Vec<PathBuf> {
    let mut out = rs_files(&root.join("crates/gpu/src"));
    out.extend(rs_files(&root.join("crates/core/src/backend")));
    out
}

/// Files whose pub fns are simulated kernels (must charge).
pub fn cost_algo_files(root: &Path) -> Vec<PathBuf> {
    vec![root.join("crates/gpu/src/algos.rs")]
}

/// Files holding `impl Executor for ..` stage hooks (must charge).
pub fn cost_executor_files(root: &Path) -> Vec<PathBuf> {
    rs_files(&root.join("crates/core/src/backend"))
}

/// Files subject to the numerics lint: library sources of the crates
/// that *consume* the CholQR kernels. `rlra-lapack` (which defines them)
/// and `rlra-core::backend::guard` (which is the ladder itself) are
/// exempt.
pub fn numerics_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for c in ["core", "gpu", "data"] {
        out.extend(
            rs_files(&root.join("crates").join(c).join("src"))
                .into_iter()
                .filter(|p| !is_bin_target(p)),
        );
    }
    out.retain(|p| !p.ends_with("backend/guard.rs"));
    out
}

/// Files subject to the trace lint: the `rlra-gpu` library sources,
/// where every clock/timeline/comms accumulator lives.
pub fn trace_files(root: &Path) -> Vec<PathBuf> {
    rs_files(&root.join("crates/gpu/src"))
        .into_iter()
        .filter(|p| !is_bin_target(p))
        .collect()
}

/// BLAS routine files paired with the flops formula file.
pub fn flops_routine_files(root: &Path) -> Vec<PathBuf> {
    vec![
        root.join("crates/blas/src/level2.rs"),
        root.join("crates/blas/src/level3.rs"),
    ]
}

/// The flops formula file.
pub fn flops_file(root: &Path) -> PathBuf {
    root.join("crates/blas/src/flops.rs")
}

/// Finds the workspace root: walks up from `start` until a directory
/// holding both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
