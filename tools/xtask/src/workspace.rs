//! Workspace layout: one declarative scope table mapping each lint to
//! the files it runs over. Every lint consumes [`files_for`]; the table
//! is the single place the repo's layout assumptions live.

use std::path::{Path, PathBuf};

/// Crates whose library code must be panic-free and may not discard
/// `Result`s (the crates a serving deployment links against on its hot
/// path).
pub const PANIC_FREE_CRATES: &[&str] = &["core", "gpu", "blas", "model"];

/// The wall-clock profiling funnel — the one file in library code
/// sanctioned to read `Instant::now` (write-only into the metric
/// registry). The determinism flow analysis skips carriers here, and
/// the `metrics` lint enforces the containment contract in return.
pub const WALL_FUNNEL_SUFFIX: &str = "obs/src/walltime.rs";

/// Whether `path` is the sanctioned wall-clock funnel file.
pub fn is_wall_funnel(path: &Path) -> bool {
    path.ends_with(WALL_FUNNEL_SUFFIX)
}

/// The lint scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// No wall clock / entropy: every crate's library sources.
    Determinism,
    /// No panics: serving-path crates.
    Panic,
    /// Charging sites must emit trace events: `rlra-gpu` sources.
    Trace,
    /// CholQR goes through the guard ladder: consumer crates.
    Numerics,
    /// Simulated kernels that must charge: `rlra-gpu::algos`.
    CostAlgos,
    /// Executor stage hooks that must charge: `rlra-core::backend`.
    CostExecutors,
    /// BLAS routines needing flop formulas.
    FlopsRoutines,
    /// The flop-formula file itself.
    FlopsFormulas,
    /// No ignored `Result`s: serving-path crates.
    Discard,
    /// Backend hook parity: `rlra-core::backend` (trait + impls).
    HookParity,
    /// Kernel charge sites must pass matching cost expressions.
    FlopsSig,
    /// Metric record sites use registered names; the wall funnel stays
    /// time-opaque: `rlra-obs` plus the instrumented crates.
    Metrics,
    /// The metric-name constants table itself (`obs::names`).
    MetricsNames,
    /// Everything indexed for the call graph (superset of the rest).
    Graph,
}

/// One contiguous slice of the workspace.
#[derive(Debug)]
pub struct FileSet {
    /// Crate dirs under `crates/`; empty means every crate dir plus
    /// the facade crate at the workspace root.
    pub crates: &'static [&'static str],
    /// Path under each crate's `src/` — a subdir, a file, or "" for
    /// the whole source tree.
    pub part: &'static str,
}

/// A scope's file selection.
#[derive(Debug)]
pub struct ScopeSpec {
    /// Which lint scope this row defines.
    pub scope: Scope,
    /// Union of workspace slices.
    pub sets: &'static [FileSet],
    /// Drop `src/bin/` targets (bench binaries legitimately measure
    /// wall time and print).
    pub exclude_bins: bool,
    /// Path suffixes excluded from the scope.
    pub exclude_suffixes: &'static [&'static str],
}

const ALL: FileSet = FileSet {
    crates: &[],
    part: "",
};

/// The scope table: every lint's file selection in one place.
pub const SCOPES: &[ScopeSpec] = &[
    ScopeSpec {
        scope: Scope::Determinism,
        sets: &[ALL],
        exclude_bins: true,
        exclude_suffixes: &[],
    },
    ScopeSpec {
        scope: Scope::Panic,
        sets: &[FileSet {
            crates: PANIC_FREE_CRATES,
            part: "",
        }],
        exclude_bins: true,
        exclude_suffixes: &[],
    },
    ScopeSpec {
        scope: Scope::Trace,
        sets: &[FileSet {
            crates: &["gpu"],
            part: "",
        }],
        exclude_bins: true,
        exclude_suffixes: &[],
    },
    ScopeSpec {
        scope: Scope::Numerics,
        sets: &[FileSet {
            crates: &["core", "gpu", "data"],
            part: "",
        }],
        exclude_bins: true,
        // rlra-lapack (defines the kernels) is out of scope; the guard
        // module IS the ladder.
        exclude_suffixes: &["backend/guard.rs"],
    },
    ScopeSpec {
        scope: Scope::CostAlgos,
        sets: &[FileSet {
            crates: &["gpu"],
            part: "algos.rs",
        }],
        exclude_bins: false,
        exclude_suffixes: &[],
    },
    ScopeSpec {
        scope: Scope::CostExecutors,
        sets: &[FileSet {
            crates: &["core"],
            part: "backend",
        }],
        exclude_bins: false,
        exclude_suffixes: &[],
    },
    ScopeSpec {
        scope: Scope::FlopsRoutines,
        sets: &[
            FileSet {
                crates: &["blas"],
                part: "level2.rs",
            },
            FileSet {
                crates: &["blas"],
                part: "level3.rs",
            },
        ],
        exclude_bins: false,
        exclude_suffixes: &[],
    },
    ScopeSpec {
        scope: Scope::FlopsFormulas,
        sets: &[FileSet {
            crates: &["blas"],
            part: "flops.rs",
        }],
        exclude_bins: false,
        exclude_suffixes: &[],
    },
    ScopeSpec {
        scope: Scope::Discard,
        sets: &[FileSet {
            crates: PANIC_FREE_CRATES,
            part: "",
        }],
        exclude_bins: true,
        exclude_suffixes: &[],
    },
    ScopeSpec {
        scope: Scope::HookParity,
        sets: &[FileSet {
            crates: &["core"],
            part: "backend",
        }],
        exclude_bins: false,
        exclude_suffixes: &[],
    },
    ScopeSpec {
        scope: Scope::FlopsSig,
        sets: &[
            FileSet {
                crates: &["gpu"],
                part: "",
            },
            FileSet {
                crates: &["core"],
                part: "backend",
            },
        ],
        exclude_bins: true,
        exclude_suffixes: &[],
    },
    ScopeSpec {
        scope: Scope::Metrics,
        sets: &[FileSet {
            crates: &["obs", "blas", "lapack", "core"],
            part: "",
        }],
        exclude_bins: true,
        exclude_suffixes: &[],
    },
    ScopeSpec {
        scope: Scope::MetricsNames,
        sets: &[FileSet {
            crates: &["obs"],
            part: "names.rs",
        }],
        exclude_bins: false,
        exclude_suffixes: &[],
    },
    ScopeSpec {
        scope: Scope::Graph,
        sets: &[ALL],
        exclude_bins: true,
        exclude_suffixes: &[],
    },
];

/// Files a scope covers, sorted and deduplicated.
pub fn files_for(root: &Path, scope: Scope) -> Vec<PathBuf> {
    let spec = SCOPES
        .iter()
        .find(|s| s.scope == scope)
        .expect("every Scope has a table row");
    let mut out = Vec::new();
    for set in spec.sets {
        let mut roots: Vec<PathBuf> = Vec::new();
        if set.crates.is_empty() {
            if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
                let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
                dirs.sort();
                roots.extend(dirs.into_iter().map(|d| d.join("src")));
            }
            roots.push(root.join("src"));
        } else {
            for c in set.crates {
                roots.push(root.join("crates").join(c).join("src"));
            }
        }
        for r in roots {
            let target = if set.part.is_empty() {
                r
            } else {
                r.join(set.part)
            };
            if target.extension().is_some_and(|e| e == "rs") {
                if target.is_file() {
                    out.push(target);
                }
            } else {
                out.extend(rs_files(&target));
            }
        }
    }
    if spec.exclude_bins {
        out.retain(|p| !is_bin_target(p));
    }
    out.retain(|p| !spec.exclude_suffixes.iter().any(|s| p.ends_with(s)));
    out.sort();
    out.dedup();
    out
}

/// Recursively collects `.rs` files under `dir` (sorted for stable
/// output). Missing directories yield an empty list.
pub fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect(dir, &mut out);
    out.sort();
    out
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Whether `path` is a binary target (`src/bin/..`) — exempt from the
/// determinism lint (bench binaries legitimately measure wall time).
pub fn is_bin_target(path: &Path) -> bool {
    path.components().any(|c| c.as_os_str() == "bin")
}

/// Finds the workspace root: walks up from `start` until a directory
/// holding both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
