//! `cargo xtask analyze` — the workspace invariant checker — and
//! `cargo xtask tracediff` — the telemetry perf-regression gate.
//!
//! Exit status: 0 clean (or no regressions in `--diff`/tracediff mode),
//! 1 violations/regressions found, 2 usage/IO error.
//!
//! Machine-readable documents (`--format json|sarif`) go to stdout;
//! human diagnostics and progress go to stderr, so
//! `cargo xtask analyze --format sarif > out.sarif` stays clean.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask analyze [options]

Checks the repo-specific invariants (cost charging, determinism,
panic-freedom, flops coverage, trace completeness, guarded numerics,
backend hook parity, flops/charge signatures, no discarded Results,
registered metric names / contained wall-clock funnel).
See DESIGN.md \"Enforced invariants\".

options:
  --root <dir>        workspace root (default: walk up from cwd)
  --format <fmt>      human (default) | json | sarif; json/sarif print
                      the full findings document to stdout
  --diff              compare findings against the checked-in baseline;
                      fail only on regressions (new findings)
  --baseline <file>   baseline location (default:
                      <root>/tools/xtask/analyze-baseline.json)
  --write-baseline    rewrite the baseline from the current findings
  --timing            report per-lint wall time on stderr
  --serial            disable parallel file loading

usage: cargo xtask tracediff <baseline.json> <current.json> [options]

Aligns two telemetry JSON exports (BENCH_*.json, BENCH_hotpaths.json,
metrics JSON, or Chrome trace) and fails when a modeled series grew
past the threshold. Wall-clock series are informational unless --wall.

options:
  --threshold <pct>   gate threshold in percent (default: 10)
  --wall              gate wall-clock series too (host noise!)";

#[derive(Default)]
struct Cli {
    root: Option<PathBuf>,
    format: Format,
    diff: bool,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    timing: bool,
    serial: bool,
}

#[derive(Default, PartialEq, Clone, Copy)]
enum Format {
    #[default]
    Human,
    Json,
    Sarif,
}

fn run_tracediff(args: &[String]) -> ExitCode {
    let mut opts = rlra_analyze::tracediff::DiffOpts::default();
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--threshold needs a number\n{USAGE}");
                    return ExitCode::from(2);
                };
                opts.threshold_pct = v;
                i += 2;
            }
            "--wall" => {
                opts.wall = true;
                i += 1;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => {
                paths.push(&args[i]);
                i += 1;
            }
        }
    }
    let [baseline, current] = paths.as_slice() else {
        eprintln!("tracediff needs exactly two files\n{USAGE}");
        return ExitCode::from(2);
    };
    let read = |p: &String| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let report = read(baseline)
        .and_then(|b| read(current).map(|c| (b, c)))
        .and_then(|(b, c)| rlra_analyze::tracediff::diff_docs(&b, &c, &opts));
    match report {
        Ok(rep) => {
            eprint!("{}", rep.render());
            if rep.regressions == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("rlra-analyze tracediff: {e}");
            ExitCode::from(2)
        }
    }
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli::default();
    let mut saw_analyze = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "analyze" => saw_analyze = true,
            "--root" => {
                cli.root = Some(PathBuf::from(args.next().ok_or("--root needs a path")?));
            }
            "--format" => {
                cli.format = match args.next().as_deref() {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    Some(other) => {
                        return Err(format!("unknown format `{other}`"));
                    }
                    None => return Err("--format needs human|json|sarif".into()),
                };
            }
            "--diff" => cli.diff = true,
            "--baseline" => {
                cli.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--write-baseline" => cli.write_baseline = true,
            "--timing" => cli.timing = true,
            "--serial" => cli.serial = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !saw_analyze {
        return Err("expected the `analyze` subcommand".into());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().is_some_and(|a| a == "tracediff") {
        return run_tracediff(&argv[1..]);
    }

    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match cli.root.clone() {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match rlra_analyze::workspace::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("cannot locate the workspace root from {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let opts = rlra_analyze::Options { serial: cli.serial };
    let analysis = match rlra_analyze::analyze_with(&root, &opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rlra-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = &analysis.findings;

    if cli.timing {
        eprintln!("rlra-analyze timings:");
        for (phase, secs) in &analysis.timings {
            eprintln!("  {phase:<12} {:8.1} ms", secs * 1e3);
        }
    }

    // Machine documents always carry the *full* findings set; baseline
    // diffing only decides the exit status.
    match cli.format {
        Format::Human => {}
        Format::Json => {
            let timings = cli.timing.then_some(analysis.timings.as_slice());
            print!("{}", rlra_analyze::output::to_json(findings, timings));
        }
        Format::Sarif => print!("{}", rlra_analyze::output::to_sarif(findings)),
    }

    let baseline_path = cli
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(rlra_analyze::baseline::BASELINE_PATH));

    if cli.write_baseline {
        if let Err(e) = rlra_analyze::baseline::write(&baseline_path, findings) {
            eprintln!("rlra-analyze: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "rlra-analyze: wrote baseline ({} finding(s)) to {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if cli.diff {
        let baseline = match rlra_analyze::baseline::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("rlra-analyze: {e}");
                return ExitCode::from(2);
            }
        };
        let diff = rlra_analyze::baseline::diff(findings, &baseline);
        for r in &diff.regressions {
            eprintln!(
                "{}:{}: [{}] {} (regression)",
                r.file, r.line, r.lint, r.message
            );
        }
        if !diff.fixed.is_empty() {
            eprintln!(
                "rlra-analyze: {} baseline entr{} no longer observed — shrink the baseline",
                diff.fixed.len(),
                if diff.fixed.len() == 1 {
                    "y is"
                } else {
                    "ies are"
                }
            );
        }
        return if diff.regressions.is_empty() {
            eprintln!(
                "rlra-analyze: no regressions against {} ({} finding(s) total)",
                baseline_path.display(),
                findings.len()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!("rlra-analyze: {} regression(s)", diff.regressions.len());
            ExitCode::FAILURE
        };
    }

    if findings.is_empty() {
        eprintln!(
            "rlra-analyze: workspace clean (cost, determinism, panic, flops, trace, \
             numerics, hook_parity, flops_sig, discard, metrics)"
        );
        ExitCode::SUCCESS
    } else {
        if cli.format == Format::Human {
            for f in findings {
                eprintln!("{f}");
            }
        }
        eprintln!("rlra-analyze: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}
