//! `cargo xtask analyze` — the workspace invariant checker.
//!
//! Exit status: 0 clean (or no regressions in `--diff` mode), 1
//! violations/regressions found, 2 usage/IO error.
//!
//! Machine-readable documents (`--format json|sarif`) go to stdout;
//! human diagnostics and progress go to stderr, so
//! `cargo xtask analyze --format sarif > out.sarif` stays clean.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask analyze [options]

Checks the repo-specific invariants (cost charging, determinism,
panic-freedom, flops coverage, trace completeness, guarded numerics,
backend hook parity, flops/charge signatures, no discarded Results).
See DESIGN.md \"Enforced invariants\".

options:
  --root <dir>        workspace root (default: walk up from cwd)
  --format <fmt>      human (default) | json | sarif; json/sarif print
                      the full findings document to stdout
  --diff              compare findings against the checked-in baseline;
                      fail only on regressions (new findings)
  --baseline <file>   baseline location (default:
                      <root>/tools/xtask/analyze-baseline.json)
  --write-baseline    rewrite the baseline from the current findings
  --timing            report per-lint wall time on stderr
  --serial            disable parallel file loading";

#[derive(Default)]
struct Cli {
    root: Option<PathBuf>,
    format: Format,
    diff: bool,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    timing: bool,
    serial: bool,
}

#[derive(Default, PartialEq, Clone, Copy)]
enum Format {
    #[default]
    Human,
    Json,
    Sarif,
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli::default();
    let mut saw_analyze = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "analyze" => saw_analyze = true,
            "--root" => {
                cli.root = Some(PathBuf::from(args.next().ok_or("--root needs a path")?));
            }
            "--format" => {
                cli.format = match args.next().as_deref() {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    Some(other) => {
                        return Err(format!("unknown format `{other}`"));
                    }
                    None => return Err("--format needs human|json|sarif".into()),
                };
            }
            "--diff" => cli.diff = true,
            "--baseline" => {
                cli.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--write-baseline" => cli.write_baseline = true,
            "--timing" => cli.timing = true,
            "--serial" => cli.serial = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !saw_analyze {
        return Err("expected the `analyze` subcommand".into());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match cli.root.clone() {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match rlra_analyze::workspace::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("cannot locate the workspace root from {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let opts = rlra_analyze::Options { serial: cli.serial };
    let analysis = match rlra_analyze::analyze_with(&root, &opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rlra-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = &analysis.findings;

    if cli.timing {
        eprintln!("rlra-analyze timings:");
        for (phase, secs) in &analysis.timings {
            eprintln!("  {phase:<12} {:8.1} ms", secs * 1e3);
        }
    }

    // Machine documents always carry the *full* findings set; baseline
    // diffing only decides the exit status.
    match cli.format {
        Format::Human => {}
        Format::Json => {
            let timings = cli.timing.then_some(analysis.timings.as_slice());
            print!("{}", rlra_analyze::output::to_json(findings, timings));
        }
        Format::Sarif => print!("{}", rlra_analyze::output::to_sarif(findings)),
    }

    let baseline_path = cli
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(rlra_analyze::baseline::BASELINE_PATH));

    if cli.write_baseline {
        if let Err(e) = rlra_analyze::baseline::write(&baseline_path, findings) {
            eprintln!("rlra-analyze: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "rlra-analyze: wrote baseline ({} finding(s)) to {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if cli.diff {
        let baseline = match rlra_analyze::baseline::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("rlra-analyze: {e}");
                return ExitCode::from(2);
            }
        };
        let diff = rlra_analyze::baseline::diff(findings, &baseline);
        for r in &diff.regressions {
            eprintln!(
                "{}:{}: [{}] {} (regression)",
                r.file, r.line, r.lint, r.message
            );
        }
        if !diff.fixed.is_empty() {
            eprintln!(
                "rlra-analyze: {} baseline entr{} no longer observed — shrink the baseline",
                diff.fixed.len(),
                if diff.fixed.len() == 1 {
                    "y is"
                } else {
                    "ies are"
                }
            );
        }
        return if diff.regressions.is_empty() {
            eprintln!(
                "rlra-analyze: no regressions against {} ({} finding(s) total)",
                baseline_path.display(),
                findings.len()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!("rlra-analyze: {} regression(s)", diff.regressions.len());
            ExitCode::FAILURE
        };
    }

    if findings.is_empty() {
        eprintln!(
            "rlra-analyze: workspace clean (cost, determinism, panic, flops, trace, \
             numerics, hook_parity, flops_sig, discard)"
        );
        ExitCode::SUCCESS
    } else {
        if cli.format == Format::Human {
            for f in findings {
                eprintln!("{f}");
            }
        }
        eprintln!("rlra-analyze: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}
