//! `cargo xtask analyze` — the workspace invariant checker.
//!
//! Exit status: 0 clean, 1 violations found, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask analyze [--root <workspace-root>]

Checks the repo-specific invariants (cost charging, determinism,
panic-freedom, flops coverage, trace completeness, guarded numerics).
See DESIGN.md \"Enforced invariants\".";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut saw_analyze = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "analyze" => saw_analyze = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !saw_analyze {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match rlra_analyze::workspace::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("cannot locate the workspace root from {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    match rlra_analyze::analyze(&root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "rlra-analyze: workspace clean (cost, determinism, panic, flops, trace, numerics)"
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("rlra-analyze: {} violation(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("rlra-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
