//! Engine-level integration tests: the machine-readable outputs round-
//! trip end to end, the baseline diff gates regressions, the parallel
//! loader agrees with the serial one, and the cost lint's obligation
//! lists cannot go stale against the real `Executor` trait.

use rlra_analyze::diag::Finding;
use rlra_analyze::scan::FileModel;
use rlra_analyze::{baseline, lints, output, Options};
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn parallel_and_serial_loading_agree() {
    let root = workspace_root();
    let par = rlra_analyze::analyze_with(&root, &Options { serial: false })
        .expect("parallel analysis runs");
    let ser =
        rlra_analyze::analyze_with(&root, &Options { serial: true }).expect("serial analysis runs");
    assert_eq!(
        par.findings, ser.findings,
        "parallel file loading must not change the findings"
    );
}

#[test]
fn baseline_diff_passes_clean_and_fails_on_a_seeded_regression() {
    let root = workspace_root();
    let current = rlra_analyze::analyze(&root).expect("analyze runs");
    let base = baseline::load(&root.join(baseline::BASELINE_PATH))
        .expect("the checked-in baseline parses");

    // The checked-in baseline matches the tree: no regressions.
    let clean = baseline::diff(&current, &base);
    assert!(
        clean.regressions.is_empty(),
        "unexpected regressions: {:#?}",
        clean.regressions
    );

    // Seed a regression (the finding a deleted backend charge would
    // produce) and the diff must fail.
    let mut seeded = current.clone();
    seeded.push(Finding {
        file: PathBuf::from("crates/core/src/backend/gpu_exec.rs"),
        line: 40,
        lint: "hook_parity",
        message: "backend `gpu` (GpuExec) does not implement Executor hook \
                  `charge_fallback` — the silent trait default makes its work \
                  free on this backend"
            .into(),
    });
    let broken = baseline::diff(&seeded, &base);
    assert_eq!(
        broken.regressions.len(),
        1,
        "the seeded finding must surface as a regression"
    );
    assert_eq!(broken.regressions[0].lint, "hook_parity");
}

#[test]
fn obligation_lists_match_the_real_executor_trait() {
    // Every STAGE_HOOKS/CHARGE_HOOKS entry must name a method of the
    // real `Executor` trait — a renamed hook with a stale obligation
    // entry would silently stop being charge-checked. (The converse —
    // every silent-default hook is obligated — is the hook_parity
    // lint's registration check, exercised by `workspace_is_clean`.)
    let path = workspace_root().join("crates/core/src/backend/mod.rs");
    let src = std::fs::read_to_string(&path).expect("backend/mod.rs exists");
    let model = FileModel::new(PathBuf::from("crates/core/src/backend/mod.rs"), &src);
    let trait_fns: Vec<&str> = model
        .fns
        .iter()
        .filter(|f| f.in_trait_def && !f.in_test)
        .map(|f| f.name.as_str())
        .collect();
    assert!(
        !trait_fns.is_empty(),
        "the Executor trait definition must be scannable"
    );
    for hook in lints::cost::STAGE_HOOKS
        .iter()
        .chain(lints::cost::CHARGE_HOOKS)
    {
        assert!(
            trait_fns.contains(hook),
            "obligated hook `{hook}` is not a method of the Executor trait — \
             stale entry in STAGE_HOOKS/CHARGE_HOOKS"
        );
    }
}

#[test]
fn cli_json_document_round_trips() {
    let root = workspace_root();
    let out = Command::new(env!("CARGO_BIN_EXE_rlra-analyze"))
        .args(["analyze", "--format", "json", "--root"])
        .arg(&root)
        .output()
        .expect("the analyzer binary runs");
    assert!(out.status.success(), "analyzer failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("json output is utf-8");
    let records = output::from_json(&stdout).expect("the CLI's json parses back");
    assert!(
        records.is_empty(),
        "the workspace is clean, so the document carries no findings: {records:#?}"
    );
}

#[test]
fn cli_sarif_document_is_wellformed() {
    let root = workspace_root();
    let out = Command::new(env!("CARGO_BIN_EXE_rlra-analyze"))
        .args(["analyze", "--format", "sarif", "--root"])
        .arg(&root)
        .output()
        .expect("the analyzer binary runs");
    assert!(out.status.success(), "analyzer failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("sarif output is utf-8");
    let doc = output::parse_json(&stdout).expect("the SARIF document is valid JSON");
    assert_eq!(
        doc.get("version").and_then(|v| v.as_str()),
        Some("2.1.0"),
        "SARIF version pinned"
    );
    let driver = doc
        .get("runs")
        .and_then(|r| r.as_arr())
        .and_then(|runs| runs.first())
        .and_then(|run| run.get("tool"))
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("name"))
        .and_then(|n| n.as_str());
    assert_eq!(driver, Some("rlra-analyze"));
}

#[test]
fn cli_diff_against_the_checked_in_baseline_is_clean() {
    let root = workspace_root();
    let out = Command::new(env!("CARGO_BIN_EXE_rlra-analyze"))
        .args(["analyze", "--diff", "--root"])
        .arg(&root)
        .output()
        .expect("the analyzer binary runs");
    assert!(
        out.status.success(),
        "`analyze --diff` must pass against the checked-in baseline: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
