//! Fixture tests: each lint must fire on its `*_bad.rs` fixture and
//! stay silent on its `*_ok.rs` fixture — plus the keystone check that
//! the real workspace is clean.
//!
//! The graph-based lints (cost, trace, determinism flow, discard) build
//! a [`Graph`] over the fixture files, so the tests exercise the same
//! interprocedural machinery the workspace run uses.

use rlra_analyze::diag::Finding;
use rlra_analyze::graph::Graph;
use rlra_analyze::lints;
use rlra_analyze::scan::FileModel;
use std::collections::HashSet;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> FileModel {
    fixture_at(name, name)
}

/// Loads a fixture under a caller-chosen repo-relative path, so the
/// graph's `use`-resolution sees workspace-shaped module paths.
fn fixture_at(name: &str, rel: &str) -> FileModel {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {name}: {e}"));
    FileModel::new(PathBuf::from(rel), &src)
}

fn lints_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.lint).collect()
}

#[test]
fn determinism_flags_every_entropy_source() {
    let file = fixture("determinism_bad.rs");
    let findings = lints::determinism::check(&file);
    // Instant::now, SystemTime (x2: use + call), thread_rng, from_entropy,
    // rand::random.
    assert!(
        findings.len() >= 5,
        "expected >= 5 determinism findings, got {findings:#?}"
    );
    assert!(lints_of(&findings).iter().all(|l| *l == "determinism"));
}

#[test]
fn determinism_accepts_seeded_tests_docs_and_allows() {
    let file = fixture("determinism_ok.rs");
    let findings = lints::determinism::check(&file);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn determinism_flow_flags_callers_of_allowed_carriers() {
    let file = fixture("det_flow_bad.rs");
    // The carrier's own allow satisfies the direct check...
    assert!(lints::determinism::check(&file).is_empty());
    // ...but the caller pulls the wall clock into unannotated code.
    let graph = Graph::build(vec![&file]);
    let scoped: HashSet<&Path> = [file.path.as_path()].into();
    let findings = lints::determinism::check_flow(&graph, &scoped);
    assert_eq!(findings.len(), 1, "got {findings:#?}");
    assert!(findings[0].message.contains("annotate") || findings[0].line > 0);
    assert!(findings[0].message.contains("wall_seconds"));
}

#[test]
fn determinism_flow_accepts_callers_with_their_own_allow() {
    let file = fixture("det_flow_ok.rs");
    assert!(lints::determinism::check(&file).is_empty());
    let graph = Graph::build(vec![&file]);
    let scoped: HashSet<&Path> = [file.path.as_path()].into();
    let findings = lints::determinism::check_flow(&graph, &scoped);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn panics_flags_every_panic_path() {
    let file = fixture("panics_bad.rs");
    let findings = lints::panics::check(&file);
    // unwrap, expect, panic!, todo!, unimplemented!, assert!,
    // assert_eq!, assert_ne!.
    assert_eq!(findings.len(), 8, "got {findings:#?}");
    assert!(lints_of(&findings).iter().all(|l| *l == "panic"));
}

#[test]
fn panics_accepts_results_tests_docs_and_allows() {
    let file = fixture("panics_ok.rs");
    let findings = lints::panics::check(&file);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn cost_flags_free_kernels_and_hooks() {
    let file = fixture("cost_bad.rs");
    let files = [&file];
    let graph = Graph::build(vec![&file]);
    let findings = lints::cost::check(&graph, &files, &files);
    // free_kernel, free_via_helper, gaussian_sample, tsqr,
    // adaptive_update_panel.
    assert_eq!(findings.len(), 5, "got {findings:#?}");
    assert!(lints_of(&findings).iter().all(|l| *l == "cost"));
}

#[test]
fn cost_accepts_charges_refusals_and_allows() {
    let file = fixture("cost_ok.rs");
    let files = [&file];
    let graph = Graph::build(vec![&file]);
    let findings = lints::cost::check(&graph, &files, &files);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn cost_flags_integrity_hooks_outside_the_charging_funnel() {
    let file = fixture("integrity_bad.rs");
    let files = [&file];
    let graph = Graph::build(vec![&file]);
    let findings = lints::cost::check(&graph, &files, &files);
    // unbilled_checksum_row, unbilled_verify, charge_checksum_encode,
    // verify_integrity.
    assert_eq!(findings.len(), 4, "got {findings:#?}");
    assert!(lints_of(&findings).iter().all(|l| *l == "cost"));
    let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("charge_checksum_encode")));
    assert!(msgs.iter().any(|m| m.contains("verify_integrity")));
}

#[test]
fn cost_accepts_billed_refused_and_allowed_integrity_hooks() {
    let file = fixture("integrity_ok.rs");
    let files = [&file];
    let graph = Graph::build(vec![&file]);
    let findings = lints::cost::check(&graph, &files, &files);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn cost_resolves_charges_across_files_via_use() {
    // `fused_pass` charges only through a helper in another file,
    // imported with `use crate::device::charge_helper` — per-file
    // analysis would flag it; the graph must not. `free_pass` is the
    // in-file control proving the lint still fires.
    let algos = fixture_at("cost_cross_algos.rs", "crates/gpu/src/algos.rs");
    let device = fixture_at("cost_cross_device.rs", "crates/gpu/src/device.rs");
    let graph = Graph::build(vec![&algos, &device]);
    let findings = lints::cost::check(&graph, &[&algos], &[]);
    assert_eq!(findings.len(), 1, "got {findings:#?}");
    assert!(findings[0].message.contains("free_pass"));
}

#[test]
fn flops_requires_a_formula_per_routine() {
    let routines = fixture("flops_routines.rs");
    let formulas = fixture("flops_formulas.rs");
    let findings = lints::flops::check(&[&routines], &formulas);
    // Only `uncovered`: `covered` has a formula, `waived` an allow, and
    // the private helper is out of scope.
    assert_eq!(findings.len(), 1, "got {findings:#?}");
    assert!(findings[0].message.contains("uncovered"));
}

#[test]
fn trace_flags_silent_charging_sites() {
    let file = fixture("trace_bad.rs");
    let graph = Graph::build(vec![&file]);
    let findings = lints::trace::check(&graph, &[&file]);
    // silent_timeline, silent_clock, silent_comms.
    assert_eq!(findings.len(), 3, "got {findings:#?}");
    assert!(lints_of(&findings).iter().all(|l| *l == "trace"));
}

#[test]
fn trace_accepts_emits_helpers_allows_and_tests() {
    // Includes the transitive case: `accrue_comms` charges and only
    // reaches `emit` through `note_comms` on the call graph.
    let file = fixture("trace_ok.rs");
    let graph = Graph::build(vec![&file]);
    let findings = lints::trace::check(&graph, &[&file]);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn hook_parity_flags_deleted_impls_and_unregistered_hooks() {
    let file = fixture("hook_parity_bad.rs");
    let findings = lints::hook_parity::check(&[&file]);
    assert_eq!(findings.len(), 2, "got {findings:#?}");
    // The silent default that dodges the cost lint's obligation lists.
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("charge_mystery") && f.message.contains("not registered")),
        "missing registration finding: {findings:#?}"
    );
    // The deleted backend charge: GpuExec lost its charge_fallback.
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("charge_fallback") && f.message.contains("`gpu`")),
        "missing deleted-impl finding: {findings:#?}"
    );
}

#[test]
fn hook_parity_accepts_impls_gates_allows_and_exempt_defaults() {
    let file = fixture("hook_parity_ok.rs");
    let findings = lints::hook_parity::check(&[&file]);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn flops_sig_flags_every_mispairing() {
    let file = fixture("flops_sig_bad.rs");
    let mut findings = lints::flops_sig::check(&[&file]);
    rlra_analyze::diag::sort(&mut findings);
    findings.dedup(); // the site check and the sweep agree on arity drift
                      // mispriced, wrong_arity, dynamic_name, unknown_kernel, four_args,
                      // hand_priced, stale_dims, sweep_arity.
    assert_eq!(findings.len(), 8, "got {findings:#?}");
    assert!(lints_of(&findings).iter().all(|l| *l == "flops_sig"));
    for needle in [
        "the pricing table assigns `CostModel::gemm`",
        "must be a literal string",
        "unknown kernel name \"warp_reduce\"",
        "this site passes 4",
        "never calls the cost model",
        "does not appear in the reported dims",
        "passes 1 argument(s) but `CostModel::blas1` takes 2",
    ] {
        assert!(
            findings.iter().any(|f| f.message.contains(needle)),
            "no finding matching {needle:?}: {findings:#?}"
        );
    }
}

#[test]
fn flops_sig_accepts_matched_pairings_allows_and_tests() {
    let file = fixture("flops_sig_ok.rs");
    let findings = lints::flops_sig::check(&[&file]);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn discard_flags_dropped_results() {
    let file = fixture("discard_bad.rs");
    let graph = Graph::build(vec![&file]);
    let findings = lints::discard::check(&graph, &[&file]);
    // let _ = dev.sync(), bare refresh(dev), bare dev.sync().
    assert_eq!(findings.len(), 3, "got {findings:#?}");
    assert!(lints_of(&findings).iter().all(|l| *l == "discard"));
    assert!(findings.iter().any(|f| f.message.contains("let _")));
    assert!(findings.iter().any(|f| f.message.contains("`refresh(..)`")));
    assert!(findings.iter().any(|f| f.message.contains("`sync(..)`")));
}

#[test]
fn discard_accepts_consumed_results_splits_allows_and_tests() {
    let file = fixture("discard_ok.rs");
    let graph = Graph::build(vec![&file]);
    let findings = lints::discard::check(&graph, &[&file]);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn allow_without_reason_is_reported() {
    let file = fixture("allow_bad.rs");
    // The malformed allow still suppresses the panic finding...
    assert!(lints::panics::check(&file).is_empty());
    // ...but is itself reported.
    let findings = lints::check_allow_reasons(&file);
    assert_eq!(findings.len(), 1, "got {findings:#?}");
    assert_eq!(findings[0].lint, "allow");
}

#[test]
fn numerics_flags_raw_cholqr_calls() {
    let file = fixture("numerics_bad.rs");
    let findings = lints::numerics::check(&file);
    // cholqr_rows2, cholqr2, shifted_cholqr2.
    assert_eq!(findings.len(), 3, "got {findings:#?}");
    assert!(lints_of(&findings).iter().all(|l| *l == "numerics"));
}

#[test]
fn numerics_accepts_ladder_defs_tests_and_allows() {
    let file = fixture("numerics_ok.rs");
    let findings = lints::numerics::check(&file);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn metrics_flags_literals_unregistered_names_and_foreign_clocks() {
    let names = fixture_at("metrics_names.rs", "crates/obs/src/names.rs");
    let file = fixture_at("metrics_bad.rs", "crates/core/src/telemetry.rs");
    let findings = lints::metrics::check(&[&file], Some(&names));
    // Inline literal, unregistered constant, allow(determinism) outside
    // the funnel.
    assert_eq!(findings.len(), 3, "got {findings:#?}");
    assert!(lints_of(&findings).iter().all(|l| *l == "metrics"));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("inline string literal")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("NOT_IN_TABLE_SECONDS")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("single sanctioned clock")));
}

#[test]
fn metrics_accepts_constants_forwarding_defs_tests_and_allows() {
    let names = fixture_at("metrics_names.rs", "crates/obs/src/names.rs");
    let file = fixture_at("metrics_ok.rs", "crates/core/src/telemetry.rs");
    let findings = lints::metrics::check(&[&file], Some(&names));
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn metrics_flags_a_drifted_names_table() {
    let names = fixture_at("metrics_names_bad.rs", "crates/obs/src/names.rs");
    let findings = lints::metrics::check(&[], Some(&names));
    // B_SECONDS missing from ALL; ALL references REMOVED_GAUGE.
    assert_eq!(findings.len(), 2, "got {findings:#?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`B_SECONDS` is missing from `ALL`")));
    assert!(findings.iter().any(|f| f.message.contains("REMOVED_GAUGE")));
}

#[test]
fn metrics_flags_a_time_leaking_funnel_surface() {
    let funnel = fixture_at("metrics_funnel_bad.rs", "crates/obs/src/walltime.rs");
    let findings = lints::metrics::check(&[&funnel], None);
    // elapsed_seconds -> f64, peek -> Duration; registry() and the
    // private fn stay silent.
    assert_eq!(findings.len(), 2, "got {findings:#?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`elapsed_seconds` returns `f64`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`peek` returns `Duration`")));
}

#[test]
fn determinism_flow_exempts_the_wall_funnel() {
    // At the funnel path, the allowed carrier does not seed entropy
    // flow: callers of instrumented hot paths stay clean.
    let funnel = fixture_at("det_funnel.rs", "crates/obs/src/walltime.rs");
    let graph = Graph::build(vec![&funnel]);
    let scoped: HashSet<&Path> = [funnel.path.as_path()].into();
    let findings = lints::determinism::check_flow(&graph, &scoped);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");

    // The identical content anywhere else still poisons its callers.
    let elsewhere = fixture_at("det_funnel.rs", "crates/gpu/src/clock.rs");
    let graph = Graph::build(vec![&elsewhere]);
    let scoped: HashSet<&Path> = [elsewhere.path.as_path()].into();
    let findings = lints::determinism::check_flow(&graph, &scoped);
    assert_eq!(findings.len(), 1, "got {findings:#?}");
    assert!(findings[0].message.contains("gemm_hot_path"));
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf();
    let findings = rlra_analyze::analyze(&root).expect("analyze runs");
    assert!(
        findings.is_empty(),
        "the workspace must satisfy its own invariants:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
