//! Fixture tests: each lint must fire on its `*_bad.rs` fixture and
//! stay silent on its `*_ok.rs` fixture — plus the keystone check that
//! the real workspace is clean.

use rlra_analyze::lints;
use rlra_analyze::scan::FileModel;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> FileModel {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {name}: {e}"));
    FileModel::new(PathBuf::from(name), &src)
}

fn lints_of(findings: &[rlra_analyze::diag::Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.lint).collect()
}

#[test]
fn determinism_flags_every_entropy_source() {
    let file = fixture("determinism_bad.rs");
    let findings = lints::determinism::check(&file);
    // Instant::now, SystemTime (x2: use + call), thread_rng, from_entropy,
    // rand::random.
    assert!(
        findings.len() >= 5,
        "expected >= 5 determinism findings, got {findings:#?}"
    );
    assert!(lints_of(&findings).iter().all(|l| *l == "determinism"));
}

#[test]
fn determinism_accepts_seeded_tests_docs_and_allows() {
    let file = fixture("determinism_ok.rs");
    let findings = lints::determinism::check(&file);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn panics_flags_every_panic_path() {
    let file = fixture("panics_bad.rs");
    let findings = lints::panics::check(&file);
    // unwrap, expect, panic!, todo!, unimplemented!, assert!,
    // assert_eq!, assert_ne!.
    assert_eq!(findings.len(), 8, "got {findings:#?}");
    assert!(lints_of(&findings).iter().all(|l| *l == "panic"));
}

#[test]
fn panics_accepts_results_tests_docs_and_allows() {
    let file = fixture("panics_ok.rs");
    let findings = lints::panics::check(&file);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn cost_flags_free_kernels_and_hooks() {
    let file = fixture("cost_bad.rs");
    let files = [&file];
    let findings = lints::cost::check(&files, &files, &files);
    // free_kernel, free_via_helper, gaussian_sample, tsqr,
    // adaptive_update_panel.
    assert_eq!(findings.len(), 5, "got {findings:#?}");
    assert!(lints_of(&findings).iter().all(|l| *l == "cost"));
}

#[test]
fn cost_accepts_charges_refusals_and_allows() {
    let file = fixture("cost_ok.rs");
    let files = [&file];
    let findings = lints::cost::check(&files, &files, &files);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn flops_requires_a_formula_per_routine() {
    let routines = fixture("flops_routines.rs");
    let formulas = fixture("flops_formulas.rs");
    let findings = lints::flops::check(&[&routines], &formulas);
    // Only `uncovered`: `covered` has a formula, `waived` an allow, and
    // the private helper is out of scope.
    assert_eq!(findings.len(), 1, "got {findings:#?}");
    assert!(findings[0].message.contains("uncovered"));
}

#[test]
fn trace_flags_silent_charging_sites() {
    let file = fixture("trace_bad.rs");
    let findings = lints::trace::check(&file);
    // silent_timeline, silent_clock, silent_comms.
    assert_eq!(findings.len(), 3, "got {findings:#?}");
    assert!(lints_of(&findings).iter().all(|l| *l == "trace"));
}

#[test]
fn trace_accepts_emits_helpers_allows_and_tests() {
    let file = fixture("trace_ok.rs");
    let findings = lints::trace::check(&file);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn allow_without_reason_is_reported() {
    let file = fixture("allow_bad.rs");
    // The malformed allow still suppresses the panic finding...
    assert!(lints::panics::check(&file).is_empty());
    // ...but is itself reported.
    let findings = lints::check_allow_reasons(&file);
    assert_eq!(findings.len(), 1, "got {findings:#?}");
    assert_eq!(findings[0].lint, "allow");
}

#[test]
fn numerics_flags_raw_cholqr_calls() {
    let file = fixture("numerics_bad.rs");
    let findings = lints::numerics::check(&file);
    // cholqr_rows2, cholqr2, shifted_cholqr2.
    assert_eq!(findings.len(), 3, "got {findings:#?}");
    assert!(lints_of(&findings).iter().all(|l| *l == "numerics"));
}

#[test]
fn numerics_accepts_ladder_defs_tests_and_allows() {
    let file = fixture("numerics_ok.rs");
    let findings = lints::numerics::check(&file);
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf();
    let findings = rlra_analyze::analyze(&root).expect("analyze runs");
    assert!(
        findings.is_empty(),
        "the workspace must satisfy its own invariants:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
