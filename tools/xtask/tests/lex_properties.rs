//! Property tests for the hand-rolled lexer: random token sequences
//! round-trip through `lex`, and adversarial character soup never
//! panics or produces out-of-range line numbers. The analyzer's nine
//! lints all sit on this token stream, so the lexer must stay total.

use proptest::prelude::*;
use rlra_analyze::lex::{lex, TokKind};

/// One vocabulary entry: source text, the token kinds it must lex to,
/// and whether it must be followed by a newline (line comments swallow
/// the rest of their line).
struct Vocab {
    src: &'static str,
    kinds: &'static [TokKind],
    needs_newline: bool,
}

const VOCAB: &[Vocab] = &[
    Vocab {
        src: "fn",
        kinds: &[TokKind::Ident],
        needs_newline: false,
    },
    Vocab {
        src: "r#match",
        kinds: &[TokKind::Ident],
        needs_newline: false,
    },
    Vocab {
        src: "charge_kernel",
        kinds: &[TokKind::Ident],
        needs_newline: false,
    },
    Vocab {
        src: "'a",
        kinds: &[TokKind::Lifetime],
        needs_newline: false,
    },
    Vocab {
        src: "'x'",
        kinds: &[TokKind::Literal],
        needs_newline: false,
    },
    Vocab {
        src: "b'\\''",
        kinds: &[TokKind::Literal],
        needs_newline: false,
    },
    Vocab {
        src: "\"a \\\" quote\"",
        kinds: &[TokKind::Literal],
        needs_newline: false,
    },
    Vocab {
        src: "r#\"raw \" inner\"#",
        kinds: &[TokKind::Literal],
        needs_newline: false,
    },
    Vocab {
        src: "42",
        kinds: &[TokKind::Literal],
        needs_newline: false,
    },
    Vocab {
        src: "::",
        kinds: &[TokKind::Punct, TokKind::Punct],
        needs_newline: false,
    },
    Vocab {
        src: "(",
        kinds: &[TokKind::Punct],
        needs_newline: false,
    },
    Vocab {
        src: "}",
        kinds: &[TokKind::Punct],
        needs_newline: false,
    },
    Vocab {
        src: "// panic! inside a comment",
        kinds: &[],
        needs_newline: true,
    },
    Vocab {
        src: "/* todo! in a block */",
        kinds: &[],
        needs_newline: false,
    },
];

/// Characters for the adversarial soup: quote openers, fences, escapes
/// and prefix letters in every broken combination.
const SOUP: &[char] = &[
    '"', '\'', '#', 'r', 'b', '\\', '/', '*', 'x', '1', '(', ')', '{', '}', ':', '.', ' ', '\n',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn vocabulary_sequences_round_trip(
        picks in proptest::collection::vec(0usize..14, 0usize..40),
        seps in proptest::collection::vec(0usize..3, 0usize..40),
    ) {
        let mut src = String::new();
        let mut expected: Vec<TokKind> = Vec::new();
        for (j, &p) in picks.iter().enumerate() {
            let v = &VOCAB[p];
            src.push_str(v.src);
            expected.extend_from_slice(v.kinds);
            let sep = if v.needs_newline {
                "\n"
            } else {
                ["\n", " ", "\t "][seps.get(j).copied().unwrap_or(0)]
            };
            src.push_str(sep);
        }
        let lexed = lex(&src);
        let got: Vec<TokKind> = lexed.toks.iter().map(|t| t.kind).collect();
        prop_assert_eq!(&got, &expected);
        // Identifier texts survive verbatim (the lints match on them).
        let idents_in: Vec<&str> = picks
            .iter()
            .filter(|&&p| VOCAB[p].kinds == [TokKind::Ident])
            .map(|&p| VOCAB[p].src)
            .collect();
        let idents_out: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents_out, idents_in);
    }

    #[test]
    fn character_soup_never_panics_and_lines_stay_ordered(
        chars in proptest::collection::vec(0usize..18, 0usize..120),
    ) {
        let src: String = chars.iter().map(|&c| SOUP[c]).collect();
        let lexed = lex(&src); // must not panic on any input
        let line_count = src.lines().count() as u32 + 1;
        let mut prev = 1u32;
        for t in &lexed.toks {
            prop_assert!(t.line >= prev, "line numbers regressed: {:?}", lexed.toks);
            prop_assert!(t.line <= line_count, "line out of range: {:?}", t);
            prev = t.line;
        }
        // Lexing is deterministic: the same soup lexes identically.
        let again = lex(&src);
        prop_assert_eq!(lexed.toks.len(), again.toks.len());
    }
}
