// Fixture: every charging shape the trace lint must accept — direct
// emits, trace* helpers, allows, and test code.

impl Gpu {
    /// The funnel: charges and emits in one place.
    fn accrue(&mut self, phase: Phase, secs: f64) {
        let start = self.clock;
        self.clock += secs;
        self.timeline.add(phase, secs);
        if let Some(t) = &self.tracer {
            t.emit(TraceEvent::Span {
                device: self.device,
                phase: phase.label(),
                start,
                end: self.clock,
            });
        }
    }
}

impl MultiGpu {
    /// Charges centrally and annotates via a trace* helper.
    fn charge_all(&mut self, phase: Phase, secs: f64) {
        let start = self.time();
        self.host_timeline.add(phase, secs);
        self.trace_collective(phase, start, secs);
    }

    // analyze: allow(trace, folds an already-traced simulation whose events the sim devices emitted)
    fn absorb(&mut self, sim: &MultiGpu) {
        self.host_timeline.add(Phase::Other, sim.time());
    }
}

impl Gpu {
    /// Charges, with the emit two calls away: the lint must walk the
    /// call graph (`accrue_comms` → `note_comms` → `emit`) rather than
    /// demand the emit in the charging function itself.
    fn accrue_comms(&mut self, secs: f64) {
        self.comms_inter += secs;
        self.note_comms(secs);
    }

    /// Not a `trace*`-named helper, not an `emit` call site name — only
    /// the graph edge proves `accrue_comms` is traced.
    fn note_comms(&self, secs: f64) {
        if let Some(t) = &self.tracer {
            t.emit(TraceEvent::Point {
                device: self.device,
                at: secs,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_charge_silently() {
        let mut g = Gpu::k40c_dry();
        g.timeline.add(Phase::Other, 1.0);
    }
}
