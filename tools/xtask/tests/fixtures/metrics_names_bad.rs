//! Fixture: a names table whose `ALL` enumeration has drifted — one
//! constant is missing from it, and it references a constant that no
//! longer exists.

pub const A_TOTAL: &str = "rlra_a_total";
pub const B_SECONDS: &str = "rlra_b_seconds";

pub const ALL: &[&str] = &[A_TOTAL, REMOVED_GAUGE];
