// Fixture: flow-check shapes that must pass — the carrier itself (its
// own allow covers it) and a caller that carries its own allow.

// analyze: allow(determinism, bench banner only; figures never read this value)
fn wall_seconds() -> f64 {
    Instant::now().elapsed().as_secs_f64()
}

pub struct Report {
    pub wall: f64,
}

// analyze: allow(determinism, the banner is cosmetic; every figure uses the simulated clock)
pub fn annotate(report: &mut Report) {
    report.wall = wall_seconds();
}

/// Never touches the carrier: nothing to flag.
pub fn summarize(report: &Report) -> f64 {
    report.wall * 0.0
}
