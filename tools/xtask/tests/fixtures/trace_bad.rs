// Fixture: charging sites that never reach the tracer — the trace lint
// must fire on each function.

impl Gpu {
    /// Advances the timeline without emitting: untraced charge.
    fn silent_timeline(&mut self, phase: Phase, secs: f64) {
        self.timeline.add(phase, secs);
    }

    /// Advances the clock without emitting: untraced charge.
    fn silent_clock(&mut self, secs: f64) {
        self.clock += secs;
    }
}

impl Cluster {
    /// Accumulates comms without emitting: untraced charge.
    fn silent_comms(&mut self, secs: f64) {
        self.comms_inter += secs;
    }
}
