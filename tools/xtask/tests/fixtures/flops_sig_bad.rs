// Fixture: every flops-signature failure — mispriced kernels, arity
// drift, dynamic names, unknown kernels, malformed sites, hand-rolled
// durations, and stale dimension wiring.

pub struct CostModel {
    gflops: f64,
}

impl CostModel {
    pub fn new(gflops: f64) -> Self {
        CostModel { gflops }
    }
    pub fn gemm(&self, m: usize, n: usize, k: usize) -> f64 {
        2.0 * m as f64 * n as f64 * k as f64 / self.gflops
    }
    pub fn trsm(&self, n: usize, nrhs: usize) -> f64 {
        n as f64 * n as f64 * nrhs as f64 / self.gflops
    }
    pub fn blas1(&self, elems: usize, ops: f64) -> f64 {
        ops * elems as f64 / self.gflops
    }
}

impl Gpu {
    /// A gemm priced with the trsm formula: method mismatch.
    pub fn mispriced(&mut self, m: usize, n: usize, k: usize) {
        self.charge_kernel(
            Phase::SampleGemm,
            "gemm",
            [m, n, k],
            0.0,
            0.0,
            self.cost.trsm(m, n),
        );
    }

    /// Correct method, wrong arity: the model's gemm takes three dims.
    pub fn wrong_arity(&mut self, m: usize, n: usize, k: usize) {
        self.charge_kernel(
            Phase::SampleGemm,
            "gemm",
            [m, n, k],
            0.0,
            0.0,
            self.cost.gemm(m, n),
        );
    }

    /// Non-literal kernel name: the pairing cannot be checked.
    pub fn dynamic_name(&mut self, name: &'static str, m: usize) {
        self.charge_kernel(Phase::Other, name, [m, m, 0], 0.0, 0.0, self.cost.blas1(m, 1.0));
    }

    /// Kernel name absent from the pricing table.
    pub fn unknown_kernel(&mut self, m: usize) {
        self.charge_kernel(
            Phase::Other,
            "warp_reduce",
            [m, 0, 0],
            0.0,
            0.0,
            self.cost.blas1(m, 1.0),
        );
    }

    /// The funnel takes six arguments; this site passes four.
    pub fn four_args(&mut self, m: usize) {
        self.charge_kernel(Phase::Other, "gemm", [m, m, m], 0.0);
    }

    /// Hand-rolled duration: the cost model is never consulted.
    pub fn hand_priced(&mut self, l: usize, k: usize) {
        self.charge_kernel(Phase::Step2, "trsm", [l, k, 0], 0.0, 0.0, 2.5e-4);
    }

    /// Dimensional routine whose cost arg `k` is not a reported dim.
    pub fn stale_dims(&mut self, l: usize, nrhs: usize, k: usize) {
        self.charge_kernel(
            Phase::Step2,
            "trsm",
            [l, nrhs, 0],
            0.0,
            0.0,
            self.cost.trsm(k, nrhs),
        );
    }

    /// Out-of-funnel charge with the wrong arity: the sweep catches it.
    pub fn sweep_arity(&mut self, n: usize) {
        self.charge(Phase::Other, self.cost.blas1(n));
    }
}
