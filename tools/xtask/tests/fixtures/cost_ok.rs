//! Fixture: kernels and stage hooks that satisfy the cost lint — by
//! charging directly, transitively, refusing with `Unsupported`, or via
//! a justified allow.

pub fn charges_directly(gpu: &mut Gpu, n: usize) {
    gpu.charge(Phase::Other, gpu.cost().gemm(n, n, n));
}

pub fn charges_via_charge_helper(gpu: &mut Gpu, n: usize) {
    charge_gram_pass(gpu, n);
}

fn charge_gram_pass(gpu: &mut Gpu, n: usize) {
    gpu.charge(Phase::Other, gpu.cost().syrk(n, n));
}

pub fn charges_transitively(gpu: &mut Gpu, n: usize) {
    middle_layer(gpu, n);
}

fn middle_layer(gpu: &mut Gpu, n: usize) {
    charges_directly(gpu, n);
}

impl Executor for OkExec {
    fn gaussian_sample(&mut self, l: usize) -> Result<()> {
        charges_directly(&mut self.gpu, l);
        Ok(())
    }

    fn srft_sample_rows(&mut self, l: usize, scheme: SrftScheme) -> Result<()> {
        // Refusing work is not free work: an Unsupported return is legal.
        let _ = (l, scheme);
        Err(MatrixError::Unsupported {
            backend: "fixture",
            feature: "FFT sampling".into(),
        })
    }

    // analyze: allow(cost, host numerics are the work on this backend)
    fn tsqr(&mut self, k: usize, reorth: bool) -> Result<()> {
        let _ = (k, reorth);
        Ok(())
    }

    fn adaptive_update_pivot(&mut self, b: usize, n_trail: usize, k_b: usize) -> Result<()> {
        let _ = (b, k_b);
        charges_directly(&mut self.gpu, n_trail);
        Ok(())
    }

    fn adaptive_update_trailing(&mut self, k_b: usize, n_trail: usize) -> Result<()> {
        // Refusing work is not free work: an Unsupported return is legal.
        let _ = (k_b, n_trail);
        Err(MatrixError::Unsupported {
            backend: "fixture",
            feature: "incremental trailing update".into(),
        })
    }
}
