// Fixture: the wall-clock funnel file is exempt from entropy flow —
// callers of its allowed carrier are not poisoned (graph-level
// exemption; the metrics lint enforces containment in exchange). The
// same content loaded anywhere else must still poison its callers.

// analyze: allow(determinism, the sanctioned wall-clock read)
pub fn scoped() -> WallScope {
    WallScope {
        start: Some(Instant::now()),
    }
}

pub fn gemm_hot_path() {
    let _wall = scoped();
}
