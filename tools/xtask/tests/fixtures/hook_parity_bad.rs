// Fixture: the two hook-parity failures — a silent-default hook missing
// from a backend (the "deleted backend charge" scenario), and a
// silent-default hook that is not registered as a cost-lint obligation.

trait Executor {
    fn tsqr(&mut self, k: usize, reorth: bool) -> Result<()>;

    /// Silent default, registered in CHARGE_HOOKS.
    fn charge_fallback(&mut self, rows: usize, cols: usize) -> Result<()> {
        Ok(())
    }

    /// Silent default, registered in STAGE_HOOKS.
    fn verify_probe(&mut self, probes: usize, k: usize) -> Result<()> {
        Ok(())
    }

    /// Silent default that is NOT in STAGE_HOOKS/CHARGE_HOOKS: its
    /// impls would never be charge-checked. Must be reported.
    fn charge_mystery(&mut self, n: usize) -> Result<()> {
        Ok(())
    }
}

impl Executor for CpuExec {
    fn tsqr(&mut self, _k: usize, _reorth: bool) -> Result<()> {
        Ok(())
    }
    fn charge_fallback(&mut self, _rows: usize, _cols: usize) -> Result<()> {
        Ok(())
    }
    fn verify_probe(&mut self, _probes: usize, _k: usize) -> Result<()> {
        Ok(())
    }
    fn charge_mystery(&mut self, _n: usize) -> Result<()> {
        Ok(())
    }
}

// The "deleted backend charge": this backend's `charge_fallback` impl
// was removed, so the silent trait default makes fallback work free on
// the GPU — exactly the regression the lint exists to catch.
impl Executor for GpuExec {
    fn tsqr(&mut self, k: usize, reorth: bool) -> Result<()> {
        self.charge(Phase::Step2, self.cost().tsqr(k, reorth));
        Ok(())
    }
    fn verify_probe(&mut self, probes: usize, k: usize) -> Result<()> {
        self.charge(Phase::Other, self.cost().gemm(probes, k, k));
        Ok(())
    }
    fn charge_mystery(&mut self, n: usize) -> Result<()> {
        self.charge(Phase::Other, self.cost().blas1(n, 1.0));
        Ok(())
    }
}

impl Executor for MultiGpuExec {
    fn tsqr(&mut self, _k: usize, _reorth: bool) -> Result<()> {
        Ok(())
    }
    fn charge_fallback(&mut self, _rows: usize, _cols: usize) -> Result<()> {
        Ok(())
    }
    fn verify_probe(&mut self, _probes: usize, _k: usize) -> Result<()> {
        Ok(())
    }
    fn charge_mystery(&mut self, _n: usize) -> Result<()> {
        Ok(())
    }
}

impl Executor for ClusterExec {
    fn tsqr(&mut self, _k: usize, _reorth: bool) -> Result<()> {
        Ok(())
    }
    fn charge_fallback(&mut self, _rows: usize, _cols: usize) -> Result<()> {
        Ok(())
    }
    fn verify_probe(&mut self, _probes: usize, _k: usize) -> Result<()> {
        Ok(())
    }
    fn charge_mystery(&mut self, _n: usize) -> Result<()> {
        Ok(())
    }
}
