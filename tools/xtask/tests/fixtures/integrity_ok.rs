//! Fixture: ABFT integrity hooks that satisfy the cost lint — encoding
//! and verification stay inside the charging funnel, directly or via a
//! helper, and a backend may refuse protection with `Unsupported`.

pub fn billed_checksum_row(gpu: &mut Gpu, n: usize, k: usize) {
    gpu.charge(Phase::Other, gpu.cost().gemm(1, n, k));
}

pub fn billed_verify(gpu: &mut Gpu, n: usize, k: usize) {
    charge_verify_pass(gpu, n, k);
}

fn charge_verify_pass(gpu: &mut Gpu, n: usize, k: usize) {
    gpu.charge(Phase::Other, gpu.cost().gemm(2, n, k));
}

impl Executor for BilledIntegrityExec {
    fn charge_checksum_encode(&mut self, m: usize, n: usize, k: usize) -> Result<()> {
        let _ = m;
        billed_checksum_row(&mut self.gpu, n, k);
        Ok(())
    }

    fn verify_integrity(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        outcome: IntegrityOutcome,
    ) -> Result<()> {
        let _ = (m, outcome);
        charge_verify_pass(&mut self.gpu, n, k);
        Ok(())
    }
}

impl Executor for RefusingIntegrityExec {
    fn charge_checksum_encode(&mut self, m: usize, n: usize, k: usize) -> Result<()> {
        // Refusing protection is not free protection: the guard falls
        // back to an unprotected run and prices that instead.
        let _ = (m, n, k);
        Err(MatrixError::Unsupported {
            backend: "fixture",
            feature: "ABFT checksums".into(),
        })
    }

    // analyze: allow(cost, verification is host arithmetic on this backend)
    fn verify_integrity(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        outcome: IntegrityOutcome,
    ) -> Result<()> {
        let _ = (m, n, k, outcome);
        Ok(())
    }
}
