//! Fixture: raw CholQR call sites the numerics lint must flag.

pub fn run_power_step(b: &Mat) -> Result<Mat> {
    // Raw rows-flavor call, no guard, no allow.
    let (q, _) = rlra_lapack::cholqr_rows2(b)?;
    Ok(q)
}

pub fn finish_step(b: &Mat) -> Result<(Mat, Mat)> {
    // Raw tall-flavor call.
    rlra_lapack::cholqr2(b)
}

pub fn shifted_directly(b: &Mat) -> Result<(Mat, Mat)> {
    // Even the shifted rung must come from the ladder, not be dialed in.
    rlra_lapack::shifted_cholqr2(b, 100.0)
}
