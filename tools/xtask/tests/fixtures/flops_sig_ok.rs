// Fixture: every charge-site shape the flops-signature lint must
// accept — matching kernel/method pairs, element-count routines,
// accessor receivers, allows, and the funnel definition itself.

pub struct CostModel {
    gflops: f64,
}

impl CostModel {
    /// Constructor: not a pricing method.
    pub fn new(gflops: f64) -> Self {
        CostModel { gflops }
    }
    pub fn gemm(&self, m: usize, n: usize, k: usize) -> f64 {
        2.0 * m as f64 * n as f64 * k as f64 / self.gflops
    }
    pub fn trsm(&self, n: usize, nrhs: usize) -> f64 {
        n as f64 * n as f64 * nrhs as f64 / self.gflops
    }
    pub fn blas1(&self, elems: usize, ops: f64) -> f64 {
        ops * elems as f64 / self.gflops
    }
    /// Private helper: not part of the derived signature set.
    fn bw(&self) -> f64 {
        self.gflops * 0.1
    }
}

impl Gpu {
    /// The funnel definition itself is not a call site.
    pub fn charge_kernel(
        &mut self,
        phase: Phase,
        name: &'static str,
        dims: [usize; 3],
        flops: f64,
        bytes: f64,
        secs: f64,
    ) {
        self.accrue(phase, name, dims, flops, bytes, secs);
    }

    /// Dimensional routine: cost args all appear in dims.
    pub fn gemm(&mut self, m: usize, n: usize, k: usize) {
        let flops = 2.0 * (m * n * k) as f64;
        self.charge_kernel(
            Phase::SampleGemm,
            "gemm",
            [m, n, k],
            flops,
            0.0,
            self.cost.gemm(m, n, k),
        );
    }

    /// Accessor receiver: `self.cost().method(..)` is the same pairing.
    pub fn solve(&mut self, l: usize, nrhs: usize) {
        self.charge_kernel(
            Phase::Step2,
            "trsm",
            [l, nrhs, 0],
            0.0,
            0.0,
            self.cost().trsm(l, nrhs),
        );
    }

    /// Element-count routine: `gathered` is a product, not a dim, and
    /// the dims check does not apply to `blas1`.
    pub fn gather(&mut self, rows: usize, cols: usize) {
        let gathered = rows * cols;
        self.charge_kernel(
            Phase::Other,
            "gather",
            [rows, cols, 0],
            0.0,
            16.0 * gathered as f64,
            self.cost.blas1(gathered, 2.0),
        );
    }

    // analyze: allow(flops_sig, prototype hand pricing while the fused kernel lands)
    pub fn prototype(&mut self, m: usize) {
        self.charge_kernel(Phase::Other, "gemm", [m, m, m], 0.0, 0.0, 2.5e-4);
    }

    /// Out-of-funnel charge: the sweep checks the arity and passes.
    pub fn health(&mut self, n: usize) {
        self.charge(Phase::Other, self.cost.blas1(n, 1.0));
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_charge_freely() {
        let mut g = Gpu::k40c_dry();
        g.charge_kernel(Phase::Other, "warp_reduce", [1, 1, 1], 0.0, 0.0, 1.0);
    }
}
