//! Fixture: telemetry-surface violations the metrics lint must flag.

/// An inline literal forks the scrape surface under an unregistered
/// spelling.
pub fn adhoc_name(r: &Registry) {
    r.counter_add("rlra_adhoc_total", "", 1.0);
}

/// A constant the table does not define.
pub fn unregistered(r: &Registry) {
    r.observe(names::NOT_IN_TABLE_SECONDS, "", 0.5);
}

// analyze: allow(determinism, a second clock outside the funnel)
pub fn sneaky_clock() -> f64 {
    Instant::now().elapsed().as_secs_f64()
}
