//! Fixture: a well-formed metric-name table (complete `ALL`).

/// Test counter.
pub const A_TOTAL: &str = "rlra_a_total";
/// Test histogram.
pub const B_SECONDS: &str = "rlra_b_seconds";

/// The enumeration the metrics lint checks record sites against.
pub const ALL: &[&str] = &[A_TOTAL, B_SECONDS];
