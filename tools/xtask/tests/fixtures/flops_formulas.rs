//! Fixture: the flops formula file paired with `flops_routines.rs`.

pub fn covered_flops(n: usize) -> u64 {
    2 * n as u64 * n as u64
}
