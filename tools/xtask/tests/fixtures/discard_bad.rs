// Fixture: every discard shape the lint must flag — an explicit
// `let _ =`, a bare free-call statement, and a bare method-call
// statement whose every same-name candidate returns Result.

pub struct Device {
    healthy: bool,
}

impl Device {
    fn sync(&mut self) -> Result<()> {
        if self.healthy {
            Ok(())
        } else {
            Err(MatrixError::Breakdown { what: "device" })
        }
    }
}

fn refresh(dev: &mut Device) -> Result<()> {
    dev.sync()
}

pub fn run(dev: &mut Device) {
    // Explicit discard of a fallible sync.
    let _ = dev.sync();
    // Bare free call: `refresh` returns Result, the value is dropped.
    refresh(dev);
    // Bare method call: every `sync` in the graph returns Result.
    dev.sync();
}
