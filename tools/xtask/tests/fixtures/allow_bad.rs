//! Fixture: an escape hatch without a justification — itself a finding.

pub fn no_reason(v: Option<u32>) -> u32 {
    // analyze: allow(panic)
    v.unwrap()
}
