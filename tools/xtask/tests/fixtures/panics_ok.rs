//! Fixture: patterns the panic-freedom lint must NOT flag — error
//! returns, test-only unwraps, doc-comment examples, and a justified
//! allow.

use rlra_matrix::{MatrixError, Result};

/// Returns an error instead of panicking.
///
/// ```
/// // A doc example may unwrap freely:
/// fallible(Some(3)).unwrap();
/// ```
pub fn fallible(v: Option<u32>) -> Result<u32> {
    v.ok_or(MatrixError::Internal {
        op: "fallible",
        invariant: "value present",
    })
}

pub fn allowed(v: Option<u32>) -> u32 {
    // analyze: allow(panic, documented panicking accessor mirroring slice indexing)
    v.expect("caller contract")
}

/// `debug_assert!` compiles out of release builds — legal everywhere.
pub fn debug_checked(n: usize) -> usize {
    debug_assert!(n > 0);
    debug_assert_eq!(n % 2, 0);
    n / 2
}

pub fn allowed_assert(n: usize) {
    // analyze: allow(panic, documented precondition on a hot path where a Result would cost a branch per element)
    assert!(n > 0, "caller contract");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::fallible(Some(3)).unwrap(), 3);
    }
}
