//! Fixture: every forbidden time/entropy source the determinism lint
//! must flag in library code.

use std::time::{Instant, SystemTime};

pub fn wall_clock_timing() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn epoch_seed() -> u64 {
    SystemTime::now().elapsed().unwrap_or_default().as_secs()
}

pub fn unseeded_rng() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn entropy_rng() -> u64 {
    let rng = StdRng::from_entropy();
    rng.next_u64()
}

pub fn free_function_random() -> f64 {
    rand::random()
}
