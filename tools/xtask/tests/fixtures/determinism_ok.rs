//! Fixture: legal patterns the determinism lint must NOT flag — seeded
//! RNGs, test-only wall clocks, doc-comment examples, and a justified
//! allow.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seeded randomness is the legal source.
///
/// ```
/// // Doc examples are comments to the lexer; even `Instant::now()`
/// // here must not trip the lint.
/// let t = std::time::Instant::now();
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// analyze: allow(determinism, host-side scratch seed is not observable in results)
pub fn allowed_entropy() -> u64 {
    SystemTime::now().elapsed().unwrap_or_default().as_secs()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_measure_real_time() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 1_000);
    }
}
