//! Fixture: kernels and stage hooks that never charge the cost model —
//! all must be flagged by the cost lint.

pub fn free_kernel(gpu: &mut Gpu, a: &DMat) -> DMat {
    // Does real-shaped work but charges nothing.
    gpu.alloc(a.rows(), a.cols())
}

pub fn free_via_helper(gpu: &mut Gpu) {
    helper_without_charge(gpu);
}

fn helper_without_charge(_gpu: &mut Gpu) {}

impl Executor for FreeExec {
    fn gaussian_sample(&mut self, l: usize) -> Result<()> {
        let _ = l;
        Ok(())
    }

    fn tsqr(&mut self, k: usize, reorth: bool) -> Result<()> {
        let _ = (k, reorth);
        Ok(())
    }

    fn adaptive_update_panel(&mut self, k_b: usize, k_done: usize) -> Result<()> {
        // The incremental panel step is real device work; silently
        // skipping the charge must be flagged.
        let _ = (k_b, k_done);
        Ok(())
    }
}
