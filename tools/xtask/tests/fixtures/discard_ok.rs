// Fixture: every consumed-Result shape the discard lint must accept —
// `?`-propagation, bindings, split-vote method calls, unit returns,
// unknown callees, allows, and test code.

pub struct Device {
    healthy: bool,
}

pub struct Host;

impl Device {
    fn sync(&mut self) -> Result<()> {
        if self.healthy {
            Ok(())
        } else {
            Err(MatrixError::Breakdown { what: "device" })
        }
    }
}

impl Host {
    /// Same name as `Device::sync` but infallible: the name union has a
    /// split vote, so bare calls to `sync` cannot be flagged.
    fn sync(&mut self) {
        self.flushed = true;
    }
}

fn refresh(dev: &mut Device) -> Result<()> {
    dev.sync()
}

fn log_step(step: usize) {
    let _unused = step;
}

pub fn run(dev: &mut Device, host: &mut Host) -> Result<()> {
    // Propagated.
    refresh(dev)?;
    // Bound, then propagated.
    let report = dev.sync();
    report?;
    // Split vote: `sync` resolves to both a Result and a unit fn.
    host.sync();
    // Unit return: nothing to discard.
    log_step(1);
    // Unknown callee (not in the graph): skipped.
    external_flush(host);
    // analyze: allow(discard, best-effort telemetry flush; a failed flush must not abort the solve)
    dev.sync();
    // analyze: allow(discard, shape-only probe; only the side effect matters)
    let _ = dev.sync();
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_drop_results() {
        let mut d = Device { healthy: true };
        d.sync();
        let _ = d.sync();
    }
}
