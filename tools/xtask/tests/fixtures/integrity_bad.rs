//! Fixture: ABFT integrity hooks that do real checksum work outside the
//! charging funnel — verification that never prices itself must be
//! flagged by the cost lint, or "protected" runs look free.

pub fn unbilled_checksum_row(gpu: &mut Gpu, a: &DMat) -> Vec<f64> {
    // Encodes a full checksum row (an n-length reduction per column)
    // without charging: the detection overhead vanishes from the model.
    let mut row = vec![0.0; a.cols()];
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            row[j] += a.get(i, j);
        }
    }
    let _ = gpu;
    row
}

pub fn unbilled_verify(gpu: &mut Gpu, a: &DMat) -> bool {
    verify_without_charge(gpu, a)
}

fn verify_without_charge(_gpu: &mut Gpu, a: &DMat) -> bool {
    a.rows() > 0
}

impl Executor for FreeIntegrityExec {
    fn charge_checksum_encode(&mut self, m: usize, n: usize, k: usize) -> Result<()> {
        // Encoding the side-band checksum is a real GEMV-shaped pass;
        // returning Ok without charging it must be flagged.
        let _ = (m, n, k);
        Ok(())
    }

    fn verify_integrity(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        outcome: IntegrityOutcome,
    ) -> Result<()> {
        // Ditto for verification and the correction/rerun surcharge.
        let _ = (m, n, k, outcome);
        Ok(())
    }
}
