// Fixture (graph path `crates/gpu/src/algos.rs`): a simulated kernel
// that charges only through a helper in ANOTHER file, resolved via the
// `use` import — the per-file lint would flag it; the interprocedural
// lint must not. `free_pass` is the in-file control that must fire.

use crate::device::charge_helper;

/// Charges via the imported helper: clean under the graph lint.
pub fn fused_pass(g: &mut Gpu, l: usize) {
    charge_helper(g, l);
}

/// Charges nothing anywhere: must be flagged.
pub fn free_pass(g: &mut Gpu, l: usize) {
    let w = l * 2;
    g.note(w);
}
