//! Fixture: a wall-clock funnel whose public surface leaks time —
//! loaded at the funnel path by the test.

/// Leaks elapsed seconds: instrumented code could read the clock back.
pub fn elapsed_seconds() -> f64 {
    0.0
}

/// Leaks a Duration.
pub fn peek() -> std::time::Duration {
    std::time::Duration::ZERO
}

/// Opaque handles stay fine.
pub fn registry() -> Registry {
    global().clone()
}

/// Private fns are not part of the surface.
fn last_sample() -> f64 {
    0.0
}
