// Fixture (graph path `crates/gpu/src/device.rs`): the charging helper
// `cost_cross_algos.rs` imports.

/// The actual charge lives here.
pub fn charge_helper(g: &mut Gpu, l: usize) {
    g.charge(Phase::Other, g.cost().blas1(l, 1.0));
}
