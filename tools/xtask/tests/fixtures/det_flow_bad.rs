// Fixture: an allow(determinism) is site-local — a caller that pulls
// the allowed wall-clock carrier into unannotated code must be flagged
// by the flow check (the direct check stays silent).

// analyze: allow(determinism, bench banner only; figures never read this value)
fn wall_seconds() -> f64 {
    Instant::now().elapsed().as_secs_f64()
}

pub struct Report {
    pub wall: f64,
}

/// Calls the allowed carrier without its own allow: the carrier's
/// justification ("bench banner only") never covered this path.
pub fn annotate(report: &mut Report) {
    report.wall = wall_seconds();
}
