//! Fixture: CholQR mentions the numerics lint must NOT flag.

use rlra_lapack::{cholqr, cholqr_rows2};

/// Doc mention of cholqr_rows2(..) in prose is not a call.
pub fn guarded_site(guard: &mut NumericGuard, b: &Mat) -> Result<Mat> {
    // The ladder is the sanctioned route.
    guard.ladder_rows("orth_b", b, true)
}

// A definition of a cholqr-named scheme is not a call site.
pub fn cholqr_rows_distributed(parts: &mut [DMat]) -> Result<()> {
    Ok(())
}

pub fn justified(b: &Mat) -> Result<(Mat, Mat)> {
    // analyze: allow(numerics, kernel microbenchmark outside any pipeline)
    rlra_lapack::cholqr2(b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn direct_kernel_checks_are_fine() {
        let _ = rlra_lapack::cholqr_rows2(&b).unwrap();
    }
}
