//! Fixture: every panic path the panic-freedom lint must flag in
//! library code of the serving crates.

pub fn unwraps(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expects(v: Option<u32>) -> u32 {
    v.expect("present by construction")
}

pub fn panics(flag: bool) {
    if flag {
        panic!("unreachable state");
    }
}

pub fn unfinished() {
    todo!()
}

pub fn unimplemented_stub() {
    unimplemented!("later")
}
