//! Fixture: every panic path the panic-freedom lint must flag in
//! library code of the serving crates.

pub fn unwraps(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expects(v: Option<u32>) -> u32 {
    v.expect("present by construction")
}

pub fn panics(flag: bool) {
    if flag {
        panic!("unreachable state");
    }
}

pub fn unfinished() {
    todo!()
}

pub fn unimplemented_stub() {
    unimplemented!("later")
}

pub fn asserts(n: usize) {
    assert!(n > 0, "n must be positive");
}

pub fn assert_eqs(a: usize, b: usize) {
    assert_eq!(a, b, "dimension mismatch");
}

pub fn assert_nes(a: usize, b: usize) {
    assert_ne!(a, b, "aliasing");
}
