//! Fixture: record sites the metrics lint must accept.

use rlra_obs::names;

pub fn registered(r: &Registry) {
    r.counter_add(names::A_TOTAL, "", 1.0);
    r.observe(rlra_obs::names::B_SECONDS, "", 0.5);
}

/// Plumbing that forwards a name it received is fine — the table and
/// its callers pin the source.
pub fn forward(r: &Registry, name: &'static str) {
    r.observe(name, "", 1.0);
}

/// A definition is not a record site.
pub fn counter_add(_name: &str, _label: &str, _v: f64) {}

pub fn waived(r: &Registry) {
    // analyze: allow(metrics, migration shim exporting a legacy spelling)
    r.gauge_set("legacy_name", "", 2.0);
}

#[cfg(test)]
mod tests {
    #[test]
    fn adhoc_names_in_tests_are_fine() {
        r.observe("scratch", "", 1.0);
    }
}
