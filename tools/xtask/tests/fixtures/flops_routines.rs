//! Fixture: BLAS routines — `covered` has a formula in
//! `flops_formulas.rs`, `uncovered` does not, `waived` carries an allow.

pub fn covered(n: usize) -> usize {
    n * n
}

pub fn uncovered(n: usize) -> usize {
    n + n
}

// analyze: allow(flops, O(n) permutation move, negligible next to BLAS-3 work)
pub fn waived(n: usize) -> usize {
    n
}

fn private_helper(n: usize) -> usize {
    n
}
