// Fixture: every hook-parity shape the lint must accept — explicit
// impls, adaptive gating, impl-level allows, exempt defaults, and test
// doubles.

trait Executor {
    /// Bodiless: the compiler forces every backend to implement it.
    fn tsqr(&mut self, k: usize, reorth: bool) -> Result<()>;

    /// Accessor default (returns a value, not work): exempt.
    fn supports_adaptive(&self) -> bool {
        false
    }

    /// Refusing default: a backend that inherits it fails loudly.
    fn recover_device_loss(&mut self, device: usize) -> Result<()> {
        Err(MatrixError::Unsupported {
            what: "device-loss recovery",
        })
    }

    /// Charging default: the work is accounted even when inherited.
    fn charge_recovery(&mut self, secs: f64) {
        self.charge_raw(Phase::Other, secs);
    }

    /// Silent default — parity-required on every backend.
    fn charge_fallback(&mut self, rows: usize, cols: usize) -> Result<()> {
        Ok(())
    }

    /// Silent default — parity-required on every backend.
    fn verify_probe(&mut self, probes: usize, k: usize) -> Result<()> {
        Ok(())
    }

    /// Silent default — required only where `supports_adaptive` is true.
    fn adaptive_draw(&mut self, l_inc: usize) -> Result<()> {
        Ok(())
    }
}

impl Executor for CpuExec {
    fn tsqr(&mut self, _k: usize, _reorth: bool) -> Result<()> {
        Ok(())
    }
    // No `supports_adaptive` override: the gate stays closed, so
    // `adaptive_draw` is not required here.
    fn charge_fallback(&mut self, _rows: usize, _cols: usize) -> Result<()> {
        Ok(())
    }
    fn verify_probe(&mut self, _probes: usize, _k: usize) -> Result<()> {
        Ok(())
    }
}

impl Executor for GpuExec {
    fn tsqr(&mut self, k: usize, reorth: bool) -> Result<()> {
        self.charge(Phase::Step2, self.cost().tsqr(k, reorth));
        Ok(())
    }
    fn supports_adaptive(&self) -> bool {
        true
    }
    fn charge_fallback(&mut self, rows: usize, cols: usize) -> Result<()> {
        self.charge(Phase::OrthIter, self.cost().syrk(rows, cols));
        Ok(())
    }
    fn verify_probe(&mut self, probes: usize, k: usize) -> Result<()> {
        self.charge(Phase::Other, self.cost().gemm(probes, k, k));
        Ok(())
    }
    // The gate is open on this backend, so the adaptive hook must be
    // implemented.
    fn adaptive_draw(&mut self, l_inc: usize) -> Result<()> {
        self.charge(Phase::Sample, self.cost().curand(l_inc));
        Ok(())
    }
}

impl Executor for MultiGpuExec {
    fn tsqr(&mut self, _k: usize, _reorth: bool) -> Result<()> {
        Ok(())
    }
    fn supports_adaptive(&self) -> bool {
        false
    }
    fn charge_fallback(&mut self, _rows: usize, _cols: usize) -> Result<()> {
        Ok(())
    }
    fn verify_probe(&mut self, _probes: usize, _k: usize) -> Result<()> {
        Ok(())
    }
}

// analyze: allow(hook_parity, the cluster prototype prices probes host-side; parity lands with the comms rework)
impl Executor for ClusterExec {
    fn tsqr(&mut self, _k: usize, _reorth: bool) -> Result<()> {
        Ok(())
    }
    fn charge_fallback(&mut self, _rows: usize, _cols: usize) -> Result<()> {
        Ok(())
    }
    // `verify_probe` deliberately missing: the impl-level allow waives
    // the gap.
}

#[cfg(test)]
mod tests {
    // A test double implementing nothing: test impls are out of scope.
    struct NullExec;
    impl Executor for CpuExec {
        fn tsqr(&mut self, _k: usize, _reorth: bool) -> Result<()> {
            Ok(())
        }
    }
}
