//! The process-wide metric registry and its cost-funnel adapter.
//!
//! A [`Registry`] is a cheap clonable handle over one shared store of
//! counters, gauges, [`LogHistogram`]s, and info strings, keyed by
//! `(name, label)` — `name` must come from [`crate::names`] (enforced
//! by the `metrics` analyzer lint) and `label` is a rendered
//! Prometheus label set such as `device="0",kernel="gemm"`.
//!
//! Two feeds fill it:
//!
//! - [`RegistrySink`] implements `rlra_trace::TraceSink`, so attaching
//!   it as (part of) a run's tracer streams every cost-model charge —
//!   kernel launches, stage spans, faults, recoveries, checkpoints —
//!   into latency histograms and counters *as the run executes*;
//! - [`Registry::ingest_metrics`] folds a finished run's aggregated
//!   `rlra_trace::Metrics` into per-device/per-kernel totals — the one
//!   aggregation bridge the roofline summary reads from.
//!
//! Recording never touches the simulated clock or the numerics, so a
//! run with a registry attached stays bit-identical to one without.

use crate::hist::LogHistogram;
use crate::names;
use rlra_trace::{Metrics, TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One `(metric name, rendered label set)` key.
pub type Key = (String, String);

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    hists: BTreeMap<Key, LogHistogram>,
    infos: BTreeMap<Key, String>,
}

/// An immutable point-in-time copy of a registry's contents, consumed
/// by the exposition renderers and the roofline summary.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<Key, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<Key, f64>,
    /// Streaming histograms.
    pub hists: BTreeMap<Key, LogHistogram>,
    /// Informational string series (device names, versions).
    pub infos: BTreeMap<Key, String>,
}

impl Snapshot {
    /// Gauge value for `(name, label)`, if recorded.
    pub fn gauge(&self, name: &str, label: &str) -> Option<f64> {
        self.gauges
            .get(&(name.to_string(), label.to_string()))
            .copied()
    }

    /// Counter value for `(name, label)`, if recorded.
    pub fn counter(&self, name: &str, label: &str) -> Option<u64> {
        self.counters
            .get(&(name.to_string(), label.to_string()))
            .copied()
    }

    /// Histogram for `(name, label)`, if recorded.
    pub fn hist(&self, name: &str, label: &str) -> Option<&LogHistogram> {
        self.hists.get(&(name.to_string(), label.to_string()))
    }

    /// All `(label, value)` gauge entries of one metric family, in
    /// label order.
    pub fn gauge_family<'a>(&'a self, name: &str) -> Vec<(&'a str, f64)> {
        self.gauges
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|((_, l), v)| (l.as_str(), *v))
            .collect()
    }

    /// All `(label, value)` counter entries of one metric family.
    pub fn counter_family<'a>(&'a self, name: &str) -> Vec<(&'a str, u64)> {
        self.counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|((_, l), v)| (l.as_str(), *v))
            .collect()
    }

    /// All `(label, histogram)` entries of one metric family.
    pub fn hist_family<'a>(&'a self, name: &str) -> Vec<(&'a str, &'a LogHistogram)> {
        self.hists
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|((_, l), h)| (l.as_str(), h))
            .collect()
    }
}

/// Clonable handle to one shared metric store.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

/// Renders a one-dimension label set (`device="0"`).
pub fn label1(key: &str, value: impl std::fmt::Display) -> String {
    format!("{key}=\"{value}\"")
}

/// Renders a two-dimension label set (`device="0",kernel="gemm"`).
pub fn label2(
    k1: &str,
    v1: impl std::fmt::Display,
    k2: &str,
    v2: impl std::fmt::Display,
) -> String {
    format!("{k1}=\"{v1}\",{k2}=\"{v2}\"")
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
        self.inner.lock().ok().map(|mut g| f(&mut g))
    }

    /// Adds `by` to the counter `(name, label)`.
    pub fn counter_add(&self, name: &'static str, label: &str, by: u64) {
        self.with(|i| {
            *i.counters
                .entry((name.to_string(), label.to_string()))
                .or_insert(0) += by;
        });
    }

    /// Sets the gauge `(name, label)`.
    pub fn gauge_set(&self, name: &'static str, label: &str, v: f64) {
        self.with(|i| {
            i.gauges.insert((name.to_string(), label.to_string()), v);
        });
    }

    /// Adds `v` to the gauge `(name, label)` (0 when unset).
    pub fn gauge_add(&self, name: &'static str, label: &str, v: f64) {
        self.with(|i| {
            *i.gauges
                .entry((name.to_string(), label.to_string()))
                .or_insert(0.0) += v;
        });
    }

    /// Records `v` into the histogram `(name, label)`.
    pub fn observe(&self, name: &'static str, label: &str, v: f64) {
        self.with(|i| {
            i.hists
                .entry((name.to_string(), label.to_string()))
                .or_default()
                .record(v);
        });
    }

    /// Sets the info series `(name, label)`.
    pub fn set_info(&self, name: &'static str, label: &str, value: &str) {
        self.with(|i| {
            i.infos
                .insert((name.to_string(), label.to_string()), value.to_string());
        });
    }

    /// Point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.with(|i| Snapshot {
            counters: i.counters.clone(),
            gauges: i.gauges.clone(),
            hists: i.hists.clone(),
            infos: i.infos.clone(),
        })
        .unwrap_or_default()
    }

    /// Streams one trace event into the time-series families — the
    /// body of the [`RegistrySink`] adapter, usable directly when the
    /// events were captured elsewhere (e.g. a ring buffer).
    pub fn ingest_event(&self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Kernel {
                name, start, end, ..
            } => {
                self.observe(
                    names::SIM_KERNEL_SECONDS,
                    &label1("kernel", name),
                    end - start,
                );
            }
            TraceEvent::Span {
                phase, start, end, ..
            }
            | TraceEvent::Wait {
                phase, start, end, ..
            }
            | TraceEvent::Transfer {
                phase, start, end, ..
            }
            | TraceEvent::Comms {
                phase, start, end, ..
            } => {
                self.observe(
                    names::SIM_PHASE_SECONDS,
                    &label1("phase", phase),
                    end - start,
                );
            }
            TraceEvent::Stage { name, start, end } => {
                self.observe(
                    names::SIM_STAGE_SECONDS,
                    &label1("stage", name),
                    end - start,
                );
            }
            TraceEvent::Fault { kind, .. } => {
                self.counter_add(names::SIM_FAULTS_TOTAL, &label1("kind", kind), 1);
            }
            TraceEvent::Recovery { action, .. } => {
                self.counter_add(names::SIM_RECOVERIES_TOTAL, &label1("action", action), 1);
            }
            TraceEvent::Breakdown { stage, .. } => {
                self.counter_add(names::SIM_BREAKDOWNS_TOTAL, &label1("stage", stage), 1);
            }
            TraceEvent::Fallback { stage, .. } => {
                self.counter_add(names::SIM_FALLBACKS_TOTAL, &label1("stage", stage), 1);
            }
            TraceEvent::HealthCheck { ok, .. } => {
                self.counter_add(names::SIM_HEALTH_CHECKS_TOTAL, &label1("ok", ok), 1);
            }
            TraceEvent::Checkpoint { bytes, .. } => {
                self.counter_add(names::SIM_CHECKPOINTS_TOTAL, "", 1);
                self.counter_add(names::SIM_CHECKPOINT_BYTES_TOTAL, "", bytes);
            }
            TraceEvent::Speculation { outcome, .. } => {
                self.counter_add(
                    names::SIM_SPECULATIONS_TOTAL,
                    &label1("outcome", outcome),
                    1,
                );
            }
            TraceEvent::Sdc { action, .. } => {
                self.counter_add(names::SIM_SDC_EVENTS_TOTAL, &label1("action", action), 1);
            }
        }
    }

    /// Folds a finished run's aggregated metrics into the per-device /
    /// per-kernel total families. This is the **single** place kernel
    /// aggregates cross from the per-run `Metrics` world into the
    /// cross-run registry; the roofline summary reads only these.
    pub fn ingest_metrics(&self, m: &Metrics) {
        for d in &m.devices {
            let dl = label1("device", d.device);
            self.gauge_set(names::DEVICE_BUSY_SECONDS, &dl, d.busy_seconds);
            self.gauge_set(names::DEVICE_WAIT_SECONDS, &dl, d.wait_seconds);
            self.gauge_set(names::DEVICE_BYTES_MOVED, &dl, d.bytes_moved);
            self.gauge_set(names::DEVICE_PEAK_GFLOPS, &dl, d.peak_gflops);
            self.gauge_set(names::DEVICE_PEAK_GBS, &dl, d.peak_gbs);
            self.counter_add(names::DEVICE_LAUNCHES_TOTAL, &dl, d.launches);
            self.counter_add(names::DEVICE_SYNCS_TOTAL, &dl, d.syncs);
            self.set_info(names::DEVICE_INFO, &dl, d.name);
            for (kname, k) in &d.kernels {
                let kl = label2("device", d.device, "kernel", kname);
                self.counter_add(names::KERNEL_LAUNCHES_TOTAL, &kl, k.launches);
                self.gauge_add(names::KERNEL_SECONDS_TOTAL, &kl, k.seconds);
                self.gauge_add(names::KERNEL_FLOPS_TOTAL, &kl, k.flops);
                self.gauge_add(names::KERNEL_BYTES_TOTAL, &kl, k.bytes);
            }
        }
        self.counter_add(names::RUNS_TOTAL, "", 1);
        self.counter_add(names::RUN_RETRIES_TOTAL, "", m.retries);
        self.counter_add(names::RUN_FALLBACKS_TOTAL, "", m.fallbacks);
        self.gauge_set(names::RUN_RECOVERY_SECONDS, "", m.recovery_seconds());
    }
}

/// `TraceSink` adapter: attach (a clone of) this as a run's tracer
/// sink and every cost-model charge lands in the registry as it
/// happens.
#[derive(Debug, Clone)]
pub struct RegistrySink {
    registry: Registry,
}

impl RegistrySink {
    /// A sink feeding `registry`.
    pub fn new(registry: Registry) -> Self {
        RegistrySink { registry }
    }
}

impl TraceSink for RegistrySink {
    fn record(&mut self, ev: TraceEvent) {
        self.registry.ingest_event(&ev);
    }
}

/// Tees events into several sinks (registry + flight recorder is the
/// armed-telemetry configuration).
pub struct FanoutSink {
    sinks: Vec<Box<dyn TraceSink + Send>>,
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl FanoutSink {
    /// A fanout over `sinks`, in delivery order.
    pub fn new(sinks: Vec<Box<dyn TraceSink + Send>>) -> Self {
        FanoutSink { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn record(&mut self, ev: TraceEvent) {
        for s in &mut self.sinks {
            s.record(ev.clone());
        }
    }

    fn events(&mut self) -> &[TraceEvent] {
        // Delegate to the first sink that actually retains events
        // (ring buffers retain; registry/null sinks do not).
        match self.sinks.iter_mut().position(|s| !s.events().is_empty()) {
            Some(i) => self.sinks[i].events(),
            None => &[],
        }
    }

    fn dropped(&self) -> u64 {
        self.sinks.iter().map(|s| s.dropped()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_the_expected_families() {
        let reg = Registry::new();
        let mut sink = RegistrySink::new(reg.clone());
        sink.record(TraceEvent::Kernel {
            device: 0,
            name: "gemm",
            phase: "Sampling",
            dims: [8, 8, 8],
            flops: 1024.0,
            bytes: 1536.0,
            start: 0.0,
            end: 0.25,
        });
        sink.record(TraceEvent::Fault {
            device: 1,
            kind: "transient",
            at_launch: 3,
            time: 0.5,
        });
        let snap = reg.snapshot();
        let h = snap
            .hist(crate::names::SIM_KERNEL_SECONDS, "kernel=\"gemm\"")
            .expect("kernel histogram");
        assert_eq!(h.count(), 1);
        assert_eq!(
            snap.counter(crate::names::SIM_FAULTS_TOTAL, "kind=\"transient\""),
            Some(1)
        );
    }

    #[test]
    fn ingest_metrics_is_the_roofline_bridge() {
        use rlra_trace::{DeviceMetrics, KernelStats};
        let mut d = DeviceMetrics {
            device: 2,
            name: "Tesla K40c",
            launches: 5,
            syncs: 1,
            busy_seconds: 1.5,
            wait_seconds: 0.5,
            bytes_moved: 1e9,
            peak_gflops: 1430.0,
            peak_gbs: 288.0,
            ..DeviceMetrics::default()
        };
        d.kernels.insert(
            "gemm",
            KernelStats {
                launches: 3,
                seconds: 1.0,
                flops: 5e11,
                bytes: 2e9,
            },
        );
        let m = Metrics {
            devices: vec![d],
            retries: 1,
            fallbacks: 0,
        };
        let reg = Registry::new();
        reg.ingest_metrics(&m);
        let snap = reg.snapshot();
        assert_eq!(
            snap.gauge(crate::names::DEVICE_BUSY_SECONDS, "device=\"2\""),
            Some(1.5)
        );
        assert_eq!(
            snap.counter(
                crate::names::KERNEL_LAUNCHES_TOTAL,
                "device=\"2\",kernel=\"gemm\""
            ),
            Some(3)
        );
        assert_eq!(
            snap.gauge(crate::names::RUN_RECOVERY_SECONDS, ""),
            Some(0.0)
        );
        // A second ingest accumulates counters but pins gauges.
        reg.ingest_metrics(&m);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(crate::names::RUNS_TOTAL, ""), Some(2));
        assert_eq!(
            snap.gauge(crate::names::DEVICE_BUSY_SECONDS, "device=\"2\""),
            Some(1.5)
        );
    }

    #[test]
    fn clones_share_one_store() {
        let a = Registry::new();
        let b = a.clone();
        a.counter_add(crate::names::RUNS_TOTAL, "", 1);
        b.counter_add(crate::names::RUNS_TOTAL, "", 2);
        assert_eq!(a.snapshot().counter(crate::names::RUNS_TOTAL, ""), Some(3));
    }
}
