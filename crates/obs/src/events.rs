//! Flat JSON serialization of trace-event streams.
//!
//! The Chrome-trace exporter in `rlra-trace` renders for a timeline
//! viewer; postmortem bundles instead want every field of every event,
//! self-describing and greppable. [`events_json`] emits one object per
//! event with a `"type"` tag and the variant's own field names, in
//! stream order.

use rlra_trace::json::{escape_json, num_json};
use rlra_trace::TraceEvent;
use std::fmt::Write as _;

/// Renders one event as a self-describing JSON object.
pub fn event_json(ev: &TraceEvent) -> String {
    let mut o = String::new();
    match *ev {
        TraceEvent::Kernel {
            device,
            name,
            phase,
            dims,
            flops,
            bytes,
            start,
            end,
        } => {
            let _ = write!(
                o,
                "{{\"type\":\"kernel\",\"device\":{},\"name\":\"{}\",\"phase\":\"{}\",\
                 \"dims\":[{},{},{}],\"flops\":{},\"bytes\":{},\"start\":{},\"end\":{}}}",
                device,
                escape_json(name),
                escape_json(phase),
                dims[0],
                dims[1],
                dims[2],
                num_json(flops),
                num_json(bytes),
                num_json(start),
                num_json(end),
            );
        }
        TraceEvent::Span {
            device,
            phase,
            start,
            end,
        } => {
            let _ = write!(
                o,
                "{{\"type\":\"span\",\"device\":{},\"phase\":\"{}\",\"start\":{},\"end\":{}}}",
                device,
                escape_json(phase),
                num_json(start),
                num_json(end),
            );
        }
        TraceEvent::Wait {
            device,
            phase,
            start,
            end,
        } => {
            let _ = write!(
                o,
                "{{\"type\":\"wait\",\"device\":{},\"phase\":\"{}\",\"start\":{},\"end\":{}}}",
                device,
                escape_json(phase),
                num_json(start),
                num_json(end),
            );
        }
        TraceEvent::Transfer {
            device,
            phase,
            bytes,
            start,
            end,
        } => {
            let _ = write!(
                o,
                "{{\"type\":\"transfer\",\"device\":{},\"phase\":\"{}\",\"bytes\":{},\
                 \"start\":{},\"end\":{}}}",
                device,
                escape_json(phase),
                num_json(bytes),
                num_json(start),
                num_json(end),
            );
        }
        TraceEvent::Comms {
            scope,
            phase,
            start,
            end,
        } => {
            let _ = write!(
                o,
                "{{\"type\":\"comms\",\"scope\":\"{}\",\"phase\":\"{}\",\"start\":{},\"end\":{}}}",
                escape_json(scope),
                escape_json(phase),
                num_json(start),
                num_json(end),
            );
        }
        TraceEvent::Stage { name, start, end } => {
            let _ = write!(
                o,
                "{{\"type\":\"stage\",\"name\":\"{}\",\"start\":{},\"end\":{}}}",
                escape_json(name),
                num_json(start),
                num_json(end),
            );
        }
        TraceEvent::Fault {
            device,
            kind,
            at_launch,
            time,
        } => {
            let _ = write!(
                o,
                "{{\"type\":\"fault\",\"device\":{},\"kind\":\"{}\",\"at_launch\":{},\
                 \"time\":{}}}",
                device,
                escape_json(kind),
                at_launch,
                num_json(time),
            );
        }
        TraceEvent::Recovery {
            device,
            action,
            time,
        } => {
            let _ = write!(
                o,
                "{{\"type\":\"recovery\",\"device\":{},\"action\":\"{}\",\"time\":{}}}",
                device,
                escape_json(action),
                num_json(time),
            );
        }
        TraceEvent::Breakdown { stage, rung, time } => {
            let _ = write!(
                o,
                "{{\"type\":\"breakdown\",\"stage\":\"{}\",\"rung\":{},\"time\":{}}}",
                escape_json(stage),
                rung,
                num_json(time),
            );
        }
        TraceEvent::Fallback { stage, rung, time } => {
            let _ = write!(
                o,
                "{{\"type\":\"fallback\",\"stage\":\"{}\",\"rung\":{},\"time\":{}}}",
                escape_json(stage),
                rung,
                num_json(time),
            );
        }
        TraceEvent::HealthCheck { stage, ok, time } => {
            let _ = write!(
                o,
                "{{\"type\":\"health_check\",\"stage\":\"{}\",\"ok\":{},\"time\":{}}}",
                escape_json(stage),
                ok,
                num_json(time),
            );
        }
        TraceEvent::Checkpoint { id, bytes, time } => {
            let _ = write!(
                o,
                "{{\"type\":\"checkpoint\",\"id\":{},\"bytes\":{},\"time\":{}}}",
                id,
                bytes,
                num_json(time),
            );
        }
        TraceEvent::Speculation {
            device,
            outcome,
            saved,
            time,
        } => {
            let _ = write!(
                o,
                "{{\"type\":\"speculation\",\"device\":{},\"outcome\":\"{}\",\"saved\":{},\
                 \"time\":{}}}",
                device,
                escape_json(outcome),
                num_json(saved),
                num_json(time),
            );
        }
        TraceEvent::Sdc {
            device,
            stage,
            action,
            at_launch,
            time,
        } => {
            let _ = write!(
                o,
                "{{\"type\":\"sdc\",\"device\":{},\"stage\":\"{}\",\"action\":\"{}\",\
                 \"at_launch\":{},\"time\":{}}}",
                device,
                escape_json(stage),
                escape_json(action),
                at_launch,
                num_json(time),
            );
        }
    }
    o
}

/// Renders an event stream as a JSON document:
/// `{"count": N, "dropped": D, "events": [...]}` in stream order.
pub fn events_json(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"count\":{},\"dropped\":{},\"events\":[",
        events.len(),
        dropped
    );
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&event_json(ev));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_trace::parse_json;

    #[test]
    fn every_variant_serializes_to_parseable_tagged_json() {
        let events = vec![
            TraceEvent::Kernel {
                device: 0,
                name: "gemm",
                phase: "Sampling",
                dims: [4, 5, 6],
                flops: 240.0,
                bytes: 592.0,
                start: 0.0,
                end: 1.0,
            },
            TraceEvent::Span {
                device: 0,
                phase: "Launch",
                start: 1.0,
                end: 1.1,
            },
            TraceEvent::Wait {
                device: 1,
                phase: "Barrier",
                start: 1.0,
                end: 1.2,
            },
            TraceEvent::Transfer {
                device: 0,
                phase: "Upload",
                bytes: 4096.0,
                start: 0.0,
                end: 0.1,
            },
            TraceEvent::Comms {
                scope: "host",
                phase: "Comms",
                start: 2.0,
                end: 2.5,
            },
            TraceEvent::Stage {
                name: "tsqr",
                start: 0.0,
                end: 3.0,
            },
            TraceEvent::Fault {
                device: 1,
                kind: "fail-stop",
                at_launch: 4,
                time: 1.5,
            },
            TraceEvent::Recovery {
                device: 1,
                action: "device-loss-recovered",
                time: 1.6,
            },
            TraceEvent::Breakdown {
                stage: "tsqr",
                rung: 0,
                time: 1.7,
            },
            TraceEvent::Fallback {
                stage: "tsqr",
                rung: 1,
                time: 1.8,
            },
            TraceEvent::HealthCheck {
                stage: "tsqr",
                ok: true,
                time: 1.9,
            },
            TraceEvent::Checkpoint {
                id: 2,
                bytes: 8192,
                time: 2.0,
            },
            TraceEvent::Speculation {
                device: 2,
                outcome: "survivors-won",
                saved: 0.25,
                time: 2.1,
            },
            TraceEvent::Sdc {
                device: 1,
                stage: "gemm_to_b",
                action: "corrected",
                at_launch: 9,
                time: 2.2,
            },
        ];
        let doc = events_json(&events, 7);
        let j = parse_json(&doc).expect("events_json must parse");
        assert_eq!(j.get("count").unwrap().as_num().unwrap(), 14.0);
        assert_eq!(j.get("dropped").unwrap().as_num().unwrap(), 7.0);
        let arr = j.get("events").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), events.len());
        let tags: Vec<_> = arr
            .iter()
            .map(|e| e.get("type").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(
            tags,
            [
                "kernel",
                "span",
                "wait",
                "transfer",
                "comms",
                "stage",
                "fault",
                "recovery",
                "breakdown",
                "fallback",
                "health_check",
                "checkpoint",
                "speculation",
                "sdc"
            ]
        );
        assert_eq!(arr[6].get("kind").unwrap().as_str().unwrap(), "fail-stop");
        assert_eq!(arr[11].get("bytes").unwrap().as_num().unwrap(), 8192.0);
        assert_eq!(
            arr[13].get("action").unwrap().as_str().unwrap(),
            "corrected"
        );
    }
}
