//! Terminal roofline / utilization summary, read from the registry.
//!
//! Earlier revisions aggregated per-kernel counters twice: once in the
//! per-run `rlra_trace::Metrics` registry and again inside the
//! summary renderer. The renderer now reads a [`Snapshot`] of the
//! metric [`crate::Registry`] — fill one via
//! [`crate::Registry::ingest_metrics`] (or the streaming
//! [`crate::RegistrySink`]) and every consumer (Prometheus scrape,
//! postmortem bundle, this summary) sees the same numbers from the
//! same aggregation.

use crate::hist::LogHistogram;
use crate::names;
use crate::registry::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else {
        format!("{:.2} kB", b / 1e3)
    }
}

/// The value of `key` in a rendered label set
/// (`device="0",kernel="gemm"`), if present.
fn label_value<'a>(label: &'a str, key: &str) -> Option<&'a str> {
    for part in label.split(',') {
        if let Some(rest) = part.strip_prefix(key) {
            if let Some(v) = rest.strip_prefix("=\"") {
                return v.strip_suffix('"');
            }
        }
    }
    None
}

/// The device ordinal a single-dimension `device="N"` label names.
fn device_of(label: &str) -> Option<usize> {
    label_value(label, "device")?.parse().ok()
}

#[derive(Default)]
struct KernelRow {
    launches: u64,
    seconds: f64,
    flops: f64,
    bytes: f64,
}

/// Renders the registry snapshot as an aligned terminal summary: one
/// block per device with busy/idle utilization, then a per-kernel
/// roofline table (achieved Gflop/s and GB/s against the calibrated
/// device peaks). The "% peak" columns are the roofline reading: a
/// kernel near its flops peak is compute-bound, one near the bandwidth
/// peak is memory-bound. When the wall-clock funnel recorded hot-path
/// histograms, a final block reports their p50/p99/p999.
pub fn roofline_summary(snap: &Snapshot) -> String {
    let mut out = String::new();

    let mut devices: Vec<usize> = snap
        .gauge_family(names::DEVICE_BUSY_SECONDS)
        .iter()
        .filter_map(|(l, _)| device_of(l))
        .collect();
    devices.sort_unstable();
    devices.dedup();

    // Per-device/per-kernel rows, folded from the KERNEL_* families.
    let mut kernels: BTreeMap<usize, BTreeMap<String, KernelRow>> = BTreeMap::new();
    let mut fold = |entries: Vec<(&str, f64)>, set: fn(&mut KernelRow, f64)| {
        for (label, v) in entries {
            let (Some(dev), Some(kname)) = (device_of(label), label_value(label, "kernel")) else {
                continue;
            };
            set(
                kernels
                    .entry(dev)
                    .or_default()
                    .entry(kname.to_string())
                    .or_default(),
                v,
            );
        }
    };
    fold(
        snap.counter_family(names::KERNEL_LAUNCHES_TOTAL)
            .into_iter()
            .map(|(l, v)| (l, v as f64))
            .collect(),
        |r, v| r.launches = v as u64,
    );
    fold(snap.gauge_family(names::KERNEL_SECONDS_TOTAL), |r, v| {
        r.seconds = v;
    });
    fold(snap.gauge_family(names::KERNEL_FLOPS_TOTAL), |r, v| {
        r.flops = v;
    });
    fold(snap.gauge_family(names::KERNEL_BYTES_TOTAL), |r, v| {
        r.bytes = v;
    });

    for dev in &devices {
        let dl = crate::registry::label1("device", dev);
        let busy = snap.gauge(names::DEVICE_BUSY_SECONDS, &dl).unwrap_or(0.0);
        let wait = snap.gauge(names::DEVICE_WAIT_SECONDS, &dl).unwrap_or(0.0);
        let moved = snap.gauge(names::DEVICE_BYTES_MOVED, &dl).unwrap_or(0.0);
        let peak_gflops = snap.gauge(names::DEVICE_PEAK_GFLOPS, &dl).unwrap_or(0.0);
        let peak_gbs = snap.gauge(names::DEVICE_PEAK_GBS, &dl).unwrap_or(0.0);
        let launches = snap.counter(names::DEVICE_LAUNCHES_TOTAL, &dl).unwrap_or(0);
        let syncs = snap.counter(names::DEVICE_SYNCS_TOTAL, &dl).unwrap_or(0);
        let name = snap
            .infos
            .get(&(names::DEVICE_INFO.to_string(), dl.clone()))
            .map_or("?", String::as_str);
        let total = busy + wait;
        let util = if total > 0.0 { busy / total } else { 0.0 };
        let _ = writeln!(
            out,
            "device {} ({}): busy {} ({:.1}%), idle {}, {} over PCIe, {} launches, {} syncs",
            dev,
            name,
            fmt_secs(busy),
            100.0 * util,
            fmt_secs(wait),
            fmt_bytes(moved),
            launches,
            syncs,
        );
        let Some(rows) = kernels.get(dev) else {
            continue;
        };
        if rows.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>12} {:>10} {:>7} {:>10} {:>7}",
            "kernel", "launches", "time", "Gflop/s", "%peak", "GB/s", "%peak"
        );
        for (kname, k) in rows {
            let (gf, gb) = if k.seconds > 0.0 {
                (k.flops / k.seconds / 1e9, k.bytes / k.seconds / 1e9)
            } else {
                (0.0, 0.0)
            };
            let pf = if peak_gflops > 0.0 {
                100.0 * gf / peak_gflops
            } else {
                0.0
            };
            let pb = if peak_gbs > 0.0 {
                100.0 * gb / peak_gbs
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<10} {:>8} {:>12} {:>10.1} {:>6.1}% {:>10.1} {:>6.1}%",
                kname,
                k.launches,
                fmt_secs(k.seconds),
                gf,
                pf,
                gb,
                pb,
            );
        }
    }

    let retries = snap.counter(names::RUN_RETRIES_TOTAL, "").unwrap_or(0);
    if retries > 0 {
        let _ = writeln!(out, "recovery: {} transient retries", retries);
    }

    let wall: Vec<(&'static str, &str, &LogHistogram)> = [
        names::WALL_GEMM_SECONDS,
        names::WALL_CHOLQR_SECONDS,
        names::WALL_SAMPLE_PANEL_SECONDS,
        names::WALL_PIPELINE_SECONDS,
    ]
    .into_iter()
    .flat_map(|n| snap.hist_family(n).into_iter().map(move |(l, h)| (n, l, h)))
    .filter(|(_, _, h)| h.count() > 0)
    .collect();
    if !wall.is_empty() {
        let _ = writeln!(out, "wall-clock hot paths ({} series):", wall.len());
        let _ = writeln!(
            out,
            "  {:<34} {:>8} {:>12} {:>12} {:>12}",
            "metric", "count", "p50", "p99", "p999"
        );
        for (n, l, h) in wall {
            let series = if l.is_empty() {
                n.to_string()
            } else {
                format!("{n}{{{l}}}")
            };
            let _ = writeln!(
                out,
                "  {:<34} {:>8} {:>12} {:>12} {:>12}",
                series,
                h.count(),
                fmt_secs(h.p50().unwrap_or(0.0)),
                fmt_secs(h.p99().unwrap_or(0.0)),
                fmt_secs(h.p999().unwrap_or(0.0)),
            );
        }
    }

    if out.is_empty() {
        out.push_str("no devices recorded\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use rlra_trace::{DeviceMetrics, KernelStats, Metrics};

    #[test]
    fn summary_mentions_each_device_and_kernel() {
        let mut d = DeviceMetrics {
            device: 1,
            name: "Tesla K40c",
            launches: 7,
            busy_seconds: 2.0,
            wait_seconds: 0.5,
            bytes_moved: 3e9,
            peak_gflops: 1430.0,
            peak_gbs: 288.0,
            ..DeviceMetrics::default()
        };
        d.kernels.insert(
            "gemm",
            KernelStats {
                launches: 3,
                seconds: 1.5,
                flops: 1.2e12,
                bytes: 9e9,
            },
        );
        let m = Metrics {
            devices: vec![d],
            retries: 2,
            fallbacks: 0,
        };
        let reg = Registry::new();
        reg.ingest_metrics(&m);
        let text = roofline_summary(&reg.snapshot());
        assert!(text.contains("device 1 (Tesla K40c)"));
        assert!(text.contains("gemm"));
        assert!(text.contains("80.0%"), "utilization: {text}");
        assert!(text.contains("transient retries"));
    }

    #[test]
    fn empty_snapshot_does_not_panic() {
        assert!(roofline_summary(&Snapshot::default()).contains("no devices"));
    }

    #[test]
    fn wall_histograms_get_their_own_block() {
        let reg = Registry::new();
        for v in [0.001, 0.002, 0.004] {
            reg.observe(crate::names::WALL_GEMM_SECONDS, "", v);
        }
        let text = roofline_summary(&reg.snapshot());
        assert!(text.contains("wall-clock hot paths"));
        assert!(text.contains("rlra_wall_gemm_seconds"));
        assert!(text.contains("p999"));
    }
}
