//! Exposition: rendering a registry [`Snapshot`] for scrapers and
//! tooling.
//!
//! Two formats:
//!
//! - [`prometheus_text`]: the Prometheus text exposition format —
//!   counters and gauges as-is, histograms as summaries with exact
//!   p50/p99/p999 plus `_sum`/`_count`, info series as constant-`1`
//!   gauges with a `value=` label.
//! - [`registry_json`]: a schema-versioned JSON document that
//!   round-trips every family exactly (histograms embed their full
//!   bucket state), consumed by postmortem bundles and
//!   `cargo xtask tracediff`.

use crate::hist::LogHistogram;
use crate::registry::Snapshot;
use rlra_trace::json::{escape_json, num_json};
use std::fmt::Write as _;

/// Schema version stamped into [`registry_json`] documents. Bump on
/// any structural change.
pub const REGISTRY_SCHEMA_VERSION: u64 = 1;

fn series(name: &str, label: &str) -> String {
    if label.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{label}}}")
    }
}

fn series_extra(name: &str, label: &str, extra: &str) -> String {
    if label.is_empty() {
        format!("{name}{{{extra}}}")
    } else {
        format!("{name}{{{label},{extra}}}")
    }
}

/// Renders the snapshot in the Prometheus text exposition format.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_type: Option<(String, &'static str)> = None;
    let mut type_line = |out: &mut String, name: &str, kind: &'static str| {
        let fresh = !matches!(&last_type, Some((n, _)) if n == name);
        if fresh {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_type = Some((name.to_string(), kind));
        }
    };
    for ((name, label), v) in &snap.counters {
        type_line(&mut out, name, "counter");
        let _ = writeln!(out, "{} {v}", series(name, label));
    }
    for ((name, label), v) in &snap.gauges {
        type_line(&mut out, name, "gauge");
        let _ = writeln!(out, "{} {}", series(name, label), num_json(*v));
    }
    for ((name, label), v) in &snap.infos {
        type_line(&mut out, name, "gauge");
        let _ = writeln!(
            out,
            "{} 1",
            series_extra(name, label, &format!("value=\"{}\"", v)),
        );
    }
    for ((name, label), h) in &snap.hists {
        type_line(&mut out, name, "summary");
        for (q, qv) in [(0.5, h.p50()), (0.99, h.p99()), (0.999, h.p999())] {
            let _ = writeln!(
                out,
                "{} {}",
                series_extra(name, label, &format!("quantile=\"{q}\"")),
                num_json(qv.unwrap_or(0.0)),
            );
        }
        let _ = writeln!(
            out,
            "{} {}",
            series(&format!("{name}_sum"), label),
            num_json(h.sum())
        );
        let _ = writeln!(
            out,
            "{} {}",
            series(&format!("{name}_count"), label),
            h.count()
        );
    }
    out
}

fn json_map<V>(
    out: &mut String,
    key: &str,
    entries: impl Iterator<Item = ((String, String), V)>,
    mut render: impl FnMut(&V) -> String,
) {
    let _ = write!(out, "\"{key}\":{{");
    for (i, ((name, label), v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{}",
            escape_json(&series(&name, &label)),
            render(&v)
        );
    }
    out.push('}');
}

/// Renders the snapshot as a schema-versioned JSON document.
///
/// Layout: `{"schema_version": 1, "counters": {series: n, ...},
/// "gauges": {...}, "infos": {...}, "hists": {series: <histogram
/// object>, ...}}` where each series key is `name` or `name{labels}`
/// and histogram objects are exactly [`LogHistogram::to_json`].
pub fn registry_json(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"schema_version\":{REGISTRY_SCHEMA_VERSION},");
    json_map(
        &mut out,
        "counters",
        snap.counters.iter().map(|(k, v)| (k.clone(), *v)),
        std::string::ToString::to_string,
    );
    out.push(',');
    json_map(
        &mut out,
        "gauges",
        snap.gauges.iter().map(|(k, v)| (k.clone(), *v)),
        |v| num_json(*v),
    );
    out.push(',');
    json_map(
        &mut out,
        "infos",
        snap.infos.iter().map(|(k, v)| (k.clone(), v.clone())),
        |v| format!("\"{}\"", escape_json(v)),
    );
    out.push(',');
    json_map(
        &mut out,
        "hists",
        snap.hists.iter().map(|(k, v)| (k.clone(), v.clone())),
        LogHistogram::to_json,
    );
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;
    use crate::registry::Registry;
    use rlra_trace::parse_json;

    fn populated() -> Snapshot {
        let reg = Registry::new();
        reg.counter_add(names::RUNS_TOTAL, "", 3);
        reg.counter_add(names::SIM_FAULTS_TOTAL, "kind=\"transient\"", 2);
        reg.gauge_set(names::DEVICE_BUSY_SECONDS, "device=\"0\"", 1.25);
        reg.set_info(names::DEVICE_INFO, "device=\"0\"", "Tesla K40c");
        for v in [0.1, 0.2, 0.4] {
            reg.observe(names::SIM_KERNEL_SECONDS, "kernel=\"gemm\"", v);
        }
        reg.snapshot()
    }

    #[test]
    fn prometheus_text_has_types_series_and_quantiles() {
        let text = prometheus_text(&populated());
        assert!(text.contains("# TYPE rlra_runs_total counter"));
        assert!(text.contains("rlra_runs_total 3"));
        assert!(text.contains("rlra_sim_faults_total{kind=\"transient\"} 2"));
        assert!(text.contains("# TYPE rlra_device_busy_seconds gauge"));
        assert!(text.contains("rlra_device_busy_seconds{device=\"0\"} 1.25"));
        assert!(text.contains("rlra_device_info{device=\"0\",value=\"Tesla K40c\"} 1"));
        assert!(text.contains("# TYPE rlra_sim_kernel_seconds summary"));
        assert!(text.contains("rlra_sim_kernel_seconds{kernel=\"gemm\",quantile=\"0.5\"}"));
        assert!(text.contains("rlra_sim_kernel_seconds_count{kernel=\"gemm\"} 3"));
        // Exactly one TYPE line per family.
        assert_eq!(
            text.matches("# TYPE rlra_sim_kernel_seconds summary")
                .count(),
            1
        );
    }

    #[test]
    fn registry_json_is_versioned_and_parses_back() {
        let snap = populated();
        let doc = registry_json(&snap);
        let j = parse_json(&doc).expect("registry_json must parse");
        assert_eq!(
            j.get("schema_version").unwrap().as_num().unwrap() as u64,
            REGISTRY_SCHEMA_VERSION
        );
        assert_eq!(
            j.get("counters")
                .unwrap()
                .get("rlra_runs_total")
                .unwrap()
                .as_num(),
            Some(3.0)
        );
        let hist = j
            .get("hists")
            .unwrap()
            .get("rlra_sim_kernel_seconds{kernel=\"gemm\"}")
            .expect("histogram series present");
        let back = LogHistogram::from_parsed(hist).unwrap();
        assert_eq!(back.count(), 3);
        assert_eq!(
            back,
            *snap
                .hist(names::SIM_KERNEL_SECONDS, "kernel=\"gemm\"")
                .unwrap()
        );
    }
}
