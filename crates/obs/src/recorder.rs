//! The fault flight recorder and postmortem bundle writer.
//!
//! A [`FlightRecorder`] keeps a bounded ring of recent trace events
//! *per device* (plus one ring for device-less marks: stages, comms,
//! checkpoints), so a long healthy run cannot evict the short window
//! that matters when a device finally faults — each device's last
//! moments survive independently of how chatty the others were.
//!
//! On an incident (`DeviceFault`, `NumericalBreakdown`,
//! `DeadlineExceeded`), [`FlightRecorder::dump_postmortem`] writes a
//! self-contained bundle directory:
//!
//! - `MANIFEST.json` — incident kind/detail, checkpoint pointer (for
//!   deadline incidents, the snapshot id a resumed run would load),
//!   per-ring event counts, and the file list;
//! - `events.json` — the merged event tail in emission order;
//! - `metrics.json` — a registry snapshot ([`crate::registry_json`]);
//! - `report.json` — the run's `ExecReport` (pre-rendered by the
//!   caller; `rlra-obs` stays below `rlra-core` in the crate DAG).
//!
//! Like [`crate::Registry`], the recorder is a cheap clonable handle:
//! keep one clone, box another into the run's tracer (directly or via
//! [`crate::FanoutSink`]), and dump from the kept clone after the run
//! errors out.

use rlra_trace::{TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Ring key: a device ordinal, or the device-less mark track.
const GLOBAL_TRACK: usize = usize::MAX;

#[derive(Debug, Default)]
struct Ring {
    events: std::collections::VecDeque<(u64, TraceEvent)>,
    dropped: u64,
}

#[derive(Debug)]
struct Inner {
    rings: BTreeMap<usize, Ring>,
    capacity: usize,
    seq: u64,
}

/// Bounded per-device flight recorder over the trace-event stream.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<Inner>>,
}

/// Incident descriptor for a postmortem bundle.
#[derive(Debug, Clone, Default)]
pub struct Incident<'a> {
    /// Incident kind (`"device-fault"`, `"numerical-breakdown"`,
    /// `"deadline-exceeded"`).
    pub kind: &'a str,
    /// Human-readable detail (usually the error's `Display` text).
    pub detail: &'a str,
    /// Durability snapshot id a resumed run would load, when the
    /// incident carries one (`DeadlineExceeded`).
    pub checkpoint: Option<u64>,
    /// Pre-rendered `ExecReport` JSON, when a report survived.
    pub report_json: Option<&'a str>,
    /// Pre-rendered registry snapshot JSON ([`crate::registry_json`]).
    pub metrics_json: Option<&'a str>,
}

/// The track an event is recorded on: its charged/marked device, or
/// the global track for device-less annotations.
fn track_of(ev: &TraceEvent) -> usize {
    match *ev {
        TraceEvent::Kernel { device, .. }
        | TraceEvent::Span { device, .. }
        | TraceEvent::Wait { device, .. }
        | TraceEvent::Transfer { device, .. }
        | TraceEvent::Fault { device, .. }
        | TraceEvent::Recovery { device, .. }
        | TraceEvent::Speculation { device, .. }
        | TraceEvent::Sdc { device, .. } => device,
        TraceEvent::Comms { .. }
        | TraceEvent::Stage { .. }
        | TraceEvent::Breakdown { .. }
        | TraceEvent::Fallback { .. }
        | TraceEvent::HealthCheck { .. }
        | TraceEvent::Checkpoint { .. } => GLOBAL_TRACK,
    }
}

impl FlightRecorder {
    /// A recorder retaining the latest `capacity_per_device` events on
    /// each device track (min 1).
    pub fn new(capacity_per_device: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(Inner {
                rings: BTreeMap::new(),
                capacity: capacity_per_device.max(1),
                seq: 0,
            })),
        }
    }

    /// A boxed sink feeding this recorder, for
    /// `Tracer::new`/[`crate::FanoutSink`].
    pub fn sink(&self) -> Box<dyn TraceSink + Send> {
        Box::new(RecorderSink {
            recorder: self.clone(),
        })
    }

    /// Records one event (called by the sink adapter).
    pub fn ingest(&self, ev: TraceEvent) {
        if let Ok(mut g) = self.inner.lock() {
            let seq = g.seq;
            g.seq += 1;
            let capacity = g.capacity;
            let ring = g.rings.entry(track_of(&ev)).or_default();
            if ring.events.len() == capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            ring.events.push_back((seq, ev));
        }
    }

    /// The retained tail across all tracks, merged back into emission
    /// order.
    pub fn tail(&self) -> Vec<TraceEvent> {
        match self.inner.lock() {
            Ok(g) => {
                let mut all: Vec<(u64, TraceEvent)> = g
                    .rings
                    .values()
                    .flat_map(|r| r.events.iter().cloned())
                    .collect();
                all.sort_by_key(|(seq, _)| *seq);
                all.into_iter().map(|(_, ev)| ev).collect()
            }
            Err(_) => Vec::new(),
        }
    }

    /// Total events evicted across all tracks.
    pub fn dropped(&self) -> u64 {
        self.inner
            .lock()
            .map(|g| g.rings.values().map(|r| r.dropped).sum())
            .unwrap_or(0)
    }

    /// Number of currently retained events across all tracks.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .map(|g| g.rings.values().map(|r| r.events.len()).sum())
            .unwrap_or(0)
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes a postmortem bundle for `incident` into `dir` (created
    /// if missing) and returns the paths written, `MANIFEST.json`
    /// first.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the directory or
    /// writing the bundle files.
    pub fn dump_postmortem(&self, dir: &Path, incident: &Incident<'_>) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();

        let tail = self.tail();
        let events_doc = crate::events::events_json(&tail, self.dropped());
        let events_path = dir.join("events.json");
        std::fs::write(&events_path, &events_doc)?;

        let mut files = vec!["events.json".to_string()];
        if let Some(doc) = incident.metrics_json {
            std::fs::write(dir.join("metrics.json"), doc)?;
            files.push("metrics.json".to_string());
        }
        if let Some(doc) = incident.report_json {
            std::fs::write(dir.join("report.json"), doc)?;
            files.push("report.json".to_string());
        }

        let per_track: Vec<(usize, usize, u64)> = match self.inner.lock() {
            Ok(g) => g
                .rings
                .iter()
                .map(|(t, r)| (*t, r.events.len(), r.dropped))
                .collect(),
            Err(_) => Vec::new(),
        };

        let mut manifest = String::new();
        let _ = write!(
            manifest,
            "{{\"schema_version\":1,\"incident\":\"{}\",\"detail\":\"{}\",",
            rlra_trace::json::escape_json(incident.kind),
            rlra_trace::json::escape_json(incident.detail),
        );
        match incident.checkpoint {
            Some(id) => {
                let _ = write!(manifest, "\"checkpoint\":{id},");
            }
            None => manifest.push_str("\"checkpoint\":null,"),
        }
        let _ = write!(
            manifest,
            "\"events_retained\":{},\"events_dropped\":{},\"tracks\":[",
            tail.len(),
            self.dropped()
        );
        for (i, (track, len, dropped)) in per_track.iter().enumerate() {
            if i > 0 {
                manifest.push(',');
            }
            let label = if *track == GLOBAL_TRACK {
                "\"global\"".to_string()
            } else {
                track.to_string()
            };
            let _ = write!(
                manifest,
                "{{\"track\":{label},\"retained\":{len},\"dropped\":{dropped}}}"
            );
        }
        manifest.push_str("],\"files\":[");
        for (i, f) in files.iter().enumerate() {
            if i > 0 {
                manifest.push(',');
            }
            let _ = write!(manifest, "\"{f}\"");
        }
        manifest.push_str("]}");

        let manifest_path = dir.join("MANIFEST.json");
        std::fs::write(&manifest_path, &manifest)?;
        written.push(manifest_path);
        written.push(events_path);
        for f in &files[1..] {
            written.push(dir.join(f));
        }
        Ok(written)
    }
}

/// `TraceSink` adapter over a [`FlightRecorder`] handle.
#[derive(Debug)]
struct RecorderSink {
    recorder: FlightRecorder,
}

impl TraceSink for RecorderSink {
    fn record(&mut self, ev: TraceEvent) {
        self.recorder.ingest(ev);
    }

    fn dropped(&self) -> u64 {
        self.recorder.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_trace::parse_json;

    fn kernel(device: usize, launch: usize) -> TraceEvent {
        TraceEvent::Kernel {
            device,
            name: "gemm",
            phase: "Sampling",
            dims: [8, 8, 8],
            flops: 1024.0,
            bytes: 1536.0,
            start: launch as f64,
            end: launch as f64 + 0.5,
        }
    }

    #[test]
    fn per_device_rings_keep_each_devices_tail() {
        let rec = FlightRecorder::new(2);
        // Device 0 is chatty; device 1 faults after two launches.
        for i in 0..10 {
            rec.ingest(kernel(0, i));
        }
        rec.ingest(kernel(1, 100));
        rec.ingest(TraceEvent::Fault {
            device: 1,
            kind: "fail-stop",
            at_launch: 1,
            time: 101.0,
        });
        let tail = rec.tail();
        // Device 0 kept only its last 2, device 1 kept both of its events.
        assert_eq!(tail.len(), 4);
        assert_eq!(rec.dropped(), 8);
        assert!(matches!(tail[3], TraceEvent::Fault { device: 1, .. }));
        // Merged tail is in emission order.
        assert_eq!(tail[0], kernel(0, 8));
        assert_eq!(tail[1], kernel(0, 9));
        assert_eq!(tail[2], kernel(1, 100));
    }

    #[test]
    fn postmortem_bundle_round_trips() {
        let rec = FlightRecorder::new(8);
        rec.ingest(kernel(0, 0));
        rec.ingest(TraceEvent::Checkpoint {
            id: 3,
            bytes: 4096,
            time: 0.9,
        });
        rec.ingest(TraceEvent::Fault {
            device: 0,
            kind: "fail-stop",
            at_launch: 1,
            time: 1.0,
        });

        let dir = std::env::temp_dir().join("rlra_obs_postmortem_test");
        let _ = std::fs::remove_dir_all(&dir);
        let written = rec
            .dump_postmortem(
                &dir,
                &Incident {
                    kind: "deadline-exceeded",
                    detail: "deadline exceeded: budget 1.0s, snapshot 3",
                    checkpoint: Some(3),
                    report_json: Some("{\"seconds\":1.0}"),
                    metrics_json: Some("{\"schema_version\":1}"),
                },
            )
            .unwrap();
        assert_eq!(written.len(), 4);
        assert!(written[0].ends_with("MANIFEST.json"));

        let manifest = parse_json(&std::fs::read_to_string(&written[0]).unwrap()).unwrap();
        assert_eq!(
            manifest.get("incident").unwrap().as_str().unwrap(),
            "deadline-exceeded"
        );
        assert_eq!(manifest.get("checkpoint").unwrap().as_num().unwrap(), 3.0);
        assert_eq!(
            manifest.get("events_retained").unwrap().as_num().unwrap(),
            3.0
        );
        let files = manifest.get("files").unwrap().as_arr().unwrap();
        assert_eq!(files.len(), 3);

        let events =
            parse_json(&std::fs::read_to_string(dir.join("events.json")).unwrap()).unwrap();
        let arr = events.get("events").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("type").unwrap().as_str().unwrap(), "fault");
        assert_eq!(
            std::fs::read_to_string(dir.join("report.json")).unwrap(),
            "{\"seconds\":1.0}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_adapter_feeds_the_shared_recorder() {
        let rec = FlightRecorder::new(4);
        let mut sink = rec.sink();
        sink.record(kernel(2, 0));
        assert_eq!(rec.len(), 1);
        assert!(!rec.is_empty());
        assert!(matches!(
            rec.tail()[0],
            TraceEvent::Kernel { device: 2, .. }
        ));
    }
}
