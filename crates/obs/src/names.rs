//! The registered metric-name table.
//!
//! Every metric recorded anywhere in the workspace MUST name itself
//! through one of these constants — `cargo xtask analyze` (the
//! `metrics` lint) rejects ad-hoc string literals at record sites and
//! names that do not resolve to this table. One table means the
//! Prometheus scrape surface is enumerable, rename refactors are
//! single-file, and two subsystems can never fork the same series
//! under two spellings.

/// Simulated per-kernel latency distribution (histogram, `kernel=` label).
pub const SIM_KERNEL_SECONDS: &str = "rlra_sim_kernel_seconds";
/// Simulated per-stage latency distribution (histogram, `stage=` label).
pub const SIM_STAGE_SECONDS: &str = "rlra_sim_stage_seconds";
/// Simulated per-phase charge distribution (histogram, `phase=` label).
pub const SIM_PHASE_SECONDS: &str = "rlra_sim_phase_seconds";
/// Injected fault marks seen in the event stream (counter, `kind=` label).
pub const SIM_FAULTS_TOTAL: &str = "rlra_sim_faults_total";
/// Recovery actions seen in the event stream (counter, `action=` label).
pub const SIM_RECOVERIES_TOTAL: &str = "rlra_sim_recoveries_total";
/// Numerical breakdown marks (counter, `stage=` label).
pub const SIM_BREAKDOWNS_TOTAL: &str = "rlra_sim_breakdowns_total";
/// Fallback-ladder escalations (counter, `stage=` label).
pub const SIM_FALLBACKS_TOTAL: &str = "rlra_sim_fallbacks_total";
/// Guard health checks (counter, `ok=` label).
pub const SIM_HEALTH_CHECKS_TOTAL: &str = "rlra_sim_health_checks_total";
/// Durability snapshots written (counter).
pub const SIM_CHECKPOINTS_TOTAL: &str = "rlra_sim_checkpoints_total";
/// Bytes drained into durability snapshots (counter).
pub const SIM_CHECKPOINT_BYTES_TOTAL: &str = "rlra_sim_checkpoint_bytes_total";
/// Speculative straggler re-dispatches (counter, `outcome=` label).
pub const SIM_SPECULATIONS_TOTAL: &str = "rlra_sim_speculations_total";
/// Silent-data-corruption lifecycle marks seen in the event stream
/// (counter, `action=` label: injected / detected / corrected / rerun /
/// rollback).
pub const SIM_SDC_EVENTS_TOTAL: &str = "rlra_sim_sdc_events_total";

/// Per-device busy seconds from a finished run (gauge, `device=` label).
pub const DEVICE_BUSY_SECONDS: &str = "rlra_device_busy_seconds";
/// Per-device barrier-idle seconds (gauge, `device=` label).
pub const DEVICE_WAIT_SECONDS: &str = "rlra_device_wait_seconds";
/// Per-device PCIe bytes moved (gauge, `device=` label).
pub const DEVICE_BYTES_MOVED: &str = "rlra_device_bytes_moved";
/// Calibrated peak double-precision Gflop/s (gauge, `device=` label).
pub const DEVICE_PEAK_GFLOPS: &str = "rlra_device_peak_gflops";
/// Calibrated peak memory bandwidth GB/s (gauge, `device=` label).
pub const DEVICE_PEAK_GBS: &str = "rlra_device_peak_gbs";
/// Kernel launches issued per device (counter, `device=` label).
pub const DEVICE_LAUNCHES_TOTAL: &str = "rlra_device_launches_total";
/// Host synchronizations per device (counter, `device=` label).
pub const DEVICE_SYNCS_TOTAL: &str = "rlra_device_syncs_total";
/// Device model name (info, `device=` label).
pub const DEVICE_INFO: &str = "rlra_device_info";

/// Aggregated launches per device/kernel pair (counter,
/// `device=`+`kernel=` labels).
pub const KERNEL_LAUNCHES_TOTAL: &str = "rlra_kernel_launches_total";
/// Aggregated simulated seconds per device/kernel pair (gauge).
pub const KERNEL_SECONDS_TOTAL: &str = "rlra_kernel_seconds_total";
/// Aggregated flops per device/kernel pair (gauge).
pub const KERNEL_FLOPS_TOTAL: &str = "rlra_kernel_flops_total";
/// Aggregated bytes per device/kernel pair (gauge).
pub const KERNEL_BYTES_TOTAL: &str = "rlra_kernel_bytes_total";

/// Runs ingested into the registry (counter).
pub const RUNS_TOTAL: &str = "rlra_runs_total";
/// Transient-fault retries across ingested runs (counter).
pub const RUN_RETRIES_TOTAL: &str = "rlra_run_retries_total";
/// Fallback-ladder escalations across ingested runs (counter).
pub const RUN_FALLBACKS_TOTAL: &str = "rlra_run_fallbacks_total";
/// Recovery-phase seconds of the most recently ingested run (gauge).
pub const RUN_RECOVERY_SECONDS: &str = "rlra_run_recovery_seconds";
/// Silent corruptions injected across ingested runs (counter).
pub const RUN_SDC_INJECTED_TOTAL: &str = "rlra_run_sdc_injected_total";
/// Silent corruptions detected across ingested runs (counter).
pub const RUN_SDC_DETECTED_TOTAL: &str = "rlra_run_sdc_detected_total";
/// Silent corruptions repaired in place across ingested runs (counter).
pub const RUN_SDC_CORRECTED_TOTAL: &str = "rlra_run_sdc_corrected_total";
/// Silent corruptions escalated to checkpoint rollback across ingested
/// runs (counter).
pub const RUN_SDC_ROLLBACKS_TOTAL: &str = "rlra_run_sdc_rollbacks_total";
/// End-to-end simulated seconds of ingested runs (histogram).
pub const RUN_SECONDS: &str = "rlra_run_seconds";

/// Wall-clock seconds per `rlra_blas::gemm` call (histogram).
pub const WALL_GEMM_SECONDS: &str = "rlra_wall_gemm_seconds";
/// Wall-clock seconds per CholQR ladder-rung call (histogram,
/// `rung=` label).
pub const WALL_CHOLQR_SECONDS: &str = "rlra_wall_cholqr_seconds";
/// Wall-clock seconds per `sample_panel_step` call (histogram).
pub const WALL_SAMPLE_PANEL_SECONDS: &str = "rlra_wall_sample_panel_seconds";
/// Wall-clock seconds per end-to-end pipeline run (histogram,
/// recorded by benches).
pub const WALL_PIPELINE_SECONDS: &str = "rlra_wall_pipeline_seconds";

/// Every registered metric name — the single enumeration the `metrics`
/// lint checks record sites against and the exposition tests walk.
pub const ALL: &[&str] = &[
    SIM_KERNEL_SECONDS,
    SIM_STAGE_SECONDS,
    SIM_PHASE_SECONDS,
    SIM_FAULTS_TOTAL,
    SIM_RECOVERIES_TOTAL,
    SIM_BREAKDOWNS_TOTAL,
    SIM_FALLBACKS_TOTAL,
    SIM_HEALTH_CHECKS_TOTAL,
    SIM_CHECKPOINTS_TOTAL,
    SIM_CHECKPOINT_BYTES_TOTAL,
    SIM_SPECULATIONS_TOTAL,
    SIM_SDC_EVENTS_TOTAL,
    DEVICE_BUSY_SECONDS,
    DEVICE_WAIT_SECONDS,
    DEVICE_BYTES_MOVED,
    DEVICE_PEAK_GFLOPS,
    DEVICE_PEAK_GBS,
    DEVICE_LAUNCHES_TOTAL,
    DEVICE_SYNCS_TOTAL,
    DEVICE_INFO,
    KERNEL_LAUNCHES_TOTAL,
    KERNEL_SECONDS_TOTAL,
    KERNEL_FLOPS_TOTAL,
    KERNEL_BYTES_TOTAL,
    RUNS_TOTAL,
    RUN_RETRIES_TOTAL,
    RUN_FALLBACKS_TOTAL,
    RUN_RECOVERY_SECONDS,
    RUN_SDC_INJECTED_TOTAL,
    RUN_SDC_DETECTED_TOTAL,
    RUN_SDC_CORRECTED_TOTAL,
    RUN_SDC_ROLLBACKS_TOTAL,
    RUN_SECONDS,
    WALL_GEMM_SECONDS,
    WALL_CHOLQR_SECONDS,
    WALL_SAMPLE_PANEL_SECONDS,
    WALL_PIPELINE_SECONDS,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique_prometheus_safe_and_prefixed() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate metric name {name}");
            assert!(
                name.starts_with("rlra_"),
                "{name} must carry the rlra_ prefix"
            );
            assert!(
                name.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
                "{name} must be a bare prometheus identifier"
            );
        }
    }
}
