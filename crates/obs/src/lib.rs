//! `rlra-obs` — continuous fleet telemetry for the simulated runs.
//!
//! `rlra-trace` answers "what happened inside one run"; this crate
//! answers "how is the fleet doing across runs": a process-wide metric
//! [`Registry`] of counters, gauges, and mergeable log-bucketed
//! [`LogHistogram`]s with exact p50/p99/p999, fed from three sources —
//!
//! 1. the simulated cost funnel, streamed event-by-event through a
//!    [`RegistrySink`] tracer adapter,
//! 2. finished-run aggregates, folded in via
//!    [`Registry::ingest_metrics`], and
//! 3. real wall-clock timings from the [`walltime`] funnel — the
//!    workspace's single sanctioned `Instant::now` site, contained so
//!    time flows into histograms and never back into numerics.
//!
//! Snapshots expose as Prometheus text ([`prometheus_text`]) or a
//! schema-versioned JSON document ([`registry_json`]), and render as a
//! terminal [`roofline_summary`]. A [`FlightRecorder`] keeps bounded
//! per-device rings of recent trace events and writes postmortem
//! bundles on faults, breakdowns, and blown deadlines.
//!
//! Everything here is observe-only: attaching any of it to a run keeps
//! factors and the full `ExecReport` bit-identical to an
//! uninstrumented run — the invariant `crates/core/tests/trace.rs`
//! pins on every backend.

pub mod events;
pub mod expo;
pub mod hist;
pub mod names;
pub mod recorder;
pub mod registry;
pub mod roofline;
pub mod walltime;

pub use events::{event_json, events_json};
pub use expo::{prometheus_text, registry_json, REGISTRY_SCHEMA_VERSION};
pub use hist::{LogHistogram, SUBBUCKETS};
pub use recorder::{FlightRecorder, Incident};
pub use registry::{label1, label2, FanoutSink, Registry, RegistrySink, Snapshot};
pub use roofline::roofline_summary;
