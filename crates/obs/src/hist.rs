//! Log-bucketed streaming histograms with exact quantile queries.
//!
//! The serving scheduler (ROADMAP item 1) and the hot-path bench need
//! p50/p99/p999 over unbounded streams of latencies without retaining
//! samples. [`LogHistogram`] buckets values on a logarithmic grid
//! (HDR-histogram style): the bucket index of a value is a pure
//! function of the value, so merging two histograms is a plain
//! per-bucket count addition — associative and commutative by
//! construction, which is what lets per-run histograms from many
//! workers fold into one fleet-wide distribution in any order.
//!
//! Resolution is [`SUBBUCKETS`] buckets per power of two (~9% relative
//! error per bucket edge), and quantile answers are clamped into the
//! exact observed `[min, max]` range, so a reported quantile is never
//! outside the recorded values.

use rlra_trace::json::num_json;
use rlra_trace::{parse_json, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Log-grid resolution: buckets per power of two.
pub const SUBBUCKETS: i32 = 8;

/// Bucket index that collects non-positive (and non-finite) samples.
const FLOOR_BUCKET: i32 = i32::MIN;

/// A mergeable log-bucketed histogram over non-negative `f64` samples.
///
/// Tracks exact `count`, `sum`, `min`, and `max` alongside the bucket
/// counts, so means are exact and quantiles are bucket-resolution
/// estimates clamped into the observed range.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    buckets: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// The log-grid bucket index of `v` (pure in `v`, shared by every
/// histogram — the merge-compatibility invariant).
fn bucket_of(v: f64) -> i32 {
    if !v.is_finite() || v <= 0.0 {
        return FLOOR_BUCKET;
    }
    (v.log2() * f64::from(SUBBUCKETS)).floor() as i32
}

/// Upper edge of bucket `i` — the representative value quantile
/// queries report for ranks landing in the bucket.
fn bucket_upper(i: i32) -> f64 {
    if i == FLOOR_BUCKET {
        return 0.0;
    }
    ((f64::from(i) + 1.0) / f64::from(SUBBUCKETS)).exp2()
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one sample. Non-finite and non-positive samples land in
    /// a dedicated floor bucket (reported as 0.0 by quantiles).
    pub fn record(&mut self, v: f64) {
        let v = if v.is_finite() { v } else { 0.0 };
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), or `None` when empty.
    ///
    /// Walks the bucket grid to the bucket holding the
    /// `ceil(q * count)`-th smallest sample and reports that bucket's
    /// upper edge, clamped into the exact `[min, max]` observed — so
    /// the answer is never outside the recorded values.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper(*i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (p50).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Folds `other` into `self` (per-bucket count addition; exact
    /// summaries combine exactly).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (i, n) in &other.buckets {
            *self.buckets.entry(*i).or_insert(0) += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Serializes the histogram as a JSON object that [`LogHistogram::from_json`]
    /// reconstructs exactly (shortest-round-trip float formatting).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{{",
            self.count,
            num_json(self.sum),
            num_json(self.min),
            num_json(self.max),
        );
        for (j, (i, n)) in self.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{i}\":{n}");
        }
        out.push_str("}}");
        out
    }

    /// Parses a document produced by [`LogHistogram::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or missing/mistyped fields.
    pub fn from_json(doc: &str) -> Result<LogHistogram, String> {
        let j = parse_json(doc)?;
        Self::from_parsed(&j)
    }

    /// [`LogHistogram::from_json`] over an already-parsed [`Json`] value.
    ///
    /// # Errors
    ///
    /// Returns a message on missing or mistyped fields.
    pub fn from_parsed(j: &Json) -> Result<LogHistogram, String> {
        let num = |k: &str| {
            j.get(k)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("histogram field `{k}` missing or not a number"))
        };
        let mut h = LogHistogram {
            count: num("count")? as u64,
            sum: num("sum")?,
            min: num("min")?,
            max: num("max")?,
            buckets: BTreeMap::new(),
        };
        let Some(Json::Obj(members)) = j.get("buckets") else {
            return Err("histogram field `buckets` missing or not an object".into());
        };
        for (k, v) in members {
            let i: i32 = k.parse().map_err(|_| format!("bad bucket index `{k}`"))?;
            let n = v
                .as_num()
                .ok_or_else(|| format!("bucket `{k}` count not a number"))?;
            h.buckets.insert(i, n as u64);
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_stay_inside_the_recorded_range() {
        let mut h = LogHistogram::new();
        for v in [0.001, 0.002, 0.004, 0.1, 3.0] {
            h.record(v);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let x = h.quantile(q).unwrap();
            assert!((0.001..=3.0).contains(&x), "q={q} gave {x}");
        }
        assert_eq!(h.quantile(1.0), Some(3.0));
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 3.107).abs() < 1e-12);
    }

    /// Equality up to float-summation order: buckets, count, min, and
    /// max combine exactly; `sum` may differ in the last ulp because
    /// merge adds partial sums in a different order than sequential
    /// recording.
    fn assert_same_distribution(a: &LogHistogram, b: &LogHistogram) {
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.count, b.count);
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        assert!((a.sum - b.sum).abs() <= 1e-12 * a.sum.abs().max(1.0));
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let xs = [1e-6, 5e-4, 0.02, 0.02, 1.7, 44.0];
        let mut all = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, v) in xs.iter().enumerate() {
            all.record(*v);
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_same_distribution(&merged, &all);
        let mut swapped = b;
        swapped.merge(&a);
        // Merge in either order lands on the identical histogram:
        // per-bucket addition is commutative.
        assert_eq!(swapped.buckets, merged.buckets);
        assert_same_distribution(&swapped, &all);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut h = LogHistogram::new();
        for v in [0.0, 1.25e-7, 0.33, 100.0, f64::NAN] {
            h.record(v);
        }
        let doc = h.to_json();
        let back = LogHistogram::from_json(&doc).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_json(), doc);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        let back = LogHistogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn floor_bucket_collects_non_positive_samples() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), Some(0.0));
        assert!(h.quantile(1.0).unwrap() <= 0.0);
    }
}
