//! The wall-clock profiling funnel — the **only** sanctioned
//! wall-time source in the workspace.
//!
//! The determinism analyzer (`cargo xtask analyze`) forbids
//! `Instant::now` everywhere in library code because wall time leaking
//! into numerics or the cost model would break bit-reproducibility.
//! Profiling still needs real timings, so this module is the single
//! exemption, kept safe by *containment*: wall time flows **in** to the
//! global registry's histograms and never flows **out** — no public
//! function here returns an `f64`, `Duration`, or `Instant`, so
//! instrumented code cannot read the clock back and numerics cannot
//! depend on it. The analyzer's `metrics` pass checks both halves
//! (this file is the one allowed carrier; its public surface must stay
//! time-opaque).
//!
//! Instrumentation is a scope guard:
//!
//! ```
//! use rlra_obs::{names, walltime};
//! let _t = walltime::scoped(names::WALL_GEMM_SECONDS);
//! // ... hot path ...
//! // drop records elapsed seconds into the global registry
//! ```
//!
//! Profiling is off by default (guards are created disarmed and never
//! touch the clock), so library users pay one relaxed atomic load per
//! instrumented call until [`enable`] arms the funnel.

use crate::registry::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Arms the funnel: subsequently created scopes record wall time.
/// Returns a handle to the global registry the samples land in.
pub fn enable() -> Registry {
    ENABLED.store(true, Ordering::Relaxed);
    global().clone()
}

/// Disarms the funnel. Scopes created while disarmed never read the
/// clock; already-armed live scopes still record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the funnel is currently armed.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Handle to the global registry wall samples land in (also reachable
/// from [`enable`]'s return value).
pub fn registry() -> Registry {
    global().clone()
}

/// An armed-or-disarmed wall-clock scope; records elapsed seconds into
/// the global registry when dropped.
#[derive(Debug)]
pub struct WallScope {
    name: &'static str,
    label: &'static str,
    start: Option<Instant>,
}

/// Starts a wall-clock scope for metric `name` (a
/// [`crate::names`] constant). Disarmed (and free) unless [`enable`]
/// was called.
pub fn scoped(name: &'static str) -> WallScope {
    scoped_labeled(name, "")
}

/// [`scoped`] with a static label set (e.g. `rung="cholqr2"`).
pub fn scoped_labeled(name: &'static str, label: &'static str) -> WallScope {
    let start = if is_enabled() {
        // analyze: allow(determinism, the single sanctioned wall-clock read; containment keeps it write-only into the registry)
        Some(Instant::now())
    } else {
        None
    };
    WallScope { name, label, start }
}

impl Drop for WallScope {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            global().observe(self.name, self.label, start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn disarmed_scopes_record_nothing_and_armed_scopes_record() {
        // One test owns the whole enable/disable cycle (global state).
        disable();
        drop(scoped(names::WALL_PIPELINE_SECONDS));
        let before = registry()
            .snapshot()
            .hist(names::WALL_PIPELINE_SECONDS, "")
            .map_or(0, crate::hist::LogHistogram::count);
        assert_eq!(before, 0);

        let reg = enable();
        drop(scoped(names::WALL_PIPELINE_SECONDS));
        drop(scoped_labeled(
            names::WALL_CHOLQR_SECONDS,
            "rung=\"cholqr2\"",
        ));
        disable();
        drop(scoped(names::WALL_PIPELINE_SECONDS));

        let snap = reg.snapshot();
        let h = snap.hist(names::WALL_PIPELINE_SECONDS, "").unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.min().unwrap() >= 0.0);
        let c = snap
            .hist(names::WALL_CHOLQR_SECONDS, "rung=\"cholqr2\"")
            .unwrap();
        assert_eq!(c.count(), 1);
    }
}
