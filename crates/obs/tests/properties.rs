//! Property-based tests for the streaming [`LogHistogram`]: merging is
//! associative and commutative (the fleet-fold invariant — per-run
//! histograms from many workers must collapse into one distribution in
//! any order), quantile queries are monotone and clamped into the
//! observed range, and the JSON export round-trips exactly.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use rlra_obs::LogHistogram;

/// Latency-shaped samples: up to a minute, plus the zero and
/// subnormal-range edge cases the floor bucket absorbs.
fn with_edge_cases(mut xs: Vec<f64>, zeros: usize, tinies: usize) -> Vec<f64> {
    xs.extend(std::iter::repeat_n(0.0, zeros));
    xs.extend(std::iter::repeat_n(1e-300, tinies));
    xs
}

fn hist_of(samples: &[f64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(
        xs in pvec(0.0f64..60.0, 0..64),
        ys in pvec(0.0f64..60.0, 0..64),
        zeros in 0usize..3,
        tinies in 0usize..3,
    ) {
        let a = hist_of(&with_edge_cases(xs, zeros, tinies));
        let b = hist_of(&ys);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative_and_matches_the_one_pass_fold(
        xs in pvec(0.0f64..60.0, 0..48),
        ys in pvec(0.0f64..60.0, 0..48),
        zs in pvec(0.0f64..60.0, 0..48),
        zeros in 0usize..3,
    ) {
        let xs = with_edge_cases(xs, zeros, zeros);
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);

        // The distribution state — bucket counts (probed through the
        // whole quantile curve), count, min, max — is exactly
        // fold-order independent; the exact `sum` is an f64 fold, so
        // it is only associative to rounding.
        let all: Vec<f64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        let one_pass = hist_of(&all);
        for h in [&right, &one_pass] {
            prop_assert_eq!(left.count(), h.count());
            prop_assert_eq!(left.min(), h.min());
            prop_assert_eq!(left.max(), h.max());
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                prop_assert_eq!(left.quantile(q), h.quantile(q));
            }
            let (s1, s2) = (left.sum(), h.sum());
            prop_assert!((s1 - s2).abs() <= 1e-12 * s1.abs().max(1.0));
        }
    }

    #[test]
    fn quantiles_are_monotone_and_within_the_observed_range(
        xs in pvec(0.0f64..60.0, 1..128),
        qs in pvec(0.0f64..1.0, 2..8),
    ) {
        let h = hist_of(&xs);
        let (lo, hi) = (h.min().unwrap(), h.max().unwrap());

        // Walk the quantile curve in order, ending at the exact top.
        let mut sorted = qs;
        sorted.push(1.0);
        sorted.sort_by(f64::total_cmp);
        let mut prev = f64::NEG_INFINITY;
        for q in sorted {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= prev, "quantile({}) = {} dropped below {}", q, v, prev);
            prop_assert!(
                v >= lo && v <= hi,
                "quantile({}) = {} outside [{}, {}]", q, v, lo, hi
            );
            prev = v;
        }
    }

    #[test]
    fn json_export_round_trips_exactly(
        xs in pvec(0.0f64..60.0, 0..96),
        zeros in 0usize..3,
        tinies in 0usize..3,
    ) {
        let h = hist_of(&with_edge_cases(xs, zeros, tinies));
        let back = LogHistogram::from_json(&h.to_json()).unwrap();
        prop_assert_eq!(&h, &back);
        // And the round-tripped copy keeps answering identically.
        prop_assert_eq!(h.count(), back.count());
        prop_assert_eq!(h.quantile(0.999), back.quantile(0.999));
    }
}
