//! Criterion benchmarks of the CPU BLAS kernels backing the simulation.

// `criterion_group!` expands to an undocumented pub fn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_blas::{gemm, gemv, Trans};
use rlra_matrix::{gaussian_mat, Mat};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let mut rng = StdRng::seed_from_u64(1);
    for &(m, n, k) in &[
        (64usize, 64usize, 64usize),
        (256, 256, 256),
        (64, 1000, 2000),
    ] {
        let a = gaussian_mat(m, k, &mut rng);
        let b = gaussian_mat(k, n, &mut rng);
        let mut cmat = Mat::zeros(m, n);
        group.throughput(Throughput::Elements((2 * m * n * k) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}x{k}")),
            &(m, n, k),
            |bch, _| {
                bch.iter(|| {
                    gemm(
                        1.0,
                        a.as_ref(),
                        Trans::No,
                        b.as_ref(),
                        Trans::No,
                        0.0,
                        cmat.as_mut(),
                    )
                    .unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemv");
    let mut rng = StdRng::seed_from_u64(2);
    for &(m, n) in &[(1000usize, 1000usize), (10_000, 500)] {
        let a = gaussian_mat(m, n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; m];
        group.throughput(Throughput::Elements((2 * m * n) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &(m, n),
            |b, _| b.iter(|| gemv(1.0, a.as_ref(), Trans::No, &x, 0.0, &mut y).unwrap()),
        );
    }
    group.finish();
}

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot");
    for &n in &[1_000usize, 100_000] {
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        group.throughput(Throughput::Elements(2 * n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| rlra_blas::dot(&x, &y));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_gemv, bench_dot);
criterion_main!(benches);
