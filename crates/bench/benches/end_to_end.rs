//! Criterion benchmarks of the full pipelines: random sampling (CPU and
//! simulated-GPU paths) vs the truncated-QP3 baseline.

// `criterion_group!` expands to an undocumented pub fn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_core::{qp3_low_rank, sample_fixed_rank, sample_fixed_rank_gpu, SamplerConfig};
use rlra_gpu::Gpu;

fn test_matrix(m: usize, n: usize) -> rlra_matrix::Mat {
    let mut rng = StdRng::seed_from_u64(7);
    let spec = rlra_data::power_spectrum(n);
    rlra_data::matrix_with_spectrum(m, n, &spec, &mut rng)
        .unwrap()
        .a
}

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let (m, n, k) = (1_500usize, 400usize, 20usize);
    let a = test_matrix(m, n);
    for q in [0usize, 1] {
        let cfg = SamplerConfig::new(k).with_q(q);
        group.bench_with_input(BenchmarkId::new("random_sampling_cpu", q), &q, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sample_fixed_rank(&a, &cfg, &mut rng).unwrap());
        });
    }
    group.bench_function("qp3_baseline_cpu", |b| {
        b.iter(|| qp3_low_rank(&a, k).unwrap());
    });
    group.bench_function("random_sampling_sim_gpu", |b| {
        let cfg = SamplerConfig::new(k);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut gpu = Gpu::k40c();
            let ad = gpu.resident(&a);
            sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng).unwrap()
        });
    });
    // Hierarchical compression + solve on a kernel system.
    group.bench_function("hodlr_compress_256", |b| {
        let pts = rlra_data::uniform_points(256);
        let mut ker =
            rlra_data::kernel_matrix(rlra_data::Kernel::Exponential { gamma: 16.0 }, &pts);
        for i in 0..256 {
            ker[(i, i)] += 1.0;
        }
        let cfg = SamplerConfig::new(8).with_p(6).with_q(1);
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| rlra_core::HodlrMatrix::compress(&ker, 64, &cfg, &mut rng).unwrap());
    });
    group.bench_function("hodlr_solve_256", |b| {
        let pts = rlra_data::uniform_points(256);
        let mut ker =
            rlra_data::kernel_matrix(rlra_data::Kernel::Exponential { gamma: 16.0 }, &pts);
        for i in 0..256 {
            ker[(i, i)] += 1.0;
        }
        let cfg = SamplerConfig::new(8).with_p(6).with_q(1);
        let mut rng = StdRng::seed_from_u64(5);
        let h = rlra_core::HodlrMatrix::compress(&ker, 64, &cfg, &mut rng).unwrap();
        let rhs: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
        b.iter(|| h.solve(&rhs).unwrap());
    });
    // Dry-run timing at paper scale: measures the simulator's own
    // overhead (should be microseconds).
    group.bench_function("dry_run_full_scale", |b| {
        let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let mut gpu = Gpu::k40c_dry();
            let ad = gpu.resident_shape(50_000, 2_500);
            sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
