//! Criterion benchmarks of the sampling operators: Gaussian GEMM vs SRFT
//! (full and pruned) — the real-CPU analogue of the paper's Figure 8.

// `criterion_group!` expands to an undocumented pub fn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_blas::Trans;
use rlra_fft::{SrftOperator, SrftScheme};
use rlra_matrix::{gaussian_mat, Mat};

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    let mut rng = StdRng::seed_from_u64(1);
    let (m, n) = (4_096usize, 256usize);
    let a = gaussian_mat(m, n, &mut rng);
    for &l in &[16usize, 64] {
        let omega = gaussian_mat(l, m, &mut rng);
        let mut bmat = Mat::zeros(l, n);
        group.bench_with_input(BenchmarkId::new("gaussian_gemm", l), &l, |b, _| {
            b.iter(|| {
                rlra_blas::gemm(
                    1.0,
                    omega.as_ref(),
                    Trans::No,
                    a.as_ref(),
                    Trans::No,
                    0.0,
                    bmat.as_mut(),
                )
                .unwrap();
            });
        });
        let full = SrftOperator::new(m, l, SrftScheme::Full, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("srft_full", l), &l, |b, _| {
            b.iter(|| full.sample_rows(&a).unwrap());
        });
        let pruned = SrftOperator::new(m, l, SrftScheme::Pruned, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("srft_pruned", l), &l, |b, _| {
            b.iter(|| pruned.sample_rows(&a).unwrap());
        });
    }
    group.finish();
}

fn bench_prng(c: &mut Criterion) {
    let mut group = c.benchmark_group("prng");
    group.bench_function("gaussian_64x4096", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| gaussian_mat(64, 4_096, &mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench_sampling, bench_prng);
criterion_main!(benches);
