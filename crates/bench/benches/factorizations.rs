//! Criterion benchmarks of the dense factorizations: the orthogonalization
//! schemes of the paper's Figure 7 (here as real CPU kernels) and the
//! QRCP baselines.

// `criterion_group!` expands to an undocumented pub fn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_matrix::gaussian_mat;

fn bench_tall_skinny_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("tall_skinny_qr");
    let mut rng = StdRng::seed_from_u64(1);
    let (m, n) = (4_000usize, 64usize);
    let a = gaussian_mat(m, n, &mut rng);
    group.bench_function(BenchmarkId::new("cholqr", format!("{m}x{n}")), |b| {
        b.iter(|| rlra_lapack::cholqr(&a).unwrap());
    });
    group.bench_function(BenchmarkId::new("cholqr2", format!("{m}x{n}")), |b| {
        b.iter(|| rlra_lapack::cholqr2(&a).unwrap());
    });
    group.bench_function(BenchmarkId::new("hhqr", format!("{m}x{n}")), |b| {
        b.iter(|| rlra_lapack::qr_factor(&a));
    });
    group.bench_function(BenchmarkId::new("cgs", format!("{m}x{n}")), |b| {
        b.iter(|| rlra_lapack::cgs(&a).unwrap());
    });
    group.bench_function(BenchmarkId::new("mgs", format!("{m}x{n}")), |b| {
        b.iter(|| rlra_lapack::mgs(&a).unwrap());
    });
    group.bench_function(BenchmarkId::new("tsqr", format!("{m}x{n}")), |b| {
        b.iter(|| rlra_lapack::tsqr(&a, 512).unwrap());
    });
    group.bench_function(BenchmarkId::new("cholqr_mixed", format!("{m}x{n}")), |b| {
        b.iter(|| rlra_lapack::cholqr_mixed(&a).unwrap());
    });
    group.finish();
}

fn bench_qrcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("qrcp");
    let mut rng = StdRng::seed_from_u64(2);
    let (m, n, k) = (1_000usize, 500usize, 64usize);
    let a = gaussian_mat(m, n, &mut rng);
    group.bench_function(BenchmarkId::new("column", format!("{m}x{n} k={k}")), |b| {
        b.iter(|| rlra_lapack::qrcp_column(&a, k).unwrap());
    });
    group.bench_function(
        BenchmarkId::new("qp3_blocked", format!("{m}x{n} k={k}")),
        |b| b.iter(|| rlra_lapack::qp3_blocked(&a, k, 32).unwrap()),
    );
    group.bench_function(
        BenchmarkId::new("tournament", format!("{m}x{n} k={k}")),
        |b| b.iter(|| rlra_lapack::tournament_qrcp(&a, k).unwrap()),
    );
    group.finish();
}

fn bench_cholesky_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("small_factorizations");
    let mut rng = StdRng::seed_from_u64(3);
    let g = {
        let b = gaussian_mat(96, 128, &mut rng);
        let mut g = rlra_matrix::Mat::zeros(96, 96);
        rlra_blas::syrk(
            1.0,
            b.as_ref(),
            rlra_blas::Trans::No,
            0.0,
            g.as_mut(),
            rlra_blas::UpLo::Upper,
        )
        .unwrap();
        for j in 0..96 {
            for i in 0..j {
                let v = g[(i, j)];
                g[(j, i)] = v;
            }
            g[(j, j)] += 96.0;
        }
        g
    };
    group.bench_function("cholesky_96", |b| {
        b.iter(|| rlra_lapack::cholesky_upper(&g).unwrap());
    });
    let a = gaussian_mat(48, 32, &mut rng);
    group.bench_function("jacobi_svd_48x32", |b| {
        b.iter(|| rlra_lapack::svd_jacobi(&a).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tall_skinny_qr,
    bench_qrcp,
    bench_cholesky_svd
);
criterion_main!(benches);
