//! # rlra-bench
//!
//! Benchmark harness regenerating **every table and figure** of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index).
//!
//! Each `src/bin/figNN_*.rs` binary prints the same rows/series the
//! paper reports (and drops a CSV next to it under `target/figures/`);
//! the Criterion benches under `benches/` measure the real wall-clock
//! performance of the CPU kernels backing the simulation.
//!
//! Conventions:
//!
//! - Performance figures run the simulated GPU in **dry-run mode** at the
//!   paper's full problem sizes (timing is analytic, so this is instant).
//! - Numerical figures (6, 16, 17) **compute real factorizations**; by
//!   default they run at a reduced scale that preserves the spectra
//!   (documented per binary), and accept `--full` for the paper's sizes.

#![forbid(unsafe_code)]

use rlra_gpu::{Phase, Timeline};
use rlra_trace::{chrome_trace_json, metrics_json, Metrics, Tracer};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Runtime options shared by the figure binaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchOpts {
    /// Run the numerical experiments at the paper's full sizes.
    pub full: bool,
    /// Run a fast reduced-scale pass (CI smoke). Takes precedence over
    /// `full` when both flags are given.
    pub smoke: bool,
}

impl BenchOpts {
    /// Parses `--full` and `--smoke` from the process arguments.
    pub fn from_args() -> Self {
        let full = std::env::args().any(|a| a == "--full");
        let smoke = std::env::args().any(|a| a == "--smoke");
        BenchOpts { full, smoke }
    }
}

/// Schema version stamped into every `BENCH_*.json` document. v2 adds
/// `schema_version` itself plus optional per-record wall-clock
/// percentiles; v1 consumers keyed on `config`/`wall_s`/`modeled_s`,
/// which are unchanged.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// Wall-clock percentiles over repeated runs of one configuration.
#[derive(Debug, Clone, Copy)]
pub struct WallPercentiles {
    /// Median wall seconds.
    pub p50: f64,
    /// 99th-percentile wall seconds.
    pub p99: f64,
    /// 99.9th-percentile wall seconds.
    pub p999: f64,
}

impl WallPercentiles {
    /// Nearest-rank percentiles of raw samples (exact — for the small
    /// repeat counts the figure binaries run). `None` when empty.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let at = |q: f64| {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Some(WallPercentiles {
            p50: at(0.50),
            p99: at(0.99),
            p999: at(0.999),
        })
    }

    /// Percentiles of a streaming [`rlra_obs::LogHistogram`]
    /// (log-bucketed — what the wall-clock funnel records).
    pub fn from_histogram(h: &rlra_obs::LogHistogram) -> Option<Self> {
        Some(WallPercentiles {
            p50: h.quantile(0.50)?,
            p99: h.quantile(0.99)?,
            p999: h.quantile(0.999)?,
        })
    }
}

/// One measured configuration for a repo-root `BENCH_*.json` file
/// (ROADMAP: wall-clock benchmark trajectory tracked per PR).
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Configuration label, e.g. `static l_inc=32/incremental`.
    pub config: String,
    /// Real wall-clock seconds of the host run (the median when the
    /// binary repeats the run).
    pub wall_s: f64,
    /// Modeled simulated seconds reported by the executor.
    pub modeled_s: f64,
    /// Wall percentiles across repeats (schema v2; omitted from the
    /// JSON when absent).
    pub wall: Option<WallPercentiles>,
}

/// Serializes bench records as `BENCH_<name>.json` in `dir`.
///
/// Hand-rolled JSON — the workspace deliberately has no serde
/// dependency; labels are ASCII and contain no characters needing
/// escaping.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json_at(
    dir: &std::path::Path,
    name: &str,
    records: &[BenchRecord],
) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"{name}\",");
    let _ = writeln!(s, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let wall = r.wall.map_or_else(String::new, |w| {
            format!(
                ", \"wall_p50\": {:.6}, \"wall_p99\": {:.6}, \"wall_p999\": {:.6}",
                w.p50, w.p99, w.p999
            )
        });
        let _ = writeln!(
            s,
            "    {{ \"config\": \"{}\", \"wall_s\": {:.6}, \"modeled_s\": {:.6}{wall} }}{comma}",
            r.config, r.wall_s, r.modeled_s
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    fs::write(&path, s)?;
    Ok(path)
}

/// Writes `BENCH_<name>.json` into the current directory — the
/// workspace root under `cargo run`, which is where the per-PR bench
/// trajectory is tracked.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(name: &str, records: &[BenchRecord]) -> std::io::Result<PathBuf> {
    write_bench_json_at(std::path::Path::new("."), name, records)
}

/// Trace/metrics export options shared by the figure binaries
/// (`--trace <path>` / `--metrics <path>`). The binaries attach a
/// ring-buffer tracer to their largest run and export it on exit; load
/// the trace file in `chrome://tracing` (or Perfetto) to see one track
/// per device plus the comms and stage tracks.
#[derive(Debug, Clone, Default)]
pub struct TraceOpts {
    /// Destination of the Chrome-trace JSON, if requested.
    pub trace: Option<PathBuf>,
    /// Destination of the metrics JSON, if requested.
    pub metrics: Option<PathBuf>,
}

impl TraceOpts {
    /// Ring-buffer capacity for `--trace` runs: the fig-scale runs emit
    /// a few hundred events, so 64k keeps every event with room for the
    /// fault sweeps.
    const RING_CAPACITY: usize = 1 << 16;

    /// Parses `--trace <path>` and `--metrics <path>` from the process
    /// arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from)
        };
        TraceOpts {
            trace: value_of("--trace"),
            metrics: value_of("--metrics"),
        }
    }

    /// Whether any export was requested.
    pub fn enabled(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// A ring-buffer tracer when `--trace` was requested (fresh per
    /// call, so each run starts with an empty event stream).
    pub fn tracer(&self) -> Option<Tracer> {
        self.trace
            .as_ref()
            .map(|_| Tracer::ring(Self::RING_CAPACITY))
    }

    /// Writes the requested export files and prints their paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn export(&self, tracer: Option<&Tracer>, metrics: &Metrics) -> std::io::Result<()> {
        if let (Some(path), Some(t)) = (&self.trace, tracer) {
            fs::write(path, chrome_trace_json(&t.events()))?;
            println!("[trace] {}", path.display());
        }
        if let Some(path) = &self.metrics {
            fs::write(path, metrics_json(metrics))?;
            println!("[metrics] {}", path.display());
        }
        Ok(())
    }
}

/// `fmt_time` cells for the given phases of a timeline — the shared
/// per-phase row shape of the Figure 11/12/15 tables.
pub fn phase_cells(timeline: &Timeline, phases: &[Phase]) -> Vec<String> {
    phases.iter().map(|p| fmt_time(timeline.get(*p))).collect()
}

/// A printable results table that mirrors one of the paper's figures.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let mut header = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(header, "{h:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", header.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{c:>w$}  ", w = w);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV under `target/figures/<name>.csv` and
    /// returns the path.
    pub fn save_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/figures");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        fs::write(&path, s)?;
        Ok(path)
    }
}

/// Formats seconds with adaptive precision (µs → s).
pub fn fmt_time(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Formats a throughput in Gflop/s.
pub fn fmt_gflops(g: f64) -> String {
    format!("{g:.1}")
}

/// Formats a relative error in scientific notation (as Figure 6 does).
pub fn fmt_err(e: f64) -> String {
    format!("{e:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["m", "time"]);
        t.row(vec!["100".into(), "1.5 ms".into()]);
        t.row(vec!["100000".into(), "12.5 ms".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("100000"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[3].starts_with('-') || lines[2].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn time_formats() {
        assert_eq!(fmt_time(0.5e-4), "50.0 us");
        assert_eq!(fmt_time(0.0125), "12.50 ms");
        assert_eq!(fmt_time(2.0), "2.000 s");
    }

    #[test]
    fn bench_json_round_trips_records() {
        let dir = std::env::temp_dir().join("rlra_bench_json_test");
        fs::create_dir_all(&dir).unwrap();
        let records = vec![
            BenchRecord {
                config: "static l_inc=8/restart".into(),
                wall_s: 0.25,
                modeled_s: 0.001625,
                wall: WallPercentiles::from_samples(&[0.26, 0.25, 0.31]),
            },
            BenchRecord {
                config: "static l_inc=8/incremental".into(),
                wall_s: 0.24,
                modeled_s: 0.001125,
                wall: None,
            },
        ];
        let path = write_bench_json_at(&dir, "adaptive_test", &records).unwrap();
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"adaptive_test\""));
        assert!(body.contains("\"schema_version\": 2"));
        assert!(body.contains("\"config\": \"static l_inc=8/restart\""));
        assert!(body.contains("\"modeled_s\": 0.001125"));
        // v2 percentiles ride on the record that measured them ...
        assert!(body.contains("\"wall_p50\": 0.260000"));
        assert!(body.contains("\"wall_p999\": 0.310000"));
        // ... and are omitted (not nulled) where absent.
        assert_eq!(body.matches("wall_p50").count(), 1);
        // Exactly one record separator comma between the two objects.
        assert_eq!(body.matches("},").count(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn wall_percentiles_from_samples_are_nearest_rank() {
        let p = WallPercentiles::from_samples(&[0.3, 0.1, 0.2, 0.4]).unwrap();
        assert!((p.p50 - 0.2).abs() < 1e-12);
        assert!((p.p99 - 0.4).abs() < 1e-12);
        assert!((p.p999 - 0.4).abs() < 1e-12);
        assert!(WallPercentiles::from_samples(&[]).is_none());
    }
}
