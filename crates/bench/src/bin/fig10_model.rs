//! Figure 10 — *estimated* Gflop/s of random sampling (q = 0, 1) and
//! truncated QP3 vs number of rows m, composed from the kernel cost
//! model alone (no execution — the paper's §8 "evaluate the performance
//! … before implementing the algorithm").

use rlra_bench::{fmt_gflops, Table};
use rlra_gpu::cost::CostModel;
use rlra_gpu::DeviceSpec;
use rlra_perfmodel::{estimated_qp3, estimated_rs};

fn main() {
    let n = 2_500usize;
    let l = 64usize;
    let k = 54usize;
    let cost = CostModel::new(DeviceSpec::k40c());
    let mut table = Table::new(
        format!("Figure 10: estimated Gflop/s, n = {n}, (l; p) = (64; 10)"),
        &["m", "RS (q=1)", "RS (q=0)", "Truncated QP3"],
    );
    for m in (5_000..=50_000).step_by(5_000) {
        let rs1 = estimated_rs(&cost, m, n, l, k, 1);
        let rs0 = estimated_rs(&cost, m, n, l, k, 0);
        let qp3 = estimated_qp3(&cost, m, n, l);
        table.row(vec![
            m.to_string(),
            fmt_gflops(rs1.gflops()),
            fmt_gflops(rs0.gflops()),
            fmt_gflops(qp3.gflops()),
        ]);
    }
    table.print();
    if let Ok(p) = table.save_csv("fig10") {
        println!("[csv] {}", p.display());
    }
    println!(
        "\nPaper reference: RS expected to reach 676 Gflop/s (q=1) and 489 Gflop/s (q=0);\n\
         QP3 estimated under ~29 Gflop/s; expected speedups 23.8/3.6 = 6.7 (q=1), 17.1/1.2 = 14.3 (q=0)."
    );
}
