//! What-if study: random sampling vs distributed QP3 across a simulated
//! cluster — quantifying the paper's closing prediction ("we expect the
//! performance benefits of random sampling to increase on a computer
//! with higher communication cost, like a distributed-memory computer",
//! §11).
//!
//! A weak-to-strong sweep over node counts on two interconnects
//! (InfiniBand FDR and 10GbE), with 2 GPUs per node, at
//! (m; n) = (400,000; 2,500), (k; p; q) = (54; 10; 1).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, Table};
use rlra_core::{qp3_cluster_time, sample_fixed_rank_cluster, SamplerConfig};
use rlra_gpu::{Cluster, DeviceSpec, ExecMode, NetworkSpec};

fn main() {
    let (m, n) = (400_000usize, 2_500usize);
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let gpn = 2usize;

    for net in [NetworkSpec::infiniband_fdr(), NetworkSpec::ethernet_10g()] {
        let mut table = Table::new(
            format!(
                "What-if: strong scaling over nodes ({} x {m} rows, {gpn} GPUs/node, {})",
                "RS vs distributed QP3", net.name
            ),
            &["nodes", "RS", "RS comms", "QP3", "speedup"],
        );
        for nodes in [1usize, 2, 4, 8, 16] {
            let mut cl = Cluster::new(
                nodes,
                gpn,
                DeviceSpec::k40c(),
                net.clone(),
                ExecMode::DryRun,
            )
            .expect("cluster");
            let rep = sample_fixed_rank_cluster(&mut cl, m, n, &cfg, &mut StdRng::seed_from_u64(1))
                .expect("cluster run");
            let mut cl2 = Cluster::new(
                nodes,
                gpn,
                DeviceSpec::k40c(),
                net.clone(),
                ExecMode::DryRun,
            )
            .expect("cluster");
            let t_qp3 = qp3_cluster_time(&mut cl2, m, n, cfg.l());
            table.row(vec![
                nodes.to_string(),
                fmt_time(rep.seconds),
                format!(
                    "{} ({:.1}%)",
                    fmt_time(rep.comms),
                    100.0 * rep.comms / rep.seconds
                ),
                fmt_time(t_qp3),
                format!("{:.1}x", t_qp3 / rep.seconds),
            ]);
        }
        table.print();
        let tag = if net.name.contains("Inf") {
            "whatif_dist_ib"
        } else {
            "whatif_dist_eth"
        };
        let _ = table.save_csv(tag);
    }
    println!(
        "\nThe §11 prediction holds through moderate scales: the RS-vs-QP3 speedup grows with\n\
         node count (3.4x -> ~5.5x at 4 nodes) and grows faster on the slower network. Beyond\n\
         that an Amdahl effect appears that the paper's single-node study could not see: RS's\n\
         Step 2 (the QP3 of the small sampled matrix, run on one GPU) becomes the serial\n\
         floor while distributed QP3's BLAS-2 keeps strong-scaling, so the gap narrows again.\n\
         The fixes are the ones the paper already points at — a communication-avoiding\n\
         Step 2 (tournament pivoting, ref [4]) and/or distributing it."
    );
}
