//! Figure 18 (table) — Gflop/s of the GEMM used by the adaptive scheme
//! for block sizes ℓ_inc ∈ {8, 16, 32, 48, 64} (m = 50,000, n = 2,500).
//! These five points are calibration anchors of the simulator's cost
//! model, so this reproduces the paper's table exactly.

use rlra_bench::{fmt_gflops, Table};
use rlra_gpu::cost::CostModel;
use rlra_gpu::DeviceSpec;

fn main() {
    let cost = CostModel::new(DeviceSpec::k40c());
    let (m, n) = (50_000usize, 2_500usize);
    let mut table = Table::new(
        format!("Figure 18: GEMM Gflop/s for the adaptive scheme's block sizes (m = {m}, n = {n})"),
        &["l_inc", "Gflop/s", "paper"],
    );
    for (l, paper) in [
        (8usize, 123.3),
        (16, 247.0),
        (32, 489.5),
        (48, 597.8),
        (64, 778.5),
    ] {
        table.row(vec![
            l.to_string(),
            fmt_gflops(cost.gemm_gflops(l, n, m)),
            fmt_gflops(paper),
        ]);
    }
    table.print();
    if let Ok(p) = table.save_csv("fig18") {
        println!("[csv] {}", p.display());
    }
}
