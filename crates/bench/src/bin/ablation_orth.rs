//! Ablation: orthogonalization schemes for the power iteration — the
//! design choice the paper spends §4/§8 on, extended with its §11
//! future-work candidates (TSQR, mixed-precision CholQR).
//!
//! Two tables: (a) stability — orthogonality error vs condition number
//! (real factorizations), (b) simulated K40c time on the paper's
//! tall-skinny shape.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, Table};
use rlra_gpu::algos::{gpu_cholqr, gpu_cholqr_mixed, gpu_hhqr, gpu_tsqr};
use rlra_gpu::{Gpu, Phase};
use rlra_lapack::householder::orthogonality_error;
use rlra_matrix::{gaussian_mat, Mat};

/// A = Q0 diag(graded) V^T with condition number 10^decades.
fn graded(m: usize, n: usize, decades: i32, rng: &mut StdRng) -> Mat {
    let q0 = rlra_lapack::form_q(&gaussian_mat(m, n, rng));
    let v = rlra_lapack::form_q(&gaussian_mat(n, n, rng));
    let scaled = Mat::from_fn(m, n, |i, j| {
        q0[(i, j)] * 10f64.powf(-decades as f64 * j as f64 / (n - 1) as f64)
    });
    let mut a = Mat::zeros(m, n);
    rlra_blas::gemm(
        1.0,
        scaled.as_ref(),
        rlra_blas::Trans::No,
        v.as_ref(),
        rlra_blas::Trans::Yes,
        0.0,
        a.as_mut(),
    )
    .unwrap();
    a
}

fn orth_err(res: rlra_matrix::Result<(Mat, Mat)>) -> String {
    match res {
        Ok((q, _)) => format!("{:.1e}", orthogonality_error(&q)),
        Err(_) => "breakdown".into(),
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2015);
    let (m, n) = (400usize, 16usize);

    let mut stab = Table::new(
        format!("Ablation (a): orthogonality error |Q^T Q - I| vs kappa(A)  ({m} x {n})"),
        &["kappa", "CholQR", "CholQR2", "mixed-prec", "TSQR", "HHQR"],
    );
    for decades in [2i32, 6, 8, 10, 12, 14] {
        let a = graded(m, n, decades, &mut rng);
        stab.row(vec![
            format!("1e{decades}"),
            orth_err(rlra_lapack::cholqr(&a)),
            orth_err(rlra_lapack::cholqr2(&a)),
            orth_err(rlra_lapack::cholqr_mixed(&a)),
            orth_err(rlra_lapack::tsqr(&a, 64).map(|t| (t.q, t.r))),
            orth_err(Ok(rlra_lapack::qr_factor(&a))),
        ]);
    }
    stab.print();
    let _ = stab.save_csv("ablation_orth_stability");

    let (m, n) = (50_000usize, 64usize);
    let mut perf = Table::new(
        format!("Ablation (b): simulated K40c time, tall-skinny {m} x {n}"),
        &["scheme", "time", "vs CholQR2"],
    );
    let time = |f: &dyn Fn(&mut Gpu, &rlra_gpu::DMat)| -> f64 {
        let mut gpu = Gpu::k40c_dry();
        let a = gpu.resident_shape(m, n);
        f(&mut gpu, &a);
        gpu.clock()
    };
    let t_ref = time(&|g, a| drop(gpu_cholqr(g, Phase::Other, a, true).unwrap()));
    for (name, t) in [
        (
            "CholQR",
            time(&|g, a| drop(gpu_cholqr(g, Phase::Other, a, false).unwrap())),
        ),
        ("CholQR2", t_ref),
        (
            "mixed-prec",
            time(&|g, a| drop(gpu_cholqr_mixed(g, Phase::Other, a).unwrap())),
        ),
        (
            "TSQR",
            time(&|g, a| drop(gpu_tsqr(g, Phase::Other, a, 1024).unwrap())),
        ),
        (
            "HHQR",
            time(&|g, a| drop(gpu_hhqr(g, Phase::Other, a).unwrap())),
        ),
    ] {
        perf.row(vec![name.into(), fmt_time(t), format!("{:.2}x", t / t_ref)]);
    }
    perf.print();
    let _ = perf.save_csv("ablation_orth_time");
    println!(
        "\nTakeaway: CholQR2 (the paper's choice) is fastest but dies near kappa ~ 1e8;\n\
         mixed-precision CholQR extends the range to ~1e15 for a modest surcharge; TSQR and\n\
         HHQR never break but cost one to two orders more."
    );
}
