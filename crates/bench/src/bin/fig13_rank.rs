//! Figure 13 — random sampling and QP3 time vs subspace size ℓ
//! ((m; n) = (50,000; 2,500), (p; q) = (10; 1), ℓ = 32 … 512).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, Table};
use rlra_core::{qp3_low_rank_gpu, sample_fixed_rank_gpu, SamplerConfig};
use rlra_gpu::Gpu;

fn main() {
    let (m, n) = (50_000usize, 2_500usize);
    let p = 10usize;
    let mut table = Table::new(
        format!("Figure 13: time vs subspace size l ((m; n) = ({m}; {n}), p = {p}, q = 1)"),
        &["l", "RS total", "QP3", "speedup"],
    );
    let mut rng = StdRng::seed_from_u64(1);
    for l in [32usize, 64, 128, 192, 256, 320, 384, 448, 512] {
        let cfg = SamplerConfig::new(l - p).with_p(p).with_q(1);
        let mut gpu = Gpu::k40c_dry();
        let a = gpu.resident_shape(m, n);
        let (_, rep) = sample_fixed_rank_gpu(&mut gpu, &a, &cfg, &mut rng).unwrap();
        let mut gq = Gpu::k40c_dry();
        let aq = gq.resident_shape(m, n);
        let (_, t_qp3) = qp3_low_rank_gpu(&mut gq, &aq, l).unwrap();
        table.row(vec![
            l.to_string(),
            fmt_time(rep.seconds),
            fmt_time(t_qp3),
            format!("{:.1}x", t_qp3 / rep.seconds),
        ]);
    }
    table.print();
    if let Ok(p) = table.save_csv("fig13") {
        println!("[csv] {}", p.display());
    }
    println!(
        "\nPaper reference: QP3 ~ 0.81e-2*l s, RS ~ 0.10e-2*l s — random sampling wins across\n\
         the whole range of target ranks."
    );
}
