//! What-if study: sketch-aware recovery vs full restart on a faulty
//! simulated fleet.
//!
//! The paper's single-node runs finish in seconds, so device faults are
//! a non-event there. At cluster scale (§11) and on long sweeps they are
//! not: this study sweeps MTBF x fleet size with the deterministic
//! [`FaultPlan::random`] generator and compares two responses to a
//! fail-stop mid-run:
//!
//! - **recover** — the [`Recovering`] policy wrapper: redistribute the
//!   lost device's block-rows to the survivors, re-draw only the lost
//!   sketch rows, re-orthogonalize against the accepted basis, continue;
//! - **restart** — abandon the run at the loss and rerun from scratch on
//!   the survivor fleet (wasted elapsed time + a full fault-free run).
//!
//! A second sweep covers **stragglers**: one device of the fleet slows
//! down by a factor mid-run, and the recovery policy's watchdog (see
//! [`RecoveryPolicy::straggler_threshold`]) speculatively re-dispatches
//! its block-rows to the survivors — first finisher wins, the loser is
//! cancelled and its cost charged. Each slowdown factor is run with the
//! watchdog off and on, reporting the wall saved and whether each arm
//! meets a deadline budget; mitigation must beat no-mitigation in every
//! cell with factor >= 2.
//!
//! Dry-run mode at (m; n) = (150,000; 2,500), (k; p; q) = (54; 10; 1).
//! Pass `--smoke` for the reduced CI sweep, and `--metrics <path>` to
//! export the metrics JSON of the last recovered run (the file's
//! `recovery_seconds` is cross-checked against the report).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, Table, TraceOpts};
use rlra_core::backend::{run_fixed_rank, Input, MultiGpuExec, Recovering, RecoveryPolicy};
use rlra_core::SamplerConfig;
use rlra_gpu::{DeviceSpec, ExecMode, FaultPlan, MultiGpu};
use rlra_matrix::{DeviceFaultKind, MatrixError};
use rlra_trace::{metrics_json, parse_json, Metrics};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let opts = TraceOpts::from_args();
    let (m, n) = if smoke {
        (60_000usize, 2_500usize)
    } else {
        (150_000usize, 2_500usize)
    };
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let fleets: &[usize] = if smoke { &[3] } else { &[2, 3, 4, 8] };
    let mtbfs: &[u64] = if smoke { &[16] } else { &[4, 8, 16, 32] };
    // Far past any launch ordinal a single run reaches; `random` stops
    // scheduling once a device fail-stops.
    let horizon = 64u64;
    let transient_share = 0.5;

    let fleet_time = |ng: usize, cfg: &SamplerConfig| -> f64 {
        let mut mg = MultiGpu::new(ng, DeviceSpec::k40c(), ExecMode::DryRun).expect("fleet");
        let mut exec = MultiGpuExec::new(&mut mg).expect("exec");
        let (_, rep) = run_fixed_rank(
            &mut exec,
            Input::Shape(m, n),
            cfg,
            &mut StdRng::seed_from_u64(1),
        )
        .expect("fault-free run");
        rep.seconds
    };

    let mut table = Table::new(
        format!("What-if: recovery vs restart under random faults ({m} x {n}, k=54, q=1)"),
        &[
            "GPUs",
            "MTBF",
            "faults",
            "retries",
            "lost",
            "fault-free",
            "recovered",
            "overhead",
            "restart",
            "saving",
        ],
    );
    let mut cells = 0usize;
    let mut recovered_cells = 0usize;
    let mut always_cheaper = true;
    let mut last_recovered: Option<(Metrics, f64)> = None;
    for &ng in fleets {
        let t_free = fleet_time(ng, &cfg);
        for &mtbf in mtbfs {
            let plan = FaultPlan::random(1000 + ng as u64, ng, horizon, mtbf, transient_share);
            let mut mg = MultiGpu::new(ng, DeviceSpec::k40c(), ExecMode::DryRun).expect("fleet");
            mg.install_plan(&plan);
            let exec = MultiGpuExec::new(&mut mg).expect("exec");
            // A budget sized to the fault density: at MTBF 4 launches,
            // clustered transients routinely exceed the default of 3.
            let policy = RecoveryPolicy {
                retry_budget: 8,
                ..RecoveryPolicy::default()
            };
            let mut wrapped = Recovering::new(exec, policy);
            let outcome = run_fixed_rank(
                &mut wrapped,
                Input::Shape(m, n),
                &cfg,
                &mut StdRng::seed_from_u64(1),
            );
            cells += 1;
            match outcome {
                Ok((_, rep)) => {
                    let overhead = 100.0 * (rep.seconds - t_free) / t_free;
                    let (restart, saving) = if rep.devices_lost > 0 {
                        recovered_cells += 1;
                        last_recovered = Some((rep.metrics.clone(), rep.recovery_seconds));
                        // Restart strategy: every second up to the last
                        // loss is wasted, then a full fault-free run on
                        // whatever fleet survives.
                        let t_last = wrapped.loss_log().last().map(|&(_, t)| t).unwrap_or(0.0);
                        let t_restart = t_last + fleet_time(ng - rep.devices_lost, &cfg);
                        always_cheaper &= rep.seconds < t_restart;
                        (
                            fmt_time(t_restart),
                            format!("{:.1}%", 100.0 * (t_restart - rep.seconds) / t_restart),
                        )
                    } else {
                        ("-".into(), "-".into())
                    };
                    table.row(vec![
                        ng.to_string(),
                        mtbf.to_string(),
                        rep.faults_injected.to_string(),
                        rep.retries.to_string(),
                        rep.devices_lost.to_string(),
                        fmt_time(t_free),
                        fmt_time(rep.seconds),
                        format!("{overhead:.1}%"),
                        restart,
                        saving,
                    ]);
                }
                Err(e) => {
                    let (lost, why) = match &e {
                        MatrixError::Unsupported { .. } => ("all", "fleet lost"),
                        MatrixError::DeviceFault {
                            kind: DeviceFaultKind::Transient,
                            ..
                        } => ("-", "retry budget exhausted"),
                        _ => ("-", "failed"),
                    };
                    table.row(vec![
                        ng.to_string(),
                        mtbf.to_string(),
                        "-".into(),
                        "-".into(),
                        lost.into(),
                        fmt_time(t_free),
                        why.into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    table.print();
    let _ = table.save_csv("whatif_faults");
    assert!(recovered_cells > 0, "sweep never exercised a fail-stop");
    if let Some(path) = &opts.metrics {
        let (metrics, recovery_seconds) = last_recovered
            .as_ref()
            .expect("a recovered run to export metrics for");
        std::fs::write(path, metrics_json(metrics)).expect("write metrics JSON");
        // Round-trip check: the exported file must carry the same
        // recovery_seconds the ExecReport reported.
        let doc = std::fs::read_to_string(path).expect("read metrics JSON back");
        let parsed = parse_json(&doc).expect("metrics JSON parses");
        let rs = parsed
            .get("recovery_seconds")
            .and_then(rlra_trace::Json::as_num)
            .expect("recovery_seconds key");
        assert_eq!(
            rs, *recovery_seconds,
            "metrics recovery_seconds must equal the ExecReport field"
        );
        println!(
            "[metrics] {} (recovery_seconds = {rs:.6} s, matches the report)",
            path.display()
        );
    }
    assert!(
        always_cheaper,
        "degraded completion must always beat full restart"
    );
    // ---- Straggler sweep: watchdog re-dispatch on vs off ------------
    // A long-tail config (q=8) so the one-time re-dispatch fetch of the
    // straggler's A-panel amortizes over the remaining power-iteration
    // passes; with q=1 the fetch dominates and racing never pays. Four
    // GPUs rather than three for the same reason: quarantining one of
    // four costs the survivors 4/3 of nominal per pass (occupancy makes
    // it a bit more), a margin a 2x straggler comfortably loses to,
    // while one of three leaves the survivors nearly as slow as the
    // straggler itself.
    let ng = 4usize;
    let scfg = SamplerConfig::new(54).with_p(10).with_q(8);
    let t_free = fleet_time(ng, &scfg);
    // A generous budget a healthy run clears easily: the unmitigated
    // straggler arm drags the whole tail at the slowdown factor, while
    // the mitigated arm pays ~3/2 nominal after quarantining one of 3.
    let deadline_budget = 1.75 * t_free;
    let factors: &[f64] = if smoke {
        &[2.0, 4.0]
    } else {
        &[1.5, 2.0, 4.0, 8.0]
    };
    let mut stable = Table::new(
        format!(
            "What-if: straggler re-dispatch, {ng} GPUs, q=8, one slows at launch 1 \
             (budget = 1.75x fault-free)"
        ),
        &[
            "slowdown", "watchdog", "wall", "overhead", "specs", "saved", "deadline",
        ],
    );
    let mut mitigation_wins = true;
    let mut misses = [0usize; 2];
    let mut arms = 0usize;
    for &factor in factors {
        let mut walls = [0.0f64; 2];
        for (mi, &mitigate) in [false, true].iter().enumerate() {
            let plan = FaultPlan::new().straggler(2, 1, factor);
            let mut mg = MultiGpu::new(ng, DeviceSpec::k40c(), ExecMode::DryRun).expect("fleet");
            mg.install_plan(&plan);
            let exec = MultiGpuExec::new(&mut mg).expect("exec");
            let policy = RecoveryPolicy {
                straggler_threshold: mitigate.then_some(1.5),
                ..RecoveryPolicy::default()
            };
            let mut wrapped = Recovering::new(exec, policy);
            let (_, rep) = run_fixed_rank(
                &mut wrapped,
                Input::Shape(m, n),
                &scfg,
                &mut StdRng::seed_from_u64(1),
            )
            .expect("straggler run");
            walls[mi] = rep.seconds;
            let miss = rep.seconds > deadline_budget;
            if miss {
                misses[mi] += 1;
            }
            stable.row(vec![
                format!("{factor:.1}x"),
                if mitigate { "on" } else { "off" }.into(),
                fmt_time(rep.seconds),
                format!("{:.1}%", 100.0 * (rep.seconds - t_free) / t_free),
                rep.speculations.to_string(),
                fmt_time(wrapped.speculation_saved()),
                if miss { "MISS" } else { "met" }.into(),
            ]);
            if mitigate {
                assert_eq!(
                    rep.speculations,
                    u64::from(factor >= 2.0),
                    "the watchdog races a >=2x straggler exactly once \
                     (and leaves a mild 1.5x one alone)"
                );
            } else {
                assert_eq!(rep.speculations, 0, "watchdog off must never speculate");
            }
        }
        arms += 1;
        if factor >= 2.0 {
            mitigation_wins &= walls[1] < walls[0];
        }
    }
    stable.print();
    let _ = stable.save_csv("whatif_faults_stragglers");
    assert!(
        mitigation_wins,
        "speculative re-dispatch must beat no-mitigation in every cell with factor >= 2"
    );
    println!(
        "\nStraggler deadline-miss rate over {arms} slowdown factors: \
         {}/{arms} unmitigated, {}/{arms} mitigated.\n\
         The watchdog converts a tail dragged at the straggler's pace into one speculative\n\
         race: the survivors re-run its block-rows at nominal speed, the slow copy is\n\
         cancelled and charged, and the device is quarantined — so the remaining launches\n\
         pay the redistribution cost (4/3 of nominal for one of four) instead of the\n\
         slowdown factor. Mild stragglers below the policy threshold are left alone:\n\
         racing them would cost more than it saves.",
        misses[0], misses[1]
    );

    println!(
        "\nAcross {cells} MTBF x fleet cells, every fail-stop that left at least one survivor\n\
         completed by redistribution + sketch-row re-draw, and degraded completion beat the\n\
         full-restart alternative in every such cell. The margin is structural: restart pays\n\
         the whole elapsed time again, while recovery only re-draws the lost Omega rows and\n\
         re-orthogonalizes l x n panels — O(ln) work against the O(mn) sweep it preserves.\n\
         The saving grows with how late the fault lands and shrinks with fleet size (losing\n\
         one of 8 GPUs costs less capacity than one of 2). Transients are cheaper still:\n\
         a backoff retry at microsecond scale, invisible next to the GEMM stream. The\n\
         practical reading mirrors checkpointing folklore: at these run lengths a restart\n\
         is affordable, but the moment runs stretch toward the MTBF — large m, many sweeps,\n\
         big fleets — sketch-aware recovery is the difference between finishing and thrashing."
    );
}
