//! What-if study: the paper's hardware-trend argument across GPU
//! generations — "communication has become significantly more expensive
//! on modern computers, and it is expected to become increasingly more
//! so on the emerging computers" (§1), so random sampling's advantage
//! should grow from Kepler to Pascal to Volta as flops-per-byte rises.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, Table};
use rlra_core::{qp3_low_rank_gpu, sample_fixed_rank_gpu, SamplerConfig};
use rlra_gpu::{DeviceSpec, ExecMode, Gpu};

fn main() {
    let (m, n) = (50_000usize, 2_500usize);
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let mut table = Table::new(
        format!("What-if: RS vs QP3 across GPU generations ((m; n) = ({m}; {n}), q = 1)"),
        &[
            "device",
            "flops/byte",
            "RS",
            "QP3",
            "speedup q=1",
            "speedup q=0",
        ],
    );
    for spec in [DeviceSpec::k40c(), DeviceSpec::p100(), DeviceSpec::v100()] {
        let run_rs = |q: usize| -> f64 {
            let mut gpu = Gpu::new(spec.clone(), ExecMode::DryRun);
            let a = gpu.resident_shape(m, n);
            let c = SamplerConfig::new(54).with_p(10).with_q(q);
            let (_, rep) =
                sample_fixed_rank_gpu(&mut gpu, &a, &c, &mut StdRng::seed_from_u64(1)).unwrap();
            rep.seconds
        };
        let mut gq = Gpu::new(spec.clone(), ExecMode::DryRun);
        let aq = gq.resident_shape(m, n);
        let (_, t_qp3) = qp3_low_rank_gpu(&mut gq, &aq, cfg.l()).unwrap();
        let t1 = run_rs(1);
        let t0 = run_rs(0);
        table.row(vec![
            spec.name.into(),
            format!("{:.1}", spec.flops_per_byte()),
            fmt_time(t1),
            fmt_time(t_qp3),
            format!("{:.1}x", t_qp3 / t1),
            format!("{:.1}x", t_qp3 / t0),
        ]);
    }
    table.print();
    let _ = table.save_csv("whatif_future_gpus");
    println!(
        "\nThe §1 trend, quantified: each generation raises compute faster than bandwidth\n\
         (flops/byte 5.0 -> 7.2 -> 8.7), so QP3's BLAS-1/2 half shrinks more slowly than RS's\n\
         GEMMs and the speedup widens with every generation."
    );
}
