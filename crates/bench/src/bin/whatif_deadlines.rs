//! What-if study: durable adaptive runs under deadline budgets.
//!
//! The paper's runs are fire-and-forget; a production sampler is not.
//! This study prices the durability machinery of `rlra-core` on a
//! computing GPU backend:
//!
//! 1. **Checkpoint overhead** — the same fixed-accuracy job is run
//!    plain and durable (a snapshot at every sample-block boundary);
//!    the factors must be bit-identical and the table reports what the
//!    snapshots cost in simulated wall-clock.
//! 2. **Deadline budgets** — the durable job is re-run under budgets
//!    set to fractions of its own fault-free wall. An overrun returns
//!    [`MatrixError::DeadlineExceeded`] plus a deadline-truncated
//!    partial result: the factors assembled from the last accepted
//!    basis and the posterior error estimate that certifies them.
//! 3. **Resume** — every overrun snapshot is resumed on a fresh
//!    executor with the budget lifted, and the finished factors *and*
//!    the full `ExecReport` are asserted bit-identical to the
//!    uninterrupted durable run (the PR's durability contract).
//!
//! Default scale m = 4,000, n = 500 on the exponent-decay spectrum;
//! `--smoke` runs a fast 800 x 160 CI pass.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, BenchOpts, Table};
use rlra_core::{
    resume_fixed_accuracy, sample_fixed_accuracy_durable, sample_fixed_accuracy_exec,
    AdaptiveConfig, CheckpointPlan, CountingRng, Deadline, Durability, GpuExec,
};
use rlra_data::{exponent_spectrum, matrix_with_spectrum};
use rlra_gpu::Gpu;
use rlra_matrix::MatrixError;

const SEED: u64 = 2015;

fn rng() -> StdRng {
    StdRng::seed_from_u64(SEED)
}

fn main() {
    let opts = BenchOpts::from_args();
    let (m, n, tol) = if opts.smoke {
        (800usize, 160usize, 1e-9)
    } else {
        (4_000usize, 500usize, 1e-10)
    };
    let cfg = AdaptiveConfig::new(tol, 16);
    let spec = exponent_spectrum(n.min(m));
    let tm = matrix_with_spectrum(m, n, &spec, &mut rng()).expect("generator");
    let a = &tm.a;

    // ---- 1. Plain vs durable: what do the snapshots cost? -----------
    let mut gpu = Gpu::k40c();
    let mut exec = GpuExec::new(&mut gpu);
    let (plain_approx, plain_res, plain_rep) =
        sample_fixed_accuracy_exec(&mut exec, a, &cfg, &mut rng()).expect("plain run");

    let mut gpu = Gpu::k40c();
    let mut exec = GpuExec::new(&mut gpu);
    let mut crng = CountingRng::new(rng());
    let mut dur = Durability::new(CheckpointPlan::always());
    let (approx, res, rep) = sample_fixed_accuracy_durable(&mut exec, a, &cfg, &mut crng, &mut dur)
        .expect("durable run")
        .complete()
        .expect("no kill was planned");
    assert_eq!(approx.q, plain_approx.q, "durable Q must match plain");
    assert_eq!(approx.r, plain_approx.r, "durable R must match plain");
    assert_eq!(res.steps.len(), plain_res.steps.len());
    let overhead = 100.0 * (rep.seconds - plain_rep.seconds) / plain_rep.seconds;
    let snap_bytes = dur.latest().map_or(0, |(_, b)| b.len());
    let mut head = Table::new(
        format!("What-if: checkpoint overhead, adaptive exponent {m} x {n}, eps = {tol:.0e}"),
        &["mode", "wall", "rank", "snapshots", "snapshot size"],
    );
    head.row(vec![
        "plain".into(),
        fmt_time(plain_rep.seconds),
        plain_approx.rank().to_string(),
        "0".into(),
        "-".into(),
    ]);
    head.row(vec![
        "durable".into(),
        fmt_time(rep.seconds),
        approx.rank().to_string(),
        dur.snapshots().len().to_string(),
        format!("{:.1} KiB", snap_bytes as f64 / 1024.0),
    ]);
    head.print();
    let _ = head.save_csv("whatif_deadlines_overhead");
    println!(
        "   checkpoint overhead = {overhead:.2}% of the plain wall \
         ({} boundaries, factors bit-identical)",
        dur.snapshots().len()
    );
    assert!(
        dur.snapshots().len() >= 2,
        "the sweep needs several boundaries to stop at"
    );

    // ---- 2. Deadline budgets: overrun, partial, resume --------------
    let fractions: &[f64] = if opts.smoke {
        &[0.5]
    } else {
        &[0.25, 0.5, 0.75]
    };
    let mut table = Table::new(
        format!(
            "What-if: deadline budgets as fractions of the durable wall ({})",
            fmt_time(rep.seconds)
        ),
        &[
            "budget",
            "outcome",
            "stopped at",
            "snap",
            "partial rank",
            "estimate",
            "resume",
        ],
    );
    let mut overruns = 0usize;
    for &frac in fractions {
        let budget = frac * rep.seconds;
        let mut bcfg = cfg;
        bcfg.deadline = Some(Deadline::new(budget));
        let mut gpu = Gpu::k40c();
        let mut exec = GpuExec::new(&mut gpu);
        let mut crng = CountingRng::new(rng());
        let mut bdur = Durability::new(CheckpointPlan::always());
        let outcome = sample_fixed_accuracy_durable(&mut exec, a, &bcfg, &mut crng, &mut bdur);
        match outcome {
            Ok(out) => {
                let (bapprox, _, brep) = out.complete().expect("no kill was planned");
                assert_eq!(bapprox.q, approx.q, "a met budget changes nothing");
                table.row(vec![
                    format!("{:.0}% ({})", 100.0 * frac, fmt_time(budget)),
                    "met".into(),
                    fmt_time(brep.seconds),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
            Err(MatrixError::DeadlineExceeded {
                snapshot,
                budget: b,
                elapsed,
            }) => {
                overruns += 1;
                assert!(elapsed > b, "overrun must report elapsed past the budget");
                let partial = bdur
                    .take_partial()
                    .expect("an overrun must leave a partial result");
                assert_eq!(partial.snapshot, snapshot);
                let papprox = partial
                    .approx
                    .expect("a computing backend builds partial factors");
                assert!(
                    partial.estimate.is_finite() && partial.estimate > 0.0,
                    "the posterior estimate certifies the partial factors"
                );
                // Resume with the budget lifted: bit-identical finish.
                let sealed = bdur
                    .get(snapshot)
                    .expect("the overrun snapshot was recorded")
                    .to_vec();
                let mut gpu = Gpu::k40c();
                let mut exec = GpuExec::new(&mut gpu);
                let mut rdur = Durability::new(CheckpointPlan::always());
                let (rapprox, rres, rrep) =
                    resume_fixed_accuracy(&mut exec, a, &cfg, rng(), &sealed, &mut rdur)
                        .expect("resume after overrun")
                        .complete()
                        .expect("no kill was planned");
                assert_eq!(rapprox.q, approx.q, "resumed Q after overrun");
                assert_eq!(rapprox.r, approx.r, "resumed R after overrun");
                assert_eq!(rres.steps.len(), res.steps.len());
                assert_eq!(rrep, rep, "resumed ExecReport after overrun");
                table.row(vec![
                    format!("{:.0}% ({})", 100.0 * frac, fmt_time(budget)),
                    "OVERRUN".into(),
                    fmt_time(elapsed),
                    snapshot.to_string(),
                    papprox.rank().to_string(),
                    format!("{:.2e}", partial.estimate),
                    "bit-identical".into(),
                ]);
            }
            Err(e) => panic!("unexpected failure under budget {budget:.4}: {e}"),
        }
    }
    table.print();
    let _ = table.save_csv("whatif_deadlines");
    assert!(
        overruns > 0,
        "the sweep must exercise at least one deadline overrun"
    );
    println!(
        "\nAcross {} budgets, every overrun stopped at a checkpoint boundary, handed back\n\
         the factors accepted so far with a posterior error estimate (anytime behavior:\n\
         tighter budgets return earlier, coarser factors), and the overrun snapshot\n\
         resumed on a fresh executor to the uninterrupted run's factors and ExecReport,\n\
         bit for bit. The snapshots themselves cost {overhead:.2}% of the plain wall at\n\
         this reduced scale — the durability tax is the PCIe drain of the basis panels\n\
         at each boundary, and it shrinks as m grows against the O(mn) sampling sweep\n\
         it protects.",
        fractions.len()
    );
}
