//! Figure 16 — convergence of the adaptive-ℓ scheme: error estimate ε̃
//! vs selected sampling size ℓ for static increments ℓ_inc ∈ {8, 16, 32,
//! 64}, plus the actual error (real factorizations on the exponent
//! matrix; q = 0, ε = 1e-12).
//!
//! Default scale m = 5,000, n = 500 (the convergence trajectory depends
//! on the spectrum, which is preserved); `--full` runs the paper's
//! 50,000 × 2,500 (slow on CPU).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{BenchOpts, Table};
use rlra_core::{adaptive_sample, AdaptiveConfig, IncStrategy};
use rlra_data::{exponent_spectrum, matrix_with_spectrum};
use rlra_gpu::Gpu;

fn main() {
    let opts = BenchOpts::from_args();
    let (m, n) = if opts.full {
        (50_000, 2_500)
    } else {
        (5_000, 500)
    };
    // The paper's eps = 1e-12 sits at the floating-point noise floor of
    // the estimator (n*eps_mach*|A|*|omega| ~ 5e-12 at the paper's scale);
    // at the reduced default scale the floor is ~1e-11, so the default
    // tolerance is raised accordingly. --full restores the paper's value.
    let tol = if opts.full { 1e-12 } else { 1e-10 };
    let mut rng = StdRng::seed_from_u64(2015);
    let spec = exponent_spectrum(n.min(m));
    let tm = matrix_with_spectrum(m, n, &spec, &mut rng).expect("generator");

    for l_inc in [8usize, 16, 32, 64] {
        let mut table = Table::new(
            format!("Figure 16: adaptive scheme, exponent {m} x {n}, q = 0, l_inc = {l_inc}, eps = {tol:.0e}"),
            &["step", "l", "estimate", "actual error"],
        );
        let mut gpu = Gpu::k40c();
        let cfg = AdaptiveConfig {
            tol,
            q: 0,
            reorth: true,
            inc: IncStrategy::Static(l_inc),
            l_max: 512.min(n),
            track_actual: true,
        };
        let res = adaptive_sample(&mut gpu, &tm.a, &cfg, &mut rng).expect("adaptive run");
        for (i, s) in res.steps.iter().enumerate() {
            table.row(vec![
                (i + 1).to_string(),
                s.l.to_string(),
                format!("{:.2e}", s.estimate),
                format!("{:.2e}", s.actual_error.unwrap_or(f64::NAN)),
            ]);
        }
        table.print();
        println!(
            "   converged = {}, final l = {} (larger l_inc overshoots more)",
            res.converged,
            res.l()
        );
        let _ = table.save_csv(&format!("fig16_linc{l_inc}"));
    }
    println!(
        "\nPaper reference: estimates are 1-2 orders above the actual error; the l_inc = 8\n\
         estimates are slightly worse (larger c_ad); all converge around l ~ 140-160."
    );
}
