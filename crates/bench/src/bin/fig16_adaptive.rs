//! Figure 16 — convergence of the adaptive-ℓ scheme: error estimate ε̃
//! vs selected sampling size ℓ for static increments ℓ_inc ∈ {8, 16, 32,
//! 64}, plus the actual error (real factorizations on the exponent
//! matrix; q = 0, ε = 1e-12), and the restart-vs-incremental finish cost
//! at each increment.
//!
//! Default scale m = 5,000, n = 500 (the convergence trajectory depends
//! on the spectrum, which is preserved); `--full` runs the paper's
//! 50,000 × 2,500 (slow on CPU); `--smoke` runs a fast 1,200 × 240 CI
//! pass. In every mode the two finish modes are run on the same seed and
//! asserted to produce the identical `(ℓ, ε̃)` trajectory — the restart
//! path is the equivalence oracle for the incremental one.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{BenchOpts, Table};
use rlra_core::{
    adaptive_sample, sample_fixed_accuracy_exec, AdaptiveConfig, FinishMode, GpuExec, IncStrategy,
};
use rlra_data::{exponent_spectrum, matrix_with_spectrum};
use rlra_gpu::Gpu;

fn main() {
    let opts = BenchOpts::from_args();
    let (m, n) = if opts.smoke {
        (1_200, 240)
    } else if opts.full {
        (50_000, 2_500)
    } else {
        (5_000, 500)
    };
    // The paper's eps = 1e-12 sits at the floating-point noise floor of
    // the estimator (n*eps_mach*|A|*|omega| ~ 5e-12 at the paper's scale);
    // at the reduced default scale the floor is ~1e-11, so the default
    // tolerance is raised accordingly. --full restores the paper's value.
    let tol = if opts.smoke {
        1e-9
    } else if opts.full {
        1e-12
    } else {
        1e-10
    };
    let mut rng = StdRng::seed_from_u64(2015);
    let spec = exponent_spectrum(n.min(m));
    let tm = matrix_with_spectrum(m, n, &spec, &mut rng).expect("generator");

    for l_inc in [8usize, 16, 32, 64] {
        let mut table = Table::new(
            format!("Figure 16: adaptive scheme, exponent {m} x {n}, q = 0, l_inc = {l_inc}, eps = {tol:.0e}"),
            &["step", "l", "estimate", "actual error"],
        );
        let mut gpu = Gpu::k40c();
        let cfg = AdaptiveConfig {
            tol,
            q: 0,
            reorth: true,
            inc: IncStrategy::Static(l_inc),
            l_max: 512.min(n),
            track_actual: true,
            finish: FinishMode::Incremental,
            deadline: None,
        };
        let res = adaptive_sample(&mut gpu, &tm.a, &cfg, &mut rng).expect("adaptive run");
        for (i, s) in res.steps.iter().enumerate() {
            table.row(vec![
                (i + 1).to_string(),
                s.l.to_string(),
                format!("{:.2e}", s.estimate),
                format!("{:.2e}", s.actual_error.unwrap_or(f64::NAN)),
            ]);
        }
        table.print();
        println!(
            "   converged = {}, final l = {} (larger l_inc overshoots more)",
            res.converged,
            res.l()
        );
        let _ = table.save_csv(&format!("fig16_linc{l_inc}"));
    }

    // Restart vs incremental finish, same seed per increment: the
    // trajectory is identical by construction (the extension consumes no
    // RNG and never touches the basis); only the modeled cost differs —
    // the incremental finish drops the Step-2 re-run term.
    let mut cmp = Table::new(
        format!("Figure 16b: finish cost, restart vs incremental, exponent {m} x {n}"),
        &["l_inc", "final l", "restart s", "incremental s", "saved"],
    );
    for l_inc in [8usize, 16, 32, 64] {
        let run = |finish: FinishMode| {
            let mut gpu = Gpu::k40c();
            let mut exec = GpuExec::new(&mut gpu);
            let cfg = AdaptiveConfig {
                tol,
                q: 0,
                reorth: true,
                inc: IncStrategy::Static(l_inc),
                l_max: 512.min(n),
                track_actual: false,
                finish,
                deadline: None,
            };
            let mut mode_rng = StdRng::seed_from_u64(2015 + l_inc as u64);
            let (_, res, report) =
                sample_fixed_accuracy_exec(&mut exec, &tm.a, &cfg, &mut mode_rng)
                    .expect("fixed-accuracy run");
            let trajectory: Vec<(usize, f64)> =
                res.steps.iter().map(|s| (s.l, s.estimate)).collect();
            (res.l(), trajectory, report.seconds)
        };
        let (l_res, traj_res, sim_res) = run(FinishMode::Restart);
        let (l_inc_mode, traj_inc, sim_inc) = run(FinishMode::Incremental);
        assert_eq!(
            l_res, l_inc_mode,
            "finish modes must select the same final l"
        );
        assert_eq!(
            traj_res, traj_inc,
            "finish modes must walk the identical (l, estimate) trajectory"
        );
        cmp.row(vec![
            l_inc.to_string(),
            l_res.to_string(),
            format!("{sim_res:.4e}"),
            format!("{sim_inc:.4e}"),
            format!("{:.1}%", (1.0 - sim_inc / sim_res) * 100.0),
        ]);
    }
    cmp.print();
    let _ = cmp.save_csv("fig16_finish_cost");

    println!(
        "\nPaper reference: estimates are 1-2 orders above the actual error; the l_inc = 8\n\
         estimates are slightly worse (larger c_ad); all converge around l ~ 140-160.\n\
         The incremental finish replaces the restart's Step-2 re-run with per-step panel\n\
         extensions; it wins at moderate-to-large increments, while at small l_inc the\n\
         repeated trailing-sample updates (one per accepted block) erode the saving."
    );
}
