//! Figure 14 — random sampling time vs number of power iterations q
//! (q = 0 … 12) against the QP3 baseline ((m; n) = (50,000; 2,500),
//! ℓ = 64): the paper's point is that sampling beats QP3 for q up to 12.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, Table};
use rlra_core::{qp3_low_rank_gpu, sample_fixed_rank_gpu, SamplerConfig};
use rlra_gpu::Gpu;

fn main() {
    let (m, n) = (50_000usize, 2_500usize);
    let mut gq = Gpu::k40c_dry();
    let aq = gq.resident_shape(m, n);
    let (_, t_qp3) = qp3_low_rank_gpu(&mut gq, &aq, 64).unwrap();

    let mut table = Table::new(
        format!("Figure 14: time vs power iterations q ((m; n) = ({m}; {n}), l = 64)"),
        &["q", "RS total", "QP3", "RS faster?"],
    );
    let mut rng = StdRng::seed_from_u64(1);
    for q in 0..=12 {
        let cfg = SamplerConfig::new(54).with_p(10).with_q(q);
        let mut gpu = Gpu::k40c_dry();
        let a = gpu.resident_shape(m, n);
        let (_, rep) = sample_fixed_rank_gpu(&mut gpu, &a, &cfg, &mut rng).unwrap();
        table.row(vec![
            q.to_string(),
            fmt_time(rep.seconds),
            fmt_time(t_qp3),
            if rep.seconds < t_qp3 {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    table.print();
    if let Ok(p) = table.save_csv("fig14") {
        println!("[csv] {}", p.display());
    }
    println!("\nPaper reference: RS time grows linearly with q and outperforms QP3 for q <= 12.");
}
