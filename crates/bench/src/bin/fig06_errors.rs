//! Figure 6 — approximation error ‖AP − QR‖/‖A‖: QP3 vs random sampling
//! with q = 0, 1, 2 on the three test matrices.
//!
//! Real factorizations; reduced scale by default (m = 2,000 instead of
//! 500,000 — the error depends on the spectrum, not on m). `--full`
//! raises m to 20,000 (still CPU-feasible).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_err, BenchOpts, Table};
use rlra_core::{qp3_low_rank, sample_fixed_rank, SamplerConfig};
use rlra_data::{
    exponent_spectrum, hapmap_like, matrix_with_spectrum, power_spectrum, HapmapConfig,
};
use rlra_matrix::Mat;

fn main() {
    let opts = BenchOpts::from_args();
    let m = if opts.full { 20_000 } else { 2_000 };
    let n = 500;
    let k = 50;
    let p = 10;
    let mut rng = StdRng::seed_from_u64(2015);

    let mut table = Table::new(
        format!("Figure 6: relative error |AP - QR| / |A|  (m = {m}, n = {n}, k = {k}, p = {p})"),
        &["matrix", "QP3", "q=0", "q=1", "q=2"],
    );

    fn run_case(
        name: &str,
        a: &Mat,
        norm_a: f64,
        k: usize,
        p: usize,
        rng: &mut StdRng,
    ) -> Vec<String> {
        let qp3 = qp3_low_rank(a, k).expect("qp3");
        let e_qp3 = qp3.relative_error(a, Some(norm_a)).expect("error");
        let mut cells = vec![name.to_string(), fmt_err(e_qp3)];
        for q in 0..=2 {
            let cfg = SamplerConfig::new(k).with_p(p).with_q(q);
            let rs = sample_fixed_rank(a, &cfg, rng).expect("random sampling");
            let e = rs.relative_error(a, Some(norm_a)).expect("error");
            cells.push(fmt_err(e));
        }
        cells
    }

    for spec in [power_spectrum(n), exponent_spectrum(n)] {
        let tm = matrix_with_spectrum(m, n, &spec, &mut rng).expect("generator");
        let row = run_case(spec.name, &tm.a, tm.norm2(), k, p, &mut rng);
        table.row(row);
    }
    {
        let cfg = HapmapConfig {
            snps: m,
            individuals: 506,
            populations: 4,
            fst: 0.1,
        };
        let a = hapmap_like(&cfg, &mut rng).expect("hapmap generator");
        let norm_a = rlra_matrix::norms::spectral_norm(a.as_ref());
        let row = run_case("hapmap", &a, norm_a, k, p, &mut rng);
        table.row(row);
    }

    table.print();
    if let Ok(p) = table.save_csv("fig06") {
        println!("[csv] {}", p.display());
    }
    println!(
        "\nPaper reference (m = 500,000): power QP3 4.47e-05 | q0 9.08e-05 | q1 4.59e-05 | q2 4.45e-05;\n\
         exponent QP3 2.69e-05 | q0 5.18e-05 | q1 2.69e-05 | q2 2.69e-05;\n\
         hapmap   QP3 5.99e-01 | q0 9.86e-01 | q1 8.74e-01 | q2 8.18e-01."
    );
}
