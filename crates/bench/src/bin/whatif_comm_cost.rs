//! What-if study: the paper's concluding prediction — "we expect the
//! performance benefits of random sampling to increase on a computer
//! with higher communication cost, like a distributed-memory computer"
//! (§11) — tested by sweeping the simulator's communication parameters.
//!
//! Two sweeps at the reference configuration
//! ((m; n) = (50,000; 2,500), (k; p; q) = (54; 10; 1)):
//!
//! 1. synchronization latency (the per-pivot round trip QP3 pays),
//! 2. memory bandwidth (what BLAS-1/2 kernels are bound by),
//!
//! reporting the RS-vs-QP3 speedup at each point.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, Table};
use rlra_core::{qp3_low_rank_gpu, sample_fixed_rank_gpu, SamplerConfig};
use rlra_gpu::{DeviceSpec, ExecMode, Gpu, Phase};

/// Returns (RS, RS with tournament-pivoted Step 2, QP3) times.
fn times(spec: DeviceSpec) -> (f64, f64, f64) {
    let (m, n) = (50_000usize, 2_500usize);
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let mut rng = StdRng::seed_from_u64(1);
    let mut gpu = Gpu::new(spec.clone(), ExecMode::DryRun);
    let a = gpu.resident_shape(m, n);
    let (_, rep) = sample_fixed_rank_gpu(&mut gpu, &a, &cfg, &mut rng).unwrap();
    // Variant: replace the per-pivot-synchronizing Step 2 (QP3 of the
    // small sampled matrix) with tournament pivoting.
    let mut gt = Gpu::new(spec.clone(), ExecMode::DryRun);
    let b_shape = gt.resident_shape(cfg.l(), n);
    rlra_gpu::algos::gpu_tournament_qrcp(&mut gt, Phase::Qrcp, &b_shape, cfg.k).unwrap();
    let rs_ca = rep.seconds - rep.timeline.get(Phase::Qrcp) + gt.clock();
    let mut gq = Gpu::new(spec, ExecMode::DryRun);
    let aq = gq.resident_shape(m, n);
    let (_, t_qp3) = qp3_low_rank_gpu(&mut gq, &aq, 64).unwrap();
    (rep.seconds, rs_ca, t_qp3)
}

fn main() {
    let mut t1 = Table::new(
        "What-if (a): RS-vs-QP3 speedup as synchronization latency grows",
        &[
            "sync latency",
            "RS",
            "RS (CA Step 2)",
            "QP3",
            "speedup",
            "speedup (CA)",
        ],
    );
    for mult in [0.5f64, 1.0, 2.0, 5.0, 10.0, 50.0] {
        let mut spec = DeviceSpec::k40c();
        spec.sync_us *= mult;
        spec.pcie_latency_us *= mult;
        spec.kernel_launch_us *= mult;
        let (rs, rs_ca, qp3) = times(spec);
        t1.row(vec![
            format!("{:.0} us", 30.0 * mult),
            fmt_time(rs),
            fmt_time(rs_ca),
            fmt_time(qp3),
            format!("{:.1}x", qp3 / rs),
            format!("{:.1}x", qp3 / rs_ca),
        ]);
    }
    t1.print();
    let _ = t1.save_csv("whatif_sync");

    let mut t2 = Table::new(
        "What-if (b): RS-vs-QP3 speedup as memory bandwidth shrinks (compute fixed)",
        &["mem bandwidth", "RS", "QP3", "speedup"],
    );
    for frac in [1.0f64, 0.5, 0.25, 0.125] {
        let mut spec = DeviceSpec::k40c();
        spec.mem_bandwidth_gbs *= frac;
        let (rs, _, qp3) = times(spec);
        t2.row(vec![
            format!("{:.0} GB/s", 288.0 * frac),
            fmt_time(rs),
            fmt_time(qp3),
            format!("{:.1}x", qp3 / rs),
        ]);
    }
    t2.print();
    let _ = t2.save_csv("whatif_bandwidth");
    println!(
        "\nTwo findings. (b) confirms the paper's §11 claim directly: as bandwidth shrinks,\n\
         QP3's BLAS-1/2 half collapses while RS's GEMMs stay compute-bound, and the speedup\n\
         grows monotonically. (a) adds a wrinkle the paper anticipates with its CA-QP3\n\
         reference [4]: under extreme latency, RS's *own* Step 2 (QP3 of the small sampled\n\
         matrix, 64 pivot round trips) becomes the bottleneck and erodes the plain speedup —\n\
         swapping in tournament pivoting for Step 2 (the 'CA' columns) restores it."
    );
}
