//! What-if study: ABFT checksums vs silent data corruption on a
//! simulated fleet.
//!
//! GPU memory at fleet scale sees silent bit flips that no ECC scrubber
//! or fail-stop detector reports: the kernel completes, the wrong
//! number flows into the factors. This study injects deterministic
//! [`SdcPlan`] corruption into compute-mode runs and compares the three
//! responses the integrity layer offers:
//!
//! - **off** — no checksums: corruption sails through and the run
//!   silently returns wrong factors (the escape counter is the only
//!   witness);
//! - **detect-only** — checksum verification aborts the run at the
//!   first corrupted panel with a [`MatrixError::SilentCorruption`];
//! - **correct** — a single poisoned element is repaired in place from
//!   the checksum pair (one length-k inner product), wider damage
//!   re-runs the kernel under a bounded budget;
//! - **rollback** — the durable pipeline's escalation: detected
//!   corruption rolls the stage back to the last boundary snapshot and
//!   re-runs it (wasted work stays on the clock).
//!
//! The first sweep covers corruption rate x fleet size with the
//! seed-deterministic [`SdcPlan::random`] generator over the protected
//! buffer funnel, asserting full detection coverage of applied events
//! and zero undetected escapes in every armed cell. The second is the
//! cost question: for a single flip, localized correction must beat the
//! checkpoint rollback in every cell — correction redoes one inner
//! product, rollback redoes a stage.
//!
//! Pass `--smoke` for the reduced CI sweep, and `--metrics <path>` to
//! export the last corrected run's report JSON (its `sdc_*` fields are
//! cross-checked against the in-memory [`ExecReport`]).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, Table, TraceOpts};
use rlra_core::backend::{
    run_fixed_rank_protected, Input, IntegrityGuard, IntegrityMode, IntegrityPolicy, MultiGpuExec,
    NumericGuard,
};
use rlra_core::{
    report_json, CheckpointPlan, CountingRng, Durability, DurableOutcome, ExecReport,
    LowRankApprox, SamplerConfig,
};
use rlra_data::testmat::decay_matrix;
use rlra_gpu::{DeviceSpec, ExecMode, MultiGpu, SdcPlan};
use rlra_matrix::{Mat, MatrixError};
use rlra_trace::{parse_json, Json};

/// The resident buffers the fixed-rank integrity funnel covers.
const FUNNEL: &[&str] = &["sketch", "power_b", "power_c", "orth_b", "orth_c", "tsqr"];

struct Armed {
    approx: Option<LowRankApprox>,
    report: ExecReport,
    detected: u64,
    corrected: u64,
    escapes: u64,
    latent: usize,
}

fn armed_run(
    a: &Mat,
    cfg: &SamplerConfig,
    ng: usize,
    plan: Option<&SdcPlan>,
    mode: IntegrityMode,
) -> Result<Armed, MatrixError> {
    let mut mg = MultiGpu::new(ng, DeviceSpec::k40c(), ExecMode::Compute).expect("fleet");
    if let Some(plan) = plan {
        mg.install_sdc_plan(plan);
    }
    let mut exec = MultiGpuExec::new(&mut mg).expect("exec");
    let mut guard = NumericGuard::default();
    let mut iguard = IntegrityGuard::new(IntegrityPolicy::with_mode(mode));
    let out = run_fixed_rank_protected(
        &mut exec,
        Input::Values(a),
        cfg,
        &mut StdRng::seed_from_u64(1),
        &mut guard,
        &mut iguard,
    );
    let (detected, corrected, escapes) = (iguard.detected(), iguard.corrected(), iguard.escapes());
    let latent = iguard.queued();
    out.map(|(approx, report)| Armed {
        approx,
        report,
        detected,
        corrected,
        escapes,
        latent,
    })
}

fn rollback_run(a: &Mat, cfg: &SamplerConfig, ng: usize, plan: &SdcPlan) -> Armed {
    let mut mg = MultiGpu::new(ng, DeviceSpec::k40c(), ExecMode::Compute).expect("fleet");
    mg.install_sdc_plan(plan);
    let mut exec = MultiGpuExec::new(&mut mg).expect("exec");
    let mut rng = CountingRng::new(StdRng::seed_from_u64(1));
    let mut dur = Durability::new(CheckpointPlan::always());
    // Detect-only: the guard may not repair in place, so every detection
    // escalates to the boundary rollback.
    let mut iguard = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::DetectOnly));
    let out = rlra_core::run_fixed_rank_durable_protected(
        &mut exec,
        Input::Values(a),
        cfg,
        &mut rng,
        &mut dur,
        &mut iguard,
    )
    .expect("rollback must absorb the corruption");
    let (detected, corrected, escapes) = (iguard.detected(), iguard.corrected(), iguard.escapes());
    let latent = iguard.queued();
    let (approx, report) = match out {
        DurableOutcome::Complete(v) => v,
        DurableOutcome::Suspended { .. } => unreachable!("no kill plan installed"),
    };
    Armed {
        approx,
        report,
        detected,
        corrected,
        escapes,
        latent,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let opts = TraceOpts::from_args();
    let (m, n) = if smoke {
        (600usize, 200usize)
    } else {
        (1200usize, 400usize)
    };
    let cfg = SamplerConfig::new(24).with_p(8).with_q(1);
    let (a, _) = decay_matrix(m, n, 0.6, 42);

    let fleets: &[usize] = if smoke { &[2] } else { &[1, 2, 4] };
    // Mean launches between corruption events; the horizon comfortably
    // spans a full run so higher rates land several events per device.
    let horizon = 48u64;
    let rates: &[u64] = if smoke { &[12] } else { &[48, 12, 6] };

    // ---- Sweep 1: corruption rate x fleet, detect-only vs correct ----
    let mut table = Table::new(
        format!("What-if: SDC coverage, {m} x {n}, k=24, q=1 (random exponent flips)"),
        &[
            "GPUs",
            "MTBE",
            "scheduled",
            "fired",
            "applied",
            "detected",
            "corrected",
            "escapes",
            "coverage",
            "detect-only",
        ],
    );
    let mut corrupted_cells = 0usize;
    let mut aborted_cells = 0usize;
    let mut last_correct: Option<ExecReport> = None;
    for &ng in fleets {
        for &mtbe in rates {
            let plan = SdcPlan::random(2000 + ng as u64 + mtbe, ng, horizon, mtbe, FUNNEL);
            let fixed = armed_run(&a, &cfg, ng, Some(&plan), IntegrityMode::Correct)
                .expect("correcting run must complete");
            assert_eq!(
                fixed.escapes, 0,
                "no applied corruption may slip past an armed verifier"
            );
            assert_eq!(
                fixed.corrected, fixed.detected,
                "under Correct every detection must be repaired"
            );
            assert_eq!(fixed.report.sdc_detected, fixed.detected);
            // Events that actually poisoned a protected panel; the rest
            // fired after their stage retired and stayed queued against
            // dead data (several can land in one panel, so `detected`
            // counts flagged panels, not applied events).
            let applied = fixed.report.sdc_injected as usize - fixed.latent;
            if applied > 0 {
                corrupted_cells += 1;
                last_correct = Some(fixed.report.clone());
            }
            let detect = match armed_run(&a, &cfg, ng, Some(&plan), IntegrityMode::DetectOnly) {
                Ok(_) => "clean".to_string(),
                Err(MatrixError::SilentCorruption { kernel, .. }) => {
                    aborted_cells += 1;
                    format!("abort@{kernel}")
                }
                Err(e) => panic!("unexpected detect-only failure: {e}"),
            };
            let coverage = if applied > 0 {
                format!(
                    "{:.0}%",
                    100.0 * (applied as u64 - fixed.escapes) as f64 / applied as f64
                )
            } else {
                "-".into()
            };
            table.row(vec![
                ng.to_string(),
                mtbe.to_string(),
                plan.events().len().to_string(),
                fixed.report.sdc_injected.to_string(),
                applied.to_string(),
                fixed.detected.to_string(),
                fixed.corrected.to_string(),
                fixed.escapes.to_string(),
                coverage,
                detect,
            ]);
        }
    }
    table.print();
    let _ = table.save_csv("whatif_sdc");
    assert!(corrupted_cells > 0, "sweep never applied a corruption");
    assert!(aborted_cells > 0, "detect-only never tripped");

    // ---- Sweep 2: single flip — off vs correct vs rollback -----------
    let mut costs = Table::new(
        "What-if: one exponent flip in the power GEMM — localized correction vs rollback"
            .to_string(),
        &[
            "GPUs",
            "fault-free",
            "unprotected",
            "corrected",
            "overhead",
            "rollback",
            "overhead",
            "roll/corr",
        ],
    );
    let mut last_corrected: Option<ExecReport> = None;
    for &ng in fleets {
        let base = armed_run(&a, &cfg, ng, None, IntegrityMode::Correct)
            .expect("armed fault-free run must complete");
        let t_free = base.report.seconds;
        let q_free = base.approx.as_ref().expect("factors").q.clone();

        // The cost cell: one flip in the power GEMM's output panel,
        // where the checksum pair localizes the element and repairs it
        // with a single length-k inner product.
        let flip_gemm = SdcPlan::new().bit_flip(0, 0, "power_c", 3, 5, 54);
        // The hazard cell: one flip in the factor panel Q itself — the
        // corruption that reaches the caller if nobody verifies.
        let flip_q = SdcPlan::new().bit_flip(0, 0, "tsqr", 3, 5, 54);

        // Unprotected: the corruption is applied and nobody looks — the
        // run "succeeds" and hands back silently wrong factors.
        let off = armed_run(&a, &cfg, ng, Some(&flip_q), IntegrityMode::Off)
            .expect("unprotected run cannot fail — that is the problem");
        assert_eq!(off.escapes, 1, "the flip must land and escape unseen");
        assert_ne!(
            off.approx.as_ref().expect("factors").q,
            q_free,
            "an undetected factor-panel flip must silently change Q"
        );

        let corr = armed_run(&a, &cfg, ng, Some(&flip_gemm), IntegrityMode::Correct)
            .expect("corrected run must complete");
        assert_eq!(corr.report.sdc_detected, 1);
        assert_eq!(corr.report.sdc_corrected, 1);
        assert_eq!(corr.report.sdc_rollbacks, 0);
        assert_eq!(
            corr.approx.as_ref().expect("factors").q,
            q_free,
            "in-place correction must restore bit-identical factors"
        );

        let roll = rollback_run(&a, &cfg, ng, &flip_gemm);
        assert_eq!(roll.report.sdc_rollbacks, 1);
        assert_eq!(roll.corrected, 0, "detect-only repairs nothing in place");
        assert_eq!(
            roll.approx.as_ref().expect("factors").q,
            q_free,
            "stage re-run from the boundary must restore bit-identical factors"
        );

        let (t_corr, t_roll) = (corr.report.seconds, roll.report.seconds);
        assert!(
            t_corr < t_roll,
            "localized correction must beat rollback in every single-flip cell \
             ({ng} GPUs: {t_corr} vs {t_roll})"
        );
        costs.row(vec![
            ng.to_string(),
            fmt_time(t_free),
            fmt_time(off.report.seconds),
            fmt_time(t_corr),
            format!("{:.2}%", 100.0 * (t_corr - t_free) / t_free),
            fmt_time(t_roll),
            format!("{:.2}%", 100.0 * (t_roll - t_free) / t_free),
            format!("{:.2}x", t_roll / t_corr),
        ]);
        last_corrected = Some(corr.report.clone());
    }
    costs.print();
    let _ = costs.save_csv("whatif_sdc_costs");

    if let Some(path) = &opts.metrics {
        let rep = last_corrected
            .as_ref()
            .or(last_correct.as_ref())
            .expect("a corrected run to export");
        std::fs::write(path, report_json(rep)).expect("write report JSON");
        // Round-trip check: the exported document must carry the exact
        // sdc counters of the in-memory report.
        let doc = std::fs::read_to_string(path).expect("read report JSON back");
        let parsed = parse_json(&doc).expect("report JSON parses");
        let field = |k: &str| parsed.get(k).and_then(Json::as_num).expect("sdc field");
        assert_eq!(field("sdc_injected"), rep.sdc_injected as f64);
        assert_eq!(field("sdc_detected"), rep.sdc_detected as f64);
        assert_eq!(field("sdc_corrected"), rep.sdc_corrected as f64);
        assert_eq!(field("sdc_rollbacks"), rep.sdc_rollbacks as f64);
        println!(
            "[metrics] {} (sdc_detected = {}, matches the report)",
            path.display(),
            rep.sdc_detected
        );
    }

    println!(
        "\nEvery exponent-region flip that reached a protected panel was caught — zero\n\
         escapes across the sweep — and under the correcting policy every detection was\n\
         repaired without failing the run. The cost table shows why localized correction\n\
         is the right default: repairing one element recomputes a single length-k inner\n\
         product from the checksum pair, while the rollback alternative re-runs a whole\n\
         stage from the boundary snapshot (and pays the checkpoint writes to have that\n\
         boundary at all). Both restore bit-identical factors; the unprotected arm is the\n\
         cautionary column — cheapest wall clock of all, silently wrong answer. Detection\n\
         is the\n\
         cheap part (one checksum row per GEMM, O(mn) against the O(mnk) kernel it\n\
         guards); the policy choice only prices what happens after."
    );
}
