//! Figure 9 — performance of short-wide QR (CholQR vs HHQR): Gflop/s vs
//! number of columns n, with m = 64 rows.

use rlra_bench::{fmt_gflops, Table};
use rlra_gpu::algos::{gpu_cholqr_rows, gpu_hhqr};
use rlra_gpu::{Gpu, Phase};

fn main() {
    let l = 64usize;
    let mut table = Table::new(
        format!("Figure 9: short-wide QR performance, m = {l} rows (Gflop/s)"),
        &["n", "CholQR", "HHQR", "speedup"],
    );
    for n in (5_000..=50_000).step_by(5_000) {
        let mut g1 = Gpu::k40c_dry();
        let b = g1.resident_shape(l, n);
        gpu_cholqr_rows(&mut g1, Phase::Other, &b, true).unwrap();
        let t_cholqr = g1.clock();
        // HHQR factors the transposed (tall-skinny) problem.
        let mut g2 = Gpu::k40c_dry();
        let bt = g2.resident_shape(n, l);
        gpu_hhqr(&mut g2, Phase::Other, &bt).unwrap();
        let t_hhqr = g2.clock();
        let flops = 2.0 * n as f64 * (l * l) as f64;
        table.row(vec![
            n.to_string(),
            fmt_gflops(flops / t_cholqr / 1e9),
            fmt_gflops(flops / t_hhqr / 1e9),
            format!("{:.1}x", t_hhqr / t_cholqr),
        ]);
    }
    table.print();
    if let Ok(p) = table.save_csv("fig09") {
        println!("[csv] {}", p.display());
    }
    println!("\nPaper reference: CholQR speedups up to 106.4x, average 72.9x over HHQR.");
}
