//! Hot-path profile — the telemetry export behind the perf-regression
//! gate (`cargo xtask tracediff`).
//!
//! Runs the fixed-rank GPU pipeline end to end a few times with the
//! wall-clock funnel armed, then writes the repo-root
//! `BENCH_hotpaths.json`: the **modeled** per-kernel seconds / launches
//! / flops and per-phase breakdown (bit-identical across repeats, so
//! CI gates on them), plus the **wall** percentiles of every
//! `rlra_wall_*` histogram the funnel filled (informational — host
//! noise; gate with `tracediff --wall` only on pinned hardware).
//! `--smoke` runs the reduced CI size that generated the checked-in
//! baseline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{BenchOpts, WallPercentiles, BENCH_SCHEMA_VERSION};
use rlra_core::{run_fixed_rank, GpuExec, Input, SamplerConfig};
use rlra_data::{exponent_spectrum, matrix_with_spectrum};
use rlra_gpu::Gpu;
use rlra_obs::{names, roofline_summary, walltime};
use rlra_trace::json::escape_json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn main() {
    let opts = BenchOpts::from_args();
    let (m, n, k) = if opts.smoke {
        (1_000, 200, 32)
    } else if opts.full {
        (20_000, 2_000, 128)
    } else {
        (4_000, 600, 64)
    };
    let reps = if opts.smoke { 3 } else { 5 };

    let mut rng = StdRng::seed_from_u64(2015);
    let spec = exponent_spectrum(n.min(m));
    let tm = matrix_with_spectrum(m, n, &spec, &mut rng).expect("generator");
    let cfg = SamplerConfig::new(k).with_p(8).with_q(1);

    // Arm the funnel: the rlra-blas / rlra-lapack hot paths (gemm, the
    // CholQR ladder rungs, sample_panel_step) feed their histograms
    // from inside the pipeline; the end-to-end scope is recorded here.
    let registry = walltime::enable();

    let mut last_report = None;
    for _ in 0..reps {
        let mut gpu = Gpu::k40c();
        let mut exec = GpuExec::new(&mut gpu);
        let mut run_rng = StdRng::seed_from_u64(7);
        let _t = walltime::scoped(names::WALL_PIPELINE_SECONDS);
        let (_, report) =
            run_fixed_rank(&mut exec, Input::Values(&tm.a), &cfg, &mut run_rng).expect("pipeline");
        last_report = Some(report);
    }
    walltime::disable();
    let report = last_report.expect("reps >= 1");

    // Modeled side: per-kernel stats summed over devices + the phase
    // breakdown. Deterministic across repeats (same seed, simulated
    // clock), so the last repeat stands for all of them.
    let mut kernels: BTreeMap<&str, (u64, f64, f64)> = BTreeMap::new();
    for dev in &report.metrics.devices {
        for (name, st) in &dev.kernels {
            let e = kernels.entry(name).or_insert((0, 0.0, 0.0));
            e.0 += st.launches;
            e.1 += st.seconds;
            e.2 += st.flops;
        }
    }
    let phases = report.timeline.breakdown();

    // Wall side: percentiles of every histogram the funnel recorded.
    let snap = registry.snapshot();
    let mut wall: Vec<(String, u64, WallPercentiles)> = Vec::new();
    for ((name, label), h) in &snap.hists {
        let series = if label.is_empty() {
            name.clone()
        } else {
            format!("{name}[{label}]")
        };
        if let Some(p) = WallPercentiles::from_histogram(h) {
            wall.push((series, h.count(), p));
        }
    }

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"hotpaths\",");
    let _ = writeln!(s, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"modeled\": {{");
    let _ = writeln!(s, "    \"kernels\": {{");
    for (i, (name, (launches, seconds, flops))) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      \"{}\": {{ \"seconds\": {seconds:.9}, \"launches\": {launches}, \
             \"flops\": {flops:.0} }}{comma}",
            escape_json(name)
        );
    }
    let _ = writeln!(s, "    }},");
    let _ = writeln!(s, "    \"phases\": {{");
    for (i, (phase, secs)) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        let _ = writeln!(s, "      \"{}\": {secs:.9}{comma}", escape_json(phase));
    }
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"wall\": {{");
    for (i, (series, count, p)) in wall.iter().enumerate() {
        let comma = if i + 1 < wall.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    \"{}\": {{ \"count\": {count}, \"p50\": {:.6}, \"p99\": {:.6}, \
             \"p999\": {:.6} }}{comma}",
            escape_json(series),
            p.p50,
            p.p99,
            p.p999
        );
    }
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");

    let path = std::path::Path::new("BENCH_hotpaths.json");
    match std::fs::write(path, s) {
        Ok(()) => println!("[bench] {}", path.display()),
        Err(e) => eprintln!("[bench] could not write BENCH_hotpaths.json: {e}"),
    }

    println!(
        "hotpaths: {m} x {n}, k = {k} (+8 oversampling), q = 1, {reps} repeats; \
         modeled {:.4}s end to end",
        report.seconds
    );
    print!("{}", roofline_summary(&snap));
}
