//! Ablation: the oversampling parameter p and the power-iteration count q
//! (the paper's §7: "Without oversampling (p = 0), the error norm was
//! about an order of magnitude greater. A greater oversampling (p = 20
//! or 50) could further improve the accuracy, but with a smaller factor
//! (C(Ω, p) ∝ p^{-1/2})").

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::Table;
use rlra_core::{sample_fixed_rank, SamplerConfig};
use rlra_data::{matrix_with_spectrum, power_spectrum};

fn main() {
    let (m, n, k) = (1_500usize, 400usize, 30usize);
    let trials = 5;
    let mut rng = StdRng::seed_from_u64(2015);
    let spec = power_spectrum(n);
    let tm = matrix_with_spectrum(m, n, &spec, &mut rng).expect("generator");
    let sigma_k1 = tm.sigma_after(k);

    let mean_err = |p: usize, q: usize, rng: &mut StdRng| -> f64 {
        (0..trials)
            .map(|_| {
                let cfg = SamplerConfig::new(k).with_p(p).with_q(q);
                sample_fixed_rank(&tm.a, &cfg, rng)
                    .expect("sampler")
                    .error_spectral(&tm.a)
                    .expect("error")
            })
            .sum::<f64>()
            / trials as f64
    };

    let mut table = Table::new(
        format!(
            "Ablation: error vs oversampling p (power matrix {m} x {n}, k = {k}, mean of {trials})"
        ),
        &["p", "q=0", "q=1", "err(q=0)/sigma_k+1"],
    );
    for p in [0usize, 2, 5, 10, 20, 50] {
        let e0 = mean_err(p, 0, &mut rng);
        let e1 = mean_err(p, 1, &mut rng);
        table.row(vec![
            p.to_string(),
            format!("{e0:.3e}"),
            format!("{e1:.3e}"),
            format!("{:.1}", e0 / sigma_k1),
        ]);
    }
    table.print();
    let _ = table.save_csv("ablation_oversampling");
    println!(
        "\nsigma_k+1 = {sigma_k1:.3e}. Expected shape: p = 0 an order worse than p = 10;\n\
         p = 20/50 only marginally better (C ~ p^-1/2); q = 1 flattens the p-dependence."
    );
}
