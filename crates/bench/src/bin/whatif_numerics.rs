//! What-if study: the orthogonalization fallback ladder vs conditioning.
//!
//! CholQR squares the condition number into the Gram matrix, so the
//! pipeline's orthogonalization kernel of choice breaks down first as
//! inputs approach rank deficiency. This study sweeps the condition
//! number of a near-rank-deficient test matrix (tail singular value
//! `t`, `κ = 1/t`) against the [`NumericPolicy`] ladder cap and records
//! what the guard did:
//!
//! - **cholqr** — ladder capped at rung 0: plain CholQR2, the pre-guard
//!   behavior. Breakdowns abort the run.
//! - **shifted** — may escalate to shifted CholQR2 (rung 1), which
//!   factors `G + σI` and corrects with two plain passes.
//! - **householder** — the full ladder; exact rank deficiency lands on
//!   Householder QR (rung 2).
//!
//! The sketch `Ω·A` has `ℓ = k + p` rows but only `rank` strong
//! directions, so every orthogonalization in the run stresses the
//! ladder at once. Pass `--smoke` for the reduced CI sweep, and
//! `--metrics <path>` to export the metrics JSON of the last escalated
//! run (the file's `fallbacks` is cross-checked against the report).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{Table, TraceOpts};
use rlra_core::backend::{
    run_fixed_rank_verified, run_fixed_rank_with_guard, CpuExec, Input, NumericGuard,
    NumericPolicy, Rung,
};
use rlra_core::SamplerConfig;
use rlra_data::near_deficient_spectrum;
use rlra_data::synthetic::matrix_with_spectrum;
use rlra_matrix::MatrixError;
use rlra_trace::{metrics_json, parse_json, Metrics};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let opts = TraceOpts::from_args();
    let (m, n) = if smoke {
        (200usize, 150usize)
    } else {
        (400usize, 250usize)
    };
    let rank = 8usize;
    let cfg = SamplerConfig::new(12).with_p(4).with_q(1);
    let tails: &[f64] = if smoke {
        &[1e-4, 1e-8, 1e-14]
    } else {
        &[1e-4, 1e-6, 1e-8, 1e-10, 1e-12, 1e-14]
    };
    let policies: &[(&str, Rung)] = &[
        ("cholqr", Rung::CholQr),
        ("shifted", Rung::ShiftedCholQr2),
        ("householder", Rung::Householder),
    ];

    let mut table = Table::new(
        format!(
            "What-if: fallback ladder vs conditioning ({m} x {n}, rank {rank}, k=12, l=16, q=1)"
        ),
        &[
            "tail",
            "kappa",
            "policy",
            "outcome",
            "breakdowns",
            "fallbacks",
            "ladder",
            "rel-err",
        ],
    );
    let mut escalated_cells = 0usize;
    let mut healthy_fallbacks = 0u64;
    let mut last_escalated: Option<(Metrics, u64)> = None;
    for &tail in tails {
        let spectrum = near_deficient_spectrum(n.min(m), rank, tail);
        let tm = matrix_with_spectrum(m, n, &spectrum, &mut StdRng::seed_from_u64(7))
            .expect("test matrix");
        for &(pname, max_rung) in policies {
            let mut exec = CpuExec::new();
            let mut guard = NumericGuard::new(NumericPolicy {
                max_rung,
                ..NumericPolicy::default()
            });
            let outcome = run_fixed_rank_with_guard(
                &mut exec,
                Input::Values(&tm.a),
                &cfg,
                &mut StdRng::seed_from_u64(42),
                &mut guard,
            );
            match outcome {
                Ok((approx, rep)) => {
                    let approx = approx.expect("compute backend returns factors");
                    let rel = approx
                        .relative_error(&tm.a, Some(tm.norm2()))
                        .expect("error estimate");
                    if rep.fallbacks > 0 {
                        escalated_cells += 1;
                        last_escalated = Some((rep.metrics.clone(), rep.fallbacks));
                    }
                    if tail == 1e-4 {
                        healthy_fallbacks += rep.fallbacks;
                    }
                    table.row(vec![
                        format!("{tail:.0e}"),
                        format!("{:.0e}", 1.0 / tail),
                        pname.into(),
                        "ok".into(),
                        rep.breakdowns.to_string(),
                        rep.fallbacks.to_string(),
                        format!("{:?}", rep.ladder_histogram),
                        format!("{rel:.1e}"),
                    ]);
                }
                Err(MatrixError::NumericalBreakdown { stage, .. }) => {
                    table.row(vec![
                        format!("{tail:.0e}"),
                        format!("{:.0e}", 1.0 / tail),
                        pname.into(),
                        format!("breakdown at {stage}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
                Err(e) => panic!("unexpected failure: {e}"),
            }
        }
    }
    table.print();
    let _ = table.save_csv("whatif_numerics");
    assert!(
        escalated_cells > 0,
        "sweep never exercised the fallback ladder"
    );
    assert_eq!(
        healthy_fallbacks, 0,
        "well-conditioned runs must stay on rung 0 (bit-identity with the pre-guard pipeline)"
    );

    // Verified accuracy: the posterior estimate certifies the factors
    // against a tolerance, re-drawing the sketch before giving up.
    let spectrum = near_deficient_spectrum(n.min(m), rank, 1e-8);
    let tm =
        matrix_with_spectrum(m, n, &spectrum, &mut StdRng::seed_from_u64(7)).expect("test matrix");
    let mut exec = CpuExec::new();
    let mut guard = NumericGuard::default();
    let (_, rep) = run_fixed_rank_verified(
        &mut exec,
        Input::Values(&tm.a),
        &cfg,
        &mut StdRng::seed_from_u64(42),
        1e-4,
        &mut guard,
    )
    .expect("verified run within tolerance");
    println!(
        "\n[verified] posterior estimate certified the rank-12 factors against tol 1e-4 \
         (ladder: {:?})",
        rep.ladder_histogram
    );

    if let Some(path) = &opts.metrics {
        let (metrics, fallbacks) = last_escalated
            .as_ref()
            .expect("an escalated run to export metrics for");
        std::fs::write(path, metrics_json(metrics)).expect("write metrics JSON");
        // Round-trip check: the exported file must carry the same
        // fallbacks count the ExecReport reported.
        let doc = std::fs::read_to_string(path).expect("read metrics JSON back");
        let parsed = parse_json(&doc).expect("metrics JSON parses");
        let fb = parsed
            .get("fallbacks")
            .and_then(rlra_trace::Json::as_num)
            .expect("fallbacks key");
        assert_eq!(
            fb, *fallbacks as f64,
            "metrics fallbacks must equal the ExecReport field"
        );
        println!(
            "[metrics] {} (fallbacks = {fb}, matches the report)",
            path.display()
        );
    }
    println!(
        "\nAcross the sweep the ladder behaves as designed: well-conditioned inputs never\n\
         leave rung 0 and are bit-identical to the pre-guard pipeline; at kappa ~ 1e8 the\n\
         squared Gram conditioning crosses CholQR's breakdown edge and the shifted rung\n\
         (one factorization of G + sigma*I plus two corrective passes, all BLAS-3) absorbs\n\
         it for a few percent overhead; past kappa ~ 1e12 the deficiency sinks below the\n\
         shift level, the corrective diagonal collapses, and only Householder QR finishes.\n\
         Capping the ladder at rung 0 reproduces the pre-guard behavior — the run aborts —\n\
         which is the right choice only when a breakdown should be investigated, not\n\
         survived. The counters make the choice auditable: breakdowns, fallbacks and the\n\
         per-rung histogram land in the ExecReport and the exported metrics, so a fleet\n\
         that silently lives on the shifted rung shows up in monitoring before it falls\n\
         off the ladder entirely."
    );
}
