//! Figure 15 — strong parallel scaling of random sampling over 1–3 GPUs
//! ((m; n) = (150,000; 2,500), (l; p; q) = (64; 10; 1)), with the
//! per-phase breakdown including inter-GPU communication, and the GEMM
//! efficiency per chunk (the source of the superlinear GEMM speedup).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_gflops, fmt_time, Table};
use rlra_core::multi::scaling_report;
use rlra_core::SamplerConfig;
use rlra_gpu::cost::CostModel;
use rlra_gpu::{DeviceSpec, Phase};

fn main() {
    let (m, n) = (150_000usize, 2_500usize);
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let cost = CostModel::new(DeviceSpec::k40c());

    let mut table = Table::new(
        format!("Figure 15: strong scaling over GPUs ((m; n) = ({m}; {n}), l;p;q = 64;10;1)"),
        &[
            "n_g",
            "Sampling",
            "GEMM (Iter)",
            "Orth (Iter)",
            "QRCP",
            "QR",
            "Comms",
            "total",
            "speedup",
            "GEMM Gflop/s per chunk",
        ],
    );
    let mut rng = StdRng::seed_from_u64(1);
    let mut t1 = 0.0f64;
    for ng in 1..=3 {
        let rep = scaling_report(ng, m, n, &cfg, &mut rng).unwrap();
        if ng == 1 {
            t1 = rep.seconds;
        }
        let chunk = m / ng;
        table.row(vec![
            ng.to_string(),
            fmt_time(rep.timeline.get(Phase::Sampling)),
            fmt_time(rep.timeline.get(Phase::GemmIter)),
            fmt_time(rep.timeline.get(Phase::OrthIter)),
            fmt_time(rep.timeline.get(Phase::Qrcp)),
            fmt_time(rep.timeline.get(Phase::Qr)),
            format!(
                "{} ({:.1}%)",
                fmt_time(rep.comms),
                100.0 * rep.comms / rep.seconds
            ),
            fmt_time(rep.seconds),
            format!("{:.1}x", t1 / rep.seconds),
            fmt_gflops(cost.gemm_gflops(64, n, chunk)),
        ]);
    }
    table.print();
    if let Ok(p) = table.save_csv("fig15") {
        println!("[csv] {}", p.display());
    }
    println!(
        "\nPaper reference: overall speedups 2.4x (2 GPUs) and 3.8x (3 GPUs); GEMM speedups\n\
         superlinear (2.8x / 5.1x) because chunk GEMM runs at 440/630/760 Gflop/s for\n\
         m/n_g = 150k/75k/50k; comms = 1.6% (2 GPUs) and 4.3% (3 GPUs) of total."
    );
}
