//! Figure 15 — strong parallel scaling of random sampling over 1–3 GPUs
//! ((m; n) = (150,000; 2,500), (l; p; q) = (64; 10; 1)), with the
//! per-phase breakdown including inter-GPU communication, and the GEMM
//! efficiency per chunk (the source of the superlinear GEMM speedup).
//!
//! Pass `--trace <path>` / `--metrics <path>` to export the 3-GPU run
//! as a Chrome trace (one track per device plus the comms track) /
//! metrics JSON.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_gflops, fmt_time, phase_cells, Table, TraceOpts};
use rlra_core::multi::{sample_fixed_rank_multi_gpu, HostInput};
use rlra_core::SamplerConfig;
use rlra_gpu::cost::CostModel;
use rlra_gpu::{DeviceSpec, ExecMode, MultiGpu, Phase};
use rlra_trace::{Metrics, Tracer};

fn main() {
    let (m, n) = (150_000usize, 2_500usize);
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let cost = CostModel::new(DeviceSpec::k40c());
    let opts = TraceOpts::from_args();

    let mut table = Table::new(
        format!("Figure 15: strong scaling over GPUs ((m; n) = ({m}; {n}), l;p;q = 64;10;1)"),
        &[
            "n_g",
            "Sampling",
            "GEMM (Iter)",
            "Orth (Iter)",
            "QRCP",
            "QR",
            "Comms",
            "total",
            "speedup",
            "GEMM Gflop/s per chunk",
        ],
    );
    let mut rng = StdRng::seed_from_u64(1);
    let mut t1 = 0.0f64;
    let mut last_trace: Option<Tracer> = None;
    let mut last_metrics = Metrics::default();
    for ng in 1..=3 {
        let mut mg = MultiGpu::new(ng, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
        // A fresh ring per fleet size: the exported trace is the 3-GPU run.
        mg.set_tracer(opts.tracer());
        let (_, rep) =
            sample_fixed_rank_multi_gpu(&mut mg, HostInput::Shape(m, n), &cfg, &mut rng).unwrap();
        last_trace = mg.take_tracer();
        last_metrics = rep.metrics.clone();
        if ng == 1 {
            t1 = rep.seconds;
        }
        let chunk = m / ng;
        let mut row = vec![ng.to_string()];
        row.extend(phase_cells(
            &rep.timeline,
            &[
                Phase::Sampling,
                Phase::GemmIter,
                Phase::OrthIter,
                Phase::Qrcp,
                Phase::Qr,
            ],
        ));
        row.push(format!(
            "{} ({:.1}%)",
            fmt_time(rep.comms),
            100.0 * rep.comms / rep.seconds
        ));
        row.push(fmt_time(rep.seconds));
        row.push(format!("{:.1}x", t1 / rep.seconds));
        row.push(fmt_gflops(cost.gemm_gflops(64, n, chunk)));
        table.row(row);
    }
    table.print();
    if let Ok(p) = table.save_csv("fig15") {
        println!("[csv] {}", p.display());
    }
    opts.export(last_trace.as_ref(), &last_metrics).unwrap();
    println!(
        "\nPaper reference: overall speedups 2.4x (2 GPUs) and 3.8x (3 GPUs); GEMM speedups\n\
         superlinear (2.8x / 5.1x) because chunk GEMM runs at 440/630/760 Gflop/s for\n\
         m/n_g = 150k/75k/50k; comms = 1.6% (2 GPUs) and 4.3% (3 GPUs) of total."
    );
}
