//! Ablation: pivot selection — per-pivot-synchronizing QP3 vs the
//! communication-avoiding tournament pivoting the paper cites as \[4\]
//! ("we plan to … compare with … the communication-avoiding QP3").

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, Table};
use rlra_gpu::algos::{gpu_qp3_truncated, gpu_tournament_qrcp};
use rlra_gpu::{Gpu, Phase};
use rlra_matrix::{gaussian_mat, Mat};

fn decaying(m: usize, n: usize, decay: f64, rng: &mut StdRng) -> Mat {
    let r = m.min(n);
    let x = rlra_lapack::form_q(&gaussian_mat(m, r, rng));
    let y = rlra_lapack::form_q(&gaussian_mat(n, r, rng));
    let xs = Mat::from_fn(m, r, |i, j| x[(i, j)] * decay.powi(j as i32));
    let mut a = Mat::zeros(m, n);
    rlra_blas::gemm(
        1.0,
        xs.as_ref(),
        rlra_blas::Trans::No,
        y.as_ref(),
        rlra_blas::Trans::Yes,
        0.0,
        a.as_mut(),
    )
    .unwrap();
    a
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2015);

    // --- Accuracy at verifiable scale ---------------------------------------
    let (m, n, k) = (300usize, 200usize, 16usize);
    let a = decaying(m, n, 0.8, &mut rng);
    let qp3 = rlra_lapack::qp3_blocked(&a, k, 32).unwrap();
    let ap = qp3.perm.apply_cols(&a).unwrap();
    let e_qp3 = rlra_matrix::norms::spectral_norm_mat(
        &rlra_matrix::ops::sub(&ap, &qp3.reconstruct()).unwrap(),
    );
    let tp = rlra_lapack::tournament_qrcp(&a, k).unwrap();
    let e_tp = tp.error_spectral(&a).unwrap();
    let mut acc = Table::new(
        format!("Ablation: pivoting accuracy, {m} x {n}, k = {k} (decay 0.8)"),
        &["method", "|AP - QR|_2", "vs QP3"],
    );
    acc.row(vec!["QP3".into(), format!("{e_qp3:.3e}"), "1.00x".into()]);
    acc.row(vec![
        "tournament".into(),
        format!("{e_tp:.3e}"),
        format!("{:.2}x", e_tp / e_qp3),
    ]);
    acc.print();
    let _ = acc.save_csv("ablation_pivot_accuracy");

    // --- Simulated time + syncs at paper scale ------------------------------
    let (m, n, k) = (50_000usize, 2_500usize, 64usize);
    let mut perf = Table::new(
        format!("Ablation: pivoting cost on the simulated K40c, {m} x {n}, k = {k}"),
        &["method", "time", "host syncs", "speedup"],
    );
    let mut g1 = Gpu::k40c_dry();
    let a1 = g1.resident_shape(m, n);
    gpu_qp3_truncated(&mut g1, Phase::Other, &a1, k).unwrap();
    let (t_qp3, s_qp3) = (g1.clock(), g1.syncs);
    let mut g2 = Gpu::k40c_dry();
    let a2 = g2.resident_shape(m, n);
    gpu_tournament_qrcp(&mut g2, Phase::Other, &a2, k).unwrap();
    let (t_tp, s_tp) = (g2.clock(), g2.syncs);
    perf.row(vec![
        "QP3".into(),
        fmt_time(t_qp3),
        s_qp3.to_string(),
        "1.0x".into(),
    ]);
    perf.row(vec![
        "tournament".into(),
        fmt_time(t_tp),
        s_tp.to_string(),
        format!("{:.1}x", t_qp3 / t_tp),
    ]);
    perf.print();
    let _ = perf.save_csv("ablation_pivot_time");
    println!(
        "\nTakeaway: tournament pivoting trades a bounded accuracy factor for an order of\n\
         magnitude fewer synchronizations — the same communication-vs-flops trade the paper\n\
         makes with random sampling itself."
    );
}
