//! Table 1 — the test matrices: power, exponent and (synthetic) hapmap.
//!
//! Prints σ₀, σₖ₊₁, κ(A) = σ₀/σₖ₊₁ and the shapes, mirroring the paper's
//! Table 1. The matrices are generated at a reduced size by default
//! (m = 5,000); pass `--full` for the paper's row counts where feasible.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{BenchOpts, Table};
use rlra_data::{exponent_spectrum, hapmap_like, power_spectrum, HapmapConfig};

fn main() {
    let opts = BenchOpts::from_args();
    let (m, n) = if opts.full {
        (500_000, 500)
    } else {
        (5_000, 500)
    };
    let k = 50;
    let p = 10;

    let mut table = Table::new(
        format!(
            "Table 1: test matrices (m = {m}, n = {n}, k = {k}, p = {p}, l = {})",
            k + p
        ),
        &["matrix", "sigma_0", "sigma_k+1", "kappa(A)", "m", "n"],
    );

    for spec in [power_spectrum(n), exponent_spectrum(n)] {
        let s0 = spec.sigma0();
        let sk1 = spec.sigma_after(k);
        table.row(vec![
            spec.name.to_string(),
            format!("{s0:.1e}"),
            format!("{sk1:.1e}"),
            format!("{:.1e}", s0 / sk1),
            m.to_string(),
            n.to_string(),
        ]);
    }

    // Synthetic HapMap substitute (Balding–Nichols, 4 populations).
    let cfg = HapmapConfig {
        snps: if opts.full { 20_000 } else { 2_000 },
        individuals: 506,
        populations: 4,
        fst: 0.1,
    };
    let mut rng = StdRng::seed_from_u64(2015);
    let a = hapmap_like(&cfg, &mut rng).expect("valid hapmap config");
    // Leading singular values of the (tall) genotype matrix.
    let probe = a.submatrix(0, 0, cfg.snps.min(1500), cfg.individuals);
    let sv = rlra_lapack::singular_values(&probe).expect("svd converges");
    table.row(vec![
        "hapmap (synthetic)".into(),
        format!("{:.1e}", sv[0]),
        format!("{:.1e}", sv[k]),
        format!("{:.1e}", sv[0] / sv[k]),
        cfg.snps.to_string(),
        cfg.individuals.to_string(),
    ]);

    table.print();
    if let Ok(p) = table.save_csv("table1") {
        println!("[csv] {}", p.display());
    }
    println!(
        "\nPaper reference: power sigma_k+1 = 8e-06, kappa = 1.3e+05; exponent sigma_k+1 = 1.3e-05,\n\
         kappa = 7.9e+04; hapmap sigma_0 = 9.9e+03, sigma_k+1 = 5e+02, kappa = 2e+01."
    );
}
