//! Figure 12 — random sampling and QP3 time vs number of columns n
//! (m = 50,000, (l; p; q) = (64; 10; 1)).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, Table};
use rlra_core::{qp3_low_rank_gpu, sample_fixed_rank_gpu, SamplerConfig};
use rlra_gpu::{Gpu, Phase};

fn main() {
    let m = 50_000usize;
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let mut table = Table::new(
        format!("Figure 12: time vs columns n (m = {m}, l;p;q = 64;10;1)"),
        &[
            "n",
            "Sampling",
            "GEMM (Iter)",
            "QRCP",
            "QR",
            "RS total",
            "QP3",
            "speedup",
        ],
    );
    let mut rng = StdRng::seed_from_u64(1);
    for n in (500..=5_000).step_by(500) {
        let mut gpu = Gpu::k40c_dry();
        let a = gpu.resident_shape(m, n);
        let (_, rep) = sample_fixed_rank_gpu(&mut gpu, &a, &cfg, &mut rng).unwrap();
        let mut gq = Gpu::k40c_dry();
        let aq = gq.resident_shape(m, n);
        let (_, t_qp3) = qp3_low_rank_gpu(&mut gq, &aq, cfg.l()).unwrap();
        table.row(vec![
            n.to_string(),
            fmt_time(rep.timeline.get(Phase::Sampling)),
            fmt_time(rep.timeline.get(Phase::GemmIter)),
            fmt_time(rep.timeline.get(Phase::Qrcp)),
            fmt_time(rep.timeline.get(Phase::Qr)),
            fmt_time(rep.seconds),
            fmt_time(t_qp3),
            format!("{:.1}x", t_qp3 / rep.seconds),
        ]);
    }
    table.print();
    if let Ok(p) = table.save_csv("fig12") {
        println!("[csv] {}", p.display());
    }
    println!("\nPaper reference: QP3 time grows much faster with n than random sampling.");
}
