//! Figure 12 — random sampling and QP3 time vs number of columns n
//! (m = 50,000, (l; p; q) = (64; 10; 1)).
//!
//! Pass `--trace <path>` / `--metrics <path>` to export the largest run
//! as a Chrome trace / metrics JSON.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, phase_cells, Table, TraceOpts};
use rlra_core::{qp3_low_rank_gpu, sample_fixed_rank_gpu, SamplerConfig};
use rlra_gpu::{Gpu, Phase};
use rlra_trace::{Metrics, Tracer};

fn main() {
    let m = 50_000usize;
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let opts = TraceOpts::from_args();
    let mut table = Table::new(
        format!("Figure 12: time vs columns n (m = {m}, l;p;q = 64;10;1)"),
        &[
            "n",
            "Sampling",
            "GEMM (Iter)",
            "QRCP",
            "QR",
            "RS total",
            "QP3",
            "speedup",
        ],
    );
    let mut rng = StdRng::seed_from_u64(1);
    let mut last_trace: Option<Tracer> = None;
    let mut last_metrics = Metrics::default();
    for n in (500..=5_000).step_by(500) {
        let mut gpu = Gpu::k40c_dry();
        gpu.set_tracer(opts.tracer());
        let a = gpu.resident_shape(m, n);
        let (_, rep) = sample_fixed_rank_gpu(&mut gpu, &a, &cfg, &mut rng).unwrap();
        last_trace = gpu.take_tracer();
        last_metrics = rep.metrics.clone();
        let mut gq = Gpu::k40c_dry();
        let aq = gq.resident_shape(m, n);
        let (_, t_qp3) = qp3_low_rank_gpu(&mut gq, &aq, cfg.l()).unwrap();
        let mut row = vec![n.to_string()];
        row.extend(phase_cells(
            &rep.timeline,
            &[Phase::Sampling, Phase::GemmIter, Phase::Qrcp, Phase::Qr],
        ));
        row.push(fmt_time(rep.seconds));
        row.push(fmt_time(t_qp3));
        row.push(format!("{:.1}x", t_qp3 / rep.seconds));
        table.row(row);
    }
    table.print();
    if let Ok(p) = table.save_csv("fig12") {
        println!("[csv] {}", p.display());
    }
    opts.export(last_trace.as_ref(), &last_metrics).unwrap();
    println!("\nPaper reference: QP3 time grows much faster with n than random sampling.");
}
