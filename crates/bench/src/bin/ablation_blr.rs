//! Ablation: block low-rank compression (the §11 HSS-solver outlook) —
//! compression ratio and operator error vs the per-tile rank budget, and
//! the simulated-GPU cost of the compression sweep with random sampling
//! vs a QP3-per-tile baseline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, Table};
use rlra_core::{BlrMatrix, SamplerConfig};
use rlra_data::{kernel_matrix, uniform_points, Kernel};
use rlra_gpu::{Gpu, Phase};

fn main() {
    let n = 512usize;
    let tiles = 8usize;
    let _tile = n / tiles;
    let kernel = kernel_matrix(Kernel::Cauchy { gamma: 64.0 }, &uniform_points(n));
    let norm = rlra_matrix::norms::spectral_norm(kernel.as_ref());

    // --- Accuracy / compression vs rank budget ------------------------------
    let mut acc = Table::new(
        format!("Ablation: BLR of a {n} x {n} Cauchy kernel, {tiles} x {tiles} tiles, q = 1"),
        &[
            "k per tile",
            "compression",
            "|K - BLR| / |K|",
            "dense tiles",
        ],
    );
    for k in [4usize, 8, 12, 16, 24] {
        let cfg = SamplerConfig::new(k).with_p(4).with_q(1);
        let mut rng = StdRng::seed_from_u64(7);
        let blr = BlrMatrix::compress(&kernel, tiles, &cfg, &mut rng).expect("compress");
        let rec = blr.to_dense().expect("reconstruct");
        let err = rlra_matrix::norms::spectral_norm(
            rlra_matrix::ops::sub(&kernel, &rec)
                .expect("same shape")
                .as_ref(),
        ) / norm;
        acc.row(vec![
            k.to_string(),
            format!("{:.2}x", blr.compression_ratio()),
            format!("{err:.2e}"),
            blr.dense_tiles().to_string(),
        ]);
    }
    acc.print();
    let _ = acc.save_csv("ablation_blr_accuracy");

    // --- Simulated GPU cost of the compression sweep -------------------------
    // tiles*(tiles-1) off-diagonal compressions of a tile x tile block,
    // paper-scale tile sizes.
    let big_tile = 4_096usize;
    let off_diag = tiles * (tiles - 1);
    let k = 16usize;
    let cfg = SamplerConfig::new(k).with_p(8).with_q(1);
    let mut rng = StdRng::seed_from_u64(8);
    let mut rs_gpu = Gpu::k40c_dry();
    for _ in 0..off_diag {
        let a = rs_gpu.resident_shape(big_tile, big_tile);
        let _ = rlra_core::sample_fixed_rank_gpu(&mut rs_gpu, &a, &cfg, &mut rng).expect("dry run");
    }
    let mut qp3_gpu = Gpu::k40c_dry();
    for _ in 0..off_diag {
        let a = qp3_gpu.resident_shape(big_tile, big_tile);
        let _ = rlra_gpu::algos::gpu_qp3_truncated(&mut qp3_gpu, Phase::Qrcp, &a, k + 8)
            .expect("dry run");
    }
    let mut perf = Table::new(
        format!(
            "Ablation: simulated K40c cost of {off_diag} off-diagonal tile compressions \
             ({big_tile} x {big_tile} tiles, k = {k})"
        ),
        &["method", "total time", "per tile", "speedup"],
    );
    let t_rs = rs_gpu.clock();
    let t_qp3 = qp3_gpu.clock();
    perf.row(vec![
        "random sampling".into(),
        fmt_time(t_rs),
        fmt_time(t_rs / off_diag as f64),
        format!("{:.1}x", t_qp3 / t_rs),
    ]);
    perf.row(vec![
        "QP3 per tile".into(),
        fmt_time(t_qp3),
        fmt_time(t_qp3 / off_diag as f64),
        "1.0x".into(),
    ]);
    perf.print();
    let _ = perf.save_csv("ablation_blr_cost");
    println!(
        "\nThe HSS/BLR workload multiplies the paper's per-factorization speedup by the tile\n\
         count — exactly why §11 wants the randomized sampler inside the HSS solver."
    );
}
