//! Ablation: sampling operators — pruned Gaussian (GEMM) vs full SRFT vs
//! pruned SRFT — on real CPU wall-clock, flop counts, and accuracy.
//! Complements Figure 8 (which uses the simulated-GPU rates).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::Table;
use rlra_core::{sample_fixed_rank, SamplerConfig, SamplingKind};
use rlra_data::{matrix_with_spectrum, power_spectrum};
use rlra_fft::{SrftOperator, SrftScheme};
use rlra_matrix::gaussian_mat;
use std::time::Instant;

fn main() {
    let (m, n, k, p) = (4_096usize, 300usize, 20usize, 10usize);
    let l = k + p;
    let mut rng = StdRng::seed_from_u64(2015);
    let spec = power_spectrum(n);
    let tm = matrix_with_spectrum(m, n, &spec, &mut rng).expect("generator");

    // --- Operator-level wall clock and flops --------------------------------
    let mut ops = Table::new(
        format!("Ablation: sampling operator cost (A is {m} x {n}, l = {l}), this CPU"),
        &["operator", "wall clock", "flops", "B shape"],
    );
    {
        let omega = gaussian_mat(l, m, &mut rng);
        let mut b = rlra_matrix::Mat::zeros(l, n);
        let t = Instant::now();
        rlra_blas::gemm(
            1.0,
            omega.as_ref(),
            rlra_blas::Trans::No,
            tm.a.as_ref(),
            rlra_blas::Trans::No,
            0.0,
            b.as_mut(),
        )
        .unwrap();
        let dt = t.elapsed();
        ops.row(vec![
            "Gaussian GEMM".into(),
            format!("{dt:.2?}"),
            format!("{:.2e}", 2.0 * (l * m * n) as f64),
            format!("{l} x {n}"),
        ]);
    }
    for (name, scheme) in [
        ("SRFT full", SrftScheme::Full),
        ("SRFT pruned", SrftScheme::Pruned),
    ] {
        let op = SrftOperator::new(m, l, scheme, &mut rng).unwrap();
        let t = Instant::now();
        let b = op.sample_rows(&tm.a).unwrap();
        let dt = t.elapsed();
        ops.row(vec![
            name.into(),
            format!("{dt:.2?}"),
            format!("{:.2e}", op.flops(n) as f64),
            format!("{} x {}", b.rows(), b.cols()),
        ]);
    }
    ops.print();
    let _ = ops.save_csv("ablation_sampling_ops");

    // --- End-to-end accuracy -------------------------------------------------
    let mut acc = Table::new(
        format!("Ablation: end-to-end accuracy by sampling kind (k = {k}, p = {p}, q = 0)"),
        &["sampling", "|AP - QR|_2", "/ sigma_k+1"],
    );
    let sigma_k1 = tm.sigma_after(k);
    for (name, kind) in [
        ("Gaussian", SamplingKind::Gaussian),
        ("SRFT full", SamplingKind::Fft(SrftScheme::Full)),
        ("SRFT pruned", SamplingKind::Fft(SrftScheme::Pruned)),
    ] {
        let cfg = SamplerConfig::new(k).with_p(p).with_sampling(kind);
        let lr = sample_fixed_rank(&tm.a, &cfg, &mut rng).expect("sampler");
        let e = lr.error_spectral(&tm.a).expect("error");
        acc.row(vec![
            name.into(),
            format!("{e:.3e}"),
            format!("{:.1}", e / sigma_k1),
        ]);
    }
    acc.print();
    let _ = acc.save_csv("ablation_sampling_accuracy");
    println!(
        "\nPaper §7: 'FFT sampling gave the approximation errors of the same order' — all\n\
         three operators should land within a small factor of sigma_k+1 = {sigma_k1:.2e}."
    );
}
