//! Figure 8 — performance of pruned Gaussian (GEMM), GEMV, and full FFT
//! sampling vs subspace size ℓ, for a 50,000 × 2,500 input, with the
//! compute (1430 Gflop/s) and memory (288 GB/s) peaks for context.
//!
//! The "FFT (effective)" column is the paper's metric: the flops of the
//! *pruned Gaussian* sampling divided by the *full FFT* time — the rate
//! at which the FFT path gets the same job done.

use rlra_bench::{fmt_gflops, Table};
use rlra_fft::radix2::{fft_flops, next_pow2};
use rlra_gpu::cost::CostModel;
use rlra_gpu::DeviceSpec;

fn series(table_name: &str, m: usize, n: usize, csv: &str) {
    let cost = CostModel::new(DeviceSpec::k40c());
    let spec = DeviceSpec::k40c();
    let mut table = Table::new(
        table_name.to_string(),
        &[
            "l",
            "GEMM",
            "GEMV",
            "FFT",
            "FFT (effective)",
            "Peak (compute)",
            "Peak (memory)",
        ],
    );
    let m_pad = next_pow2(m);
    for l in [32usize, 64, 96, 128, 192, 256, 320, 384, 448, 512] {
        let gemm_flops = 2.0 * (l * m * n) as f64;
        let t_gemm = cost.gemm(l, n, m);
        // GEMV: the same sampling performed one row at a time.
        let t_gemv = cost.gemv(m, n) * l as f64;
        // Full FFT over every column, padded to the next power of two.
        let t_fft = cost.fft_cols(m_pad, n);
        let fft_true_flops = fft_flops(m_pad) as f64 * n as f64;
        // Memory roofline at the paper's stated blocksize of 512: the
        // GEMM streams 8 bytes per 2·(512/16) flops, putting the roofline
        // above the compute peak — the sampling GEMM is compute-bound.
        let peak_mem = spec.mem_bandwidth_gbs / 8.0 * 64.0;
        table.row(vec![
            l.to_string(),
            fmt_gflops(gemm_flops / t_gemm / 1e9),
            fmt_gflops(gemm_flops / t_gemv / 1e9),
            fmt_gflops(fft_true_flops / t_fft / 1e9),
            fmt_gflops(gemm_flops / t_fft / 1e9),
            fmt_gflops(spec.peak_dp_gflops),
            fmt_gflops(peak_mem),
        ]);
    }
    table.print();
    if let Ok(p) = table.save_csv(csv) {
        println!("[csv] {}", p.display());
    }
}

fn main() {
    let (m, n) = (50_000usize, 2_500usize);
    series(
        &format!("Figure 8(a): row sampling B = Omega*A, A is {m} x {n} (Gflop/s)"),
        m,
        n,
        "fig08a",
    );
    // Column sampling: B = Omega * A^T — the transform runs along rows.
    series(
        &format!("Figure 8(b): column sampling B = Omega*A^T, A is {m} x {n} (Gflop/s)"),
        n,
        m,
        "fig08b",
    );
    println!(
        "\nPaper reference: pruned Gaussian GEMM near peak (~1200 Gflop/s); full FFT ~135 Gflop/s\n\
         but *effectively* faster than GEMM for l > 192 (row) / l > 128 (column); GEMV far below."
    );
}
