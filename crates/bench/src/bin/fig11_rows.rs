//! Figure 11 — random sampling and QP3 time vs number of rows m
//! (n = 2,500, (k; p; q) = (54; 10; 1)), with the per-phase breakdown of
//! the random sampling run (PRNG / Sampling / GEMM (Iter) / Orth (Iter) /
//! QRCP / QR).
//!
//! Pass `--trace <path>` / `--metrics <path>` to export the largest run
//! as a Chrome trace / metrics JSON.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{fmt_time, phase_cells, Table, TraceOpts};
use rlra_core::{qp3_low_rank_gpu, sample_fixed_rank_gpu, SamplerConfig};
use rlra_gpu::{Gpu, Phase};
use rlra_trace::{Metrics, Tracer};

fn main() {
    let n = 2_500usize;
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let opts = TraceOpts::from_args();
    let mut table = Table::new(
        format!("Figure 11: time vs rows m (n = {n}, k;p;q = 54;10;1)"),
        &[
            "m",
            "PRNG",
            "Sampling",
            "GEMM (Iter)",
            "Orth (Iter)",
            "QRCP",
            "QR",
            "RS total",
            "QP3",
            "speedup",
        ],
    );
    let mut rng = StdRng::seed_from_u64(1);
    let mut last_trace: Option<Tracer> = None;
    let mut last_metrics = Metrics::default();
    for m in (5_000..=50_000).step_by(5_000) {
        let mut gpu = Gpu::k40c_dry();
        // A fresh ring per size: the exported trace is the largest run.
        gpu.set_tracer(opts.tracer());
        let a = gpu.resident_shape(m, n);
        let (_, rep) = sample_fixed_rank_gpu(&mut gpu, &a, &cfg, &mut rng).unwrap();
        last_trace = gpu.take_tracer();
        last_metrics = rep.metrics.clone();
        let mut gq = Gpu::k40c_dry();
        let aq = gq.resident_shape(m, n);
        let (_, t_qp3) = qp3_low_rank_gpu(&mut gq, &aq, cfg.l()).unwrap();
        let mut row = vec![m.to_string()];
        row.extend(phase_cells(
            &rep.timeline,
            &[
                Phase::Prng,
                Phase::Sampling,
                Phase::GemmIter,
                Phase::OrthIter,
                Phase::Qrcp,
                Phase::Qr,
            ],
        ));
        row.push(fmt_time(rep.seconds));
        row.push(fmt_time(t_qp3));
        row.push(format!("{:.1}x", t_qp3 / rep.seconds));
        table.row(row);
    }
    table.print();
    if let Ok(p) = table.save_csv("fig11") {
        println!("[csv] {}", p.display());
    }
    opts.export(last_trace.as_ref(), &last_metrics).unwrap();
    println!(
        "\nPaper reference: both grow linearly in m; QP3 ~ 9.34e-6*m + 0.0098 s,\n\
         RS ~ 1.15e-6*m + 0.0162 s; speedups up to 6.6x (q=1, avg 5.1x); at m = 50,000\n\
         ~78% of RS time is Step 1 and ~75% is the GEMM."
    );
}
