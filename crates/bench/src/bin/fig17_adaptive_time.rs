//! Figure 17 — adaptive-ℓ convergence in *time*: ε̃ vs elapsed simulated
//! seconds for static ℓ_inc ∈ {8, 16, 32, 64} and the interpolated
//! (adaptive-ℓ_inc) variant of each. Small increments pay the Figure 18
//! GEMM-efficiency penalty.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{BenchOpts, Table};
use rlra_core::{adaptive_sample, AdaptiveConfig, IncStrategy};
use rlra_data::{exponent_spectrum, matrix_with_spectrum};
use rlra_gpu::Gpu;

fn main() {
    let opts = BenchOpts::from_args();
    let (m, n) = if opts.full {
        (50_000, 2_500)
    } else {
        (5_000, 500)
    };
    // The paper's eps = 1e-12 sits at the floating-point noise floor of
    // the estimator (n*eps_mach*|A|*|omega| ~ 5e-12 at the paper's scale);
    // at the reduced default scale the floor is ~1e-11, so the default
    // tolerance is raised accordingly. --full restores the paper's value.
    let tol = if opts.full { 1e-12 } else { 1e-10 };
    let mut rng = StdRng::seed_from_u64(2015);
    let spec = exponent_spectrum(n.min(m));
    let tm = matrix_with_spectrum(m, n, &spec, &mut rng).expect("generator");

    let mut summary = Table::new(
        format!("Figure 17: time to tolerance, exponent {m} x {n}, q = 0, eps = {tol:.0e}"),
        &["strategy", "steps", "final l", "sim time (s)", "converged"],
    );
    for init in [8usize, 16, 32, 64] {
        for (label, inc) in [
            (format!("static l_inc={init}"), IncStrategy::Static(init)),
            (
                format!("adapt. l_inc (init {init})"),
                IncStrategy::Interpolated { init },
            ),
        ] {
            let mut gpu = Gpu::k40c();
            let cfg = AdaptiveConfig {
                tol,
                q: 0,
                reorth: true,
                inc,
                l_max: 512.min(n),
                track_actual: false,
            };
            let res = adaptive_sample(&mut gpu, &tm.a, &cfg, &mut rng).expect("adaptive run");
            let t_total = res.steps.last().map(|s| s.sim_time).unwrap_or(0.0);
            summary.row(vec![
                label,
                res.steps.len().to_string(),
                res.l().to_string(),
                format!("{t_total:.4}"),
                res.converged.to_string(),
            ]);
            // Per-step trajectory CSV for plotting.
            let mut traj = Table::new("trajectory", &["time_s", "estimate", "l"]);
            for s in &res.steps {
                traj.row(vec![
                    format!("{:.6}", s.sim_time),
                    format!("{:.3e}", s.estimate),
                    s.l.to_string(),
                ]);
            }
            let tag = match inc {
                IncStrategy::Static(v) => format!("fig17_static{v}"),
                IncStrategy::Interpolated { init } => format!("fig17_adapt{init}"),
            };
            let _ = traj.save_csv(&tag);
        }
    }
    summary.print();
    let _ = summary.save_csv("fig17_summary");
    println!(
        "\nPaper reference: smaller l_inc converges slower in wall-clock (GPU kernels degrade\n\
         at small block sizes, Fig. 18); the interpolated l_inc matches the best static choice."
    );
}
