//! Figure 17 — adaptive-ℓ convergence in *time*: ε̃ vs elapsed simulated
//! seconds for static ℓ_inc ∈ {8, 16, 32, 64} and the interpolated
//! (adaptive-ℓ_inc) variant of each. Small increments pay the Figure 18
//! GEMM-efficiency penalty.
//!
//! Every configuration is then solved end to end under both finish
//! modes (grow-then-restart vs incremental panel extension) and the
//! wall-clock + modeled seconds per configuration are written to the
//! repo-root `BENCH_adaptive.json` — the tracked bench trajectory of
//! ROADMAP item 4. `--smoke` runs a fast 1,200 × 240 CI pass.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_bench::{write_bench_json, BenchOpts, BenchRecord, Table, WallPercentiles};
use rlra_core::{
    adaptive_sample, sample_fixed_accuracy_exec, AdaptiveConfig, FinishMode, GpuExec, IncStrategy,
};
use rlra_data::{exponent_spectrum, matrix_with_spectrum};
use rlra_gpu::Gpu;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    let (m, n) = if opts.smoke {
        (1_200, 240)
    } else if opts.full {
        (50_000, 2_500)
    } else {
        (5_000, 500)
    };
    // The paper's eps = 1e-12 sits at the floating-point noise floor of
    // the estimator (n*eps_mach*|A|*|omega| ~ 5e-12 at the paper's scale);
    // at the reduced default scale the floor is ~1e-11, so the default
    // tolerance is raised accordingly. --full restores the paper's value.
    let tol = if opts.smoke {
        1e-9
    } else if opts.full {
        1e-12
    } else {
        1e-10
    };
    let mut rng = StdRng::seed_from_u64(2015);
    let spec = exponent_spectrum(n.min(m));
    let tm = matrix_with_spectrum(m, n, &spec, &mut rng).expect("generator");

    let mut summary = Table::new(
        format!("Figure 17: time to tolerance, exponent {m} x {n}, q = 0, eps = {tol:.0e}"),
        &["strategy", "steps", "final l", "sim time (s)", "converged"],
    );
    let mut finish_tbl = Table::new(
        "Figure 17b: end-to-end finish cost, restart vs incremental (modeled s)".to_string(),
        &["strategy", "final l", "restart s", "incremental s", "saved"],
    );
    let mut records: Vec<BenchRecord> = Vec::new();
    for init in [8usize, 16, 32, 64] {
        for (label, inc) in [
            (format!("static l_inc={init}"), IncStrategy::Static(init)),
            (
                format!("adapt. l_inc (init {init})"),
                IncStrategy::Interpolated { init },
            ),
        ] {
            let mut gpu = Gpu::k40c();
            let cfg = AdaptiveConfig {
                tol,
                q: 0,
                reorth: true,
                inc,
                l_max: 512.min(n),
                track_actual: false,
                finish: FinishMode::Incremental,
                deadline: None,
            };
            let res = adaptive_sample(&mut gpu, &tm.a, &cfg, &mut rng).expect("adaptive run");
            let t_total = res.steps.last().map(|s| s.sim_time).unwrap_or(0.0);
            summary.row(vec![
                label.clone(),
                res.steps.len().to_string(),
                res.l().to_string(),
                format!("{t_total:.4}"),
                res.converged.to_string(),
            ]);
            // Per-step trajectory CSV for plotting.
            let mut traj = Table::new("trajectory", &["time_s", "estimate", "l"]);
            for s in &res.steps {
                traj.row(vec![
                    format!("{:.6}", s.sim_time),
                    format!("{:.3e}", s.estimate),
                    s.l.to_string(),
                ]);
            }
            let tag = match inc {
                IncStrategy::Static(v) => format!("fig17_static{v}"),
                IncStrategy::Interpolated { init } => format!("fig17_adapt{init}"),
            };
            let _ = traj.save_csv(&tag);

            // End-to-end fixed-accuracy solve under both finish modes,
            // same seed, so the trajectories match and only the finish
            // cost differs. Each mode repeats a few times for wall
            // percentiles (the modeled seconds are bit-identical across
            // repeats); median wall + percentiles + modeled seconds go
            // to the repo-root BENCH_adaptive.json (schema v2).
            let reps = if opts.smoke { 3 } else { 5 };
            let run = |finish: FinishMode| {
                let mut walls = Vec::with_capacity(reps);
                let mut last = (0usize, 0.0f64);
                for _ in 0..reps {
                    let mut gpu = Gpu::k40c();
                    let mut exec = GpuExec::new(&mut gpu);
                    let cfg = AdaptiveConfig { finish, ..cfg };
                    let mut mode_rng = StdRng::seed_from_u64(2015 + init as u64);
                    let t0 = Instant::now();
                    let (_, res, report) =
                        sample_fixed_accuracy_exec(&mut exec, &tm.a, &cfg, &mut mode_rng)
                            .expect("fixed-accuracy run");
                    walls.push(t0.elapsed().as_secs_f64());
                    last = (res.l(), report.seconds);
                }
                let pct = WallPercentiles::from_samples(&walls).expect("reps >= 1");
                (last.0, pct, last.1)
            };
            let (l_res, wall_res, sim_res) = run(FinishMode::Restart);
            let (l_inc_mode, wall_inc, sim_inc) = run(FinishMode::Incremental);
            assert_eq!(l_res, l_inc_mode, "finish modes must agree on the final l");
            finish_tbl.row(vec![
                label.clone(),
                l_res.to_string(),
                format!("{sim_res:.4e}"),
                format!("{sim_inc:.4e}"),
                format!("{:.1}%", (1.0 - sim_inc / sim_res) * 100.0),
            ]);
            records.push(BenchRecord {
                config: format!("{label}/restart"),
                wall_s: wall_res.p50,
                modeled_s: sim_res,
                wall: Some(wall_res),
            });
            records.push(BenchRecord {
                config: format!("{label}/incremental"),
                wall_s: wall_inc.p50,
                modeled_s: sim_inc,
                wall: Some(wall_inc),
            });
        }
    }
    summary.print();
    let _ = summary.save_csv("fig17_summary");
    finish_tbl.print();
    let _ = finish_tbl.save_csv("fig17_finish_cost");
    match write_bench_json("adaptive", &records) {
        Ok(path) => println!("[bench] {}", path.display()),
        Err(e) => eprintln!("[bench] could not write BENCH_adaptive.json: {e}"),
    }
    println!(
        "\nPaper reference: smaller l_inc converges slower in wall-clock (GPU kernels degrade\n\
         at small block sizes, Fig. 18); the interpolated l_inc matches the best static choice.\n\
         The incremental finish shaves the Step-2 re-run off the moderate-to-large block\n\
         configurations; at small l_inc the per-block trailing-sample updates eat the saving."
    );
}
