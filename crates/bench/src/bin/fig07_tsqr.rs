//! Figure 7 — performance of QP3 and tall-skinny QR schemes (CholQR,
//! CGS, HHQR, MGS) on the simulated GPU: Gflop/s vs number of rows m,
//! with n = 64 columns.

use rlra_bench::{fmt_gflops, Table};
use rlra_gpu::algos::{gpu_cgs, gpu_cholqr, gpu_hhqr, gpu_mgs, gpu_qp3_truncated};
use rlra_gpu::{Gpu, Phase};

fn main() {
    let n = 64usize;
    let mut table = Table::new(
        format!("Figure 7: tall-skinny QR performance, n = {n} (Gflop/s)"),
        &["m", "CholQR", "CGS", "HHQR", "MGS", "QP3"],
    );

    let qr_flops = |m: usize| 2.0 * m as f64 * (n * n) as f64;
    for m in (5_000..=50_000).step_by(5_000) {
        let time = |f: &dyn Fn(&mut Gpu, &rlra_gpu::DMat)| -> f64 {
            let mut gpu = Gpu::k40c_dry();
            let a = gpu.resident_shape(m, n);
            f(&mut gpu, &a);
            gpu.clock()
        };
        let t_cholqr = time(&|g, a| drop(gpu_cholqr(g, Phase::Other, a, true).unwrap()));
        let t_cgs = time(&|g, a| drop(gpu_cgs(g, Phase::Other, a).unwrap()));
        let t_hhqr = time(&|g, a| drop(gpu_hhqr(g, Phase::Other, a).unwrap()));
        let t_mgs = time(&|g, a| drop(gpu_mgs(g, Phase::Other, a).unwrap()));
        let t_qp3 = time(&|g, a| drop(gpu_qp3_truncated(g, Phase::Other, a, n).unwrap()));
        let f = qr_flops(m);
        let fq = rlra_blas::flops::qp3_flops(m, n, n) as f64;
        table.row(vec![
            m.to_string(),
            fmt_gflops(f / t_cholqr / 1e9),
            fmt_gflops(f / t_cgs / 1e9),
            fmt_gflops(f / t_hhqr / 1e9),
            fmt_gflops(f / t_mgs / 1e9),
            fmt_gflops(fq / t_qp3 / 1e9),
        ]);
    }
    table.print();
    if let Ok(p) = table.save_csv("fig07") {
        println!("[csv] {}", p.display());
    }
    println!(
        "\nPaper reference: CholQR up to 33.2x (avg 30.5x) over HHQR; HHQR ~5x over QP3;\n\
         ordering CholQR > CGS > HHQR > MGS > QP3."
    );
}
