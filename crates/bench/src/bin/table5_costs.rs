//! Figure 5 (table) — computation and communication costs of random
//! sampling and the deterministic baselines, evaluated at the paper's
//! reference configuration.

use rlra_bench::Table;
use rlra_perfmodel::{caqp3_cost, qp3_cost, rs_step_cost, rs_total_cost, Dims, RsStep};

fn main() {
    let d = Dims {
        m: 50_000,
        n: 2_500,
        k: 54,
        p: 10,
        q: 1,
    };
    let fast_mem = 1.5e6; // ~12 MB of f64 on-chip
    let mut table = Table::new(
        format!(
            "Figure 5: costs at m = {}, n = {}, l = {}, q = {} (fast memory {:.1e} words)",
            d.m,
            d.n,
            d.l(),
            d.q,
            fast_mem
        ),
        &["step", "#flops", "#words"],
    );
    let fmt = |v: f64| format!("{v:.3e}");
    for (name, step) in [
        ("Sampling (Gaussian)", RsStep::SamplingGaussian),
        ("Sampling (FFT)", RsStep::SamplingFft),
        ("Iter. (mult.)", RsStep::IterMult),
        ("Iter. (orth.)", RsStep::IterOrth),
        ("QRCP", RsStep::Qrcp),
        ("QR", RsStep::Qr),
    ] {
        let c = rs_step_cost(step, d, fast_mem);
        table.row(vec![name.into(), fmt(c.flops), fmt(c.words)]);
    }
    let total = rs_total_cost(d, fast_mem);
    table.row(vec![
        "Total (RS, Gaussian)".into(),
        fmt(total.flops),
        fmt(total.words),
    ]);
    let qp3 = qp3_cost(d);
    table.row(vec!["QP3".into(), fmt(qp3.flops), fmt(qp3.words)]);
    let ca = caqp3_cost(d, fast_mem);
    table.row(vec!["CAQP3".into(), fmt(ca.flops), fmt(ca.words)]);
    table.print();
    if let Ok(p) = table.save_csv("table5") {
        println!("[csv] {}", p.display());
    }
    println!(
        "\nPaper reference (orders): RS total O(mn*l*(1+2q)) flops, O(mn*l*(1+2q)/sqrt(M)) words;\n\
         QP3 O(mnk) flops AND O(mnk) words (BLAS-2 half has no reuse); CAQP3 trades flops for words."
    );
}
