//! The aggregated per-device / per-kernel metrics registry.
//!
//! Counters are accumulated *inside* the simulated devices (always on,
//! independent of whether a [`crate::Tracer`] is attached), so a run
//! with a [`crate::NullSink`] reports metrics bit-identical to an
//! untraced run.

use crate::json::{escape_json, num_json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated counters for one named kernel on one device.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Number of launches.
    pub launches: u64,
    /// Simulated seconds spent in the kernel.
    pub seconds: f64,
    /// Double-precision flops accounted to the kernel.
    pub flops: f64,
    /// Bytes streamed through device memory.
    pub bytes: f64,
}

impl KernelStats {
    /// Achieved Gflop/s over the kernel's accumulated time.
    pub fn achieved_gflops(&self) -> f64 {
        if self.seconds > 0.0 {
            self.flops / self.seconds / 1e9
        } else {
            0.0
        }
    }

    /// Achieved GB/s over the kernel's accumulated time.
    pub fn achieved_gbs(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes / self.seconds / 1e9
        } else {
            0.0
        }
    }

    /// Adds another accumulator into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.launches += other.launches;
        self.seconds += other.seconds;
        self.flops += other.flops;
        self.bytes += other.bytes;
    }

    /// Counter difference `self - earlier` (both from the same device,
    /// `earlier` snapshotted first).
    pub fn minus(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            launches: self.launches - earlier.launches,
            seconds: self.seconds - earlier.seconds,
            flops: self.flops - earlier.flops,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// Metrics for one simulated device.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceMetrics {
    /// Device ordinal within the run (globally numbered on clusters).
    pub device: usize,
    /// Device spec name (e.g. `"Tesla K40c"`).
    pub name: &'static str,
    /// Kernel launches issued (including unnamed algorithmic launches).
    pub launches: u64,
    /// Host synchronizations.
    pub syncs: u64,
    /// Simulated seconds the device was doing charged work.
    pub busy_seconds: f64,
    /// Simulated seconds the device sat idle at barriers.
    pub wait_seconds: f64,
    /// Bytes moved over PCIe (uploads + downloads).
    pub bytes_moved: f64,
    /// Calibrated peak double-precision Gflop/s of the device model.
    pub peak_gflops: f64,
    /// Calibrated peak memory bandwidth (GB/s) of the device model.
    pub peak_gbs: f64,
    /// Per-phase charged seconds, keyed by phase label.
    pub phase_seconds: BTreeMap<&'static str, f64>,
    /// Per-kernel counters, keyed by kernel name.
    pub kernels: BTreeMap<&'static str, KernelStats>,
}

impl DeviceMetrics {
    /// Total simulated wall time (busy + idle).
    pub fn total_seconds(&self) -> f64 {
        self.busy_seconds + self.wait_seconds
    }

    /// Busy fraction of total time (1.0 for an always-busy device).
    pub fn utilization(&self) -> f64 {
        let total = self.total_seconds();
        if total > 0.0 {
            self.busy_seconds / total
        } else {
            0.0
        }
    }

    /// Counter difference `self - earlier` for executors that account
    /// against a shared device by snapshotting at `begin`.
    pub fn minus(&self, earlier: &DeviceMetrics) -> DeviceMetrics {
        let mut out = DeviceMetrics {
            device: self.device,
            name: self.name,
            launches: self.launches - earlier.launches,
            syncs: self.syncs - earlier.syncs,
            busy_seconds: self.busy_seconds - earlier.busy_seconds,
            wait_seconds: self.wait_seconds - earlier.wait_seconds,
            bytes_moved: self.bytes_moved - earlier.bytes_moved,
            peak_gflops: self.peak_gflops,
            peak_gbs: self.peak_gbs,
            phase_seconds: BTreeMap::new(),
            kernels: BTreeMap::new(),
        };
        for (label, secs) in &self.phase_seconds {
            let delta = secs - earlier.phase_seconds.get(label).copied().unwrap_or(0.0);
            if delta != 0.0 {
                out.phase_seconds.insert(label, delta);
            }
        }
        for (name, stats) in &self.kernels {
            let delta = stats.minus(&earlier.kernels.get(name).copied().unwrap_or_default());
            if delta != KernelStats::default() {
                out.kernels.insert(name, delta);
            }
        }
        out
    }
}

/// The metrics registry for one run: one entry per device, plus
/// run-level recovery counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Per-device metrics, ordered by device ordinal.
    pub devices: Vec<DeviceMetrics>,
    /// Transient-fault retries performed by the recovery policy.
    pub retries: u64,
    /// Orthogonalization fallback-ladder escalations performed by the
    /// numeric guard (one per rung actually climbed).
    pub fallbacks: u64,
}

impl Metrics {
    /// Total kernel launches across all devices.
    pub fn total_launches(&self) -> u64 {
        self.devices.iter().map(|d| d.launches).sum()
    }

    /// Seconds charged to the `Recovery` phase: the maximum over
    /// devices, matching how multi-device timelines are reduced (the
    /// devices proceed in lockstep through barriers).
    pub fn recovery_seconds(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.phase_seconds.get("Recovery").copied().unwrap_or(0.0))
            .fold(0.0, f64::max)
    }

    /// Per-device counter difference (`self` observed after `earlier`;
    /// devices are matched by position).
    pub fn minus(&self, earlier: &Metrics) -> Metrics {
        let devices = self
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| match earlier.devices.get(i) {
                Some(e) => d.minus(e),
                None => d.clone(),
            })
            .collect();
        Metrics {
            devices,
            retries: self.retries - earlier.retries.min(self.retries),
            fallbacks: self.fallbacks - earlier.fallbacks.min(self.fallbacks),
        }
    }
}

/// Renders the registry as a machine-readable JSON document.
pub fn metrics_json(m: &Metrics) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(
        out,
        "\"retries\":{},\"fallbacks\":{},\"total_launches\":{},\"recovery_seconds\":{},\
         \"devices\":[",
        m.retries,
        m.fallbacks,
        m.total_launches(),
        num_json(m.recovery_seconds())
    );
    for (i, d) in m.devices.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"device\":{},\"name\":\"{}\",\"launches\":{},\"syncs\":{},\
             \"busy_seconds\":{},\"wait_seconds\":{},\"bytes_moved\":{},\
             \"peak_gflops\":{},\"peak_gbs\":{},\"utilization\":{},",
            d.device,
            escape_json(d.name),
            d.launches,
            d.syncs,
            num_json(d.busy_seconds),
            num_json(d.wait_seconds),
            num_json(d.bytes_moved),
            num_json(d.peak_gflops),
            num_json(d.peak_gbs),
            num_json(d.utilization()),
        );
        out.push_str("\"phase_seconds\":{");
        for (j, (label, secs)) in d.phase_seconds.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape_json(label), num_json(*secs));
        }
        out.push_str("},\"kernels\":{");
        for (j, (name, k)) in d.kernels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"launches\":{},\"seconds\":{},\"flops\":{},\"bytes\":{},\
                 \"gflops\":{},\"gbs\":{}}}",
                escape_json(name),
                k.launches,
                num_json(k.seconds),
                num_json(k.flops),
                num_json(k.bytes),
                num_json(k.achieved_gflops()),
                num_json(k.achieved_gbs()),
            );
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn sample() -> Metrics {
        let mut d = DeviceMetrics {
            device: 0,
            name: "Tesla K40c",
            launches: 10,
            syncs: 2,
            busy_seconds: 0.9,
            wait_seconds: 0.1,
            bytes_moved: 1024.0,
            peak_gflops: 1430.0,
            peak_gbs: 288.0,
            ..DeviceMetrics::default()
        };
        d.phase_seconds.insert("Sampling", 0.6);
        d.phase_seconds.insert("Recovery", 0.3);
        d.kernels.insert(
            "gemm",
            KernelStats {
                launches: 4,
                seconds: 0.5,
                flops: 2.5e11,
                bytes: 4e9,
            },
        );
        Metrics {
            devices: vec![d],
            retries: 1,
            fallbacks: 2,
        }
    }

    #[test]
    fn achieved_rates_and_utilization() {
        let m = sample();
        let d = &m.devices[0];
        assert!((d.utilization() - 0.9).abs() < 1e-12);
        let k = &d.kernels["gemm"];
        assert!((k.achieved_gflops() - 500.0).abs() < 1e-9);
        assert!((k.achieved_gbs() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn minus_recovers_the_increment() {
        let earlier = sample();
        let mut later = sample();
        later.devices[0].launches += 5;
        later.devices[0].busy_seconds += 0.5;
        *later.devices[0].phase_seconds.get_mut("Sampling").unwrap() += 0.5;
        later.devices[0]
            .kernels
            .get_mut("gemm")
            .unwrap()
            .merge(&KernelStats {
                launches: 5,
                seconds: 0.5,
                flops: 1e9,
                bytes: 1e6,
            });
        let delta = later.minus(&earlier);
        let d = &delta.devices[0];
        assert_eq!(d.launches, 5);
        assert!((d.busy_seconds - 0.5).abs() < 1e-12);
        let sampling = d.phase_seconds.get("Sampling").copied().unwrap();
        assert!((sampling - 0.5).abs() < 1e-12);
        assert_eq!(d.phase_seconds.get("Recovery"), None);
        assert_eq!(d.kernels["gemm"].launches, 5);
        assert_eq!(delta.retries, 0);
        assert_eq!(delta.fallbacks, 0);
    }

    #[test]
    fn json_export_parses_and_carries_recovery_seconds() {
        let m = sample();
        let doc = metrics_json(&m);
        let j = parse_json(&doc).unwrap();
        assert_eq!(
            j.get("recovery_seconds").unwrap().as_num().unwrap(),
            m.recovery_seconds()
        );
        assert_eq!(j.get("fallbacks").unwrap().as_num().unwrap(), 2.0);
        let devices = j.get("devices").unwrap().as_arr().unwrap();
        assert_eq!(devices.len(), 1);
        let gemm = devices[0]
            .get("kernels")
            .unwrap()
            .get("gemm")
            .unwrap()
            .clone();
        assert_eq!(gemm.get("launches").unwrap().as_num().unwrap(), 4.0);
    }
}
