//! Chrome Trace Event Format export.
//!
//! The emitted document is a `{"traceEvents": [...]}` object of
//! complete (`"ph":"X"`) and instant (`"ph":"i"`) events — the format
//! understood by `chrome://tracing` and <https://ui.perfetto.dev>. One
//! track (`tid`) per simulated device, plus dedicated tracks for
//! collective comms and pipeline stages. Timestamps are simulated
//! microseconds, so the export of a fixed-seed run is byte-stable.

use crate::event::TraceEvent;
use crate::json::{escape_json, num_json};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Track id for collective-comms annotations.
pub const COMMS_TID: usize = 9998;
/// Track id for pipeline stage spans.
pub const STAGE_TID: usize = 9999;

fn us(secs: f64) -> String {
    num_json(secs * 1e6)
}

fn push_complete(
    out: &mut String,
    tid: usize,
    name: &str,
    cat: &str,
    start: f64,
    end: f64,
    args: &str,
) {
    let _ = write!(
        out,
        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\
         \"name\":\"{}\",\"cat\":\"{}\"{}{}}}",
        us(start),
        us(end - start),
        escape_json(name),
        escape_json(cat),
        if args.is_empty() { "" } else { ",\"args\":{" },
        if args.is_empty() {
            String::new()
        } else {
            format!("{args}}}")
        },
    );
}

fn push_instant(out: &mut String, tid: usize, name: &str, cat: &str, time: f64, args: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":{},\
         \"name\":\"{}\",\"cat\":\"{}\"{}{}}}",
        us(time),
        escape_json(name),
        escape_json(cat),
        if args.is_empty() { "" } else { ",\"args\":{" },
        if args.is_empty() {
            String::new()
        } else {
            format!("{args}}}")
        },
    );
}

/// Renders an event stream as Chrome-trace JSON.
///
/// Tracks are announced with `thread_name` metadata: `"GPU <i>"` per
/// device seen in the stream, `"Comms"` ([`COMMS_TID`]) and `"Stages"`
/// ([`STAGE_TID`]) when those event kinds occur.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut devices: BTreeSet<usize> = BTreeSet::new();
    let mut has_comms = false;
    let mut has_stages = false;
    for ev in events {
        match ev {
            TraceEvent::Comms { .. } => has_comms = true,
            TraceEvent::Stage { .. }
            | TraceEvent::Breakdown { .. }
            | TraceEvent::Fallback { .. }
            | TraceEvent::HealthCheck { .. }
            | TraceEvent::Checkpoint { .. }
            | TraceEvent::Sdc { .. } => has_stages = true,
            TraceEvent::Fault { device, .. }
            | TraceEvent::Recovery { device, .. }
            | TraceEvent::Speculation { device, .. } => {
                devices.insert(*device);
            }
            _ => {
                if let Some(d) = ev.charged_device() {
                    devices.insert(d);
                }
            }
        }
    }

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };

    for d in &devices {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{d},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"GPU {d}\"}}}}",
        );
    }
    if has_comms {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{COMMS_TID},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"Comms\"}}}}",
        );
    }
    if has_stages {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{STAGE_TID},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"Stages\"}}}}",
        );
    }

    for ev in events {
        sep(&mut out);
        match *ev {
            TraceEvent::Kernel {
                device,
                name,
                phase,
                dims,
                flops,
                bytes,
                start,
                end,
            } => {
                let args = format!(
                    "\"dims\":\"{}x{}x{}\",\"flops\":{},\"bytes\":{}",
                    dims[0],
                    dims[1],
                    dims[2],
                    num_json(flops),
                    num_json(bytes)
                );
                push_complete(&mut out, device, name, phase, start, end, &args);
            }
            TraceEvent::Span {
                device,
                phase,
                start,
                end,
            } => push_complete(&mut out, device, "span", phase, start, end, ""),
            TraceEvent::Wait {
                device,
                phase,
                start,
                end,
            } => push_complete(&mut out, device, "wait", phase, start, end, ""),
            TraceEvent::Transfer {
                device,
                phase,
                bytes,
                start,
                end,
            } => {
                let args = format!("\"bytes\":{}", num_json(bytes));
                push_complete(&mut out, device, "transfer", phase, start, end, &args);
            }
            TraceEvent::Comms {
                scope,
                phase,
                start,
                end,
            } => push_complete(&mut out, COMMS_TID, scope, phase, start, end, ""),
            TraceEvent::Stage { name, start, end } => {
                push_complete(&mut out, STAGE_TID, name, "stage", start, end, "");
            }
            TraceEvent::Fault {
                device,
                kind,
                at_launch,
                time,
            } => {
                let name = format!("fault:{kind}");
                let args = format!("\"at_launch\":{at_launch}");
                push_instant(&mut out, device, &name, "fault", time, &args);
            }
            TraceEvent::Recovery {
                device,
                action,
                time,
            } => {
                let name = format!("recovery:{action}");
                push_instant(&mut out, device, &name, "recovery", time, "");
            }
            TraceEvent::Breakdown { stage, rung, time } => {
                let name = format!("breakdown:{stage}");
                let args = format!("\"rung\":{rung}");
                push_instant(&mut out, STAGE_TID, &name, "numeric", time, &args);
            }
            TraceEvent::Fallback { stage, rung, time } => {
                let name = format!("fallback:{stage}");
                let args = format!("\"rung\":{rung}");
                push_instant(&mut out, STAGE_TID, &name, "numeric", time, &args);
            }
            TraceEvent::HealthCheck { stage, ok, time } => {
                let name = format!("health:{stage}");
                let args = format!("\"ok\":{ok}");
                push_instant(&mut out, STAGE_TID, &name, "numeric", time, &args);
            }
            TraceEvent::Checkpoint { id, bytes, time } => {
                let name = format!("checkpoint:{id}");
                let args = format!("\"bytes\":{bytes}");
                push_instant(&mut out, STAGE_TID, &name, "durability", time, &args);
            }
            TraceEvent::Speculation {
                device,
                outcome,
                saved,
                time,
            } => {
                let name = format!("speculation:{outcome}");
                let args = format!("\"saved\":{}", num_json(saved));
                push_instant(&mut out, device, &name, "durability", time, &args);
            }
            TraceEvent::Sdc {
                device,
                stage,
                action,
                at_launch,
                time,
            } => {
                let name = format!("sdc:{action}:{stage}");
                let args = format!("\"device\":{device},\"at_launch\":{at_launch}");
                push_instant(&mut out, STAGE_TID, &name, "integrity", time, &args);
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    #[test]
    fn export_parses_and_has_one_track_per_device() {
        let events = vec![
            TraceEvent::Kernel {
                device: 0,
                name: "gemm",
                phase: "Sampling",
                dims: [8, 4, 2],
                flops: 128.0,
                bytes: 512.0,
                start: 0.0,
                end: 1e-3,
            },
            TraceEvent::Wait {
                device: 1,
                phase: "Other",
                start: 0.0,
                end: 5e-4,
            },
            TraceEvent::Comms {
                scope: "host",
                phase: "Comms",
                start: 1e-3,
                end: 2e-3,
            },
            TraceEvent::Stage {
                name: "orth_b",
                start: 0.0,
                end: 2e-3,
            },
            TraceEvent::Fault {
                device: 1,
                kind: "transient",
                at_launch: 3,
                time: 4e-4,
            },
        ];
        let doc = chrome_trace_json(&events);
        let j = parse_json(&doc).unwrap();
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        // 4 metadata (GPU 0, GPU 1, Comms, Stages) + 5 events.
        assert_eq!(evs.len(), 9);
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(names, vec!["GPU 0", "GPU 1", "Comms", "Stages"]);
        let gemm = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("gemm"))
            .unwrap();
        assert_eq!(gemm.get("dur").unwrap().as_num().unwrap(), 1e3);
        assert_eq!(
            gemm.get("args").unwrap().get("dims").unwrap().as_str(),
            Some("8x4x2")
        );
    }

    use crate::json::Json;

    #[test]
    fn numeric_guard_marks_land_on_the_stage_track() {
        let events = vec![
            TraceEvent::Breakdown {
                stage: "orth_b",
                rung: 0,
                time: 1e-3,
            },
            TraceEvent::Fallback {
                stage: "orth_b",
                rung: 1,
                time: 1e-3,
            },
            TraceEvent::HealthCheck {
                stage: "gemm_to_c",
                ok: true,
                time: 2e-3,
            },
        ];
        let doc = chrome_trace_json(&events);
        let j = parse_json(&doc).unwrap();
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 metadata (Stages) + 3 instant marks.
        assert_eq!(evs.len(), 4);
        for e in evs.iter().skip(1) {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("i"));
            assert_eq!(
                e.get("tid").and_then(Json::as_num),
                Some(STAGE_TID as f64),
                "guard marks are host-side: they belong on the stage track"
            );
        }
        let names: Vec<&str> = evs
            .iter()
            .skip(1)
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(
            names,
            vec!["breakdown:orth_b", "fallback:orth_b", "health:gemm_to_c"]
        );
        let fb = &evs[2];
        assert_eq!(
            fb.get("args").unwrap().get("rung").and_then(Json::as_num),
            Some(1.0)
        );
    }

    #[test]
    fn empty_stream_is_still_valid_json() {
        let doc = chrome_trace_json(&[]);
        let j = parse_json(&doc).unwrap();
        assert_eq!(j.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
