//! Minimal hand-rolled JSON: a writer (escaping + number formatting)
//! and a recursive-descent parser used to validate exported traces.
//!
//! The workspace is dependency-free by policy, so the exporters emit
//! JSON by string concatenation and the tests/CI validate it with this
//! parser instead of pulling in `serde`.

use std::fmt::Write as _;

/// Escapes `s` as the body of a JSON string (no surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number. Rust's shortest round-trip
/// `Display` output is already valid JSON for finite values; non-finite
/// values (which the simulation never produces) degrade to `0`.
pub fn num_json(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` may use exponent-free notation only; keep as-is.
        s
    } else {
        "0".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed
/// input, trailing garbage, or nesting deeper than 256 levels.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_lit("true") {
                    Ok(Json::Bool(true))
                } else if self.eat_lit("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b'n') => {
                if self.eat_lit("null") {
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            let val = self.value(depth + 1)?;
            items.push(val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates never appear in our own output;
                            // degrade to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Input is `&str`, so re-reading from the byte
                    // before `pos` always yields a valid char.
                    let start = self.pos - 1;
                    let ch = std::str::from_utf8(&self.bytes[start..])
                        .ok()
                        .and_then(|t| t.chars().next());
                    match ch {
                        Some(c) => {
                            out.push(c);
                            self.pos = start + c.len_utf8();
                        }
                        None => return Err(format!("invalid UTF-8 at byte {start}")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_writer_output() {
        let doc = format!(
            "{{\"name\":\"{}\",\"v\":{},\"tags\":[1,2.5,-3e-2],\"ok\":true,\"none\":null}}",
            escape_json("a\"b\\c\nd"),
            num_json(0.1)
        );
        let j = parse_json(&doc).unwrap();
        assert_eq!(j.get("name").unwrap().as_str().unwrap(), "a\"b\\c\nd");
        assert_eq!(j.get("v").unwrap().as_num().unwrap(), 0.1);
        let tags = j.get("tags").unwrap().as_arr().unwrap();
        assert_eq!(tags.len(), 3);
        assert_eq!(tags[2].as_num().unwrap(), -0.03);
        assert_eq!(j.get("ok").unwrap(), &Json::Bool(true));
        assert_eq!(j.get("none").unwrap(), &Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{}extra").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn num_json_is_shortest_roundtrip() {
        assert_eq!(num_json(1.0), "1");
        assert_eq!(num_json(0.25), "0.25");
        assert_eq!(num_json(f64::NAN), "0");
        // More digits than f64 holds, on purpose: the roundtrip must
        // survive the nearest representable value.
        #[allow(clippy::excessive_precision)]
        let v = 1.2345678987654321e-7;
        assert_eq!(parse_json(&num_json(v)).unwrap().as_num().unwrap(), v);
    }

    #[test]
    fn parses_unicode_and_u_escapes() {
        let j = parse_json("\"caf\\u00e9 ☕\"").unwrap();
        assert_eq!(j.as_str().unwrap(), "café ☕");
    }
}
