//! Terminal roofline / utilization summary.

use crate::metrics::Metrics;
use std::fmt::Write as _;

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else {
        format!("{:.2} kB", b / 1e3)
    }
}

/// Renders the metrics registry as an aligned terminal summary: one
/// block per device with busy/idle utilization, then a per-kernel
/// roofline table (achieved Gflop/s and GB/s against the calibrated
/// device peaks). The "% peak" columns are the roofline reading: a
/// kernel near its flops peak is compute-bound, one near the bandwidth
/// peak is memory-bound.
pub fn roofline_summary(m: &Metrics) -> String {
    let mut out = String::new();
    for d in &m.devices {
        let _ = writeln!(
            out,
            "device {} ({}): busy {} ({:.1}%), idle {}, {} over PCIe, {} launches, {} syncs",
            d.device,
            d.name,
            fmt_secs(d.busy_seconds),
            100.0 * d.utilization(),
            fmt_secs(d.wait_seconds),
            fmt_bytes(d.bytes_moved),
            d.launches,
            d.syncs,
        );
        if d.kernels.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>12} {:>10} {:>7} {:>10} {:>7}",
            "kernel", "launches", "time", "Gflop/s", "%peak", "GB/s", "%peak"
        );
        for (name, k) in &d.kernels {
            let gf = k.achieved_gflops();
            let gb = k.achieved_gbs();
            let pf = if d.peak_gflops > 0.0 {
                100.0 * gf / d.peak_gflops
            } else {
                0.0
            };
            let pb = if d.peak_gbs > 0.0 {
                100.0 * gb / d.peak_gbs
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<10} {:>8} {:>12} {:>10.1} {:>6.1}% {:>10.1} {:>6.1}%",
                name,
                k.launches,
                fmt_secs(k.seconds),
                gf,
                pf,
                gb,
                pb,
            );
        }
    }
    if m.retries > 0 {
        let _ = writeln!(out, "recovery: {} transient retries", m.retries);
    }
    if out.is_empty() {
        out.push_str("no devices recorded\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{DeviceMetrics, KernelStats};

    #[test]
    fn summary_mentions_each_device_and_kernel() {
        let mut d = DeviceMetrics {
            device: 1,
            name: "Tesla K40c",
            launches: 7,
            busy_seconds: 2.0,
            wait_seconds: 0.5,
            bytes_moved: 3e9,
            peak_gflops: 1430.0,
            peak_gbs: 288.0,
            ..DeviceMetrics::default()
        };
        d.kernels.insert(
            "gemm",
            KernelStats {
                launches: 3,
                seconds: 1.5,
                flops: 1.2e12,
                bytes: 9e9,
            },
        );
        let m = Metrics {
            devices: vec![d],
            retries: 2,
            fallbacks: 0,
        };
        let text = roofline_summary(&m);
        assert!(text.contains("device 1 (Tesla K40c)"));
        assert!(text.contains("gemm"));
        assert!(text.contains("80.0%"), "utilization: {text}");
        assert!(text.contains("transient retries"));
    }

    #[test]
    fn empty_metrics_do_not_panic() {
        assert!(roofline_summary(&Metrics::default()).contains("no devices"));
    }
}
