//! Event-level observability for the simulated GPU substrate.
//!
//! The paper's whole performance argument is a profiling story (per-phase
//! stacked bars, Gflop/s rooflines), but the nine coarse [`Phase`] totals
//! of `rlra-gpu::Timeline` cannot show individual kernel launches,
//! per-device idle gaps, comms overlap, or where recovery time goes.
//! This crate adds that event level without perturbing the simulation:
//!
//! - [`TraceEvent`] — one structured record per cost-model charge
//!   (kernel launch, generic span, barrier wait, PCIe transfer), plus
//!   collective comms, pipeline stage spans, and fault/recovery marks;
//! - [`TraceSink`] — where events go: [`NullSink`] (drop everything) or
//!   [`RingBufferSink`] (keep the latest `capacity` events in order);
//! - [`Tracer`] — a cheap clonable handle shared by every device of a
//!   run; absent (`Option::None`) tracing costs one branch per charge;
//! - [`Metrics`] / [`DeviceMetrics`] / [`KernelStats`] — the aggregated
//!   registry (launches, busy/idle seconds, achieved Gflop/s and GB/s
//!   vs the calibrated peaks, bytes moved) that backends surface in
//!   `ExecReport::metrics`;
//! - exporters — [`chrome_trace_json`] (open in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev)) and [`metrics_json`]. The
//!   terminal roofline summary lives in `rlra-obs`
//!   (`roofline_summary`), reading from the cross-run metric registry.
//!
//! Timestamps are **simulated seconds** from the device cost model, so
//! the event stream of a fixed-seed run is fully deterministic and can
//! be pinned byte-for-byte by golden tests.
//!
//! ("Phase" above refers to `rlra_gpu::Phase`; this crate stays
//! dependency-free and carries phases as their `&'static str` labels.)

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;

pub use chrome::chrome_trace_json;
pub use event::TraceEvent;
pub use json::{parse_json, Json};
pub use metrics::{metrics_json, DeviceMetrics, KernelStats, Metrics};
pub use sink::{NullSink, RingBufferSink, TraceSink, Tracer};
