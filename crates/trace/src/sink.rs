//! Trace sinks and the shared [`Tracer`] handle.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Destination for trace events.
///
/// Implementations must be cheap: the simulated devices call
/// [`TraceSink::record`] once per cost-model charge.
pub trait TraceSink {
    /// Record one event. Events arrive in the deterministic order the
    /// single-threaded simulation produced them.
    fn record(&mut self, ev: TraceEvent);

    /// The retained events, oldest first (empty for sinks that do not
    /// retain anything).
    fn events(&mut self) -> &[TraceEvent] {
        &[]
    }

    /// Number of events dropped because the sink was full.
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards every event. Attaching a `NullSink` exercises the full
/// emission path while keeping runs bit-identical to untraced ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: TraceEvent) {}
}

/// Keeps the most recent `capacity` events in arrival order.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring buffer retaining up to `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    fn events(&mut self) -> &[TraceEvent] {
        self.buf.make_contiguous()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Clonable handle to a shared [`TraceSink`].
///
/// Every device of a run (and the internal dry-run twins the executors
/// drive) clones the same `Tracer`, so the whole run lands in one
/// stream. Cloning shares the sink; the handle itself is one `Arc`.
#[derive(Clone)]
pub struct Tracer {
    sink: Arc<Mutex<Box<dyn TraceSink + Send>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer retaining the latest `capacity` events in a ring buffer.
    pub fn ring(capacity: usize) -> Self {
        Tracer::new(Box::new(RingBufferSink::new(capacity)))
    }

    /// A tracer that drops every event (exercises the emission path
    /// without retaining anything).
    pub fn null() -> Self {
        Tracer::new(Box::new(NullSink))
    }

    /// A tracer over a caller-provided sink.
    pub fn new(sink: Box<dyn TraceSink + Send>) -> Self {
        Tracer {
            sink: Arc::new(Mutex::new(sink)),
        }
    }

    /// Records one event. A poisoned lock (a panic while recording)
    /// silently drops the event rather than propagating the panic into
    /// library code.
    pub fn emit(&self, ev: TraceEvent) {
        if let Ok(mut sink) = self.sink.lock() {
            sink.record(ev);
        }
    }

    /// Snapshot of the retained events, oldest first (empty for
    /// non-retaining sinks).
    pub fn events(&self) -> Vec<TraceEvent> {
        match self.sink.lock() {
            Ok(mut sink) => sink.events().to_vec(),
            Err(_) => Vec::new(),
        }
    }

    /// Number of events dropped because the sink was full.
    pub fn dropped(&self) -> u64 {
        match self.sink.lock() {
            Ok(sink) => sink.dropped(),
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(t: f64) -> TraceEvent {
        TraceEvent::Recovery {
            device: 0,
            action: "transient-retry",
            time: t,
        }
    }

    #[test]
    fn ring_buffer_keeps_latest_in_order() {
        let tracer = Tracer::ring(3);
        for i in 0..5 {
            tracer.emit(mark(i as f64));
        }
        let evs = tracer.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs, vec![mark(2.0), mark(3.0), mark(4.0)]);
        assert_eq!(tracer.dropped(), 2);
    }

    #[test]
    fn null_sink_retains_nothing() {
        let tracer = Tracer::null();
        tracer.emit(mark(1.0));
        assert!(tracer.events().is_empty());
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn clones_share_one_stream() {
        let tracer = Tracer::ring(16);
        let other = tracer.clone();
        tracer.emit(mark(1.0));
        other.emit(mark(2.0));
        assert_eq!(tracer.events().len(), 2);
        assert_eq!(other.events(), tracer.events());
    }
}
