//! The structured trace event emitted at every cost-model charge.

/// One record in the event stream of a simulated run.
///
/// All times are simulated seconds on the owning device's clock.
/// Device-attributed duration events (`Kernel`, `Span`, `Wait`,
/// `Transfer`) are emitted exactly once per `Timeline` charge, so for
/// any device and phase their durations sum to that device's timeline
/// total — the invariant the golden-trace tests pin.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A named kernel launch (cuBLAS/cuRAND/cuFFT-like).
    Kernel {
        /// Device the kernel ran on.
        device: usize,
        /// Kernel name (`"gemm"`, `"curand"`, ...).
        name: &'static str,
        /// Phase label the time was charged to.
        phase: &'static str,
        /// Problem dimensions `(m, n, k)`; unused trailing dims are 0.
        dims: [usize; 3],
        /// Double-precision flops the kernel accounts for.
        flops: f64,
        /// Bytes the kernel streams through device memory.
        bytes: f64,
        /// Simulated start time (seconds).
        start: f64,
        /// Simulated end time (seconds).
        end: f64,
    },
    /// A generic charge that is not a named kernel (host-side folds,
    /// per-device shares of collective work, launch/sync overheads).
    Span {
        /// Device charged.
        device: usize,
        /// Phase label the time was charged to.
        phase: &'static str,
        /// Simulated start time (seconds).
        start: f64,
        /// Simulated end time (seconds).
        end: f64,
    },
    /// Idle time: a device waiting on a barrier for stragglers.
    Wait {
        /// Device that sat idle.
        device: usize,
        /// Phase label the wait was charged to.
        phase: &'static str,
        /// Simulated start time (seconds).
        start: f64,
        /// Simulated end time (seconds).
        end: f64,
    },
    /// A host<->device PCIe transfer.
    Transfer {
        /// Device transferring.
        device: usize,
        /// Phase label the transfer was charged to.
        phase: &'static str,
        /// Bytes moved over the bus.
        bytes: f64,
        /// Simulated start time (seconds).
        start: f64,
        /// Simulated end time (seconds).
        end: f64,
    },
    /// A collective communication step (reduce/broadcast across the
    /// devices of a node, or across nodes of a cluster). Rendered on a
    /// dedicated comms track; the per-device shares are already
    /// reported as `Span`s, so `Comms` events annotate rather than
    /// double-count.
    Comms {
        /// `"host"` (intra-node, over PCIe) or `"network"` (inter-node).
        scope: &'static str,
        /// Phase label the collective was charged to.
        phase: &'static str,
        /// Simulated start time (seconds, fleet clock).
        start: f64,
        /// Simulated end time (seconds, fleet clock).
        end: f64,
    },
    /// A pipeline stage span (`Executor` hook), on the stage track.
    Stage {
        /// Stage hook name (`"gaussian_sample"`, `"tsqr"`, ...).
        name: &'static str,
        /// Executor-relative simulated start time (seconds).
        start: f64,
        /// Executor-relative simulated end time (seconds).
        end: f64,
    },
    /// An injected fault firing on a device (instant mark).
    Fault {
        /// Device the fault fired on.
        device: usize,
        /// Fault kind label (`"transient"`, `"fail-stop"`,
        /// `"straggler"`).
        kind: &'static str,
        /// Launch ordinal at which the fault fired.
        at_launch: u64,
        /// Simulated time of the fault (seconds).
        time: f64,
    },
    /// A recovery action taken by the `Recovering` policy wrapper
    /// (instant mark).
    Recovery {
        /// Device the action concerned.
        device: usize,
        /// Action label (`"transient-retry"`, `"device-loss-recovered"`).
        action: &'static str,
        /// Simulated time of the action (seconds).
        time: f64,
    },
    /// A numerical breakdown detected by the guard layer — a CholQR rung
    /// failing, a non-finite block, or a norm explosion (instant mark on
    /// the stage track; the host numerics own the detection).
    Breakdown {
        /// Pipeline stage at which the breakdown was detected.
        stage: &'static str,
        /// Ladder rung index that broke (0 = CholQR), or the rung active
        /// when a health check tripped.
        rung: u8,
        /// Simulated time of the detection (seconds).
        time: f64,
    },
    /// A fallback-ladder escalation: the guard re-ran an
    /// orthogonalization one rung up (instant mark on the stage track).
    Fallback {
        /// Pipeline stage being re-run.
        stage: &'static str,
        /// Rung index escalated *to* (1 = shifted CholQR2,
        /// 2 = Householder QR).
        rung: u8,
        /// Simulated time of the escalation (seconds).
        time: f64,
    },
    /// A between-stage health check (NaN/Inf scan + norm-explosion test)
    /// run by the guard layer (instant mark on the stage track).
    HealthCheck {
        /// Pipeline stage the checked block came from.
        stage: &'static str,
        /// Whether the block passed.
        ok: bool,
        /// Simulated time of the check (seconds).
        time: f64,
    },
    /// A durability snapshot written at a run boundary (instant mark on
    /// the stage track). The serialization/drain cost it implies is
    /// already charged through `checkpoint_hook`, so this annotates
    /// rather than double-counts.
    Checkpoint {
        /// Monotonic snapshot id within the run.
        id: u64,
        /// Size of the numeric payload the snapshot drained (bytes).
        bytes: u64,
        /// Simulated time the snapshot was written (seconds).
        time: f64,
    },
    /// A speculative re-dispatch of a straggling device's block-rows
    /// (instant mark). The winner/loser accounting is charged through
    /// `charge_speculation`; this records the scheduling decision.
    Speculation {
        /// The straggling device whose work was re-dispatched.
        device: usize,
        /// Outcome label (`"survivors-won"`, `"straggler-won"`).
        outcome: &'static str,
        /// Simulated wall-clock seconds the re-dispatch saved.
        saved: f64,
        /// Simulated time of the decision (seconds).
        time: f64,
    },
    /// A silent-data-corruption lifecycle mark emitted by the integrity
    /// guard (instant mark on the stage track): a corruption landing in
    /// a resident buffer, its detection, an in-place correction, a
    /// kernel re-run, or a checkpoint rollback. The checksum/repair
    /// costs are charged through the integrity hooks; this records the
    /// decision trail.
    Sdc {
        /// Device whose resident buffer the event concerns.
        device: usize,
        /// Pipeline stage whose protected output was involved.
        stage: &'static str,
        /// Action label (`"injected"`, `"detected"`, `"corrected"`,
        /// `"rerun"`, `"rollback"`).
        action: &'static str,
        /// Launch ordinal at which the corruption was injected.
        at_launch: u64,
        /// Simulated time of the event (seconds).
        time: f64,
    },
}

impl TraceEvent {
    /// The device a *device-attributed duration event* charges, if any.
    ///
    /// `Comms`/`Stage` annotations and instant marks return `None` —
    /// they must not be counted toward per-device busy time.
    pub fn charged_device(&self) -> Option<usize> {
        match *self {
            TraceEvent::Kernel { device, .. }
            | TraceEvent::Span { device, .. }
            | TraceEvent::Wait { device, .. }
            | TraceEvent::Transfer { device, .. } => Some(device),
            _ => None,
        }
    }

    /// Phase label for device-attributed duration events.
    pub fn charged_phase(&self) -> Option<&'static str> {
        match *self {
            TraceEvent::Kernel { phase, .. }
            | TraceEvent::Span { phase, .. }
            | TraceEvent::Wait { phase, .. }
            | TraceEvent::Transfer { phase, .. } => Some(phase),
            _ => None,
        }
    }

    /// Duration in simulated seconds (0 for instant marks).
    pub fn duration(&self) -> f64 {
        match *self {
            TraceEvent::Kernel { start, end, .. }
            | TraceEvent::Span { start, end, .. }
            | TraceEvent::Wait { start, end, .. }
            | TraceEvent::Transfer { start, end, .. }
            | TraceEvent::Comms { start, end, .. }
            | TraceEvent::Stage { start, end, .. } => end - start,
            TraceEvent::Fault { .. }
            | TraceEvent::Recovery { .. }
            | TraceEvent::Breakdown { .. }
            | TraceEvent::Fallback { .. }
            | TraceEvent::HealthCheck { .. }
            | TraceEvent::Checkpoint { .. }
            | TraceEvent::Speculation { .. }
            | TraceEvent::Sdc { .. } => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charged_device_covers_exactly_the_duration_events() {
        let kernel = TraceEvent::Kernel {
            device: 2,
            name: "gemm",
            phase: "Sampling",
            dims: [4, 5, 6],
            flops: 240.0,
            bytes: 592.0,
            start: 0.0,
            end: 1.0,
        };
        assert_eq!(kernel.charged_device(), Some(2));
        assert_eq!(kernel.charged_phase(), Some("Sampling"));
        assert_eq!(kernel.duration(), 1.0);

        let comms = TraceEvent::Comms {
            scope: "host",
            phase: "Comms",
            start: 0.0,
            end: 0.5,
        };
        assert_eq!(comms.charged_device(), None);
        assert_eq!(comms.duration(), 0.5);

        let fault = TraceEvent::Fault {
            device: 0,
            kind: "transient",
            at_launch: 7,
            time: 0.25,
        };
        assert_eq!(fault.charged_device(), None);
        assert_eq!(fault.duration(), 0.0);
    }

    #[test]
    fn durability_events_are_instant_marks() {
        let ckpt = TraceEvent::Checkpoint {
            id: 3,
            bytes: 4096,
            time: 1.5,
        };
        assert_eq!(ckpt.charged_device(), None);
        assert_eq!(ckpt.charged_phase(), None);
        assert_eq!(ckpt.duration(), 0.0);

        let spec = TraceEvent::Speculation {
            device: 1,
            outcome: "survivors-won",
            saved: 0.25,
            time: 2.0,
        };
        assert_eq!(spec.charged_device(), None);
        assert_eq!(spec.duration(), 0.0);
    }
}
