//! Property-based tests of the simulated-GPU cost model and execution
//! semantics: costs must be deterministic, mode-independent, additive,
//! and monotone in every problem dimension.

use proptest::prelude::*;
use rlra_blas::Trans;
use rlra_gpu::algos::{gpu_cholqr, gpu_hhqr, gpu_qp3_truncated};
use rlra_gpu::cost::CostModel;
use rlra_gpu::{DeviceSpec, ExecMode, Gpu, MultiGpu, Phase};
use rlra_matrix::Mat;

fn model() -> CostModel {
    CostModel::new(DeviceSpec::k40c())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_cost_monotone_in_every_dim(
        m in 32usize..20_000,
        n in 32usize..5_000,
        k in 32usize..20_000,
    ) {
        // Below ~16 the occupancy curve rises faster than the flop count
        // (a bigger kernel can genuinely be faster on a GPU), so the
        // monotonicity property is asserted on realistic sizes with a
        // hair of slack for the interpolation knees.
        let c = model();
        let t = c.gemm(m, n, k);
        prop_assert!(t > 0.0 && t.is_finite());
        prop_assert!(c.gemm(m * 2, n, k) >= t * 0.999);
        prop_assert!(c.gemm(m, n * 2, k) >= t * 0.999);
        prop_assert!(c.gemm(m, n, k * 2) >= t * 0.999);
    }

    #[test]
    fn gemm_never_beats_compute_peak(
        m in 1usize..10_000,
        n in 1usize..10_000,
        k in 1usize..10_000,
    ) {
        let c = model();
        let t = c.gemm(m, n, k);
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        prop_assert!(flops / t / 1e9 <= DeviceSpec::k40c().peak_dp_gflops * (1.0 + 1e-9));
    }

    #[test]
    fn gemv_slower_per_flop_than_big_gemm(
        m in 256usize..20_000,
        n in 256usize..5_000,
    ) {
        let c = model();
        let gemv_rate = 2.0 * m as f64 * n as f64 / c.gemv(m, n);
        let gemm_rate = 2.0 * 256.0 * m as f64 * n as f64 / c.gemm(256, n, m);
        prop_assert!(gemm_rate > gemv_rate, "gemm {} <= gemv {}", gemm_rate, gemv_rate);
    }

    #[test]
    fn charges_are_additive(
        secs in proptest::collection::vec(1e-9f64..1e-2, 1..20),
    ) {
        let mut gpu = Gpu::k40c_dry();
        let mut total = 0.0;
        for (i, &s) in secs.iter().enumerate() {
            let phase = Phase::ALL[i % Phase::ALL.len()];
            gpu.charge(phase, s);
            total += s;
        }
        prop_assert!((gpu.clock() - total).abs() < 1e-12);
        prop_assert!((gpu.timeline().total() - total).abs() < 1e-12);
    }

    #[test]
    fn dry_run_and_compute_charge_identically_for_gemm(
        m in 1usize..50,
        n in 1usize..50,
        k in 1usize..50,
        seed in 0u64..500,
    ) {
        let a_host = Mat::from_fn(m, k, |i, j| ((i * 31 + j * 7 + seed as usize) % 17) as f64 - 8.0);
        let b_host = Mat::from_fn(k, n, |i, j| ((i * 13 + j * 11 + seed as usize) % 19) as f64 - 9.0);
        let run = |mode: ExecMode| -> f64 {
            let mut gpu = Gpu::new(DeviceSpec::k40c(), mode);
            let (a, b) = match mode {
                ExecMode::Compute => (gpu.resident(&a_host), gpu.resident(&b_host)),
                ExecMode::DryRun => (gpu.resident_shape(m, k), gpu.resident_shape(k, n)),
            };
            let mut c = gpu.alloc(m, n);
            gpu.gemm(Phase::Other, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c).unwrap();
            gpu.clock()
        };
        prop_assert_eq!(run(ExecMode::Compute), run(ExecMode::DryRun));
    }

    #[test]
    fn algo_costs_scale_up_with_m(
        m in 2_000usize..30_000,
        n in 8usize..64,
    ) {
        let time_cholqr = |mm: usize| {
            let mut g = Gpu::k40c_dry();
            let a = g.resident_shape(mm, n);
            gpu_cholqr(&mut g, Phase::Other, &a, true).unwrap();
            g.clock()
        };
        let time_hhqr = |mm: usize| {
            let mut g = Gpu::k40c_dry();
            let a = g.resident_shape(mm, n);
            gpu_hhqr(&mut g, Phase::Other, &a).unwrap();
            g.clock()
        };
        prop_assert!(time_cholqr(2 * m) > time_cholqr(m));
        prop_assert!(time_hhqr(2 * m) > time_hhqr(m));
        // HHQR always slower than CholQR for tall-skinny shapes.
        prop_assert!(time_hhqr(m) > time_cholqr(m));
    }

    #[test]
    fn qp3_syncs_grow_linearly_with_k(
        m in 500usize..5_000,
        k1 in 4usize..32,
    ) {
        let k2 = k1 * 2;
        let n = 2 * k2 + 10;
        let syncs = |k: usize| {
            let mut g = Gpu::k40c_dry();
            let a = g.resident_shape(m, n);
            gpu_qp3_truncated(&mut g, Phase::Other, &a, k).unwrap();
            g.syncs
        };
        let s1 = syncs(k1);
        let s2 = syncs(k2);
        prop_assert!(s2 >= 2 * s1 - 4, "syncs must grow ~linearly: {} vs {}", s1, s2);
    }

    #[test]
    fn multigpu_reduce_is_exact_sum(
        ng in 1usize..5,
        r in 1usize..10,
        c in 1usize..10,
        seed in 0u64..500,
    ) {
        let mut mg = MultiGpu::new(ng, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        let parts: Vec<_> = (0..ng)
            .map(|i| {
                let m = Mat::from_fn(r, c, |x, y| ((x * 3 + y * 5 + i + seed as usize) % 7) as f64);
                mg.gpu(i).resident(&m)
            })
            .collect();
        let expect = {
            let mut acc = Mat::zeros(r, c);
            for p in &parts {
                rlra_matrix::ops::axpy_mat(1.0, p.values().unwrap(), &mut acc).unwrap();
            }
            acc
        };
        let got = mg.reduce_to_host(Phase::Comms, &parts).unwrap();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn more_gpus_never_slower_for_big_gemm_work(
        ng1 in 1usize..3,
        m in 50_000usize..150_000,
    ) {
        let ng2 = ng1 + 1;
        let time = |ng: usize| {
            let mut mg = MultiGpu::new(ng, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
            let parts = mg.distribute_rows_shape(m, 1_000);
            for (i, p) in parts.iter().enumerate() {
                let gpu = mg.gpu_mut(i);
                let omega = gpu.resident_shape(64, p.rows());
                let mut b = gpu.alloc(64, 1_000);
                gpu.gemm(Phase::Sampling, 1.0, &omega, Trans::No, p, Trans::No, 0.0, &mut b)
                    .unwrap();
            }
            mg.barrier();
            mg.time()
        };
        prop_assert!(time(ng2) <= time(ng1) * 1.001);
    }
}
