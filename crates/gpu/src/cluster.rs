//! Simulated distributed-memory cluster — the environment of the paper's
//! closing prediction: "we expect the performance benefits of random
//! sampling to increase on a computer with higher communication cost,
//! like a distributed-memory computer" (§11).
//!
//! A [`Cluster`] is a set of nodes, each a [`MultiGpu`] box, joined by an
//! α-β network: a collective over `P` nodes costs
//! `⌈log₂P⌉·(α + bytes/β)` (binomial tree). Intra-node traffic keeps the
//! PCIe model; inter-node traffic uses the (slower) interconnect — the
//! cost separation that makes communication-avoiding algorithms matter.

use crate::device::ExecMode;
use crate::fault::{FaultPlan, SdcEvent, SdcPlan};
use crate::multigpu::{FleetAccount, MultiGpu};
use crate::spec::DeviceSpec;
use crate::timeline::{Phase, Timeline};
use rlra_matrix::{Mat, MatrixError, Result};
use rlra_trace::{Metrics, TraceEvent, Tracer};

/// An α-β interconnect model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Name (for reports).
    pub name: &'static str,
    /// Per-message latency α in microseconds.
    pub latency_us: f64,
    /// Link bandwidth β in GB/s.
    pub bandwidth_gbs: f64,
}

impl NetworkSpec {
    /// FDR InfiniBand, the 2015-era HPC interconnect (≈6.8 GB/s, ≈1.5 µs).
    pub fn infiniband_fdr() -> Self {
        NetworkSpec {
            name: "InfiniBand FDR",
            latency_us: 1.5,
            bandwidth_gbs: 6.8,
        }
    }

    /// Commodity 10-gigabit Ethernet (≈1.1 GB/s, ≈25 µs) — the
    /// "higher communication cost" end of the spectrum.
    pub fn ethernet_10g() -> Self {
        NetworkSpec {
            name: "10GbE",
            latency_us: 25.0,
            bandwidth_gbs: 1.1,
        }
    }

    /// Time of one point-to-point message of `bytes`.
    pub fn message(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / (self.bandwidth_gbs * 1e9)
    }

    /// Time of a tree collective (reduce/broadcast/allreduce half) over
    /// `p` participants moving `bytes` per hop.
    pub fn tree_collective(&self, p: usize, bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (p as f64).log2().ceil();
        rounds * self.message(bytes)
    }
}

/// Accounting snapshot of a whole cluster: one [`FleetAccount`] per
/// node plus the inter-node communication total. Produced by
/// [`Cluster::export_account`] for durable checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterAccount {
    /// Per-node accounts, in node order.
    pub nodes: Vec<FleetAccount>,
    /// Accumulated inter-node communication seconds.
    pub inter_node_comms: f64,
}

/// A simulated cluster: `nodes` boxes of `gpus_per_node` GPUs each,
/// joined by an α-β interconnect.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<MultiGpu>,
    net: NetworkSpec,
    mode: ExecMode,
    comms_inter: f64,
    tracer: Option<Tracer>,
}

impl Cluster {
    /// Builds a cluster of `nodes × gpus_per_node` identical GPUs.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidParameter`] when `nodes` or
    /// `gpus_per_node` is zero.
    pub fn new(
        nodes: usize,
        gpus_per_node: usize,
        spec: DeviceSpec,
        net: NetworkSpec,
        mode: ExecMode,
    ) -> Result<Self> {
        if nodes == 0 || gpus_per_node == 0 {
            return Err(MatrixError::InvalidParameter {
                name: "nodes/gpus_per_node",
                message: format!(
                    "need at least one node and one GPU per node (got {nodes}x{gpus_per_node})"
                ),
            });
        }
        let mut boxes = (0..nodes)
            .map(|_| MultiGpu::new(gpus_per_node, spec.clone(), mode))
            .collect::<Result<Vec<_>>>()?;
        // Renumber devices globally (node i owns [i·g, (i+1)·g)) so traces
        // and metrics from different nodes never collide on an ordinal.
        for (ni, node) in boxes.iter_mut().enumerate() {
            for g in 0..node.ng() {
                node.gpu_mut(g).set_device(ni * gpus_per_node + g);
            }
        }
        Ok(Cluster {
            nodes: boxes,
            net,
            mode,
            comms_inter: 0.0,
            tracer: None,
        })
    }

    /// Installs (or clears) a shared tracer on every node and device;
    /// the cluster itself uses it for the inter-node comms track.
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        for node in &mut self.nodes {
            node.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// Removes and returns the installed tracer (clearing every node).
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        for node in &mut self.nodes {
            node.set_tracer(None);
        }
        self.tracer.take()
    }

    /// The installed tracer, if any (clones share the sink).
    pub fn tracer(&self) -> Option<Tracer> {
        self.tracer.clone()
    }

    /// Cluster-wide metrics: every device of every node, in global
    /// device order.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            devices: self
                .nodes
                .iter()
                .flat_map(|n| n.metrics().devices)
                .collect(),
            retries: 0,
            fallbacks: 0,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total GPU count (including any lost to fail-stop faults).
    pub fn total_gpus(&self) -> usize {
        self.nodes.iter().map(super::multigpu::MultiGpu::ng).sum()
    }

    /// Installs per-device injectors from a fault plan. Devices are
    /// numbered globally and sequentially: node `i`'s GPUs get ids
    /// `[i·g, (i+1)·g)` for `g = gpus_per_node` — the same layout
    /// [`Cluster::locate_device`] inverts.
    pub fn install_plan(&mut self, plan: &FaultPlan) {
        let mut id = 0;
        for node in &mut self.nodes {
            for g in 0..node.ng() {
                node.gpu_mut(g).set_injector(Some(plan.injector_for(id)));
                id += 1;
            }
        }
    }

    /// Maps a global device id (the numbering of
    /// [`Cluster::install_plan`]) to `(node, gpu-in-node)`.
    pub fn locate_device(&self, device: usize) -> Option<(usize, usize)> {
        let mut base = 0;
        for (ni, node) in self.nodes.iter().enumerate() {
            if device < base + node.ng() {
                return Some((ni, device - base));
            }
            base += node.ng();
        }
        None
    }

    /// Total fault events fired across the cluster.
    pub fn faults_injected(&self) -> u64 {
        self.nodes.iter().map(MultiGpu::faults_injected).sum()
    }

    /// Installs per-device SDC injectors from a corruption plan, using
    /// the same global sequential device numbering as
    /// [`Cluster::install_plan`].
    pub fn install_sdc_plan(&mut self, plan: &SdcPlan) {
        let mut id = 0;
        for node in &mut self.nodes {
            for g in 0..node.ng() {
                node.gpu_mut(g)
                    .set_sdc_injector(Some(plan.injector_for(id)));
                id += 1;
            }
        }
    }

    /// Total SDC events fired across the cluster.
    pub fn sdc_injected(&self) -> u64 {
        self.nodes.iter().map(MultiGpu::sdc_injected).sum()
    }

    /// Drains the fired-but-unapplied SDC events of every device, in
    /// global device order.
    pub fn drain_sdc_events(&mut self) -> Vec<SdcEvent> {
        let mut out = Vec::new();
        for node in &mut self.nodes {
            out.append(&mut node.drain_sdc_events());
        }
        out
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The interconnect model.
    pub fn network(&self) -> &NetworkSpec {
        &self.net
    }

    /// Mutable access to node `i`.
    pub fn node_mut(&mut self, i: usize) -> &mut MultiGpu {
        &mut self.nodes[i]
    }

    /// Immutable access to node `i`.
    pub fn node(&self, i: usize) -> &MultiGpu {
        &self.nodes[i]
    }

    /// Simulated wall-clock: the slowest node.
    pub fn time(&self) -> f64 {
        self.nodes
            .iter()
            .map(super::multigpu::MultiGpu::time)
            .fold(0.0, f64::max)
    }

    /// Accumulated inter-node communication time.
    pub fn inter_node_comms(&self) -> f64 {
        self.comms_inter
    }

    /// Global barrier: every surviving GPU on every node jumps to the
    /// cluster max (waiting is not kernel work, so no straggler scaling).
    pub fn barrier(&mut self) {
        let t = self.time();
        for node in &mut self.nodes {
            node.barrier();
            let dt = t - node.time();
            if dt > 0.0 {
                for g in 0..node.ng() {
                    if !node.gpu(g).is_dead() && !node.gpu(g).is_quarantined() {
                        node.gpu_mut(g).charge_wait(Phase::Other, dt);
                    }
                }
            }
        }
    }

    /// Charges an inter-node collective to every surviving GPU and
    /// records it (network time is not device kernel work, so no
    /// straggler scaling).
    fn charge_collective(&mut self, phase: Phase, secs: f64) {
        let start = self.time();
        for node in &mut self.nodes {
            for g in 0..node.ng() {
                if !node.gpu(g).is_dead() && !node.gpu(g).is_quarantined() {
                    node.gpu_mut(g).charge_raw(phase, secs);
                }
            }
        }
        self.comms_inter += secs;
        self.trace_network(phase, start, secs);
    }

    /// Emits the network-track annotation for one inter-node collective
    /// (the per-device shares are traced as `Span`s by the charge loop).
    fn trace_network(&self, phase: Phase, start: f64, secs: f64) {
        if let Some(t) = &self.tracer {
            t.emit(TraceEvent::Comms {
                scope: "network",
                phase: phase.label(),
                start,
                end: start + secs,
            });
        }
    }

    /// All-reduce of equal-shaped per-node host matrices: the numerical
    /// sum lands on every node (we return it once). Cost: reduce +
    /// broadcast trees over the interconnect.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if parts disagree.
    pub fn allreduce_host(&mut self, phase: Phase, parts: &[Mat]) -> Result<Mat> {
        if parts.len() != self.nodes() {
            return Err(MatrixError::DimensionMismatch {
                op: "Cluster::allreduce_host",
                expected: format!("one part per node ({})", self.nodes()),
                found: format!("{} parts", parts.len()),
            });
        }
        let (r, c) = parts[0].shape();
        for p in parts {
            if p.shape() != (r, c) {
                return Err(MatrixError::DimensionMismatch {
                    op: "Cluster::allreduce_host",
                    expected: format!("{r}x{c}"),
                    found: format!("{}x{}", p.rows(), p.cols()),
                });
            }
        }
        self.barrier();
        let bytes = 8 * (r * c) as u64;
        let secs = 2.0 * self.net.tree_collective(self.nodes(), bytes);
        self.charge_collective(phase, secs);
        let mut acc = Mat::zeros(r, c);
        if self.mode == ExecMode::Compute {
            for p in parts {
                rlra_matrix::ops::axpy_mat(1.0, p, &mut acc)?;
            }
        }
        Ok(acc)
    }

    /// Broadcast of a host matrix from node 0 to all nodes (tree).
    pub fn broadcast_host(&mut self, phase: Phase, m: &Mat) {
        self.barrier();
        let bytes = 8 * (m.rows() * m.cols()) as u64;
        let secs = self.net.tree_collective(self.nodes(), bytes);
        self.charge_collective(phase, secs);
    }

    /// A scalar all-reduce (e.g. a distributed pivot decision): pure
    /// latency, `2·⌈log₂P⌉·α`. This is the per-column price a
    /// distributed QP3 would pay.
    pub fn allreduce_scalar(&mut self, phase: Phase) {
        self.barrier();
        let secs = 2.0 * self.net.tree_collective(self.nodes(), 8);
        self.charge_collective(phase, secs);
    }

    /// Splits `m` rows across all nodes proportionally to their GPU
    /// counts; returns `(start, len)` per node.
    pub fn node_row_chunks(&self, m: usize) -> Vec<(usize, usize)> {
        let total = self.total_gpus();
        let mut out = Vec::with_capacity(self.nodes());
        let mut start = 0;
        let mut assigned = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            let len = if i + 1 == self.nodes() {
                m - start
            } else {
                m * (assigned + node.ng()) / total - start
            };
            out.push((start, len));
            start += len;
            assigned += node.ng();
        }
        out
    }

    /// Resets all clocks.
    pub fn reset(&mut self) {
        for n in &mut self.nodes {
            n.reset();
        }
        self.comms_inter = 0.0;
    }

    /// Accounting snapshot of the whole cluster: one [`FleetAccount`]
    /// per node plus the accumulated inter-node communication time.
    pub fn export_account(&self) -> ClusterAccount {
        ClusterAccount {
            nodes: self.nodes.iter().map(MultiGpu::export_account).collect(),
            inter_node_comms: self.comms_inter,
        }
    }

    /// Overwrites the cluster's accounting state from a snapshot taken
    /// by [`Cluster::export_account`].
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::CheckpointCorrupt`] when the node count
    /// (or any node's GPU count) does not match this cluster.
    pub fn restore_account(&mut self, acc: &ClusterAccount) -> Result<()> {
        if acc.nodes.len() != self.nodes.len() {
            return Err(MatrixError::CheckpointCorrupt {
                detail: "cluster snapshot node count does not match this cluster",
            });
        }
        for (node, a) in self.nodes.iter_mut().zip(&acc.nodes) {
            node.restore_account(a)?;
        }
        self.comms_inter = acc.inter_node_comms;
        Ok(())
    }

    /// Per-phase breakdown: element-wise max across nodes.
    pub fn breakdown(&self) -> Timeline {
        let mut t = self.nodes[0].breakdown();
        for n in &self.nodes[1..] {
            t.max_with(&n.breakdown());
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_message_costs() {
        let ib = NetworkSpec::infiniband_fdr();
        let eth = NetworkSpec::ethernet_10g();
        // Ethernet strictly worse on both axes.
        assert!(eth.message(8) > ib.message(8));
        assert!(eth.message(1 << 24) > ib.message(1 << 24));
        // Latency floor for tiny messages.
        assert!(ib.message(8) >= 1.5e-6);
    }

    #[test]
    fn tree_collective_log_rounds() {
        let net = NetworkSpec::infiniband_fdr();
        assert_eq!(net.tree_collective(1, 1000), 0.0);
        let t2 = net.tree_collective(2, 1000);
        let t8 = net.tree_collective(8, 1000);
        assert!((t8 / t2 - 3.0).abs() < 1e-12, "8 nodes = 3 rounds");
    }

    #[test]
    fn allreduce_sums_across_nodes() {
        let mut cl = Cluster::new(
            3,
            1,
            DeviceSpec::k40c(),
            NetworkSpec::infiniband_fdr(),
            ExecMode::Compute,
        )
        .unwrap();
        let parts: Vec<Mat> = (0..3).map(|i| Mat::filled(2, 2, (i + 1) as f64)).collect();
        let sum = cl.allreduce_host(Phase::Comms, &parts).unwrap();
        assert_eq!(sum, Mat::filled(2, 2, 6.0));
        assert!(cl.inter_node_comms() > 0.0);
        assert!(cl.time() > 0.0);
    }

    #[test]
    fn single_node_collectives_are_free() {
        let mut cl = Cluster::new(
            1,
            2,
            DeviceSpec::k40c(),
            NetworkSpec::infiniband_fdr(),
            ExecMode::DryRun,
        )
        .unwrap();
        cl.allreduce_scalar(Phase::Comms);
        assert_eq!(cl.inter_node_comms(), 0.0);
    }

    #[test]
    fn node_row_chunks_cover() {
        let cl = Cluster::new(
            3,
            2,
            DeviceSpec::k40c(),
            NetworkSpec::infiniband_fdr(),
            ExecMode::DryRun,
        )
        .unwrap();
        let chunks = cl.node_row_chunks(100);
        assert_eq!(chunks.iter().map(|c| c.1).sum::<usize>(), 100);
        assert_eq!(chunks[0].0, 0);
        for w in chunks.windows(2) {
            assert_eq!(w[0].0 + w[0].1, w[1].0);
        }
    }

    #[test]
    fn cluster_account_round_trips_through_restore() {
        let mut cl = Cluster::new(
            2,
            2,
            DeviceSpec::k40c(),
            NetworkSpec::infiniband_fdr(),
            ExecMode::DryRun,
        )
        .unwrap();
        cl.node_mut(0).gpu_mut(1).charge(Phase::GemmIter, 0.75);
        cl.allreduce_scalar(Phase::Comms);
        let acc = cl.export_account();
        cl.node_mut(1).gpu_mut(0).charge(Phase::Qr, 3.0);
        cl.allreduce_scalar(Phase::Comms);
        cl.restore_account(&acc).unwrap();
        assert_eq!(cl.export_account(), acc);
        assert_eq!(cl.inter_node_comms(), acc.inter_node_comms);
        // A cluster of the wrong shape is a clean error.
        let mut other = Cluster::new(
            3,
            2,
            DeviceSpec::k40c(),
            NetworkSpec::infiniband_fdr(),
            ExecMode::DryRun,
        )
        .unwrap();
        assert!(other.restore_account(&acc).is_err());
    }

    #[test]
    fn barrier_aligns_all_nodes() {
        let mut cl = Cluster::new(
            2,
            2,
            DeviceSpec::k40c(),
            NetworkSpec::infiniband_fdr(),
            ExecMode::DryRun,
        )
        .unwrap();
        cl.node_mut(0).gpu_mut(1).charge(Phase::Other, 0.5);
        cl.barrier();
        let t = cl.time();
        for n in 0..2 {
            for g in 0..2 {
                assert!((cl.node(n).gpu(g).clock() - t).abs() < 1e-15);
            }
        }
    }
}
