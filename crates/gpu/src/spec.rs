//! Simulated device specifications.

/// Hardware constants of a simulated GPU.
///
/// The defaults ([`DeviceSpec::k40c`]) model the NVIDIA Tesla K40c used
/// throughout the paper; every number is either a published device
/// specification or a rate the paper itself reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Device name (for reports).
    pub name: &'static str,
    /// Double-precision compute peak in Gflop/s (paper Fig. 8: 1430).
    pub peak_dp_gflops: f64,
    /// Device memory bandwidth in GB/s (paper Fig. 8: 288).
    pub mem_bandwidth_gbs: f64,
    /// Effective host↔device PCIe bandwidth in GB/s (PCIe 3.0 x16
    /// sustains ~10 GB/s in practice).
    pub pcie_bandwidth_gbs: f64,
    /// One-way host↔device transfer latency in microseconds.
    pub pcie_latency_us: f64,
    /// Kernel launch overhead in microseconds (CUDA launches cost
    /// ~5–10 µs on Kepler-era systems).
    pub kernel_launch_us: f64,
    /// Host synchronization cost in microseconds (a blocking
    /// `cudaMemcpy`/`cudaDeviceSynchronize` pair, as QP3 pays per pivot).
    pub sync_us: f64,
    /// Effective cuFFT throughput in Gflop/s on the `5·n·log₂n` flop
    /// convention (paper §8: "about 135 Gflop/s in our experiments").
    pub fft_gflops: f64,
    /// cuRAND Gaussian generation rate in 10⁹ samples per second
    /// (XORWOW Box–Muller on Kepler generates a few GSamples/s).
    pub curand_gsamples: f64,
    /// Host (CPU) throughput in Gflop/s for the small factorizations the
    /// paper runs on the CPU (Cholesky of the ℓ×ℓ Gram matrix).
    pub host_gflops: f64,
    /// Host memory bandwidth in GB/s (for host-side reductions).
    pub host_bandwidth_gbs: f64,
}

impl DeviceSpec {
    /// The NVIDIA Tesla K40c model used in every experiment of the paper.
    pub fn k40c() -> Self {
        DeviceSpec {
            name: "Tesla K40c (simulated)",
            peak_dp_gflops: 1430.0,
            mem_bandwidth_gbs: 288.0,
            pcie_bandwidth_gbs: 10.0,
            pcie_latency_us: 10.0,
            kernel_launch_us: 7.5,
            sync_us: 30.0,
            fft_gflops: 135.0,
            curand_gsamples: 4.0,
            host_gflops: 20.0,
            host_bandwidth_gbs: 40.0,
        }
    }
}

impl DeviceSpec {
    /// A Pascal-generation P100 (2016): compute grows 3.7× over the K40c
    /// while memory bandwidth grows only 2.5× — the rising
    /// flops-per-byte ratio the paper's introduction points at.
    pub fn p100() -> Self {
        DeviceSpec {
            name: "Tesla P100 (simulated)",
            peak_dp_gflops: 5_300.0,
            mem_bandwidth_gbs: 732.0,
            pcie_bandwidth_gbs: 12.0,
            pcie_latency_us: 8.0,
            kernel_launch_us: 5.0,
            sync_us: 20.0,
            fft_gflops: 420.0,
            curand_gsamples: 12.0,
            host_gflops: 40.0,
            host_bandwidth_gbs: 60.0,
        }
    }

    /// A Volta-generation V100 (2017): 5.5× the K40c's compute, 3.1× its
    /// bandwidth.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "Tesla V100 (simulated)",
            peak_dp_gflops: 7_800.0,
            mem_bandwidth_gbs: 900.0,
            pcie_bandwidth_gbs: 14.0,
            pcie_latency_us: 7.0,
            kernel_launch_us: 4.0,
            sync_us: 15.0,
            fft_gflops: 600.0,
            curand_gsamples: 20.0,
            host_gflops: 60.0,
            host_bandwidth_gbs: 80.0,
        }
    }

    /// Compute-to-bandwidth ratio in flops per byte — the hardware trend
    /// the paper's argument is built on ("communication has become
    /// significantly more expensive … and is expected to become
    /// increasingly more so").
    pub fn flops_per_byte(&self) -> f64 {
        self.peak_dp_gflops / self.mem_bandwidth_gbs
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::k40c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40c_matches_paper_constants() {
        let s = DeviceSpec::k40c();
        assert_eq!(s.peak_dp_gflops, 1430.0);
        assert_eq!(s.mem_bandwidth_gbs, 288.0);
        assert_eq!(s.fft_gflops, 135.0);
    }

    #[test]
    fn default_is_k40c() {
        assert_eq!(DeviceSpec::default(), DeviceSpec::k40c());
    }

    #[test]
    fn flops_per_byte_grows_across_generations() {
        let k40 = DeviceSpec::k40c().flops_per_byte();
        let p100 = DeviceSpec::p100().flops_per_byte();
        let v100 = DeviceSpec::v100().flops_per_byte();
        assert!(p100 > k40, "P100 {p100:.1} > K40c {k40:.1}");
        assert!(v100 > p100, "V100 {v100:.1} > P100 {p100:.1}");
    }
}
