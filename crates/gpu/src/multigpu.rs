//! Multi-GPU execution context (paper §4, Figures 4 and 15).
//!
//! The matrix `A` is distributed in a 1D block-row layout: GPU `i` owns
//! `A(i)` of roughly `m/n_g` rows. The short-wide sampled matrices are
//! formed by local GEMMs followed by a host-side reduction; the small
//! factorizations (QR/Cholesky of ℓ×ℓ or ℓ×n matrices) run on the CPU and
//! the factors are broadcast back — exactly the paper's Figure 4 CholQR
//! scheme.
//!
//! Timing semantics: local kernels advance the owning GPU's clock;
//! collectives first impose a barrier (all clocks jump to the maximum),
//! then serialize PCIe transfers through the host (which is why the
//! paper's measured communication fraction grows from 1.6 % on two GPUs
//! to 4.3 % on three), then advance every clock past the host-side work.

use crate::device::{DMat, DeviceAccount, ExecMode, Gpu};
use crate::fault::{FaultPlan, SdcEvent, SdcPlan};
use crate::spec::DeviceSpec;
use crate::timeline::{Phase, Timeline};
use rlra_blas::Trans;
use rlra_matrix::{Mat, MatrixError, Result};
use rlra_trace::{Metrics, TraceEvent, Tracer};

/// A single compute node with `n_g` simulated GPUs and a host.
///
/// GPUs can be lost mid-run to injected fail-stop faults; collectives
/// and distribution helpers then operate on the **surviving** devices
/// ([`MultiGpu::ng_alive`] of them), which is how the executor layer
/// degrades gracefully instead of restarting.
#[derive(Debug, Clone)]
pub struct MultiGpu {
    gpus: Vec<Gpu>,
    mode: ExecMode,
    /// Host-side and communication time, tracked centrally.
    host_timeline: Timeline,
    /// Trace handle for the collective-comms track (the same sink the
    /// per-device tracers share).
    tracer: Option<Tracer>,
}

/// Accounting snapshot of a whole node: one [`DeviceAccount`] per GPU
/// (in device order) plus the host-side per-phase totals. Produced by
/// [`MultiGpu::export_account`] for durable checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAccount {
    /// Per-device accounts, in device order (dead devices included).
    pub gpus: Vec<DeviceAccount>,
    /// Host/communication timeline totals, indexed like [`Phase::ALL`].
    pub host_phases: [f64; Phase::COUNT],
}

impl MultiGpu {
    /// Creates a context with `ng` identical GPUs.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidParameter`] when `ng == 0`.
    pub fn new(ng: usize, spec: DeviceSpec, mode: ExecMode) -> Result<Self> {
        if ng == 0 {
            return Err(MatrixError::InvalidParameter {
                name: "ng",
                message: "need at least one GPU".into(),
            });
        }
        Ok(MultiGpu {
            gpus: (0..ng)
                .map(|i| {
                    let mut g = Gpu::new(spec.clone(), mode);
                    g.set_device(i);
                    g
                })
                .collect(),
            mode,
            host_timeline: Timeline::new(),
            tracer: None,
        })
    }

    /// Installs (or clears) a shared tracer on the node and every GPU;
    /// all devices then emit into the same event stream.
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        for g in &mut self.gpus {
            g.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// Removes and returns the installed tracer (clearing every GPU).
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        for g in &mut self.gpus {
            g.set_tracer(None);
        }
        self.tracer.take()
    }

    /// The installed tracer, if any (clones share the sink).
    pub fn tracer(&self) -> Option<Tracer> {
        self.tracer.clone()
    }

    /// Metrics registry snapshot: one entry per GPU, in device order.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            devices: self.gpus.iter().map(Gpu::device_metrics).collect(),
            retries: 0,
            fallbacks: 0,
        }
    }

    /// Number of GPUs (including any lost to fail-stop faults).
    pub fn ng(&self) -> usize {
        self.gpus.len()
    }

    /// Number of GPUs still scheduling work: neither lost to a
    /// fail-stop fault nor quarantined by the straggler watchdog.
    pub fn ng_alive(&self) -> usize {
        self.gpus.iter().filter(|g| Self::schedulable(g)).count()
    }

    /// Indices of the GPUs still scheduling work, in device order
    /// (excludes both dead and quarantined devices).
    pub fn alive_indices(&self) -> Vec<usize> {
        self.gpus
            .iter()
            .enumerate()
            .filter(|(_, g)| Self::schedulable(g))
            .map(|(i, _)| i)
            .collect()
    }

    fn schedulable(g: &Gpu) -> bool {
        !g.is_dead() && !g.is_quarantined()
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Installs per-device injectors from a fault plan (device `i` of
    /// this node receives the plan's events for device index `i`).
    pub fn install_plan(&mut self, plan: &FaultPlan) {
        for (i, g) in self.gpus.iter_mut().enumerate() {
            g.set_injector(Some(plan.injector_for(i)));
        }
    }

    /// Total fault events fired across the fleet.
    pub fn faults_injected(&self) -> u64 {
        self.gpus.iter().map(Gpu::faults_injected).sum()
    }

    /// Installs per-device SDC injectors from a corruption plan (device
    /// `i` of this node receives the plan's events for device index
    /// `i`), mirroring [`MultiGpu::install_plan`].
    pub fn install_sdc_plan(&mut self, plan: &SdcPlan) {
        for (i, g) in self.gpus.iter_mut().enumerate() {
            g.set_sdc_injector(Some(plan.injector_for(i)));
        }
    }

    /// Total SDC events fired across the fleet.
    pub fn sdc_injected(&self) -> u64 {
        self.gpus.iter().map(Gpu::sdc_injected).sum()
    }

    /// Drains the fired-but-unapplied SDC events of every device, in
    /// device order.
    pub fn drain_sdc_events(&mut self) -> Vec<SdcEvent> {
        let mut out = Vec::new();
        for g in &mut self.gpus {
            out.append(&mut g.drain_sdc_events());
        }
        out
    }

    /// Mutable access to GPU `i` for local kernel calls.
    pub fn gpu_mut(&mut self, i: usize) -> &mut Gpu {
        &mut self.gpus[i]
    }

    /// Immutable access to GPU `i`.
    pub fn gpu(&self, i: usize) -> &Gpu {
        &self.gpus[i]
    }

    /// The current simulated wall-clock: the slowest GPU.
    pub fn time(&self) -> f64 {
        self.gpus
            .iter()
            .map(super::device::Gpu::clock)
            .fold(0.0, f64::max)
    }

    /// Barrier: every schedulable GPU clock jumps to the fleet maximum.
    ///
    /// The target is the slowest *schedulable* device: dead and
    /// quarantined clocks are frozen and do not drag the survivors
    /// forward (a quarantined straggler's inflated clock is exactly
    /// what speculation is escaping).
    pub fn barrier(&mut self) {
        let t = self
            .gpus
            .iter()
            .filter(|g| Self::schedulable(g))
            .map(Gpu::clock)
            .fold(0.0, f64::max);
        for g in &mut self.gpus {
            if !Self::schedulable(g) {
                continue;
            }
            let dt = t - g.clock();
            if dt > 0.0 {
                // Waiting is not kernel work: exempt from straggler scaling.
                g.charge_wait(Phase::Other, dt);
            }
        }
    }

    /// Splits the row range `0..m` into [`MultiGpu::ng_alive`] nearly
    /// equal chunks; returns `(start, len)` per surviving GPU, in the
    /// order of [`MultiGpu::alive_indices`].
    pub fn row_chunks(&self, m: usize) -> Vec<(usize, usize)> {
        let ng = self.ng_alive().max(1);
        let base = m / ng;
        let extra = m % ng;
        let mut out = Vec::with_capacity(ng);
        let mut start = 0;
        for i in 0..ng {
            let len = base + usize::from(i < extra);
            out.push((start, len));
            start += len;
        }
        out
    }

    /// Distributes `a` block-row-wise over the surviving GPUs: the
    /// `j`-th chunk goes to GPU `alive_indices()[j]` as a resident
    /// matrix (the paper's experiments assume `A` already lives in
    /// device memory; pass `charge_upload = true` to pay the PCIe cost
    /// explicitly).
    pub fn distribute_rows(&mut self, a: &Mat, charge_upload: bool) -> Vec<DMat> {
        let chunks = self.row_chunks(a.rows());
        let alive = self.alive_indices();
        chunks
            .iter()
            .zip(alive)
            .map(|(&(start, len), gi)| {
                let block = a.submatrix(start, 0, len, a.cols());
                if charge_upload {
                    self.gpus[gi].upload(Phase::Comms, &block)
                } else {
                    self.gpus[gi].resident(&block)
                }
            })
            .collect()
    }

    /// Shape-only distribution for dry runs at paper scale.
    pub fn distribute_rows_shape(&mut self, m: usize, n: usize) -> Vec<DMat> {
        let chunks = self.row_chunks(m);
        let alive = self.alive_indices();
        chunks
            .iter()
            .zip(alive)
            .map(|(&(_, len), gi)| self.gpus[gi].resident_shape(len, n))
            .collect()
    }

    /// Advances every surviving GPU clock by `secs`, charged to `phase`,
    /// and logs it centrally (used for serialized host work all GPUs
    /// wait on — host work is not subject to a device's straggler
    /// multiplier).
    fn charge_all(&mut self, phase: Phase, secs: f64) {
        let start = self.time();
        for g in &mut self.gpus {
            if Self::schedulable(g) {
                g.charge_raw(phase, secs);
            }
        }
        self.host_timeline.add(phase, secs);
        self.trace_collective(phase, start, secs);
    }

    /// Emits the comms-track annotation for a serialized host step. The
    /// per-device shares are traced as `Span`s by `charge_all`, so this
    /// event annotates rather than double-counts.
    fn trace_collective(&self, phase: Phase, start: f64, secs: f64) {
        if let Some(t) = &self.tracer {
            t.emit(TraceEvent::Comms {
                scope: "host",
                phase: phase.label(),
                start,
                end: start + secs,
            });
        }
    }

    /// Reduction: downloads one equally-shaped part from every GPU and
    /// sums them on the host (`B := Σᵢ B(i)`, paper §4). Transfers are
    /// serialized through the shared PCIe/host path.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if parts disagree in
    /// shape.
    pub fn reduce_to_host(&mut self, phase: Phase, parts: &[DMat]) -> Result<Mat> {
        let ng = self.ng_alive();
        if parts.len() != ng {
            return Err(MatrixError::DimensionMismatch {
                op: "MultiGpu::reduce_to_host",
                expected: format!("one part per surviving GPU ({ng})"),
                found: format!("{} parts", parts.len()),
            });
        }
        let (r, c) = parts[0].shape();
        for p in parts {
            if p.shape() != (r, c) {
                return Err(MatrixError::DimensionMismatch {
                    op: "MultiGpu::reduce_to_host",
                    expected: format!("{r}x{c}"),
                    found: format!("{}x{}", p.rows(), p.cols()),
                });
            }
        }
        self.barrier();
        let bytes = parts[0].bytes();
        let cost = self.gpus[0].cost().clone();
        let transfer_total = cost.transfer(bytes) * ng as f64;
        let host_sum = cost.host_reduce(bytes, ng);
        self.charge_all(phase, transfer_total + host_sum);
        // Numerics.
        let mut acc = Mat::zeros(r, c);
        if self.mode == ExecMode::Compute {
            for p in parts {
                rlra_matrix::ops::axpy_mat(1.0, p.expect_values(), &mut acc)?;
            }
        }
        Ok(acc)
    }

    /// Broadcast: uploads the same host matrix to every surviving GPU
    /// (serialized PCIe transfers); one part per surviving GPU, in
    /// [`MultiGpu::alive_indices`] order.
    pub fn broadcast(&mut self, phase: Phase, m: &Mat) -> Vec<DMat> {
        self.barrier();
        let bytes = 8 * (m.rows() * m.cols()) as u64;
        let cost = self.gpus[0].cost().clone();
        self.charge_all(phase, cost.transfer(bytes) * self.ng_alive() as f64);
        let mode = self.mode;
        self.gpus
            .iter()
            .filter(|g| Self::schedulable(g))
            .map(|g| match mode {
                ExecMode::Compute => g.resident(m),
                ExecMode::DryRun => g.resident_shape(m.rows(), m.cols()),
            })
            .collect()
    }

    /// Multi-GPU CholQR of a column-distributed short-wide matrix `C`
    /// (`ℓ` rows; GPU `i` owns the column block `C(i)`), per Figure 4:
    ///
    /// 1. each GPU computes its local Gram block `G(i) = C(i)·C(i)ᵀ`,
    /// 2. the host reduces `G = Σ G(i)` and computes the Cholesky factor
    ///    `R̄`,
    /// 3. `R̄` is broadcast and every GPU solves `Q(i) = R̄⁻ᵀ·C(i)`.
    ///
    /// Overwrites the parts with the row-orthonormal `Q(i)` and returns
    /// `R̄`.
    ///
    /// # Errors
    ///
    /// Propagates kernel and Cholesky errors.
    pub fn cholqr_rows_distributed(
        &mut self,
        phase: Phase,
        parts: &mut [DMat],
        reorth: bool,
    ) -> Result<Mat> {
        let passes = if reorth { 2 } else { 1 };
        let l = parts[0].rows();
        let mut r_total = Mat::identity(l);
        for _ in 0..passes {
            let alive = self.alive_indices();
            // Local Gram blocks.
            let mut gparts = Vec::with_capacity(alive.len());
            for (p, &gi) in parts.iter().zip(&alive) {
                let gpu = &mut self.gpus[gi];
                let mut g = gpu.alloc(l, l);
                gpu.syrk_full(phase, 1.0, p, Trans::No, 0.0, &mut g)?;
                gparts.push(g);
            }
            // Host reduction + Cholesky.
            let g = self.reduce_to_host(Phase::Comms, &gparts)?;
            let cost = self.gpus[0].cost().clone();
            self.charge_all(phase, cost.host_cholesky(l));
            let r = if self.mode == ExecMode::Compute {
                rlra_lapack::cholesky_upper(&g)?
            } else {
                Mat::identity(l)
            };
            // Broadcast R̄ and substitute locally.
            let rparts = self.broadcast(Phase::Comms, &r);
            for ((p, &gi), rp) in parts.iter_mut().zip(&alive).zip(&rparts) {
                let gpu = &mut self.gpus[gi];
                gpu.trsm(
                    phase,
                    rlra_blas::Side::Left,
                    rlra_blas::UpLo::Upper,
                    Trans::Yes,
                    1.0,
                    rp,
                    p,
                )?;
            }
            if self.mode == ExecMode::Compute {
                // R_total = R_pass · R_total.
                let mut tmp = Mat::zeros(l, l);
                rlra_blas::gemm(
                    1.0,
                    r.as_ref(),
                    Trans::No,
                    r_total.as_ref(),
                    Trans::No,
                    0.0,
                    tmp.as_mut(),
                )?;
                r_total = tmp;
            }
        }
        self.barrier();
        Ok(r_total)
    }

    /// Multi-GPU CholQR of a **row-distributed tall-skinny** matrix `X`
    /// (`n` columns; GPU `i` owns the row block `X(i)`), used for Step 3
    /// of random sampling (`QR(A·P₁:ₖ)`): local Gram blocks
    /// `G(i) = X(i)ᵀX(i)` are reduced on the host, Cholesky-factored, and
    /// the factor broadcast for the local solves `Q(i) = X(i)·R̄⁻¹`.
    ///
    /// Overwrites the parts with `Q(i)` and returns `R̄`.
    ///
    /// # Errors
    ///
    /// Propagates kernel and Cholesky errors.
    pub fn cholqr_tall_distributed(
        &mut self,
        phase: Phase,
        parts: &mut [DMat],
        reorth: bool,
    ) -> Result<Mat> {
        let passes = if reorth { 2 } else { 1 };
        let n = parts[0].cols();
        let mut r_total = Mat::identity(n);
        for _ in 0..passes {
            let alive = self.alive_indices();
            let mut gparts = Vec::with_capacity(alive.len());
            for (p, &gi) in parts.iter().zip(&alive) {
                let gpu = &mut self.gpus[gi];
                let mut g = gpu.alloc(n, n);
                gpu.syrk_full(phase, 1.0, p, Trans::Yes, 0.0, &mut g)?;
                gparts.push(g);
            }
            let g = self.reduce_to_host(Phase::Comms, &gparts)?;
            let cost = self.gpus[0].cost().clone();
            self.charge_all(phase, cost.host_cholesky(n));
            let r = if self.mode == ExecMode::Compute {
                rlra_lapack::cholesky_upper(&g)?
            } else {
                Mat::identity(n)
            };
            let rparts = self.broadcast(Phase::Comms, &r);
            for ((p, &gi), rp) in parts.iter_mut().zip(&alive).zip(&rparts) {
                let gpu = &mut self.gpus[gi];
                gpu.trsm(
                    phase,
                    rlra_blas::Side::Right,
                    rlra_blas::UpLo::Upper,
                    Trans::No,
                    1.0,
                    rp,
                    p,
                )?;
            }
            if self.mode == ExecMode::Compute {
                let mut tmp = Mat::zeros(n, n);
                rlra_blas::gemm(
                    1.0,
                    r.as_ref(),
                    Trans::No,
                    r_total.as_ref(),
                    Trans::No,
                    0.0,
                    tmp.as_mut(),
                )?;
                r_total = tmp;
            }
        }
        self.barrier();
        Ok(r_total)
    }

    /// Per-phase breakdown of the whole run: element-wise max across the
    /// (phase-synchronized) GPU timelines. Host/communication phases are
    /// already charged to every GPU, so the max is exact for them.
    pub fn breakdown(&self) -> Timeline {
        let mut t = self.gpus[0].timeline().clone();
        for g in &self.gpus[1..] {
            t.max_with(g.timeline());
        }
        t
    }

    /// Total communication + host time (the paper's "Comms" bar).
    pub fn comms_time(&self) -> f64 {
        self.host_timeline.get(Phase::Comms)
    }

    /// Resets all clocks and timelines.
    pub fn reset(&mut self) {
        for g in &mut self.gpus {
            g.reset();
        }
        self.host_timeline = Timeline::new();
    }

    /// Accounting snapshot of the whole node: every device plus the
    /// centrally tracked host/communication timeline.
    pub fn export_account(&self) -> FleetAccount {
        let mut host_phases = [0.0; Phase::COUNT];
        for (slot, phase) in host_phases.iter_mut().zip(Phase::ALL) {
            *slot = self.host_timeline.get(phase);
        }
        FleetAccount {
            gpus: self.gpus.iter().map(Gpu::export_account).collect(),
            host_phases,
        }
    }

    /// Overwrites the node's accounting state from a snapshot taken by
    /// [`MultiGpu::export_account`]. Restores each device first (so a
    /// per-device failure leaves the host timeline untouched), then
    /// rebuilds the host timeline from the recorded per-phase totals.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::CheckpointCorrupt`] when the GPU counts
    /// differ or a device snapshot names an unknown kernel.
    pub fn restore_account(&mut self, acc: &FleetAccount) -> Result<()> {
        if acc.gpus.len() != self.gpus.len() {
            return Err(MatrixError::CheckpointCorrupt {
                detail: "fleet snapshot gpu count does not match this node",
            });
        }
        for (g, a) in self.gpus.iter_mut().zip(&acc.gpus) {
            g.restore_account(a)?;
        }
        let mut host = Timeline::new();
        for (phase, &secs) in Phase::ALL.into_iter().zip(&acc.host_phases) {
            if secs > 0.0 {
                host.add(phase, secs);
            }
        }
        self.host_timeline = host;
        Ok(())
    }

    /// Folds the accounting of a finished simulation context into this one.
    ///
    /// Execution backends time a run on an internal dry-run `MultiGpu` and
    /// then credit the caller's context with the result: every phase of every
    /// simulated GPU timeline is charged onto the corresponding GPU here
    /// (advancing its clock; the sim time is already straggler-scaled, so
    /// the fold is raw), launch/sync counters are added, device losses are
    /// propagated, and the host timeline is merged.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Internal`] when the GPU counts differ.
    pub fn absorb(&mut self, sim: &MultiGpu) -> Result<()> {
        if self.gpus.len() != sim.gpus.len() {
            return Err(MatrixError::Internal {
                op: "MultiGpu::absorb",
                invariant: "simulation and caller contexts have the same GPU count",
            });
        }
        for (g, s) in self.gpus.iter_mut().zip(&sim.gpus) {
            for phase in Phase::ALL {
                let secs = s.timeline().get(phase);
                if secs > 0.0 {
                    g.charge_raw(phase, secs);
                }
            }
            g.launches += s.launches;
            g.syncs += s.syncs;
            g.absorb_metrics(s);
            if let Some((device, at)) = s.dead_info() {
                g.mark_dead(device, at);
            }
            if s.is_quarantined() {
                g.quarantine();
            }
        }
        // analyze: allow(trace, folds an already-traced simulation whose events the sim devices emitted)
        self.host_timeline.merge(&sim.host_timeline);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_lapack::householder::orthogonality_error;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    fn ctx(ng: usize) -> MultiGpu {
        MultiGpu::new(ng, DeviceSpec::k40c(), ExecMode::Compute).unwrap()
    }

    #[test]
    fn row_chunks_cover_and_balance() {
        let mg = ctx(3);
        let chunks = mg.row_chunks(10);
        assert_eq!(chunks, vec![(0, 4), (4, 3), (7, 3)]);
        let total: usize = chunks.iter().map(|c| c.1).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn distribute_preserves_rows() {
        let mut mg = ctx(3);
        let a = pseudo(11, 4, 1);
        let parts = mg.distribute_rows(&a, false);
        let mut row = 0;
        for p in &parts {
            let pm = p.expect_values();
            for r in 0..pm.rows() {
                for c in 0..4 {
                    assert_eq!(pm[(r, c)], a[(row + r, c)]);
                }
            }
            row += pm.rows();
        }
        assert_eq!(row, 11);
    }

    #[test]
    fn reduce_sums_parts() {
        let mut mg = ctx(2);
        let p1 = mg.gpu(0).resident(&Mat::filled(2, 3, 1.0));
        let p2 = mg.gpu(1).resident(&Mat::filled(2, 3, 2.0));
        let sum = mg.reduce_to_host(Phase::Comms, &[p1, p2]).unwrap();
        assert_eq!(sum, Mat::filled(2, 3, 3.0));
        assert!(mg.comms_time() > 0.0);
    }

    #[test]
    fn reduce_rejects_mismatched_parts() {
        let mut mg = ctx(2);
        let p1 = mg.gpu(0).resident(&Mat::zeros(2, 3));
        let p2 = mg.gpu(1).resident(&Mat::zeros(3, 2));
        assert!(mg.reduce_to_host(Phase::Comms, &[p1, p2]).is_err());
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut mg = ctx(2);
        mg.gpu_mut(0).charge(Phase::Other, 1.0);
        mg.barrier();
        assert_eq!(mg.gpu(0).clock(), mg.gpu(1).clock());
    }

    #[test]
    fn distributed_cholqr_rows_orthonormalizes() {
        // C is 6 x 40, distributed as two 6 x 20 column blocks (the
        // block-column layout of C^T's block rows).
        let mut mg = ctx(2);
        let c = pseudo(6, 40, 2);
        let c1 = c.submatrix(0, 0, 6, 20);
        let c2 = c.submatrix(0, 20, 6, 20);
        let mut parts = vec![mg.gpu(0).resident(&c1), mg.gpu(1).resident(&c2)];
        let r = mg
            .cholqr_rows_distributed(Phase::OrthIter, &mut parts, true)
            .unwrap();
        // Reassemble Q and check row orthonormality and R^T Q = C.
        let q = parts[0]
            .expect_values()
            .hcat(parts[1].expect_values())
            .unwrap();
        assert!(orthogonality_error(&q.transpose()) < 1e-12);
        let mut rec = Mat::zeros(6, 40);
        rlra_blas::gemm(
            1.0,
            r.as_ref(),
            Trans::Yes,
            q.as_ref(),
            Trans::No,
            0.0,
            rec.as_mut(),
        )
        .unwrap();
        assert!(rec.approx_eq(&c, 1e-10));
    }

    #[test]
    fn distributed_cholqr_matches_single_gpu_result() {
        let c = pseudo(5, 30, 3);
        // Single-device reference.
        let (q_ref, _) = rlra_lapack::cholqr_rows2(&c).unwrap();
        // Distributed.
        let mut mg = ctx(3);
        let chunks = mg.row_chunks(30);
        let mut parts: Vec<DMat> = chunks
            .iter()
            .enumerate()
            .map(|(i, &(s, l))| mg.gpu(i).resident(&c.submatrix(0, s, 5, l)))
            .collect();
        mg.cholqr_rows_distributed(Phase::OrthIter, &mut parts, true)
            .unwrap();
        let q = parts[0]
            .expect_values()
            .hcat(parts[1].expect_values())
            .unwrap()
            .hcat(parts[2].expect_values())
            .unwrap();
        assert!(
            q.approx_eq(&q_ref, 1e-10),
            "distributed and single-GPU Q differ"
        );
    }

    #[test]
    fn lost_gpu_drops_out_of_distribution_and_collectives() {
        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
        mg.gpu_mut(1).mark_dead(1, 17);
        assert_eq!(mg.ng(), 3);
        assert_eq!(mg.ng_alive(), 2);
        assert_eq!(mg.alive_indices(), vec![0, 2]);
        // Distribution covers all rows over the two survivors.
        let parts = mg.distribute_rows_shape(11, 4);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts.iter().map(super::DMat::rows).sum::<usize>(), 11);
        // Collectives accept one (equally-shaped) part per survivor.
        let bparts: Vec<DMat> = mg
            .alive_indices()
            .iter()
            .map(|&gi| mg.gpu(gi).resident_shape(4, 7))
            .collect();
        assert!(mg.reduce_to_host(Phase::Comms, &bparts).is_ok());
        let dead_clock = mg.gpu(1).clock();
        mg.barrier();
        assert_eq!(mg.gpu(1).clock(), dead_clock, "dead clocks stay frozen");
    }

    #[test]
    fn absorb_propagates_device_loss_and_counts() {
        let mut caller = MultiGpu::new(2, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        let mut sim = MultiGpu::new(2, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
        sim.gpu_mut(0).charge(Phase::GemmIter, 1.5);
        sim.gpu_mut(1).mark_dead(1, 3);
        caller.absorb(&sim).unwrap();
        assert_eq!(caller.gpu(0).timeline().get(Phase::GemmIter), 1.5);
        assert!(caller.gpu(1).is_dead());
        // Mismatched fleet sizes are an error, not a panic.
        let wrong = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
        assert!(caller.absorb(&wrong).is_err());
    }

    #[test]
    fn quarantined_gpu_leaves_the_schedulable_fleet_with_a_frozen_clock() {
        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
        mg.gpu_mut(1).charge(Phase::GemmIter, 5.0);
        mg.gpu_mut(1).quarantine();
        assert_eq!(mg.ng(), 3);
        assert_eq!(mg.ng_alive(), 2);
        assert_eq!(mg.alive_indices(), vec![0, 2]);
        // The straggler's inflated clock must not drag survivors forward.
        mg.barrier();
        assert_eq!(mg.gpu(0).clock(), 0.0);
        assert_eq!(mg.gpu(2).clock(), 0.0);
        assert_eq!(mg.gpu(1).clock(), 5.0, "quarantined clock stays frozen");
        // Wall clock still remembers the time the straggler really spent.
        assert_eq!(mg.time(), 5.0);
        // Collectives skip it too.
        let parts = mg.distribute_rows_shape(10, 4);
        assert_eq!(parts.len(), 2);
        mg.reduce_to_host(Phase::Comms, &parts).unwrap();
        assert_eq!(mg.gpu(1).clock(), 5.0);
    }

    #[test]
    fn fleet_account_round_trips_through_restore() {
        let mut mg = MultiGpu::new(2, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
        mg.gpu_mut(0).charge(Phase::Sampling, 0.25);
        mg.gpu_mut(1).charge(Phase::GemmIter, 0.5);
        let parts = mg.distribute_rows_shape(8, 8);
        mg.reduce_to_host(Phase::Comms, &parts).unwrap();
        let acc = mg.export_account();
        // Diverge, then restore: state must match the snapshot exactly.
        mg.gpu_mut(0).charge(Phase::Qrcp, 9.0);
        mg.restore_account(&acc).unwrap();
        assert_eq!(mg.export_account(), acc);
        assert_eq!(mg.comms_time(), acc.host_phases[Phase::Comms as usize]);
        // A fleet of the wrong size is a clean error.
        let mut other = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
        assert!(other.restore_account(&acc).is_err());
    }

    #[test]
    fn zero_gpus_is_an_error() {
        assert!(MultiGpu::new(0, DeviceSpec::k40c(), ExecMode::DryRun).is_err());
    }

    #[test]
    fn comms_grow_with_gpu_count() {
        let run = |ng: usize| -> f64 {
            let mut mg = MultiGpu::new(ng, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
            let parts: Vec<DMat> = (0..ng)
                .map(|i| mg.gpu(i).resident_shape(64, 2500))
                .collect();
            mg.reduce_to_host(Phase::Comms, &parts).unwrap();
            mg.comms_time()
        };
        assert!(run(3) > run(2));
        assert!(run(2) > run(1));
    }
}

#[cfg(test)]
mod tall_tests {
    use super::*;
    use rlra_lapack::householder::orthogonality_error;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    #[test]
    fn distributed_tall_cholqr_orthonormalizes() {
        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        let x = pseudo(45, 6, 1);
        let mut parts = mg.distribute_rows(&x, false);
        let r = mg
            .cholqr_tall_distributed(Phase::Qr, &mut parts, true)
            .unwrap();
        // Reassemble Q.
        let q = parts[0]
            .expect_values()
            .vcat(parts[1].expect_values())
            .unwrap()
            .vcat(parts[2].expect_values())
            .unwrap();
        assert!(orthogonality_error(&q) < 1e-12);
        // Q R = X.
        let mut rec = Mat::zeros(45, 6);
        rlra_blas::gemm(
            1.0,
            q.as_ref(),
            Trans::No,
            r.as_ref(),
            Trans::No,
            0.0,
            rec.as_mut(),
        )
        .unwrap();
        assert!(rec.approx_eq(&x, 1e-10));
    }

    #[test]
    fn distributed_tall_matches_single_device() {
        let x = pseudo(30, 4, 2);
        let (q_ref, _) = rlra_lapack::cholqr2(&x).unwrap();
        let mut mg = MultiGpu::new(2, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        let mut parts = mg.distribute_rows(&x, false);
        mg.cholqr_tall_distributed(Phase::Qr, &mut parts, true)
            .unwrap();
        let q = parts[0]
            .expect_values()
            .vcat(parts[1].expect_values())
            .unwrap();
        assert!(q.approx_eq(&q_ref, 1e-10));
    }
}
