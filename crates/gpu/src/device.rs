//! The simulated GPU handle, device buffers, and cuBLAS-like kernels.

use crate::cost::CostModel;
use crate::fault::{FaultInjector, FaultKind, SdcEvent, SdcInjector};
use crate::spec::DeviceSpec;
use crate::timeline::{Phase, Timeline};
use rand::Rng;
use rlra_blas::Trans;
use rlra_matrix::{Mat, MatrixError, Result};
use rlra_trace::{DeviceMetrics, KernelStats, TraceEvent, Tracer};
use std::collections::BTreeMap;

/// Whether kernels actually compute or only account time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Kernels compute real results on the CPU (via `rlra-blas`) while
    /// charging simulated time. Used by tests, examples, and the
    /// numerical experiments.
    Compute,
    /// Kernels only track shapes and charge simulated time. Used by the
    /// benchmark harness to evaluate the paper's full-size problems
    /// (m up to 150,000) without hour-long CPU arithmetic.
    DryRun,
}

/// A matrix resident in (simulated) device memory.
///
/// In [`ExecMode::DryRun`] only the shape is tracked (`data == None`);
/// kernels then skip arithmetic.
#[derive(Debug, Clone)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Option<Mat>,
}

impl DMat {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Size of the buffer in bytes.
    pub fn bytes(&self) -> u64 {
        8 * self.rows as u64 * self.cols as u64
    }

    /// Borrow the materialized values (`None` in dry-run mode).
    pub fn values(&self) -> Option<&Mat> {
        self.data.as_ref()
    }

    /// Materialized values, panicking in dry-run mode. Call only on paths
    /// that are documented to require [`ExecMode::Compute`] (primarily
    /// tests and examples; kernels use the fallible accessors).
    pub fn expect_values(&self) -> &Mat {
        self.data
            .as_ref()
            // analyze: allow(panic, documented panicking accessor for compute-mode callers)
            .expect("DMat has no values (dry-run mode)")
    }

    /// Materialized values as an error in dry-run mode. Kernels call
    /// this only under `computing()`, so absence is an internal
    /// invariant break, not a caller mistake.
    fn values_req(&self) -> Result<&Mat> {
        self.data.as_ref().ok_or(MatrixError::Internal {
            op: "DMat::values_req",
            invariant: "compute-mode kernel read a dry-run buffer",
        })
    }

    /// Mutable flavor of [`DMat::values_req`].
    fn values_mut_req(&mut self) -> Result<&mut Mat> {
        self.data.as_mut().ok_or(MatrixError::Internal {
            op: "DMat::values_mut_req",
            invariant: "compute-mode kernel wrote a dry-run buffer",
        })
    }

    fn from_mat(m: Mat) -> Self {
        DMat {
            rows: m.rows(),
            cols: m.cols(),
            data: Some(m),
        }
    }

    fn shape_only(rows: usize, cols: usize) -> Self {
        DMat {
            rows,
            cols,
            data: None,
        }
    }
}

/// A simulated GPU: a device clock, a per-phase timeline, kernel-call
/// counters, and cuBLAS/cuRAND/cuFFT-like kernels that advance them.
#[derive(Debug, Clone)]
pub struct Gpu {
    cost: CostModel,
    mode: ExecMode,
    clock: f64,
    timeline: Timeline,
    /// Number of kernel launches issued (diagnostics).
    pub launches: u64,
    /// Number of host synchronizations (diagnostics).
    pub syncs: u64,
    /// Optional fault schedule polled before every kernel launch.
    injector: Option<FaultInjector>,
    /// Optional silent-data-corruption schedule, polled alongside the
    /// fault injector. Due events never abort a launch; they queue in
    /// `sdc_fired` for the integrity layer to apply and account.
    sdc: Option<SdcInjector>,
    /// SDC events that have fired but are not yet drained by the
    /// integrity layer.
    sdc_fired: Vec<SdcEvent>,
    /// Straggler cost multiplier (1.0 unless a straggler event fired).
    slowdown: f64,
    /// `(device, launch)` at which a fail-stop fired; set once, forever.
    dead: Option<(usize, u64)>,
    /// Ordinal of this device within its fleet (0 for standalone GPUs;
    /// globally numbered across cluster nodes).
    device: usize,
    /// Optional trace sink. Absent tracing costs one branch per charge.
    tracer: Option<Tracer>,
    /// Simulated seconds spent idling at barriers (subset of `clock`).
    waits: f64,
    /// Per-kernel metrics counters. Always on (independent of the
    /// tracer) so traced and untraced runs report identical metrics.
    kernels: BTreeMap<&'static str, KernelStats>,
    /// Bytes moved over PCIe (uploads + downloads).
    bytes_moved: f64,
    /// Set when the straggler watchdog quarantined this device: it is
    /// alive (not fail-stopped) but excluded from redistribution
    /// targets and barriers.
    quarantined: bool,
}

/// What a charge was for — determines the metrics counters touched and
/// the kind of [`TraceEvent`] emitted.
#[derive(Clone, Copy)]
enum Charge {
    /// Generic simulated time (launch/sync overheads, host folds,
    /// per-device shares of collective work).
    Span,
    /// Idle time at a barrier.
    Wait,
    /// A named kernel launch.
    Kernel {
        name: &'static str,
        dims: [usize; 3],
        flops: f64,
        bytes: f64,
    },
    /// A PCIe transfer.
    Transfer { bytes: f64 },
}

/// Point-in-time copy of one device's absolute accounting state —
/// the per-device unit of a durable checkpoint's executor account.
///
/// Kernel names are owned strings here (the live counters key on
/// `&'static str`); [`Gpu::restore_account`] re-interns them against
/// the simulator's known-kernel table, rejecting foreign names.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceAccount {
    /// Simulated device clock (seconds).
    pub clock: f64,
    /// Per-phase timeline seconds, indexed like [`Phase::ALL`].
    pub phases: [f64; Phase::COUNT],
    /// Kernel launches issued.
    pub launches: u64,
    /// Host synchronizations.
    pub syncs: u64,
    /// Seconds spent idling at barriers (subset of `clock`).
    pub waits: f64,
    /// Bytes moved over PCIe.
    pub bytes_moved: f64,
    /// Straggler cost multiplier in effect.
    pub slowdown: f64,
    /// Whether the straggler watchdog quarantined the device.
    pub quarantined: bool,
    /// `(device, launch)` of a fail-stop loss, if one fired.
    pub dead: Option<(usize, u64)>,
    /// Per-kernel metrics counters, sorted by name.
    pub kernels: Vec<(String, KernelStats)>,
}

/// Maps a serialized kernel name back to the simulator's static name
/// table (the names [`Gpu::charge_kernel`] is ever called with).
fn intern_kernel_name(name: &str) -> Option<&'static str> {
    const KNOWN: &[&str] = &[
        "abft", "curand", "fft", "gather", "gemm", "launch", "syrk", "trmm", "trsm",
    ];
    KNOWN.iter().find(|k| **k == name).copied()
}

impl Gpu {
    /// Creates a simulated GPU from a device spec.
    pub fn new(spec: DeviceSpec, mode: ExecMode) -> Self {
        Gpu {
            cost: CostModel::new(spec),
            mode,
            clock: 0.0,
            timeline: Timeline::new(),
            launches: 0,
            syncs: 0,
            injector: None,
            sdc: None,
            sdc_fired: Vec::new(),
            slowdown: 1.0,
            dead: None,
            device: 0,
            tracer: None,
            waits: 0.0,
            kernels: BTreeMap::new(),
            bytes_moved: 0.0,
            quarantined: false,
        }
    }

    /// A K40c in compute mode — the default configuration for tests and
    /// examples.
    pub fn k40c() -> Self {
        Gpu::new(DeviceSpec::k40c(), ExecMode::Compute)
    }

    /// A K40c in dry-run (timing-only) mode.
    pub fn k40c_dry() -> Self {
        Gpu::new(DeviceSpec::k40c(), ExecMode::DryRun)
    }

    /// Current simulated time in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The per-phase time breakdown.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The cost model (for the analytic performance model crate).
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Resets the clock, timeline, and metrics counters (keeps the mode
    /// and spec).
    ///
    /// Fault state is deliberately *not* reset: a lost device stays
    /// lost, a straggler stays slow, and consumed injector events stay
    /// consumed — faults model hardware, not per-run bookkeeping.
    pub fn reset(&mut self) {
        self.clock = 0.0;
        self.timeline = Timeline::new();
        self.launches = 0;
        self.syncs = 0;
        self.waits = 0.0;
        self.kernels.clear();
        self.bytes_moved = 0.0;
    }

    // --- Observability ------------------------------------------------------

    /// Ordinal of this device within its fleet.
    pub fn device(&self) -> usize {
        self.device
    }

    /// Sets the fleet ordinal (multi-GPU and cluster contexts number
    /// their devices at construction).
    pub fn set_device(&mut self, device: usize) {
        self.device = device;
    }

    /// Installs (or clears) the trace sink events are emitted to.
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.tracer = tracer;
    }

    /// Removes and returns the installed tracer, if any.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// The installed tracer, if any (clones share the sink).
    pub fn tracer(&self) -> Option<Tracer> {
        self.tracer.clone()
    }

    /// Snapshot of this device's metrics: busy/idle split, PCIe bytes,
    /// per-phase seconds, and per-kernel counters, with the calibrated
    /// peaks for roofline comparisons.
    pub fn device_metrics(&self) -> DeviceMetrics {
        let spec = self.cost.spec();
        let mut phase_seconds = BTreeMap::new();
        for p in Phase::ALL {
            let secs = self.timeline.get(p);
            if secs != 0.0 {
                phase_seconds.insert(p.label(), secs);
            }
        }
        DeviceMetrics {
            device: self.device,
            name: spec.name,
            launches: self.launches,
            syncs: self.syncs,
            busy_seconds: self.clock - self.waits,
            wait_seconds: self.waits,
            bytes_moved: self.bytes_moved,
            peak_gflops: spec.peak_dp_gflops,
            peak_gbs: spec.mem_bandwidth_gbs,
            phase_seconds,
            kernels: self.kernels.clone(),
        }
    }

    /// Folds another device's metrics counters into this one (used when
    /// an executor's internal dry-run twin is absorbed into the caller's
    /// device, so repeated runs keep accumulating).
    pub fn absorb_metrics(&mut self, other: &Gpu) {
        self.waits += other.waits;
        self.bytes_moved += other.bytes_moved;
        for (name, stats) in &other.kernels {
            self.kernels.entry(name).or_default().merge(stats);
        }
    }

    // --- Durable accounting snapshots ---------------------------------------

    /// Captures this device's *absolute* accounting state for a
    /// checkpoint snapshot. Restoring it with [`Gpu::restore_account`]
    /// on a reset device reproduces clock, timeline, counters and
    /// kernel metrics exactly, which is what lets a resumed run report
    /// bit-identically to an uninterrupted one.
    pub fn export_account(&self) -> DeviceAccount {
        let mut phases = [0.0; Phase::COUNT];
        for (slot, p) in phases.iter_mut().zip(Phase::ALL) {
            *slot = self.timeline.get(p);
        }
        DeviceAccount {
            clock: self.clock,
            phases,
            launches: self.launches,
            syncs: self.syncs,
            waits: self.waits,
            bytes_moved: self.bytes_moved,
            slowdown: self.slowdown,
            quarantined: self.quarantined,
            dead: self.dead,
            kernels: self
                .kernels
                .iter()
                .map(|(name, stats)| ((*name).to_string(), *stats))
                .collect(),
        }
    }

    /// Overwrites this device's accounting state with a captured
    /// account. The charges behind the restored clocks were traced by
    /// the run that exported the account, so nothing is re-emitted here
    /// (re-emitting would double-count the event stream).
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] when the account names a
    /// kernel this simulator never charges (a corrupt or foreign blob).
    pub fn restore_account(&mut self, acc: &DeviceAccount) -> Result<()> {
        let mut restored = BTreeMap::new();
        for (name, stats) in &acc.kernels {
            let interned = intern_kernel_name(name).ok_or(MatrixError::CheckpointCorrupt {
                detail: "unknown kernel name in device account",
            })?;
            restored.insert(interned, *stats);
        }
        self.clock = acc.clock;
        let mut tl = Timeline::new();
        for (slot, p) in acc.phases.iter().zip(Phase::ALL) {
            tl.add(p, *slot);
        }
        self.timeline = tl;
        self.launches = acc.launches;
        self.syncs = acc.syncs;
        self.waits = acc.waits;
        self.bytes_moved = acc.bytes_moved;
        self.slowdown = acc.slowdown;
        self.quarantined = acc.quarantined;
        self.dead = acc.dead;
        self.kernels = restored;
        Ok(())
    }

    /// Whether the straggler watchdog quarantined this device.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Quarantines the device: it stays alive (its clock and metrics
    /// survive into the report) but fleet schedulers exclude it from
    /// redistribution targets and barriers from now on.
    pub fn quarantine(&mut self) {
        self.quarantined = true;
    }

    // --- Fault injection ----------------------------------------------------

    /// Installs (or clears) the fault injector polled before every
    /// kernel launch.
    pub fn set_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector;
    }

    /// Removes and returns the installed injector, if any.
    pub fn take_injector(&mut self) -> Option<FaultInjector> {
        self.injector.take()
    }

    /// The installed injector, if any.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Number of fault events that have fired on this device.
    pub fn faults_injected(&self) -> u64 {
        self.injector
            .as_ref()
            .map(FaultInjector::fired)
            .unwrap_or(0)
    }

    /// Installs (or clears) the silent-data-corruption injector polled
    /// alongside the fault injector before every kernel launch.
    pub fn set_sdc_injector(&mut self, sdc: Option<SdcInjector>) {
        self.sdc = sdc;
    }

    /// Removes and returns the installed SDC injector, if any.
    pub fn take_sdc_injector(&mut self) -> Option<SdcInjector> {
        self.sdc.take()
    }

    /// The installed SDC injector, if any.
    pub fn sdc_injector(&self) -> Option<&SdcInjector> {
        self.sdc.as_ref()
    }

    /// Number of SDC events that have fired on this device.
    pub fn sdc_injected(&self) -> u64 {
        self.sdc.as_ref().map(SdcInjector::fired).unwrap_or(0)
    }

    /// Drains the SDC events that have fired but not yet been applied.
    /// The integrity layer calls this to learn which resident buffers
    /// were poisoned; an unarmed run never calls it, and the queued
    /// events then (correctly) change nothing.
    pub fn drain_sdc_events(&mut self) -> Vec<SdcEvent> {
        std::mem::take(&mut self.sdc_fired)
    }

    /// Re-queues SDC events (used when an executor's internal dry-run
    /// twin hands undrained events back to the caller's device).
    pub fn requeue_sdc_events(&mut self, mut events: Vec<SdcEvent>) {
        self.sdc_fired.append(&mut events);
    }

    /// Whether a fail-stop fault has permanently killed this device.
    pub fn is_dead(&self) -> bool {
        self.dead.is_some()
    }

    /// `(device, launch)` of the fail-stop that killed this device.
    pub fn dead_info(&self) -> Option<(usize, u64)> {
        self.dead
    }

    /// Marks the device as lost (used to propagate a loss observed on a
    /// simulation twin back onto the caller's device).
    pub fn mark_dead(&mut self, device: usize, at: u64) {
        self.dead = Some((device, at));
    }

    /// Current straggler cost multiplier (1.0 = nominal speed).
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Polls the injector at the current launch counter. Called at the
    /// top of every kernel; a dead device fails every launch.
    fn poll_faults(&mut self) -> Result<()> {
        if let Some((device, at)) = self.dead {
            return Err(MatrixError::DeviceFault {
                device,
                kind: rlra_matrix::DeviceFaultKind::FailStop,
                at,
            });
        }
        // Silent corruption first: it never aborts the launch, so a
        // transient firing at the same ordinal must not mask it.
        if let Some(sdc) = self.sdc.as_mut() {
            while let Some(ev) = sdc.poll(self.launches) {
                self.sdc_fired.push(ev);
            }
        }
        let Some(inj) = self.injector.as_mut() else {
            return Ok(());
        };
        while let Some(ev) = inj.poll(self.launches) {
            let trace_fault = |tracer: &Option<Tracer>, kind: &'static str, at: u64, clock: f64| {
                if let Some(t) = tracer {
                    t.emit(TraceEvent::Fault {
                        device: ev.device,
                        kind,
                        at_launch: at,
                        time: clock,
                    });
                }
            };
            match ev.kind {
                FaultKind::Straggler { factor } => {
                    trace_fault(&self.tracer, "straggler", self.launches, self.clock);
                    self.slowdown = factor;
                }
                FaultKind::Transient => {
                    trace_fault(&self.tracer, "transient", self.launches, self.clock);
                    return Err(MatrixError::DeviceFault {
                        device: ev.device,
                        kind: rlra_matrix::DeviceFaultKind::Transient,
                        at: self.launches,
                    });
                }
                FaultKind::FailStop => {
                    let at = self.launches;
                    trace_fault(&self.tracer, "fail-stop", at, self.clock);
                    self.dead = Some((ev.device, at));
                    return Err(MatrixError::DeviceFault {
                        device: ev.device,
                        kind: rlra_matrix::DeviceFaultKind::FailStop,
                        at,
                    });
                }
            }
        }
        Ok(())
    }

    /// The one funnel through which simulated time is accrued: advances
    /// the clock, adds to the timeline, updates the metrics counters,
    /// and emits exactly one trace event per charge — which is what
    /// keeps per-device event durations and `Timeline` totals equal by
    /// construction (the `trace` lint in `cargo xtask analyze` pins
    /// every clock/timeline mutation to an emitting function).
    fn accrue(&mut self, phase: Phase, secs: f64, charge: Charge) {
        let start = self.clock;
        self.clock += secs;
        self.timeline.add(phase, secs);
        match charge {
            Charge::Span => {}
            Charge::Wait => self.waits += secs,
            Charge::Kernel {
                name, flops, bytes, ..
            } => {
                let k = self.kernels.entry(name).or_default();
                k.launches += 1;
                k.seconds += secs;
                k.flops += flops;
                k.bytes += bytes;
            }
            Charge::Transfer { bytes } => self.bytes_moved += bytes,
        }
        if let Some(t) = &self.tracer {
            let device = self.device;
            let phase = phase.label();
            let end = self.clock;
            t.emit(match charge {
                Charge::Span => TraceEvent::Span {
                    device,
                    phase,
                    start,
                    end,
                },
                Charge::Wait => TraceEvent::Wait {
                    device,
                    phase,
                    start,
                    end,
                },
                Charge::Kernel {
                    name,
                    dims,
                    flops,
                    bytes,
                } => TraceEvent::Kernel {
                    device,
                    name,
                    phase,
                    dims,
                    flops,
                    bytes,
                    start,
                    end,
                },
                Charge::Transfer { bytes } => TraceEvent::Transfer {
                    device,
                    phase,
                    bytes,
                    start,
                    end,
                },
            });
        }
    }

    /// Charges `secs` of simulated time to `phase`, inflated by the
    /// straggler multiplier when one is active.
    pub fn charge(&mut self, phase: Phase, secs: f64) {
        let secs = secs * self.slowdown;
        self.accrue(phase, secs, Charge::Span);
    }

    /// Charges `secs` without the straggler multiplier. Used for
    /// folding already-scaled simulated time from an internal dry-run
    /// back into a caller device.
    pub fn charge_raw(&mut self, phase: Phase, secs: f64) {
        self.accrue(phase, secs, Charge::Span);
    }

    /// Charges `secs` of *idle* time (a barrier wait for stragglers):
    /// counted in the clock and timeline like any charge, but tracked
    /// as waiting in the metrics and traced as a `Wait` event.
    pub fn charge_wait(&mut self, phase: Phase, secs: f64) {
        self.accrue(phase, secs, Charge::Wait);
    }

    /// Charges one launch of the named kernel: counts it (globally and
    /// per kernel name), applies the straggler multiplier, and traces a
    /// `Kernel` event carrying the dims/flops/bytes attribution.
    pub fn charge_kernel(
        &mut self,
        phase: Phase,
        name: &'static str,
        dims: [usize; 3],
        flops: f64,
        bytes: f64,
        secs: f64,
    ) {
        self.launches += 1;
        let secs = secs * self.slowdown;
        self.accrue(
            phase,
            secs,
            Charge::Kernel {
                name,
                dims,
                flops,
                bytes,
            },
        );
    }

    /// Charges a PCIe transfer of `bytes` bytes to `phase`.
    fn charge_transfer(&mut self, phase: Phase, bytes: u64) {
        let secs = self.cost.transfer(bytes) * self.slowdown;
        self.accrue(
            phase,
            secs,
            Charge::Transfer {
                bytes: bytes as f64,
            },
        );
    }

    /// Charges one kernel launch to `phase`.
    pub fn charge_launch(&mut self, phase: Phase) {
        self.charge_kernel(phase, "launch", [0; 3], 0.0, 0.0, self.cost.launch());
    }

    /// Charges one host synchronization to `phase`.
    pub fn charge_sync(&mut self, phase: Phase) {
        self.syncs += 1;
        self.charge(phase, self.cost.sync());
    }

    /// Whether this GPU materializes values.
    fn computing(&self) -> bool {
        self.mode == ExecMode::Compute
    }

    // --- Memory -----------------------------------------------------------

    /// Uploads a host matrix to the device (PCIe transfer charged to
    /// `phase`).
    pub fn upload(&mut self, phase: Phase, m: &Mat) -> DMat {
        let bytes = 8 * m.rows() as u64 * m.cols() as u64;
        self.charge_transfer(phase, bytes);
        if self.computing() {
            DMat::from_mat(m.clone())
        } else {
            DMat::shape_only(m.rows(), m.cols())
        }
    }

    /// Registers a host matrix as already resident on the device without
    /// charging a transfer (used for input matrices assumed to start in
    /// device memory, as the paper's experiments do).
    pub fn resident(&self, m: &Mat) -> DMat {
        if self.computing() {
            DMat::from_mat(m.clone())
        } else {
            DMat::shape_only(m.rows(), m.cols())
        }
    }

    /// Registers a shape-only resident matrix (dry-run inputs at paper
    /// scale, where materializing 150,000×2,500 values is pointless).
    pub fn resident_shape(&self, rows: usize, cols: usize) -> DMat {
        DMat::shape_only(rows, cols)
    }

    /// Allocates a zeroed device matrix (no time charged; cudaMalloc is
    /// amortized in real deployments).
    pub fn alloc(&self, rows: usize, cols: usize) -> DMat {
        if self.computing() {
            DMat::from_mat(Mat::zeros(rows, cols))
        } else {
            DMat::shape_only(rows, cols)
        }
    }

    /// Downloads a device matrix to the host (PCIe transfer charged).
    /// Returns zeros in dry-run mode.
    pub fn download(&mut self, phase: Phase, d: &DMat) -> Mat {
        self.charge_transfer(phase, d.bytes());
        match &d.data {
            Some(m) => m.clone(),
            None => Mat::zeros(d.rows, d.cols),
        }
    }

    // --- cuBLAS-like kernels ------------------------------------------------

    /// `C ← α·op(A)·op(B) + β·C` (cuBLAS `dgemm`).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] on inconsistent shapes.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm(
        &mut self,
        phase: Phase,
        alpha: f64,
        a: &DMat,
        ta: Trans,
        b: &DMat,
        tb: Trans,
        beta: f64,
        c: &mut DMat,
    ) -> Result<()> {
        let (m, ka) = ta.apply(a.rows, a.cols);
        let (kb, n) = tb.apply(b.rows, b.cols);
        if ka != kb || c.rows != m || c.cols != n {
            return Err(MatrixError::DimensionMismatch {
                op: "Gpu::gemm",
                expected: format!("({m}x{ka})·({ka}x{n}) -> {m}x{n}"),
                found: format!("op(B) {kb}x{n}, C {}x{}", c.rows, c.cols),
            });
        }
        self.poll_faults()?;
        let flops = 2.0 * m as f64 * n as f64 * ka as f64;
        let bytes = 8.0 * (m as f64 * ka as f64 + ka as f64 * n as f64 + 2.0 * m as f64 * n as f64);
        self.charge_kernel(
            phase,
            "gemm",
            [m, n, ka],
            flops,
            bytes,
            self.cost.gemm(m, n, ka),
        );
        if self.computing() {
            let am = a.values_req()?;
            let bm = b.values_req()?;
            let cm = c.values_mut_req()?;
            rlra_blas::gemm(alpha, am.as_ref(), ta, bm.as_ref(), tb, beta, cm.as_mut())?;
        }
        Ok(())
    }

    /// Symmetric rank-k update building the full (mirrored) Gram matrix
    /// `C = α·op(A)·op(A)ᵀ + β·C` (cuBLAS `dsyrk` + a mirror kernel).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] on inconsistent shapes.
    pub fn syrk_full(
        &mut self,
        phase: Phase,
        alpha: f64,
        a: &DMat,
        trans: Trans,
        beta: f64,
        c: &mut DMat,
    ) -> Result<()> {
        let (l, k) = trans.apply(a.rows, a.cols);
        if c.rows != l || c.cols != l {
            return Err(MatrixError::DimensionMismatch {
                op: "Gpu::syrk_full",
                expected: format!("C {l}x{l}"),
                found: format!("C {}x{}", c.rows, c.cols),
            });
        }
        self.poll_faults()?;
        let flops = l as f64 * l as f64 * k as f64;
        let bytes = 8.0 * (l as f64 * k as f64 + l as f64 * l as f64);
        self.charge_kernel(phase, "syrk", [l, l, k], flops, bytes, self.cost.syrk(l, k));
        if self.computing() {
            let am = a.values_req()?;
            let cm = c.values_mut_req()?;
            rlra_blas::syrk(
                alpha,
                am.as_ref(),
                trans,
                beta,
                cm.as_mut(),
                rlra_blas::UpLo::Upper,
            )?;
            // Mirror to the lower triangle.
            for j in 0..l {
                for i in 0..j {
                    let v = cm[(i, j)];
                    cm[(j, i)] = v;
                }
            }
        }
        Ok(())
    }

    /// Triangular solve `op(T)·X = α·B` or `X·op(T) = α·B` (cuBLAS
    /// `dtrsm`), overwriting `b`.
    ///
    /// # Errors
    ///
    /// Propagates shape and singularity errors from the kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn trsm(
        &mut self,
        phase: Phase,
        side: rlra_blas::Side,
        uplo: rlra_blas::UpLo,
        trans: Trans,
        alpha: f64,
        t: &DMat,
        b: &mut DMat,
    ) -> Result<()> {
        let l = t.rows;
        let nrhs = match side {
            rlra_blas::Side::Left => b.cols,
            rlra_blas::Side::Right => b.rows,
        };
        self.poll_faults()?;
        let flops = l as f64 * l as f64 * nrhs as f64;
        let bytes = 8.0 * (l as f64 * l as f64 / 2.0 + 2.0 * l as f64 * nrhs as f64);
        self.charge_kernel(
            phase,
            "trsm",
            [l, nrhs, l],
            flops,
            bytes,
            self.cost.trsm(l, nrhs),
        );
        if self.computing() {
            let tm = t.values_req()?;
            let bm = b.values_mut_req()?;
            rlra_blas::trsm(
                side,
                uplo,
                trans,
                rlra_blas::Diag::NonUnit,
                alpha,
                tm.as_ref(),
                bm.as_mut(),
            )?;
        }
        Ok(())
    }

    /// Triangular matrix multiply `B ← α·op(T)·B` / `B·op(T)` (cuBLAS
    /// `dtrmm`).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn trmm(
        &mut self,
        phase: Phase,
        side: rlra_blas::Side,
        uplo: rlra_blas::UpLo,
        trans: Trans,
        alpha: f64,
        t: &DMat,
        b: &mut DMat,
    ) -> Result<()> {
        let l = t.rows;
        let nrhs = match side {
            rlra_blas::Side::Left => b.cols,
            rlra_blas::Side::Right => b.rows,
        };
        self.poll_faults()?;
        let flops = l as f64 * l as f64 * nrhs as f64;
        let bytes = 8.0 * (l as f64 * l as f64 / 2.0 + 2.0 * l as f64 * nrhs as f64);
        // Same cost class as trsm.
        self.charge_kernel(
            phase,
            "trmm",
            [l, nrhs, l],
            flops,
            bytes,
            self.cost.trsm(l, nrhs),
        );
        if self.computing() {
            let tm = t.values_req()?;
            let bm = b.values_mut_req()?;
            rlra_blas::trmm(
                side,
                uplo,
                trans,
                rlra_blas::Diag::NonUnit,
                alpha,
                tm.as_ref(),
                bm.as_mut(),
            )?;
        }
        Ok(())
    }

    // --- cuRAND / cuFFT ------------------------------------------------------

    /// Generates an `rows × cols` Gaussian matrix on the device (cuRAND).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DeviceFault`] when an injected fault is
    /// due. On a transient fault the RNG stream is *not* advanced, so a
    /// retried launch draws the same values.
    pub fn curand_gaussian(
        &mut self,
        phase: Phase,
        rows: usize,
        cols: usize,
        rng: &mut impl Rng,
    ) -> Result<DMat> {
        self.poll_faults()?;
        let bytes = 8.0 * rows as f64 * cols as f64;
        self.charge_kernel(
            phase,
            "curand",
            [rows, cols, 0],
            0.0,
            bytes,
            self.cost.curand(rows * cols),
        );
        if self.computing() {
            Ok(DMat::from_mat(rlra_matrix::gaussian_mat(rows, cols, rng)))
        } else {
            // Keep the RNG stream position identical across modes so a
            // dry-run and a compute run of the same experiment stay
            // seed-compatible.
            let mut sink = vec![0.0f64; rows * cols];
            rlra_matrix::randn::fill_standard_normal(rng, &mut sink);
            Ok(DMat::shape_only(rows, cols))
        }
    }

    /// Full-FFT **column** sampling `B = Ω·Aᵀ` (cuFFT batched transform
    /// along the rows of `a`): returns the `ℓ × m` sampled matrix — the
    /// variant of the paper's Figure 8(b).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the SRFT operator.
    pub fn cufft_sample_cols(
        &mut self,
        phase: Phase,
        op: &rlra_fft::SrftOperator,
        a: &DMat,
    ) -> Result<DMat> {
        self.poll_faults()?;
        let len = op.padded_len();
        let fft_flops = 5.0 * len as f64 * (len as f64).log2() * a.rows as f64;
        self.charge_kernel(
            phase,
            "fft",
            [len, a.rows, 0],
            fft_flops,
            16.0 * len as f64 * a.rows as f64,
            self.cost.fft_cols(len, a.rows),
        );
        let gathered = op.rows() * a.rows;
        self.charge_kernel(
            phase,
            "gather",
            [op.rows(), a.rows, 0],
            0.0,
            16.0 * gathered as f64,
            self.cost.blas1(gathered, 2.0),
        );
        if self.computing() {
            Ok(DMat::from_mat(op.sample_cols(a.expect_values())?))
        } else {
            if a.cols != op.input_len() {
                return Err(MatrixError::DimensionMismatch {
                    op: "Gpu::cufft_sample_cols",
                    expected: format!("a.cols() == {}", op.input_len()),
                    found: format!("a.cols() == {}", a.cols),
                });
            }
            Ok(DMat::shape_only(op.rows(), a.rows))
        }
    }

    /// Full-FFT sampling of the columns of `a` (cuFFT batched transform
    /// plus a selection kernel): returns the `ℓ × n` sampled matrix.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the SRFT operator.
    pub fn cufft_sample_rows(
        &mut self,
        phase: Phase,
        op: &rlra_fft::SrftOperator,
        a: &DMat,
    ) -> Result<DMat> {
        self.poll_faults()?;
        // Batched FFT + gather.
        let len = op.padded_len();
        let fft_flops = 5.0 * len as f64 * (len as f64).log2() * a.cols as f64;
        self.charge_kernel(
            phase,
            "fft",
            [len, a.cols, 0],
            fft_flops,
            16.0 * len as f64 * a.cols as f64,
            self.cost.fft_cols(len, a.cols),
        );
        let gathered = op.rows() * a.cols;
        self.charge_kernel(
            phase,
            "gather",
            [op.rows(), a.cols, 0],
            0.0,
            16.0 * gathered as f64,
            self.cost.blas1(gathered, 2.0),
        );
        if self.computing() {
            Ok(DMat::from_mat(op.sample_rows(a.expect_values())?))
        } else {
            if a.rows != op.input_len() {
                return Err(MatrixError::DimensionMismatch {
                    op: "Gpu::cufft_sample_rows",
                    expected: format!("a.rows() == {}", op.input_len()),
                    found: format!("a.rows() == {}", a.rows),
                });
            }
            Ok(DMat::shape_only(op.rows(), a.cols))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    #[test]
    fn gemm_computes_and_charges() {
        let mut gpu = Gpu::k40c();
        let a = gpu.resident(&pseudo(8, 6, 1));
        let b = gpu.resident(&pseudo(6, 5, 2));
        let mut c = gpu.alloc(8, 5);
        gpu.gemm(
            Phase::Sampling,
            1.0,
            &a,
            Trans::No,
            &b,
            Trans::No,
            0.0,
            &mut c,
        )
        .unwrap();
        assert!(gpu.clock() > 0.0);
        assert_eq!(gpu.timeline().get(Phase::Sampling), gpu.clock());
        let expect =
            rlra_blas::naive::gemm_ref(a.expect_values(), Trans::No, b.expect_values(), Trans::No);
        assert!(c.expect_values().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn dry_run_charges_identical_time_without_values() {
        let run = |mode: ExecMode| -> f64 {
            let mut gpu = Gpu::new(DeviceSpec::k40c(), mode);
            let a = match mode {
                ExecMode::Compute => gpu.resident(&pseudo(100, 50, 3)),
                ExecMode::DryRun => gpu.resident_shape(100, 50),
            };
            let b = match mode {
                ExecMode::Compute => gpu.resident(&pseudo(50, 30, 4)),
                ExecMode::DryRun => gpu.resident_shape(50, 30),
            };
            let mut c = gpu.alloc(100, 30);
            gpu.gemm(
                Phase::GemmIter,
                1.0,
                &a,
                Trans::No,
                &b,
                Trans::No,
                0.0,
                &mut c,
            )
            .unwrap();
            gpu.clock()
        };
        let t_compute = run(ExecMode::Compute);
        let t_dry = run(ExecMode::DryRun);
        assert_eq!(t_compute, t_dry, "cost must not depend on mode");
    }

    #[test]
    fn dry_run_has_no_values() {
        let gpu = Gpu::k40c_dry();
        let d = gpu.resident_shape(10, 10);
        assert!(d.values().is_none());
    }

    #[test]
    fn gemm_shape_check() {
        let mut gpu = Gpu::k40c_dry();
        let a = gpu.resident_shape(3, 4);
        let b = gpu.resident_shape(5, 2);
        let mut c = gpu.alloc(3, 2);
        assert!(gpu
            .gemm(Phase::Other, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c)
            .is_err());
    }

    #[test]
    fn syrk_full_mirrors() {
        let mut gpu = Gpu::k40c();
        let a = gpu.resident(&pseudo(4, 9, 5));
        let mut g = gpu.alloc(4, 4);
        gpu.syrk_full(Phase::OrthIter, 1.0, &a, Trans::No, 0.0, &mut g)
            .unwrap();
        let gm = g.expect_values();
        for i in 0..4 {
            for j in 0..4 {
                assert!((gm[(i, j)] - gm[(j, i)]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn upload_download_roundtrip_and_comms_charge() {
        let mut gpu = Gpu::k40c();
        let m = pseudo(20, 10, 6);
        let d = gpu.upload(Phase::Comms, &m);
        let back = gpu.download(Phase::Comms, &d);
        assert_eq!(back, m);
        assert!(gpu.timeline().get(Phase::Comms) > 0.0);
    }

    #[test]
    fn curand_is_seed_compatible_across_modes() {
        let mut g1 = Gpu::k40c();
        let mut g2 = Gpu::k40c_dry();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        g1.curand_gaussian(Phase::Prng, 5, 5, &mut r1).unwrap();
        g2.curand_gaussian(Phase::Prng, 5, 5, &mut r2).unwrap();
        // After the call both streams must be at the same position.
        let a: f64 = r1.gen();
        let b: f64 = r2.gen();
        assert_eq!(a, b);
    }

    #[test]
    fn reset_clears_state() {
        let mut gpu = Gpu::k40c_dry();
        gpu.charge(Phase::Other, 1.0);
        gpu.reset();
        assert_eq!(gpu.clock(), 0.0);
        assert_eq!(gpu.timeline().total(), 0.0);
    }

    #[test]
    fn transient_fault_fails_one_launch_then_clears() {
        use crate::fault::FaultPlan;
        let mut gpu = Gpu::k40c_dry();
        gpu.set_injector(Some(FaultPlan::new().transient(0, 0).injector_for(0)));
        let a = gpu.resident_shape(4, 4);
        let b = gpu.resident_shape(4, 4);
        let mut c = gpu.alloc(4, 4);
        let err = gpu
            .gemm(Phase::Other, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c)
            .unwrap_err();
        assert!(matches!(
            err,
            MatrixError::DeviceFault {
                device: 0,
                kind: rlra_matrix::DeviceFaultKind::Transient,
                ..
            }
        ));
        assert!(!gpu.is_dead());
        // The retry succeeds: the event is consumed.
        gpu.gemm(Phase::Other, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c)
            .unwrap();
        assert_eq!(gpu.faults_injected(), 1);
    }

    #[test]
    fn fail_stop_kills_every_subsequent_launch() {
        use crate::fault::FaultPlan;
        let mut gpu = Gpu::k40c_dry();
        gpu.set_injector(Some(FaultPlan::new().fail_stop(3, 1).injector_for(3)));
        let a = gpu.resident_shape(4, 4);
        let b = gpu.resident_shape(4, 4);
        let mut c = gpu.alloc(4, 4);
        gpu.gemm(Phase::Other, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c)
            .unwrap();
        for _ in 0..2 {
            let err = gpu
                .gemm(Phase::Other, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c)
                .unwrap_err();
            assert!(matches!(
                err,
                MatrixError::DeviceFault {
                    device: 3,
                    kind: rlra_matrix::DeviceFaultKind::FailStop,
                    at: 1,
                }
            ));
        }
        assert!(gpu.is_dead());
    }

    #[test]
    fn straggler_inflates_kernel_cost_without_failing() {
        use crate::fault::FaultPlan;
        let run = |factor: Option<f64>| -> f64 {
            let mut gpu = Gpu::k40c_dry();
            if let Some(fx) = factor {
                gpu.set_injector(Some(FaultPlan::new().straggler(0, 0, fx).injector_for(0)));
            }
            let a = gpu.resident_shape(64, 64);
            let b = gpu.resident_shape(64, 64);
            let mut c = gpu.alloc(64, 64);
            gpu.gemm(Phase::Other, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c)
                .unwrap();
            gpu.clock()
        };
        let nominal = run(None);
        let slowed = run(Some(3.0));
        assert!((slowed - 3.0 * nominal).abs() < 1e-15 * slowed.abs().max(1.0));
    }

    #[test]
    fn no_fire_injector_changes_nothing() {
        use crate::fault::FaultPlan;
        let run = |inject: bool| -> (f64, Timeline, u64) {
            let mut gpu = Gpu::k40c_dry();
            if inject {
                // Scheduled far beyond any launch this run performs.
                gpu.set_injector(Some(
                    FaultPlan::new().fail_stop(0, 1_000_000).injector_for(0),
                ));
            }
            let a = gpu.resident_shape(16, 16);
            let b = gpu.resident_shape(16, 16);
            let mut c = gpu.alloc(16, 16);
            gpu.gemm(Phase::Other, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c)
                .unwrap();
            (gpu.clock(), gpu.timeline().clone(), gpu.launches)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn sdc_events_queue_silently_and_never_abort_launches() {
        use crate::fault::{SdcKind, SdcPlan};
        let mut gpu = Gpu::k40c_dry();
        gpu.set_sdc_injector(Some(
            SdcPlan::new()
                .bit_flip(0, 0, "sketch", 2, 3, 54)
                .perturb(0, 1, "power_b", 0, 0, 1e-3)
                .injector_for(0),
        ));
        let a = gpu.resident_shape(16, 16);
        let b = gpu.resident_shape(16, 16);
        let mut c = gpu.alloc(16, 16);
        // Two launches: both SDC events fall due, neither errors.
        for _ in 0..2 {
            gpu.gemm(Phase::Other, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c)
                .unwrap();
        }
        assert_eq!(gpu.sdc_injected(), 2);
        assert_eq!(gpu.faults_injected(), 0);
        let events = gpu.drain_sdc_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].buffer, "sketch");
        assert_eq!(events[0].kind, SdcKind::BitFlip { bit: 54 });
        assert_eq!(events[1].buffer, "power_b");
        assert!(gpu.drain_sdc_events().is_empty(), "drain consumes");
    }

    #[test]
    fn no_fire_sdc_injector_changes_nothing() {
        use crate::fault::SdcPlan;
        let run = |inject: bool| -> (f64, Timeline, u64) {
            let mut gpu = Gpu::k40c_dry();
            if inject {
                gpu.set_sdc_injector(Some(
                    SdcPlan::new()
                        .bit_flip(0, 1_000_000, "sketch", 0, 0, 54)
                        .injector_for(0),
                ));
            }
            let a = gpu.resident_shape(16, 16);
            let b = gpu.resident_shape(16, 16);
            let mut c = gpu.alloc(16, 16);
            gpu.gemm(Phase::Other, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c)
                .unwrap();
            (gpu.clock(), gpu.timeline().clone(), gpu.launches)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn trsm_trmm_roundtrip_on_device() {
        let mut gpu = Gpu::k40c();
        let mut t = pseudo(5, 5, 7);
        for j in 0..5 {
            for i in j + 1..5 {
                t[(i, j)] = 0.0;
            }
            t[(j, j)] += 3.0;
        }
        let td = gpu.resident(&t);
        let b0 = pseudo(5, 3, 8);
        let mut bd = gpu.resident(&b0);
        gpu.trmm(
            Phase::Qr,
            rlra_blas::Side::Left,
            rlra_blas::UpLo::Upper,
            Trans::No,
            1.0,
            &td,
            &mut bd,
        )
        .unwrap();
        gpu.trsm(
            Phase::Qr,
            rlra_blas::Side::Left,
            rlra_blas::UpLo::Upper,
            Trans::No,
            1.0,
            &td,
            &mut bd,
        )
        .unwrap();
        assert!(bd.expect_values().approx_eq(&b0, 1e-10));
    }
}

#[cfg(test)]
mod fft_col_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cufft_col_sampling_matches_cpu_operator() {
        let mut gpu = Gpu::k40c();
        let a = Mat::from_fn(6, 32, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let mut rng = StdRng::seed_from_u64(4);
        let op = rlra_fft::SrftOperator::new(32, 5, rlra_fft::SrftScheme::Full, &mut rng).unwrap();
        let ad = gpu.resident(&a);
        let b = gpu.cufft_sample_cols(Phase::Sampling, &op, &ad).unwrap();
        let expect = op.sample_cols(&a).unwrap();
        assert!(b.expect_values().approx_eq(&expect, 1e-12));
        assert_eq!(b.shape(), (5, 6));
    }

    #[test]
    fn cufft_col_sampling_dry_run_validates_shape() {
        let mut gpu = Gpu::k40c_dry();
        let mut rng = StdRng::seed_from_u64(5);
        let op = rlra_fft::SrftOperator::new(32, 4, rlra_fft::SrftScheme::Full, &mut rng).unwrap();
        let good = gpu.resident_shape(6, 32);
        assert!(gpu.cufft_sample_cols(Phase::Sampling, &op, &good).is_ok());
        let bad = gpu.resident_shape(6, 31);
        assert!(gpu.cufft_sample_cols(Phase::Sampling, &op, &bad).is_err());
    }
}
