//! Deterministic fault injection for the simulated fleet.
//!
//! The paper's closing argument (§11) is that random sampling wins
//! bigger as communication gets more expensive — the multi-GPU and
//! cluster regimes where devices actually fail. This module lets the
//! simulation schedule faults *deterministically*: a [`FaultPlan`] is a
//! list of events pinned to per-device kernel-launch ordinals, either
//! hand-built or drawn from an explicitly seeded `StdRng` (never from
//! ambient entropy, so the workspace `determinism` lint and the
//! bit-identical cross-backend tests keep holding).
//!
//! Three fault kinds model the failure modes that matter for a
//! sketching pipeline:
//!
//! * [`FaultKind::Transient`] — one launch aborts (an ECC double-bit
//!   error); the device survives and the launch can be retried.
//! * [`FaultKind::FailStop`] — permanent device loss; every later
//!   launch on that device fails.
//! * [`FaultKind::Straggler`] — the device falls behind; its kernel
//!   costs are multiplied by a factor from the event onward.
//!
//! A [`FaultInjector`] is the per-device consumable view of a plan: the
//! device polls it before each kernel launch and surfaces due events as
//! [`MatrixError::DeviceFault`](rlra_matrix::MatrixError). Recovery —
//! retry budgets, backoff, fleet degradation — is the executor layer's
//! job (`rlra-core::backend`), not the device's.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlra_matrix::DeviceFaultKind;

/// What an injected fault does to the device (scheduling-side view;
/// the error-surface classification is
/// [`DeviceFaultKind`](rlra_matrix::DeviceFaultKind)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// One launch fails; a retry of the same launch succeeds.
    Transient,
    /// The device is lost; all subsequent launches fail.
    FailStop,
    /// Kernel costs on the device are multiplied by `factor` (>= 1.0)
    /// from this event onward. Does not abort any launch.
    Straggler {
        /// Cost multiplier applied to subsequent kernel charges.
        factor: f64,
    },
}

impl FaultKind {
    /// The error-surface classification of this fault.
    pub fn classify(self) -> DeviceFaultKind {
        match self {
            FaultKind::Transient => DeviceFaultKind::Transient,
            FaultKind::FailStop => DeviceFaultKind::FailStop,
            FaultKind::Straggler { .. } => DeviceFaultKind::Straggler,
        }
    }
}

/// One scheduled fault: `kind` fires on `device` immediately before
/// that device's `at_launch`-th kernel launch (0-based ordinal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Global index of the device the fault targets.
    pub device: usize,
    /// Per-device kernel-launch ordinal at which the fault fires.
    pub at_launch: u64,
    /// What fires.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events for a fleet.
///
/// Build one by hand with the [`transient`](FaultPlan::transient) /
/// [`fail_stop`](FaultPlan::fail_stop) /
/// [`straggler`](FaultPlan::straggler) builders, or draw a random plan
/// from an explicit seed with [`random`](FaultPlan::random). Install it
/// on a `Gpu`, `MultiGpu` or `Cluster`; devices without events in the
/// plan behave exactly as if no plan were installed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (fires nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a transient kernel failure.
    pub fn transient(mut self, device: usize, at_launch: u64) -> Self {
        self.events.push(FaultEvent {
            device,
            at_launch,
            kind: FaultKind::Transient,
        });
        self
    }

    /// Schedules a fail-stop device loss.
    pub fn fail_stop(mut self, device: usize, at_launch: u64) -> Self {
        self.events.push(FaultEvent {
            device,
            at_launch,
            kind: FaultKind::FailStop,
        });
        self
    }

    /// Schedules a straggler slowdown (`factor` >= 1.0 is clamped up).
    pub fn straggler(mut self, device: usize, at_launch: u64, factor: f64) -> Self {
        self.events.push(FaultEvent {
            device,
            at_launch,
            kind: FaultKind::Straggler {
                factor: factor.max(1.0),
            },
        });
        self
    }

    /// Draws a random plan from an explicit seed: for each of `devices`
    /// devices, launch ordinals in `[0, horizon)` fail independently
    /// with probability `1 / mtbf_launches` (a geometric inter-arrival
    /// — the discrete analogue of exponential MTBF). Each arrival is a
    /// transient with probability `transient_share`, else a fail-stop.
    ///
    /// The draw is a pure function of its arguments; the same seed
    /// always yields the same plan.
    pub fn random(
        seed: u64,
        devices: usize,
        horizon: u64,
        mtbf_launches: u64,
        transient_share: f64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        let p = 1.0 / mtbf_launches.max(1) as f64;
        for device in 0..devices {
            let mut at: u64 = 0;
            loop {
                // Geometric inter-arrival via inverse CDF.
                let u: f64 = rng.gen_range(0.0..1.0);
                let gap = (1.0 - u).ln() / (1.0 - p).ln();
                at = at.saturating_add((gap.max(0.0) as u64).saturating_add(1));
                if at >= horizon {
                    break;
                }
                let transient = rng.gen_range(0.0..1.0) < transient_share;
                plan.events.push(FaultEvent {
                    device,
                    at_launch: at,
                    kind: if transient {
                        FaultKind::Transient
                    } else {
                        FaultKind::FailStop
                    },
                });
                if !transient {
                    break; // the device is gone; later events are moot
                }
            }
        }
        plan
    }

    /// All scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The per-device consumable injector for `device`: that device's
    /// events, sorted by launch ordinal.
    pub fn injector_for(&self, device: usize) -> FaultInjector {
        let mut events: Vec<FaultEvent> = self
            .events
            .iter()
            .copied()
            .filter(|e| e.device == device)
            .collect();
        events.sort_by_key(|e| e.at_launch);
        FaultInjector {
            device,
            events,
            cursor: 0,
            fired: 0,
        }
    }
}

/// Per-device consumable view of a [`FaultPlan`].
///
/// The owning device calls [`poll`](FaultInjector::poll) with its
/// launch counter before each kernel launch; each event fires exactly
/// once, in launch order.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    device: usize,
    events: Vec<FaultEvent>,
    cursor: usize,
    fired: u64,
}

impl FaultInjector {
    /// The global device index this injector is bound to.
    pub fn device(&self) -> usize {
        self.device
    }

    /// Number of events that have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Returns the next event due at or before launch ordinal
    /// `launches`, consuming it, or `None` if nothing is due.
    pub fn poll(&mut self, launches: u64) -> Option<FaultEvent> {
        let ev = *self.events.get(self.cursor)?;
        if ev.at_launch <= launches {
            self.cursor += 1;
            self.fired += 1;
            Some(ev)
        } else {
            None
        }
    }
}

/// What a silent-data-corruption event does to the poisoned element.
///
/// Unlike [`FaultKind`], an SDC never aborts a launch or surfaces an
/// error from the device: the corrupted value flows onward unless a
/// checksum-armed consumer detects it (`rlra-core`'s integrity guard).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SdcKind {
    /// XOR one bit of the IEEE-754 representation (`bit` in `0..64`).
    BitFlip {
        /// Bit index into the `f64` bit pattern (0 = LSB of mantissa).
        bit: u8,
    },
    /// Multiply the element by `1 + scale` — models a kernel that
    /// quietly returned a wrong (but finite) number.
    Perturb {
        /// Relative perturbation applied to the element.
        scale: f64,
    },
}

/// One scheduled silent corruption: the element at `(row, col)` of the
/// resident buffer named `buffer` on `device` is poisoned at that
/// device's `at_launch`-th kernel launch (0-based ordinal). Row/column
/// indices are taken modulo the buffer's actual shape at apply time, so
/// a plan written without knowing exact panel sizes still lands inside
/// the buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdcEvent {
    /// Global index of the device whose buffer is poisoned.
    pub device: usize,
    /// Per-device kernel-launch ordinal at which the corruption lands.
    pub at_launch: u64,
    /// Name of the resident buffer targeted (`"sketch"`, `"power_b"`,
    /// `"power_c"`, `"orth_b"`, `"orth_c"`, `"panel"`, ...).
    pub buffer: &'static str,
    /// Row index into the buffer (reduced modulo its row count).
    pub row: usize,
    /// Column index into the buffer (reduced modulo its column count).
    pub col: usize,
    /// How the element is corrupted.
    pub kind: SdcKind,
}

/// A deterministic schedule of silent-data-corruption events.
///
/// Mirrors [`FaultPlan`]: build by hand with
/// [`bit_flip`](SdcPlan::bit_flip) / [`perturb`](SdcPlan::perturb), or
/// draw from an explicit seed with [`random`](SdcPlan::random). Install
/// it on a `Gpu`, `MultiGpu` or `Cluster` via their `install_sdc_plan`;
/// an empty plan leaves every run bit-identical to an uninstrumented
/// one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SdcPlan {
    events: Vec<SdcEvent>,
}

impl SdcPlan {
    /// An empty plan (corrupts nothing).
    pub fn new() -> Self {
        SdcPlan::default()
    }

    /// Schedules a single-bit flip (`bit` clamped into `0..64`).
    pub fn bit_flip(
        mut self,
        device: usize,
        at_launch: u64,
        buffer: &'static str,
        row: usize,
        col: usize,
        bit: u8,
    ) -> Self {
        self.events.push(SdcEvent {
            device,
            at_launch,
            buffer,
            row,
            col,
            kind: SdcKind::BitFlip { bit: bit.min(63) },
        });
        self
    }

    /// Schedules a scaled perturbation of one element.
    #[allow(clippy::too_many_arguments)]
    pub fn perturb(
        mut self,
        device: usize,
        at_launch: u64,
        buffer: &'static str,
        row: usize,
        col: usize,
        scale: f64,
    ) -> Self {
        self.events.push(SdcEvent {
            device,
            at_launch,
            buffer,
            row,
            col,
            kind: SdcKind::Perturb { scale },
        });
        self
    }

    /// Draws a random plan from an explicit seed: for each of `devices`
    /// devices, launch ordinals in `[0, horizon)` corrupt independently
    /// with probability `1 / mtbe_launches` (geometric inter-arrival,
    /// the same discretized-MTBF model as [`FaultPlan::random`]). Each
    /// arrival picks a buffer from `buffers` uniformly, a position in a
    /// large virtual grid (reduced modulo the real shape at apply
    /// time), and an exponent-region bit to flip — the class a checksum
    /// must always catch.
    ///
    /// The draw is a pure function of its arguments.
    pub fn random(
        seed: u64,
        devices: usize,
        horizon: u64,
        mtbe_launches: u64,
        buffers: &[&'static str],
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = SdcPlan::new();
        if buffers.is_empty() {
            return plan;
        }
        let p = 1.0 / mtbe_launches.max(1) as f64;
        for device in 0..devices {
            let mut at: u64 = 0;
            loop {
                let u: f64 = rng.gen_range(0.0..1.0);
                let gap = (1.0 - u).ln() / (1.0 - p).ln();
                at = at.saturating_add((gap.max(0.0) as u64).saturating_add(1));
                if at >= horizon {
                    break;
                }
                let buffer = buffers[rng.gen_range(0..buffers.len())];
                plan.events.push(SdcEvent {
                    device,
                    at_launch: at,
                    buffer,
                    row: rng.gen_range(0..1usize << 20),
                    col: rng.gen_range(0..1usize << 20),
                    // Exponent bits 52..=62: flips a checksum can never
                    // confuse with rounding noise.
                    kind: SdcKind::BitFlip {
                        bit: rng.gen_range(52..63) as u8,
                    },
                });
            }
        }
        plan
    }

    /// All scheduled events.
    pub fn events(&self) -> &[SdcEvent] {
        &self.events
    }

    /// The per-device consumable injector for `device`: that device's
    /// events, sorted by launch ordinal.
    pub fn injector_for(&self, device: usize) -> SdcInjector {
        let mut events: Vec<SdcEvent> = self
            .events
            .iter()
            .copied()
            .filter(|e| e.device == device)
            .collect();
        events.sort_by_key(|e| e.at_launch);
        SdcInjector {
            device,
            events,
            cursor: 0,
            fired: 0,
        }
    }
}

/// Per-device consumable view of an [`SdcPlan`].
///
/// The owning device polls it alongside its [`FaultInjector`]; due
/// events are queued silently (corruption never aborts a launch) for
/// the integrity layer to apply against the named buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct SdcInjector {
    device: usize,
    events: Vec<SdcEvent>,
    cursor: usize,
    fired: u64,
}

impl SdcInjector {
    /// The global device index this injector is bound to.
    pub fn device(&self) -> usize {
        self.device
    }

    /// Number of events that have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Returns the next event due at or before launch ordinal
    /// `launches`, consuming it, or `None` if nothing is due.
    pub fn poll(&mut self, launches: u64) -> Option<SdcEvent> {
        let ev = *self.events.get(self.cursor)?;
        if ev.at_launch <= launches {
            self.cursor += 1;
            self.fired += 1;
            Some(ev)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_events() {
        let plan = FaultPlan::new()
            .transient(0, 3)
            .fail_stop(1, 10)
            .straggler(2, 5, 2.5);
        assert_eq!(plan.events().len(), 3);
        assert_eq!(plan.events()[2].kind, FaultKind::Straggler { factor: 2.5 });
    }

    #[test]
    fn straggler_factor_clamped_up() {
        let plan = FaultPlan::new().straggler(0, 0, 0.25);
        assert_eq!(plan.events()[0].kind, FaultKind::Straggler { factor: 1.0 });
    }

    #[test]
    fn injector_fires_each_event_once_in_order() {
        let plan = FaultPlan::new()
            .transient(0, 7)
            .transient(0, 2)
            .fail_stop(1, 0);
        let mut inj = plan.injector_for(0);
        assert_eq!(inj.device(), 0);
        assert!(inj.poll(1).is_none());
        let first = inj.poll(2).expect("event due at launch 2");
        assert_eq!(first.at_launch, 2);
        assert!(inj.poll(3).is_none());
        let second = inj.poll(100).expect("event due at launch 7");
        assert_eq!(second.at_launch, 7);
        assert!(inj.poll(1_000_000).is_none());
        assert_eq!(inj.fired(), 2);
    }

    #[test]
    fn injector_ignores_other_devices() {
        let plan = FaultPlan::new().fail_stop(1, 0);
        let mut inj = plan.injector_for(0);
        assert!(inj.poll(u64::MAX).is_none());
        assert_eq!(inj.fired(), 0);
    }

    #[test]
    fn random_plan_is_deterministic_in_its_seed() {
        let a = FaultPlan::random(42, 4, 10_000, 500, 0.5);
        let b = FaultPlan::random(42, 4, 10_000, 500, 0.5);
        let c = FaultPlan::random(43, 4, 10_000, 500, 0.5);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different plans");
    }

    #[test]
    fn random_plan_stops_a_device_at_its_fail_stop() {
        let plan = FaultPlan::random(7, 8, 100_000, 50, 0.3);
        for d in 0..8 {
            let evs: Vec<_> = plan.events().iter().filter(|e| e.device == d).collect();
            for (i, e) in evs.iter().enumerate() {
                if e.kind == FaultKind::FailStop {
                    assert_eq!(i, evs.len() - 1, "no events after a fail-stop");
                }
            }
        }
    }

    #[test]
    fn sdc_builders_accumulate_and_clamp() {
        let plan = SdcPlan::new()
            .bit_flip(0, 3, "sketch", 1, 2, 77)
            .perturb(1, 5, "power_b", 0, 0, 1e-3);
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.events()[0].kind, SdcKind::BitFlip { bit: 63 });
        assert_eq!(plan.events()[1].kind, SdcKind::Perturb { scale: 1e-3 });
    }

    #[test]
    fn sdc_injector_fires_each_event_once_in_order() {
        let plan = SdcPlan::new()
            .bit_flip(0, 7, "sketch", 0, 0, 54)
            .bit_flip(0, 2, "sketch", 1, 1, 54)
            .bit_flip(1, 0, "power_b", 0, 0, 54);
        let mut inj = plan.injector_for(0);
        assert_eq!(inj.device(), 0);
        assert!(inj.poll(1).is_none());
        let first = inj.poll(2).expect("event due at launch 2");
        assert_eq!(first.at_launch, 2);
        assert!(inj.poll(3).is_none());
        let second = inj.poll(100).expect("event due at launch 7");
        assert_eq!(second.at_launch, 7);
        assert!(inj.poll(1_000_000).is_none());
        assert_eq!(inj.fired(), 2);
    }

    #[test]
    fn sdc_random_plan_is_deterministic_and_flips_exponent_bits() {
        let bufs = &["sketch", "power_b", "power_c"];
        let a = SdcPlan::random(42, 4, 10_000, 500, bufs);
        let b = SdcPlan::random(42, 4, 10_000, 500, bufs);
        let c = SdcPlan::random(43, 4, 10_000, 500, bufs);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different plans");
        assert!(!a.events().is_empty());
        for e in a.events() {
            let SdcKind::BitFlip { bit } = e.kind else {
                panic!("random SDC plans only schedule bit flips");
            };
            assert!((52..63).contains(&bit), "exponent-region flips only");
            assert!(bufs.contains(&e.buffer));
        }
        assert_eq!(SdcPlan::random(1, 2, 100, 4, &[]).events().len(), 0);
    }

    #[test]
    fn classify_maps_onto_error_kinds() {
        use rlra_matrix::DeviceFaultKind;
        assert_eq!(FaultKind::Transient.classify(), DeviceFaultKind::Transient);
        assert_eq!(FaultKind::FailStop.classify(), DeviceFaultKind::FailStop);
        assert_eq!(
            FaultKind::Straggler { factor: 2.0 }.classify(),
            DeviceFaultKind::Straggler
        );
    }
}
