//! # rlra-gpu
//!
//! A **simulated GPU** substrate standing in for the NVIDIA Tesla K40c
//! GPUs (cuBLAS / cuRAND / cuFFT) used in Mary et al., SC'15.
//!
//! ## Why a simulator
//!
//! This reproduction runs in a CPU-only environment. The paper's
//! performance story, however, is not about absolute K40c clocks — it is
//! about the *relative* behaviour of kernel classes: BLAS-3 GEMM runs
//! near compute peak, BLAS-1/2 kernels are memory- and latency-bound,
//! QP3 synchronizes at every pivot, and PCIe transfers dominate
//! multi-GPU communication. All of these are analytic properties that a
//! calibrated cost model reproduces faithfully.
//!
//! Every kernel in this crate therefore does two things:
//!
//! 1. **advances a simulated device clock** by a time computed from the
//!    [`cost::CostModel`], whose constants are calibrated against the
//!    numbers the paper itself publishes (1430 Gflop/s DP peak,
//!    288 GB/s, the GEMM-efficiency table of Fig. 18, the near-square
//!    GEMM rates of Fig. 15, the ≈135 Gflop/s cuFFT rate of Fig. 8), and
//! 2. **optionally computes the real result** on the CPU via
//!    `rlra-blas`/`rlra-lapack` (mode [`ExecMode::Compute`]), so that all
//!    numerical results in the reproduction are genuine. Mode
//!    [`ExecMode::DryRun`] skips the arithmetic and only accounts time,
//!    which lets the benchmark harness evaluate the paper's full-size
//!    problems (m up to 150,000) instantly.
//!
//! ## Layout
//!
//! - [`spec`] — device constants ([`spec::DeviceSpec::k40c`]),
//! - [`cost`] — the calibrated kernel cost model,
//! - [`timeline`] — per-phase time accounting matching the paper's
//!   stacked-bar legends (PRNG / Sampling / GEMM (iter) / Orth (iter) /
//!   QRCP / QR / Comms),
//! - [`device`] — the [`device::Gpu`] handle and [`device::DMat`] device
//!   buffers, with cuBLAS-like kernels,
//! - [`algos`] — timed GPU implementations of the orthogonalization
//!   schemes the paper benchmarks (CholQR, HHQR, CGS, MGS) and of
//!   truncated QP3,
//! - [`multigpu`] — the 1D block-row multi-GPU context of §4 with
//!   host-mediated reductions and broadcast,
//! - [`fault`] — deterministic, seed-driven fault injection (transient
//!   kernel failures, fail-stop device loss, straggler slowdown) against
//!   the simulated launch counters.

#![forbid(unsafe_code)]

pub mod algos;
pub mod cluster;
pub mod cost;
pub mod device;
pub mod fault;
pub mod multigpu;
pub mod spec;
pub mod timeline;

pub use cluster::{Cluster, ClusterAccount, NetworkSpec};
pub use device::{DMat, DeviceAccount, ExecMode, Gpu};
pub use fault::{
    FaultEvent, FaultInjector, FaultKind, FaultPlan, SdcEvent, SdcInjector, SdcKind, SdcPlan,
};
pub use multigpu::{FleetAccount, MultiGpu};
pub use spec::DeviceSpec;
pub use timeline::{Phase, Timeline};
