//! Timed GPU implementations of the orthogonalization schemes and of
//! truncated QP3 — the kernels benchmarked in the paper's Figures 7 and 9
//! and the building blocks of the random-sampling pipeline.
//!
//! Each routine charges the simulated clock for the exact kernel sequence
//! the algorithm issues on a real GPU (launches, BLAS-1/2/3 calls, host
//! synchronizations, PCIe transfers for the small host-side
//! factorizations), and — in [`ExecMode::Compute`] — produces the real
//! result via `rlra-lapack`.
//!
//! A note on the panel model: Householder QR and Gram–Schmidt panels are
//! charged with a fusion discount ([`PANEL_FUSION`]) reflecting that an
//! optimized implementation fuses the per-column BLAS-2 work into batched
//! kernels. QP3 *cannot* fuse its panel: every column must wait for a
//! pivot decision round trip — this is "the cost of column pivoting" the
//! paper isolates (HHQR ≈ 5× faster than QP3 in Fig. 7).
//!
//! [`ExecMode::Compute`]: crate::device::ExecMode::Compute

use crate::device::{DMat, ExecMode, Gpu};
use crate::timeline::Phase;
use rlra_lapack::qrcp::QrcpResult;
use rlra_matrix::{Mat, MatrixError, Result};

/// Fusion discount for non-pivoted panel BLAS-2 work (optimized batched
/// panels run ~3× faster than naive one-kernel-per-column code).
pub const PANEL_FUSION: f64 = 1.0 / 3.0;

/// Panel width used by the blocked factorizations on the device.
pub const GPU_PANEL: usize = 32;

fn values_or_err<'a>(d: &'a DMat, op: &'static str) -> Result<&'a Mat> {
    d.values().ok_or(MatrixError::InvalidParameter {
        name: "mode",
        message: format!("{op} requires ExecMode::Compute"),
    })
}

/// CholQR of a tall-skinny device matrix `B` (`m × n`, `m ≥ n`): returns
/// `(Q, R)` with `QR = B`. Set `reorth` for the paper's "one full
/// reorthogonalization".
///
/// Kernel sequence per pass: SYRK (Gram), D2H of the `n × n` Gram matrix,
/// host Cholesky, H2D of the factor, TRSM. Falls back to Householder QR
/// if the Cholesky breaks down (as the paper recommends).
///
/// # Errors
///
/// Propagates shape errors.
pub fn gpu_cholqr(gpu: &mut Gpu, phase: Phase, b: &DMat, reorth: bool) -> Result<(DMat, DMat)> {
    let (m, n) = b.shape();
    if m < n {
        return Err(MatrixError::DimensionMismatch {
            op: "gpu_cholqr",
            expected: "m >= n (tall-skinny)".into(),
            found: format!("{m}x{n}"),
        });
    }
    let passes = if reorth { 2 } else { 1 };
    for _ in 0..passes {
        charge_cholqr_pass(gpu, phase, n, m);
    }
    if reorth {
        // Merge R2·R1 (small n×n GEMM).
        gpu.charge(phase, gpu.cost().gemm(n, n, n));
    }
    match gpu.mode() {
        ExecMode::DryRun => Ok((gpu.resident_shape(m, n), gpu.resident_shape(n, n))),
        ExecMode::Compute => {
            let bm = values_or_err(b, "gpu_cholqr")?;
            // analyze: allow(numerics, device kernel below the Executor layer; breakdown escalates to gpu_hhqr right here and the guarded pipeline counts it)
            let result = if reorth {
                rlra_lapack::cholqr2(bm)
            } else {
                // analyze: allow(numerics, same exemption as the reorth branch above)
                rlra_lapack::cholqr(bm)
            };
            match result {
                Ok((q, r)) => Ok((gpu.resident(&q), gpu.resident(&r))),
                Err(MatrixError::NotPositiveDefinite { .. }) => {
                    // Breakdown: pay for and use Householder QR instead.
                    gpu_hhqr(gpu, phase, b)
                }
                Err(e) => Err(e),
            }
        }
    }
}

/// Charges one CholQR pass on an `m × n` (tall-skinny) input.
fn charge_cholqr_pass(gpu: &mut Gpu, phase: Phase, n: usize, m: usize) {
    gpu.launches += 2;
    gpu.charge(phase, gpu.cost().syrk(n, m));
    let gram_bytes = 8 * (n * n) as u64;
    gpu.charge(phase, gpu.cost().transfer(gram_bytes)); // G to host
    gpu.charge(phase, gpu.cost().host_cholesky(n));
    gpu.charge(phase, gpu.cost().transfer(gram_bytes)); // R back
    gpu.charge(phase, gpu.cost().trsm(n, m));
}

/// CholQR of a short-wide device matrix `B` (`ℓ × n`, `ℓ ≤ n`), the LQ
/// adaptation of the paper's Figure 4: returns `(Q, R)` with `RᵀQ = B`
/// and `QQᵀ = I`.
///
/// # Errors
///
/// Propagates shape errors.
pub fn gpu_cholqr_rows(
    gpu: &mut Gpu,
    phase: Phase,
    b: &DMat,
    reorth: bool,
) -> Result<(DMat, DMat)> {
    let (l, n) = b.shape();
    if l > n {
        return Err(MatrixError::DimensionMismatch {
            op: "gpu_cholqr_rows",
            expected: "l <= n (short-wide)".into(),
            found: format!("{l}x{n}"),
        });
    }
    let passes = if reorth { 2 } else { 1 };
    for _ in 0..passes {
        charge_cholqr_pass(gpu, phase, l, n);
    }
    if reorth {
        gpu.charge(phase, gpu.cost().gemm(l, l, l));
    }
    match gpu.mode() {
        ExecMode::DryRun => Ok((gpu.resident_shape(l, n), gpu.resident_shape(l, l))),
        ExecMode::Compute => {
            let bm = values_or_err(b, "gpu_cholqr_rows")?;
            // analyze: allow(numerics, device kernel below the Executor layer; breakdown escalates to transposed gpu_hhqr right here)
            let result = if reorth {
                rlra_lapack::cholqr_rows2(bm)
            } else {
                // analyze: allow(numerics, same exemption as the reorth branch above)
                rlra_lapack::cholqr_rows(bm)
            };
            match result {
                Ok((q, r)) => Ok((gpu.resident(&q), gpu.resident(&r))),
                Err(MatrixError::NotPositiveDefinite { .. }) => {
                    // Row-orthonormalize via Householder on the transpose.
                    let bt = gpu.resident(&bm.transpose());
                    let (qt, rt) = gpu_hhqr(gpu, phase, &bt)?;
                    let q = gpu.resident(&qt.expect_values().transpose());
                    let r = gpu.resident(&rt.expect_values().transpose());
                    // R from HHQR of Bᵀ is upper; its transpose is lower —
                    // but callers only use R to merge norms, and the
                    // breakdown path is exercised for recovery, not
                    // performance. Keep the transposed factor.
                    Ok((q, r))
                }
                Err(e) => Err(e),
            }
        }
    }
}

/// Blocked Householder QR on the device (the paper's **HHQR**): returns
/// the thin `(Q, R)`.
///
/// Charged kernel sequence per panel: per column a reflector generation
/// (BLAS-1 reduction + scale) and a fused panel update (GEMV + GER at the
/// panel width), then a compact-WY trailing update (two GEMMs) and the
/// same again to form `Q` explicitly.
///
/// # Errors
///
/// Propagates shape errors.
pub fn gpu_hhqr(gpu: &mut Gpu, phase: Phase, a: &DMat) -> Result<(DMat, DMat)> {
    let (m, n) = a.shape();
    let kmax = m.min(n);
    charge_hhqr_like(gpu, phase, m, n, PANEL_FUSION);
    // Forming the thin Q costs roughly another sweep of the same block
    // structure (orgqr).
    charge_hhqr_like(gpu, phase, m, kmax, PANEL_FUSION);
    match gpu.mode() {
        ExecMode::DryRun => Ok((gpu.resident_shape(m, kmax), gpu.resident_shape(kmax, n))),
        ExecMode::Compute => {
            let am = values_or_err(a, "gpu_hhqr")?;
            let (q, r) = rlra_lapack::qr_factor(am);
            Ok((gpu.resident(&q), gpu.resident(&r)))
        }
    }
}

/// Charges the cost skeleton of a blocked Householder factorization of an
/// `m × n` matrix, with the panel BLAS-2 work discounted by `fusion`.
fn charge_hhqr_like(gpu: &mut Gpu, phase: Phase, m: usize, n: usize, fusion: f64) {
    let kmax = m.min(n);
    let cost = gpu.cost().clone();
    let mut j = 0;
    while j < kmax {
        let nb = GPU_PANEL.min(kmax - j);
        let mloc = m - j;
        // Panel: per column, reflector generation + panel-width update.
        for c in 0..nb {
            gpu.launches += 3;
            gpu.charge(phase, cost.blas1(mloc - c, 2.0)); // nrm2 (device-side)
            gpu.charge(phase, cost.blas1(mloc - c, 2.0)); // scale
            let width = nb - c;
            gpu.charge(
                phase,
                (cost.gemv(mloc, width) + cost.ger(mloc, width)) * fusion,
            );
        }
        // Trailing compact-WY update: W = VᵀC, W = TᵀW, C −= V·W.
        let ntrail = n - j - nb;
        if ntrail > 0 {
            gpu.launches += 3;
            gpu.charge(phase, cost.gemm(nb, ntrail, mloc));
            gpu.charge(phase, cost.trsm(nb, ntrail));
            gpu.charge(phase, cost.gemm(mloc, ntrail, nb));
        }
        j += nb;
    }
}

/// Classical Gram–Schmidt on the device: per column, two GEMVs against
/// the already-orthogonalized prefix (BLAS-2) plus normalization.
///
/// # Errors
///
/// Propagates shape errors and singular-column breakdown.
pub fn gpu_cgs(gpu: &mut Gpu, phase: Phase, a: &DMat) -> Result<(DMat, DMat)> {
    let (m, n) = a.shape();
    let cost = gpu.cost().clone();
    for j in 0..n {
        gpu.launches += 4;
        if j > 0 {
            gpu.charge(phase, (cost.gemv(m, j) + cost.gemv(m, j)) * PANEL_FUSION);
        }
        gpu.charge(phase, cost.blas1(m, 2.0)); // nrm2
        gpu.charge(phase, cost.blas1(m, 2.0)); // scale
    }
    match gpu.mode() {
        ExecMode::DryRun => Ok((gpu.resident_shape(m, n), gpu.resident_shape(n, n))),
        ExecMode::Compute => {
            let (q, r) = rlra_lapack::cgs(values_or_err(a, "gpu_cgs")?)?;
            Ok((gpu.resident(&q), gpu.resident(&r)))
        }
    }
}

/// Modified Gram–Schmidt on the device: per column, one dot + axpy pair
/// per previous column (BLAS-1 with a host round trip for the
/// coefficient), the latency-bound worst case of Figure 7.
///
/// # Errors
///
/// Propagates shape errors and singular-column breakdown.
pub fn gpu_mgs(gpu: &mut Gpu, phase: Phase, a: &DMat) -> Result<(DMat, DMat)> {
    let (m, n) = a.shape();
    let cost = gpu.cost().clone();
    for j in 0..n {
        for _i in 0..j {
            gpu.launches += 2;
            gpu.syncs += 1;
            gpu.charge(phase, cost.blas1_reduce(m)); // dot (host reads r_ij)
            gpu.charge(phase, cost.blas1(m, 3.0)); // axpy
        }
        gpu.launches += 2;
        gpu.charge(phase, cost.blas1(m, 2.0)); // nrm2
        gpu.charge(phase, cost.blas1(m, 2.0)); // scale
    }
    match gpu.mode() {
        ExecMode::DryRun => Ok((gpu.resident_shape(m, n), gpu.resident_shape(n, n))),
        ExecMode::Compute => {
            let (q, r) = rlra_lapack::mgs(values_or_err(a, "gpu_mgs")?)?;
            Ok((gpu.resident(&q), gpu.resident(&r)))
        }
    }
}

/// Truncated QP3 on the device. Returns the host-side factorization in
/// compute mode (`None` in dry-run mode — the cost is still charged).
///
/// Charged kernel sequence per step: pivot selection (IAMAX + host sync),
/// column swap, the *unfused* panel update (pivoting forbids batching),
/// reflector generation, the full-width auxiliary GEMV that builds `F`,
/// the pivot-row update, and the norm-downdate kernel; per panel, the
/// deferred BLAS-3 trailing update; plus one norm recomputation sweep per
/// downdate breakdown.
///
/// # Errors
///
/// Propagates shape/parameter errors.
pub fn gpu_qp3_truncated(gpu: &mut Gpu, phase: Phase, a: &DMat, k: usize) -> Result<GpuQrcp> {
    let (m, n) = a.shape();
    if k > m.min(n) {
        return Err(MatrixError::InvalidParameter {
            name: "k",
            message: format!("k = {k} exceeds min(m, n) = {}", m.min(n)),
        });
    }
    // Numerics first (compute mode) so the recompute count feeds the cost.
    let host_result = match gpu.mode() {
        ExecMode::Compute => Some(rlra_lapack::qp3_blocked(
            values_or_err(a, "gpu_qp3_truncated")?,
            k,
            GPU_PANEL,
        )?),
        ExecMode::DryRun => None,
    };
    let recomputes = host_result
        .as_ref()
        .map(|r| r.stats.norm_recomputes)
        .unwrap_or(0);
    charge_qp3(gpu, phase, m, n, k, recomputes);
    Ok(GpuQrcp {
        result: host_result,
        m,
        n,
        k,
    })
}

/// Charges the cost skeleton of a truncated QP3 run.
fn charge_qp3(gpu: &mut Gpu, phase: Phase, m: usize, n: usize, k: usize, recomputes: usize) {
    let cost = gpu.cost().clone();
    let mut j = 0;
    while j < k {
        let nb = GPU_PANEL.min(k - j);
        for c in 0..nb {
            let step = j + c;
            let mloc = m - step;
            let ntrail = n - step - 1;
            gpu.launches += 6;
            gpu.syncs += 3;
            // Pivot: iamax over the remaining norms + host decision, plus
            // the swap-decision round trip.
            gpu.charge(phase, cost.blas1(n - step, 2.0) + 2.0 * cost.sync());
            // Column swap.
            gpu.charge(phase, cost.blas1(m, 3.0));
            // Panel update of the pivot column. Unlike HHQR's batched
            // panel, the pivot decision serializes this into one
            // reflector application at a time with no kernel fusion —
            // charged at twice the fused GEMV rate (this is "the cost of
            // column pivoting" Figure 7 isolates).
            if c > 0 {
                gpu.charge(phase, 2.0 * cost.gemv(mloc, c));
            }
            // Reflector generation (nrm2 + host tau + scale).
            gpu.charge(
                phase,
                cost.blas1(mloc, 2.0) + cost.sync() + cost.blas1(mloc, 2.0),
            );
            // F column: full-trailing-width GEMV — the BLAS-2 half of
            // QP3's flops.
            if ntrail > 0 {
                gpu.charge(phase, cost.gemv(mloc, ntrail));
                // Pivot-row update + norm downdates.
                gpu.charge(phase, cost.gemv(ntrail, nb.min(c + 1)));
                gpu.charge(phase, cost.blas1(ntrail, 2.0));
            }
        }
        // Deferred BLAS-3 trailing update A ← A − V·Fᵀ.
        let mloc = m - (j + nb);
        let ntrail = n.saturating_sub(j + nb);
        if mloc > 0 && ntrail > 0 {
            gpu.launches += 1;
            gpu.charge(phase, cost.gemm(mloc, ntrail, nb));
        }
        j += nb;
    }
    // Norm recomputations (BLAS-1 sweeps over trailing columns).
    for _ in 0..recomputes {
        gpu.launches += 1;
        gpu.charge(phase, cost.blas1(m, 2.0));
    }
}

/// Result handle of a device QP3 run.
#[derive(Debug, Clone)]
pub struct GpuQrcp {
    /// Host-side factorization (present in compute mode only).
    pub result: Option<QrcpResult>,
    /// Input rows.
    pub m: usize,
    /// Input columns.
    pub n: usize,
    /// Truncation rank.
    pub k: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_lapack::householder::orthogonality_error;
    use rlra_matrix::Mat;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    #[test]
    fn cholqr_computes_orthonormal_q() {
        let mut gpu = Gpu::k40c();
        let b = gpu.resident(&pseudo(60, 8, 1));
        let (q, _r) = gpu_cholqr(&mut gpu, Phase::OrthIter, &b, true).unwrap();
        assert!(orthogonality_error(q.expect_values()) < 1e-12);
        assert!(gpu.clock() > 0.0);
    }

    #[test]
    fn cholqr_rows_computes_row_orthonormal_q() {
        let mut gpu = Gpu::k40c();
        let b = gpu.resident(&pseudo(6, 50, 2));
        let (q, _r) = gpu_cholqr_rows(&mut gpu, Phase::OrthIter, &b, true).unwrap();
        assert!(orthogonality_error(&q.expect_values().transpose()) < 1e-12);
    }

    #[test]
    fn hhqr_matches_lapack() {
        let mut gpu = Gpu::k40c();
        let a = pseudo(40, 10, 3);
        let ad = gpu.resident(&a);
        let (q, r) = gpu_hhqr(&mut gpu, Phase::Qr, &ad).unwrap();
        let (qe, re) = rlra_lapack::qr_factor(&a);
        assert!(q.expect_values().approx_eq(&qe, 1e-12));
        assert!(r.expect_values().approx_eq(&re, 1e-12));
    }

    #[test]
    fn qp3_computes_and_counts() {
        let mut gpu = Gpu::k40c();
        let a = pseudo(30, 20, 4);
        let ad = gpu.resident(&a);
        let res = gpu_qp3_truncated(&mut gpu, Phase::Qrcp, &ad, 10).unwrap();
        let host = res.result.unwrap();
        assert_eq!(host.rank, 10);
        assert!(gpu.syncs > 0, "QP3 must synchronize per pivot");
    }

    #[test]
    fn dry_run_costs_match_compute_costs() {
        // QP3 cost may differ by the recompute count (unknown in dry run),
        // but CholQR/HHQR/CGS/MGS must charge identically.
        let a = pseudo(80, 16, 5);
        let run = |dry: bool| -> Vec<f64> {
            let mut times = Vec::new();
            for which in 0..4 {
                let mut gpu = if dry { Gpu::k40c_dry() } else { Gpu::k40c() };
                let ad = if dry {
                    gpu.resident_shape(80, 16)
                } else {
                    gpu.resident(&a)
                };
                match which {
                    0 => drop(gpu_cholqr(&mut gpu, Phase::Other, &ad, true).unwrap()),
                    1 => drop(gpu_hhqr(&mut gpu, Phase::Other, &ad).unwrap()),
                    2 => drop(gpu_cgs(&mut gpu, Phase::Other, &ad).unwrap()),
                    _ => drop(gpu_mgs(&mut gpu, Phase::Other, &ad).unwrap()),
                }
                times.push(gpu.clock());
            }
            times
        };
        assert_eq!(run(true), run(false));
    }

    /// The ordering the paper's Figure 7 establishes for tall-skinny
    /// inputs: CholQR ≫ CGS > HHQR > MGS > QP3.
    #[test]
    fn fig7_ordering_holds_in_the_model() {
        let m = 50_000;
        let n = 64;
        let time = |f: &dyn Fn(&mut Gpu, &DMat) -> f64| -> f64 {
            let mut gpu = Gpu::k40c_dry();
            let a = gpu.resident_shape(m, n);
            f(&mut gpu, &a)
        };
        let t_cholqr = time(&|g, a| {
            gpu_cholqr(g, Phase::Other, a, true).unwrap();
            g.clock()
        });
        let t_cgs = time(&|g, a| {
            gpu_cgs(g, Phase::Other, a).unwrap();
            g.clock()
        });
        let t_hhqr = time(&|g, a| {
            gpu_hhqr(g, Phase::Other, a).unwrap();
            g.clock()
        });
        let t_mgs = time(&|g, a| {
            gpu_mgs(g, Phase::Other, a).unwrap();
            g.clock()
        });
        let t_qp3 = time(&|g, a| {
            gpu_qp3_truncated(g, Phase::Other, a, n).unwrap();
            g.clock()
        });
        assert!(t_cholqr < t_cgs, "CholQR {t_cholqr} < CGS {t_cgs}");
        assert!(t_cgs < t_hhqr, "CGS {t_cgs} < HHQR {t_hhqr}");
        assert!(t_hhqr < t_mgs, "HHQR {t_hhqr} < MGS {t_mgs}");
        assert!(t_hhqr < t_qp3, "HHQR {t_hhqr} < QP3 {t_qp3}");
        // Paper: CholQR up to ~33x over HHQR; stay in a generous band.
        let ratio = t_hhqr / t_cholqr;
        assert!(ratio > 10.0 && ratio < 80.0, "CholQR/HHQR speedup {ratio}");
    }

    /// Figure 9: short-wide CholQR vs HHQR (speedups up to 106×).
    #[test]
    fn fig9_short_wide_speedup_band() {
        let l = 64;
        let n = 50_000;
        let mut g1 = Gpu::k40c_dry();
        let b = g1.resident_shape(l, n);
        gpu_cholqr_rows(&mut g1, Phase::Other, &b, true).unwrap();
        let t_cholqr = g1.clock();
        // HHQR of the transposed (tall-skinny) problem.
        let mut g2 = Gpu::k40c_dry();
        let bt = g2.resident_shape(n, l);
        gpu_hhqr(&mut g2, Phase::Other, &bt).unwrap();
        let t_hhqr = g2.clock();
        let ratio = t_hhqr / t_cholqr;
        assert!(ratio > 20.0 && ratio < 200.0, "short-wide speedup {ratio}");
    }

    #[test]
    fn shape_validation() {
        let mut gpu = Gpu::k40c_dry();
        let wide = gpu.resident_shape(4, 10);
        assert!(gpu_cholqr(&mut gpu, Phase::Other, &wide, false).is_err());
        let tall = gpu.resident_shape(10, 4);
        assert!(gpu_cholqr_rows(&mut gpu, Phase::Other, &tall, false).is_err());
        assert!(gpu_qp3_truncated(&mut gpu, Phase::Other, &tall, 5).is_err());
    }
}

// --- Extended orthogonalization / pivoting schemes (paper §11) -----------

/// Communication-avoiding TSQR on the device (paper §11: "we are
/// studying other orthogonalization schemes including
/// Communication-Avoiding QR \[5\]"). Unconditionally stable like HHQR,
/// one reduction like CholQR; the batched leaf factorizations run at a
/// fraction of GEMM speed, so it lands between the two in time.
///
/// # Errors
///
/// Propagates shape errors.
pub fn gpu_tsqr(gpu: &mut Gpu, phase: Phase, a: &DMat, block_rows: usize) -> Result<(DMat, DMat)> {
    let (m, n) = a.shape();
    if m < n {
        return Err(MatrixError::DimensionMismatch {
            op: "gpu_tsqr",
            expected: "m >= n (tall-skinny)".into(),
            found: format!("{m}x{n}"),
        });
    }
    let cost = gpu.cost().clone();
    let leaves = (m / block_rows.max(n)).max(1);
    // Batched leaf QRs: 2mn^2 flops of Householder work; batching across
    // leaves recovers ~40% of the equivalent GEMM rate.
    let leaf_flops = 2.0 * m as f64 * (n * n) as f64;
    let leaf_gflops = 0.15 * cost.gemm_gflops(n, n, m);
    gpu.launches += leaves as u64;
    gpu.charge(phase, leaf_flops / (leaf_gflops * 1e9) + cost.launch());
    // Reduction tree: log2(leaves) tiny stacked QRs.
    let levels = (leaves as f64).log2().ceil() as usize;
    for _ in 0..levels {
        gpu.launches += 1;
        gpu.charge(
            phase,
            cost.launch() + 20.0 * (n * n * n) as f64 / (cost.spec().peak_dp_gflops * 1e9),
        );
    }
    // Explicit Q formation: one more sweep of the same leaf work plus the
    // tree push-down GEMMs.
    gpu.charge(phase, leaf_flops / (leaf_gflops * 1e9));
    gpu.charge(phase, cost.gemm(m, n, n));
    match gpu.mode() {
        ExecMode::DryRun => Ok((gpu.resident_shape(m, n), gpu.resident_shape(n, n))),
        ExecMode::Compute => {
            let t = rlra_lapack::tsqr(values_or_err(a, "gpu_tsqr")?, block_rows)?;
            Ok((gpu.resident(&t.q), gpu.resident(&t.r)))
        }
    }
}

/// Mixed-precision CholQR on the device (paper §11 / reference \[23\]):
/// the Gram matrix and Cholesky run in doubled precision (~8× the flops
/// of the f64 Gram stage), buying `O(ε·κ)` orthogonality without a
/// second pass.
///
/// # Errors
///
/// Propagates shape errors; falls back to Householder QR if even the
/// doubled-precision Gram matrix breaks down.
pub fn gpu_cholqr_mixed(gpu: &mut Gpu, phase: Phase, b: &DMat) -> Result<(DMat, DMat)> {
    let (m, n) = b.shape();
    if m < n {
        return Err(MatrixError::DimensionMismatch {
            op: "gpu_cholqr_mixed",
            expected: "m >= n (tall-skinny)".into(),
            found: format!("{m}x{n}"),
        });
    }
    let cost = gpu.cost().clone();
    gpu.launches += 2;
    // Doubled-precision SYRK: ~8 f64 flops per dd multiply-accumulate.
    gpu.charge(phase, 8.0 * cost.syrk(n, m));
    let gram_bytes = 16 * (n * n) as u64; // hi+lo components
    gpu.charge(phase, cost.transfer(gram_bytes));
    gpu.charge(phase, 8.0 * cost.host_cholesky(n));
    gpu.charge(phase, cost.transfer(gram_bytes / 2));
    gpu.charge(phase, cost.trsm(n, m));
    match gpu.mode() {
        ExecMode::DryRun => Ok((gpu.resident_shape(m, n), gpu.resident_shape(n, n))),
        ExecMode::Compute => {
            // analyze: allow(numerics, device kernel below the Executor layer; breakdown escalates to gpu_hhqr right here)
            match rlra_lapack::cholqr_mixed(values_or_err(b, "gpu_cholqr_mixed")?) {
                Ok((q, r)) => Ok((gpu.resident(&q), gpu.resident(&r))),
                Err(MatrixError::NotPositiveDefinite { .. }) => gpu_hhqr(gpu, phase, b),
                Err(e) => Err(e),
            }
        }
    }
}

/// Tournament-pivoting QRCP on the device (communication-avoiding
/// QP3, the paper's reference \[4\]): all `k` pivots are selected with a
/// reduction tree of batched block factorizations — one synchronization
/// per *round* instead of one per *pivot*.
///
/// # Errors
///
/// Propagates shape/parameter errors.
pub fn gpu_tournament_qrcp(
    gpu: &mut Gpu,
    phase: Phase,
    a: &DMat,
    k: usize,
) -> Result<Option<rlra_lapack::CaQrcp>> {
    let (m, n) = a.shape();
    if k == 0 || k > m.min(n) {
        return Err(MatrixError::InvalidParameter {
            name: "k",
            message: format!("k = {k} must be in 1..=min(m, n)"),
        });
    }
    let cost = gpu.cost().clone();
    // Tournament rounds: each halves the candidate count; every round is
    // a batch of independent (m × 2k, rank k) QRCPs. Batched execution
    // removes the per-pivot sync; charge the arithmetic at a discounted
    // GEMM rate plus one sync per round.
    let mut cand = n;
    while cand > 2 * k {
        let blocks = cand.div_ceil(2 * k);
        let flops = blocks as f64 * 4.0 * m as f64 * (2 * k) as f64 * k as f64;
        // Batching the independent block factorizations fills the device,
        // recovering about half the equivalent GEMM rate.
        let gflops = 0.5 * cost.gemm_gflops(k, 2 * k, m);
        gpu.launches += blocks as u64;
        gpu.syncs += 1;
        gpu.charge(phase, flops / (gflops * 1e9) + cost.sync() + cost.launch());
        cand = blocks * k;
    }
    // Final small QRCP + CholQR of the winners + R = Q^T A P.
    gpu.charge(
        phase,
        4.0 * m as f64 * (2 * k * k) as f64 / (0.5 * cost.gemm_gflops(k, 2 * k, m) * 1e9),
    );
    charge_cholqr_pass(gpu, phase, k, m);
    charge_cholqr_pass(gpu, phase, k, m);
    gpu.charge(phase, cost.gemm(k, n, m));
    match gpu.mode() {
        ExecMode::DryRun => Ok(None),
        ExecMode::Compute => Ok(Some(rlra_lapack::tournament_qrcp(
            values_or_err(a, "gpu_tournament_qrcp")?,
            k,
        )?)),
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use rlra_lapack::householder::orthogonality_error;
    use rlra_matrix::Mat;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    #[test]
    fn tsqr_between_cholqr_and_hhqr_in_time() {
        let (m, n) = (50_000usize, 64usize);
        let time = |f: &dyn Fn(&mut Gpu, &DMat)| -> f64 {
            let mut gpu = Gpu::k40c_dry();
            let a = gpu.resident_shape(m, n);
            f(&mut gpu, &a);
            gpu.clock()
        };
        let t_cholqr = time(&|g, a| drop(gpu_cholqr(g, Phase::Other, a, true).unwrap()));
        let t_tsqr = time(&|g, a| drop(gpu_tsqr(g, Phase::Other, a, 1024).unwrap()));
        let t_hhqr = time(&|g, a| drop(gpu_hhqr(g, Phase::Other, a).unwrap()));
        assert!(t_cholqr < t_tsqr, "CholQR {t_cholqr} < TSQR {t_tsqr}");
        assert!(t_tsqr < t_hhqr, "TSQR {t_tsqr} < HHQR {t_hhqr}");
    }

    #[test]
    fn tsqr_computes_correctly_on_device() {
        let mut gpu = Gpu::k40c();
        let a = pseudo(60, 6, 1);
        let ad = gpu.resident(&a);
        let (q, r) = gpu_tsqr(&mut gpu, Phase::Qr, &ad, 15).unwrap();
        assert!(orthogonality_error(q.expect_values()) < 1e-11);
        let rec = rlra_blas::naive::gemm_ref(
            q.expect_values(),
            rlra_blas::Trans::No,
            r.expect_values(),
            rlra_blas::Trans::No,
        );
        assert!(rec.approx_eq(&a, 1e-10));
    }

    #[test]
    fn mixed_cholqr_costs_more_than_plain_less_than_double_pass_hhqr() {
        let (m, n) = (50_000usize, 64usize);
        let mut g1 = Gpu::k40c_dry();
        let a1 = g1.resident_shape(m, n);
        gpu_cholqr(&mut g1, Phase::Other, &a1, false).unwrap();
        let t_plain = g1.clock();
        let mut g2 = Gpu::k40c_dry();
        let a2 = g2.resident_shape(m, n);
        gpu_cholqr_mixed(&mut g2, Phase::Other, &a2).unwrap();
        let t_mixed = g2.clock();
        let mut g3 = Gpu::k40c_dry();
        let a3 = g3.resident_shape(m, n);
        gpu_hhqr(&mut g3, Phase::Other, &a3).unwrap();
        let t_hhqr = g3.clock();
        assert!(t_mixed > t_plain, "dd Gram must cost more");
        assert!(t_mixed < t_hhqr, "but stay far cheaper than HHQR");
    }

    #[test]
    fn tournament_faster_than_qp3_at_paper_scale() {
        let (m, n, k) = (50_000usize, 2_500usize, 64usize);
        let mut g1 = Gpu::k40c_dry();
        let a1 = g1.resident_shape(m, n);
        gpu_tournament_qrcp(&mut g1, Phase::Other, &a1, k).unwrap();
        let t_ca = g1.clock();
        let mut g2 = Gpu::k40c_dry();
        let a2 = g2.resident_shape(m, n);
        gpu_qp3_truncated(&mut g2, Phase::Other, &a2, k).unwrap();
        let t_qp3 = g2.clock();
        assert!(
            t_ca < t_qp3 / 2.0,
            "tournament {t_ca} should clearly beat QP3 {t_qp3} (fewer syncs)"
        );
        assert!(
            g1.syncs < g2.syncs / 4,
            "and with far fewer synchronizations"
        );
    }

    #[test]
    fn tournament_computes_on_device() {
        let mut gpu = Gpu::k40c();
        let a = pseudo(30, 25, 2);
        let ad = gpu.resident(&a);
        let res = gpu_tournament_qrcp(&mut gpu, Phase::Qrcp, &ad, 5)
            .unwrap()
            .unwrap();
        assert!(orthogonality_error(&res.q) < 1e-10);
    }
}
