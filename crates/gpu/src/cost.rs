//! Calibrated kernel cost model.
//!
//! Every timing rule here is anchored to a number the paper publishes:
//!
//! | Anchor | Source |
//! |---|---|
//! | GEMM ≈ 15.4·ℓ Gflop/s for small output dimension ℓ, saturating near 1200 | Fig. 18 (123/247/489/598/778 Gflop/s at ℓ = 8/16/32/48/64) and Fig. 8 (≈1200 at large ℓ) |
//! | GEMM efficiency falls as the long dimension grows beyond ~50k (skinnier chunks) | Fig. 15 discussion (440/630/760 Gflop/s at m/n_g = 150k/75k/50k) |
//! | GEMV is memory-bound far below GEMM | Fig. 8 (GEMV well under the memory roofline) |
//! | full FFT ≈ 135 Gflop/s effective | §8 |
//! | DP peak 1430 Gflop/s, memory roofline 288 GB/s | Fig. 8 |
//!
//! The model is deliberately simple — piecewise-linear interpolation of
//! the published efficiency points plus roofline floors — because the
//! benchmark claims we need to reproduce are orderings, ratios and
//! crossover locations, not microsecond-exact times.

use crate::spec::DeviceSpec;

/// GEMM efficiency calibration table: (small output dimension ℓ,
/// achieved Gflop/s on the K40c). First five points are the paper's
/// Figure 18 verbatim; the tail follows Figure 8's saturation toward
/// ≈1200 Gflop/s.
const GEMM_EFF_TABLE: &[(f64, f64)] = &[
    (1.0, 16.0),
    (8.0, 123.3),
    (16.0, 247.0),
    (32.0, 489.5),
    (48.0, 597.8),
    (64.0, 778.5),
    (96.0, 950.0),
    (128.0, 1050.0),
    (192.0, 1140.0),
    (256.0, 1190.0),
    (512.0, 1220.0),
    (4096.0, 1250.0),
];

/// The kernel cost model for one device.
#[derive(Debug, Clone)]
pub struct CostModel {
    spec: DeviceSpec,
}

impl CostModel {
    /// Builds a cost model from a device specification.
    pub fn new(spec: DeviceSpec) -> Self {
        CostModel { spec }
    }

    /// The underlying device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Kernel launch overhead in seconds.
    pub fn launch(&self) -> f64 {
        self.spec.kernel_launch_us * 1e-6
    }

    /// Host synchronization (blocking round trip) in seconds.
    pub fn sync(&self) -> f64 {
        self.spec.sync_us * 1e-6
    }

    /// Host↔device transfer of `bytes` bytes.
    pub fn transfer(&self, bytes: u64) -> f64 {
        self.spec.pcie_latency_us * 1e-6 + bytes as f64 / (self.spec.pcie_bandwidth_gbs * 1e9)
    }

    /// Achieved GEMM Gflop/s for a `(m × k)·(k × n)` product.
    ///
    /// The *small* dimension (the minimum of the three) limits occupancy
    /// per the Fig. 18 calibration; the *long* dimension applies the
    /// skinniness penalty observed in Fig. 15 (`(long/50000)^{-0.52}`,
    /// fitted to the 440/630/760 Gflop/s anchors).
    pub fn gemm_gflops(&self, m: usize, n: usize, k: usize) -> f64 {
        let small = m.min(n).min(k).max(1) as f64;
        let long = m.max(n).max(k) as f64;
        // The calibration table is in absolute K40c Gflop/s; other
        // device generations scale it by their peak ratio (occupancy
        // curves are similar in shape across generations).
        let scale = self.spec.peak_dp_gflops / 1_430.0;
        let base = interp(GEMM_EFF_TABLE, small) * scale;
        let aspect = if long > 50_000.0 {
            (long / 50_000.0).powf(-0.52)
        } else {
            1.0
        };
        (base * aspect).min(self.spec.peak_dp_gflops)
    }

    /// Time for a GEMM of shape `(m × k)·(k × n)` (seconds), including
    /// one launch and a memory-roofline floor.
    pub fn gemm(&self, m: usize, n: usize, k: usize) -> f64 {
        if m == 0 || n == 0 || k == 0 {
            return self.launch();
        }
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let compute = flops / (self.gemm_gflops(m, n, k) * 1e9);
        let bytes = 8.0 * (m as f64 * k as f64 + k as f64 * n as f64 + 2.0 * m as f64 * n as f64);
        let memory = bytes / (self.spec.mem_bandwidth_gbs * 1e9);
        self.launch() + compute.max(memory)
    }

    /// Effective bandwidth fraction of a BLAS-2 kernel whose parallel
    /// width is `width` (a GEMV against an `m × width` matrix cannot fill
    /// the device when `width` is small — this is what keeps HHQR/CGS at
    /// a few Gflop/s in Figures 7 and 9).
    fn blas2_bw_fraction(&self, width: usize) -> f64 {
        let w = width.max(1) as f64;
        (w / (w + 400.0)).clamp(0.03, 0.55)
    }

    /// Time of a GEMV against an `m × n` operand (streaming the whole
    /// matrix once), including launch overhead.
    pub fn gemv(&self, m: usize, n: usize) -> f64 {
        if m == 0 || n == 0 {
            return self.launch();
        }
        let bytes = 8.0 * (m as f64 * n as f64 + m as f64 + n as f64);
        let frac = self.blas2_bw_fraction(m.min(n));
        self.launch() + bytes / (self.spec.mem_bandwidth_gbs * 1e9 * frac)
    }

    /// Time of a rank-1 update (`ger`) on an `m × n` matrix — twice the
    /// GEMV traffic (read + write).
    pub fn ger(&self, m: usize, n: usize) -> f64 {
        if m == 0 || n == 0 {
            return self.launch();
        }
        let bytes = 16.0 * (m as f64 * n as f64);
        let frac = self.blas2_bw_fraction(m.min(n));
        self.launch() + bytes / (self.spec.mem_bandwidth_gbs * 1e9 * frac)
    }

    /// Time of a BLAS-1 kernel over `n` elements with `words_per_elem`
    /// f64 words of traffic (dot/nrm2 = 2 reads; axpy = 2 reads + 1
    /// write; scal = 1 + 1).
    pub fn blas1(&self, n: usize, words_per_elem: f64) -> f64 {
        let bytes = 8.0 * words_per_elem * n as f64;
        // Single long vectors stream reasonably well.
        let frac: f64 = 0.5;
        self.launch() + bytes / (self.spec.mem_bandwidth_gbs * 1e9 * frac)
    }

    /// Time of a reduction-style BLAS-1 kernel (dot/nrm2/iamax) whose
    /// scalar result the host waits for — adds a sync on top of the
    /// streaming cost. This is the per-pivot price QP3 pays.
    pub fn blas1_reduce(&self, n: usize) -> f64 {
        self.blas1(n, 2.0) + self.sync()
    }

    /// Time of a triangular solve with an `l × l` triangle against
    /// `nrhs` right-hand sides of length `l` (BLAS-3 TRSM, modeled as a
    /// GEMM of the same shape at a modest discount — cuBLAS TRSM runs at
    /// roughly half GEMM speed for these shapes).
    pub fn trsm(&self, l: usize, nrhs: usize) -> f64 {
        if l == 0 || nrhs == 0 {
            return self.launch();
        }
        let flops = l as f64 * l as f64 * nrhs as f64;
        let gflops = 0.5 * self.gemm_gflops(l, nrhs, l) * small_output_discount(l * nrhs);
        let bytes = 8.0 * (l as f64 * l as f64 / 2.0 + 2.0 * l as f64 * nrhs as f64);
        let memory = bytes / (self.spec.mem_bandwidth_gbs * 1e9);
        self.launch() + (flops / (gflops * 1e9)).max(memory)
    }

    /// Time of a symmetric rank-k update building an `l × l` Gram matrix
    /// from an `l × n` operand (SYRK ≈ GEMM of the same shape).
    pub fn syrk(&self, l: usize, n: usize) -> f64 {
        if l == 0 || n == 0 {
            return self.launch();
        }
        let flops = l as f64 * l as f64 * n as f64; // half of the full GEMM
        let gflops = self.gemm_gflops(l, l, n) * small_output_discount(l * l);
        let bytes = 8.0 * (l as f64 * n as f64 + l as f64 * l as f64);
        let memory = bytes / (self.spec.mem_bandwidth_gbs * 1e9);
        self.launch() + (flops / (gflops * 1e9)).max(memory)
    }

    /// Time of a batched full FFT: `ncols` transforms of (padded) length
    /// `len`, at the paper's measured ≈135 effective Gflop/s.
    pub fn fft_cols(&self, len: usize, ncols: usize) -> f64 {
        if len <= 1 || ncols == 0 {
            return self.launch();
        }
        let flops = 5.0 * len as f64 * (len as f64).log2() * ncols as f64;
        self.launch() + flops / (self.spec.fft_gflops * 1e9)
    }

    /// Time for cuRAND-style generation of `n` Gaussian samples.
    pub fn curand(&self, n: usize) -> f64 {
        self.launch() + n as f64 / (self.spec.curand_gsamples * 1e9)
    }

    /// Time of a host-side Cholesky of an `l × l` matrix (the paper
    /// factors the small Gram matrix on the CPU in the multi-GPU path).
    pub fn host_cholesky(&self, l: usize) -> f64 {
        let flops = (l as f64).powi(3) / 3.0;
        flops / (self.spec.host_gflops * 1e9)
    }

    /// Time of `flops` floating-point operations on the host CPU (used
    /// for the small factorizations the multi-GPU path runs there, e.g.
    /// the QR of the reduced `ℓ × n` sampled matrix).
    pub fn host_flops(&self, flops: f64) -> f64 {
        flops / (self.spec.host_gflops * 1e9)
    }

    /// Time of a host-side sum of `ng` partial results of `bytes` bytes
    /// each.
    pub fn host_reduce(&self, bytes: u64, ng: usize) -> f64 {
        ng as f64 * bytes as f64 / (self.spec.host_bandwidth_gbs * 1e9)
    }
}

/// Occupancy discount for BLAS-3 kernels whose *output* is tiny (e.g. a
/// 64×64 Gram matrix reduced from 50,000 columns): the reduction tree
/// cannot fill the device, so the kernel runs well below GEMM speed.
fn small_output_discount(out_elems: usize) -> f64 {
    let e = out_elems as f64;
    (e / (e + 12_288.0)).clamp(0.05, 1.0)
}

/// Piecewise-linear interpolation in a sorted `(x, y)` table (clamped at
/// the ends).
fn interp(table: &[(f64, f64)], x: f64) -> f64 {
    let (Some(&(x_first, y_first)), Some(&(_, y_last))) = (table.first(), table.last()) else {
        return 0.0; // empty table: nothing to interpolate
    };
    if x <= x_first {
        return y_first;
    }
    for w in table.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x <= x1 {
            let t = (x - x0) / (x1 - x0);
            return y0 + t * (y1 - y0);
        }
    }
    y_last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(DeviceSpec::k40c())
    }

    #[test]
    fn gemm_efficiency_hits_fig18_anchors() {
        // Figure 18 of the paper: Gflop/s of the GEMM used by the
        // adaptive scheme (m = 50,000, n = 2,500).
        let m = model();
        for (l, expect) in [
            (8usize, 123.3),
            (16, 247.0),
            (32, 489.5),
            (48, 597.8),
            (64, 778.5),
        ] {
            let got = m.gemm_gflops(l, 2500, 50_000);
            assert!(
                (got - expect).abs() / expect < 0.01,
                "l = {l}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn gemm_aspect_penalty_matches_fig15() {
        // Fig. 15 discussion: 440 / 630 / 760 Gflop/s for chunk heights
        // 150k / 75k / 50k at l = 64, n = 2500.
        let m = model();
        let g150 = m.gemm_gflops(64, 2500, 150_000);
        let g75 = m.gemm_gflops(64, 2500, 75_000);
        let g50 = m.gemm_gflops(64, 2500, 50_000);
        assert!((g50 - 778.5).abs() < 1.0);
        assert!(
            (g75 / g50 - 630.0 / 760.0).abs() < 0.05,
            "75k ratio {}",
            g75 / g50
        );
        assert!(
            (g150 / g50 - 440.0 / 760.0).abs() < 0.05,
            "150k ratio {}",
            g150 / g50
        );
    }

    #[test]
    fn gemm_saturates_below_peak() {
        let m = model();
        let g = m.gemm_gflops(2048, 2048, 2048);
        assert!(g > 1100.0 && g <= 1430.0);
    }

    #[test]
    fn gemm_time_scales_linearly_in_long_dim() {
        let m = model();
        let t1 = m.gemm(64, 2500, 25_000);
        let t2 = m.gemm(64, 2500, 50_000);
        let ratio = t2 / t1;
        assert!(ratio > 1.8 && ratio < 2.2, "ratio = {ratio}");
    }

    #[test]
    fn gemv_much_slower_than_gemm_per_flop() {
        let m = model();
        // Same flops: GEMV of an (m x n) vs GEMM with l = 64.
        let t_gemv = m.gemv(50_000, 2500);
        let flops_gemv = 2.0 * 50_000.0 * 2500.0;
        let gemv_gflops = flops_gemv / t_gemv / 1e9;
        let gemm_gflops = m.gemm_gflops(64, 2500, 50_000);
        assert!(
            gemm_gflops / gemv_gflops > 3.0,
            "GEMM ({gemm_gflops:.0}) should dwarf GEMV ({gemv_gflops:.0})"
        );
        // GEMV stays under the memory roofline (288/8*2 = 72 Gflop/s).
        assert!(gemv_gflops < 72.0);
    }

    #[test]
    fn fft_at_paper_rate() {
        let m = model();
        // Padded 65536-point FFT across 2500 columns.
        let t = m.fft_cols(65_536, 2500);
        let flops = 5.0 * 65_536.0 * 16.0 * 2500.0;
        let gf = flops / t / 1e9;
        assert!((gf - 135.0).abs() < 5.0, "FFT effective {gf} Gflop/s");
    }

    #[test]
    fn transfer_has_latency_floor() {
        let m = model();
        let tiny = m.transfer(8);
        assert!(tiny >= 10e-6);
        let big = m.transfer(1 << 30);
        assert!(big > 0.1 && big < 0.12); // ~1 GiB / 10 GB/s
    }

    #[test]
    fn empty_kernels_cost_a_launch() {
        let m = model();
        assert_eq!(m.gemm(0, 5, 5), m.launch());
        assert_eq!(m.syrk(0, 5), m.launch());
    }

    #[test]
    fn interp_clamps() {
        assert_eq!(interp(&[(1.0, 10.0), (2.0, 20.0)], 0.5), 10.0);
        assert_eq!(interp(&[(1.0, 10.0), (2.0, 20.0)], 3.0), 20.0);
        assert_eq!(interp(&[(1.0, 10.0), (2.0, 20.0)], 1.5), 15.0);
    }

    #[test]
    fn blas1_reduce_includes_sync() {
        let m = model();
        assert!(m.blas1_reduce(1000) > m.blas1(1000, 2.0));
    }
}
