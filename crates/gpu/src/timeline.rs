//! Per-phase time accounting.
//!
//! The paper's stacked-bar figures (11–15) break the run time into PRNG,
//! Sampling, GEMM (iter), Orth (iter), QRCP, QR and (multi-GPU) Comms.
//! [`Timeline`] accumulates simulated seconds per phase so the benchmark
//! harness can print the same rows.

use std::fmt;

/// Execution phase, matching the legend of the paper's Figures 11–15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Generation of the Gaussian sampling matrix Ω (cuRAND).
    Prng,
    /// The initial sampling multiply `B = ΩA` (or the FFT transform).
    Sampling,
    /// Matrix-matrix multiplies inside the power iteration.
    GemmIter,
    /// Orthogonalization inside the power iteration.
    OrthIter,
    /// QRCP of the sampled matrix (Step 2).
    Qrcp,
    /// Tall-skinny QR of `A·P₁:ₖ` (Step 3) and the triangular finish.
    Qr,
    /// Inter-GPU / host communication.
    Comms,
    /// Fault recovery: retry backoff, re-drawn sketch rows, block-row
    /// redistribution and re-orthogonalization after a device loss.
    Recovery,
    /// ABFT integrity work: checksum-row encodes, panel verification
    /// (including the host-side digest compare over PCIe), localized
    /// entry corrections and bounded corruption re-runs.
    Integrity,
    /// Everything else (allocation bookkeeping, small host work).
    Other,
}

impl Phase {
    /// All phases in display order — the single source of truth for the
    /// accumulator layout: [`Phase::index`] is *derived* from position
    /// here, and the [`Timeline`] array length is [`Phase::COUNT`], so
    /// adding a phase cannot desynchronize them.
    pub const ALL: [Phase; 10] = [
        Phase::Prng,
        Phase::Sampling,
        Phase::GemmIter,
        Phase::OrthIter,
        Phase::Qrcp,
        Phase::Qr,
        Phase::Comms,
        Phase::Recovery,
        Phase::Integrity,
        Phase::Other,
    ];

    /// Number of phases (and length of the [`Timeline`] accumulator).
    pub const COUNT: usize = Phase::ALL.len();

    /// Stable index used for the accumulator array: the position in
    /// [`Phase::ALL`]. Evaluated at compile time for constant phases.
    ///
    /// A variant missing from `ALL` would fall through to the last
    /// slot; the `index_is_position_in_all` test rules that out for
    /// every variant.
    const fn index(self) -> usize {
        let mut i = 0;
        while i < Phase::ALL.len() {
            if Phase::ALL[i] as usize == self as usize {
                return i;
            }
            i += 1;
        }
        Phase::ALL.len() - 1
    }

    /// Display label (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Prng => "PRNG",
            Phase::Sampling => "Sampling",
            Phase::GemmIter => "GEMM (Iter)",
            Phase::OrthIter => "Orth (Iter)",
            Phase::Qrcp => "QRCP",
            Phase::Qr => "QR",
            Phase::Comms => "Comms",
            Phase::Recovery => "Recovery",
            Phase::Integrity => "Integrity",
            Phase::Other => "Other",
        }
    }
}

/// Accumulated simulated seconds per phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    seconds: [f64; Phase::COUNT],
}

impl Timeline {
    /// A fresh (all-zero) timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Adds `secs` to `phase`.
    pub fn add(&mut self, phase: Phase, secs: f64) {
        debug_assert!(secs >= 0.0, "negative time charged");
        self.seconds[phase.index()] += secs;
    }

    /// Time accumulated in one phase.
    pub fn get(&self, phase: Phase) -> f64 {
        self.seconds[phase.index()]
    }

    /// Total over all phases.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Merges another timeline into this one (summing phases).
    pub fn merge(&mut self, other: &Timeline) {
        for (a, b) in self.seconds.iter_mut().zip(&other.seconds) {
            *a += b;
        }
    }

    /// Element-wise maximum — the shape of a barrier across devices whose
    /// phases proceed in lockstep.
    pub fn max_with(&mut self, other: &Timeline) {
        for (a, b) in self.seconds.iter_mut().zip(&other.seconds) {
            *a = a.max(*b);
        }
    }

    /// Per-phase breakdown as `(label, seconds)` pairs, skipping empty
    /// phases.
    pub fn breakdown(&self) -> Vec<(&'static str, f64)> {
        Phase::ALL
            .iter()
            .filter(|p| self.get(**p) > 0.0)
            .map(|p| (p.label(), self.get(*p)))
            .collect()
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, secs) in self.breakdown() {
            writeln!(f, "{label:>12}: {secs:.6} s")?;
        }
        write!(f, "{:>12}: {:.6} s", "Total", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut t = Timeline::new();
        t.add(Phase::Sampling, 0.25);
        t.add(Phase::Qrcp, 0.5);
        t.add(Phase::Sampling, 0.25);
        assert_eq!(t.get(Phase::Sampling), 0.5);
        assert_eq!(t.total(), 1.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = Timeline::new();
        a.add(Phase::Qr, 1.0);
        let mut b = Timeline::new();
        b.add(Phase::Qr, 2.0);
        b.add(Phase::Comms, 0.5);
        a.merge(&b);
        assert_eq!(a.get(Phase::Qr), 3.0);
        assert_eq!(a.get(Phase::Comms), 0.5);
    }

    #[test]
    fn max_with_takes_elementwise_max() {
        let mut a = Timeline::new();
        a.add(Phase::GemmIter, 1.0);
        a.add(Phase::Comms, 0.1);
        let mut b = Timeline::new();
        b.add(Phase::GemmIter, 0.5);
        b.add(Phase::Comms, 0.3);
        a.max_with(&b);
        assert_eq!(a.get(Phase::GemmIter), 1.0);
        assert_eq!(a.get(Phase::Comms), 0.3);
    }

    #[test]
    fn breakdown_skips_empty() {
        let mut t = Timeline::new();
        t.add(Phase::Prng, 0.01);
        let b = t.breakdown();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].0, "PRNG");
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Phase::GemmIter.label(), "GEMM (Iter)");
        assert_eq!(Phase::OrthIter.label(), "Orth (Iter)");
    }

    #[test]
    fn index_is_position_in_all() {
        // `index()` must be the position in `ALL` for every variant;
        // the exhaustive list below is what makes the check total (the
        // compiler rejects it if a new variant is added but not listed).
        let every = [
            Phase::Prng,
            Phase::Sampling,
            Phase::GemmIter,
            Phase::OrthIter,
            Phase::Qrcp,
            Phase::Qr,
            Phase::Comms,
            Phase::Recovery,
            Phase::Integrity,
            Phase::Other,
        ];
        assert_eq!(every.len(), Phase::COUNT);
        for p in every {
            assert!(Phase::ALL.contains(&p));
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "{:?} desynchronized from ALL", p);
        }
        // Distinct slots for distinct phases.
        let mut t = Timeline::new();
        for (i, p) in Phase::ALL.iter().enumerate() {
            t.add(*p, (i + 1) as f64);
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(t.get(*p), (i + 1) as f64);
        }
    }

    #[test]
    fn recovery_phase_accumulates_like_any_other() {
        let mut t = Timeline::new();
        t.add(Phase::Recovery, 0.125);
        t.add(Phase::Recovery, 0.125);
        assert_eq!(t.get(Phase::Recovery), 0.25);
        assert_eq!(t.total(), 0.25);
        assert!(Phase::ALL.contains(&Phase::Recovery));
    }

    #[test]
    fn integrity_phase_accumulates_like_any_other() {
        let mut t = Timeline::new();
        t.add(Phase::Integrity, 0.5);
        t.add(Phase::Integrity, 0.25);
        assert_eq!(t.get(Phase::Integrity), 0.75);
        assert_eq!(t.total(), 0.75);
        assert!(Phase::ALL.contains(&Phase::Integrity));
        assert_eq!(Phase::Integrity.label(), "Integrity");
    }
}
