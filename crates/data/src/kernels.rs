//! Kernel (Green's-function-like) matrices — the input class of the
//! paper's §11 HSS-solver outlook, where off-diagonal blocks are
//! numerically low rank and the randomized sampler is the compression
//! engine.

use rlra_matrix::{Mat, MatrixError, Result};

/// Smooth kernel functions with numerically low-rank off-diagonal
/// interaction blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `1 / (1 + γ·|x − y|)` — a bounded Cauchy-like kernel.
    Cauchy {
        /// Sharpness γ (larger ⇒ faster off-diagonal decay).
        gamma: f64,
    },
    /// `exp(−γ·|x − y|)` — the exponential (Ornstein–Uhlenbeck) kernel.
    Exponential {
        /// Decay rate γ.
        gamma: f64,
    },
    /// `exp(−γ·|x − y|²)` — the Gaussian (RBF) kernel.
    Gaussian {
        /// Bandwidth γ.
        gamma: f64,
    },
    /// `log|x − y|` (with a diagonal regularization) — the 2D Laplace
    /// single-layer kernel.
    Log {
        /// Diagonal value replacing the singularity.
        diagonal: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel at distance-relevant points `x`, `y`.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let d = (x - y).abs();
        match *self {
            Kernel::Cauchy { gamma } => 1.0 / (1.0 + gamma * d),
            Kernel::Exponential { gamma } => (-gamma * d).exp(),
            Kernel::Gaussian { gamma } => (-gamma * d * d).exp(),
            Kernel::Log { diagonal } => {
                if d == 0.0 {
                    diagonal
                } else {
                    d.ln()
                }
            }
        }
    }
}

/// Builds the `points.len() × points.len()` kernel matrix
/// `K[i, j] = k(xᵢ, xⱼ)`.
pub fn kernel_matrix(kernel: Kernel, points: &[f64]) -> Mat {
    let n = points.len();
    Mat::from_fn(n, n, |i, j| kernel.eval(points[i], points[j]))
}

/// Builds the rectangular interaction block between two point sets.
pub fn interaction_block(kernel: Kernel, rows: &[f64], cols: &[f64]) -> Mat {
    Mat::from_fn(rows.len(), cols.len(), |i, j| kernel.eval(rows[i], cols[j]))
}

/// `n` uniformly spaced points on `[0, 1]`.
pub fn uniform_points(n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64 / n.max(1) as f64).collect()
}

/// Numerical rank of the interaction block between two **separated**
/// 1D clusters at relative tolerance `tol` — the quantity an HSS/BLR
/// partitioning is built around.
///
/// # Errors
///
/// Propagates SVD failures.
pub fn block_numerical_rank(kernel: Kernel, rows: &[f64], cols: &[f64], tol: f64) -> Result<usize> {
    if rows.is_empty() || cols.is_empty() {
        return Err(MatrixError::InvalidParameter {
            name: "points",
            message: "clusters must be nonempty".into(),
        });
    }
    let block = interaction_block(kernel, rows, cols);
    let sv = rlra_lapack::singular_values(&block)?;
    let cutoff = sv[0] * tol;
    Ok(sv.iter().take_while(|&&s| s > cutoff).count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_symmetric_and_peak_on_diagonal() {
        let pts = uniform_points(40);
        for kernel in [
            Kernel::Cauchy { gamma: 32.0 },
            Kernel::Exponential { gamma: 8.0 },
            Kernel::Gaussian { gamma: 50.0 },
        ] {
            let k = kernel_matrix(kernel, &pts);
            for i in 0..40 {
                for j in 0..40 {
                    assert!((k[(i, j)] - k[(j, i)]).abs() < 1e-15);
                    assert!(k[(i, j)] <= k[(i, i)] + 1e-15);
                }
            }
            assert_eq!(k[(0, 0)], 1.0);
        }
    }

    #[test]
    fn separated_blocks_are_low_rank() {
        // Two clusters separated by a gap: the interaction block's
        // numerical rank is tiny compared to its size.
        let left: Vec<f64> = (0..60).map(|i| i as f64 / 200.0).collect(); // [0, 0.3)
        let right: Vec<f64> = (0..60).map(|i| 0.7 + i as f64 / 200.0).collect(); // [0.7, 1.0)
        for kernel in [
            Kernel::Cauchy { gamma: 16.0 },
            Kernel::Gaussian { gamma: 10.0 },
        ] {
            let rank = block_numerical_rank(kernel, &left, &right, 1e-10).unwrap();
            assert!(rank <= 12, "separated block rank {rank} should be small");
        }
    }

    #[test]
    fn touching_blocks_have_higher_rank_than_separated() {
        let a: Vec<f64> = (0..50).map(|i| i as f64 / 100.0).collect();
        let touching: Vec<f64> = (0..50).map(|i| 0.5 + i as f64 / 100.0).collect();
        let far: Vec<f64> = (0..50).map(|i| 3.0 + i as f64 / 100.0).collect();
        let kernel = Kernel::Exponential { gamma: 4.0 };
        let r_touch = block_numerical_rank(kernel, &a, &touching, 1e-12).unwrap();
        let r_far = block_numerical_rank(kernel, &a, &far, 1e-12).unwrap();
        assert!(r_far <= r_touch, "far {r_far} <= touching {r_touch}");
    }

    #[test]
    fn log_kernel_diagonal_regularized() {
        let k = Kernel::Log { diagonal: -5.0 };
        assert_eq!(k.eval(0.3, 0.3), -5.0);
        assert!((k.eval(0.0, 1.0) - 0.0).abs() < 1e-15); // ln(1) = 0
    }

    #[test]
    fn randomized_sampler_compresses_separated_block() {
        // End-to-end: the workspace's own sampler captures the separated
        // interaction block at its numerical rank.
        use rand::SeedableRng;
        let left: Vec<f64> = (0..80).map(|i| i as f64 / 300.0).collect();
        let right: Vec<f64> = (0..60).map(|i| 0.6 + i as f64 / 300.0).collect();
        let block = interaction_block(Kernel::Cauchy { gamma: 24.0 }, &left, &right);
        let sv = rlra_lapack::singular_values(&block).unwrap();
        // Rank-10 randomized approximation (uses the lapack substrate
        // directly to avoid a circular dev-dependency on rlra-core).
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let omega = rlra_matrix::gaussian_mat(14, 80, &mut rng);
        let mut b = rlra_matrix::Mat::zeros(14, 60);
        rlra_blas::gemm(
            1.0,
            omega.as_ref(),
            rlra_blas::Trans::No,
            block.as_ref(),
            rlra_blas::Trans::No,
            0.0,
            b.as_mut(),
        )
        .unwrap();
        // The sketch of a numerically rank-deficient block can break
        // CholQR; TSQR of the transpose is the unconditionally stable
        // row-orthonormalization.
        let q = rlra_lapack::tsqr(&b.transpose(), 64).unwrap().q.transpose();
        // Residual ‖K − K QᵀQ‖ ≈ sigma_15.
        let mut kq = rlra_matrix::Mat::zeros(80, 14);
        rlra_blas::gemm(
            1.0,
            block.as_ref(),
            rlra_blas::Trans::No,
            q.as_ref(),
            rlra_blas::Trans::Yes,
            0.0,
            kq.as_mut(),
        )
        .unwrap();
        let mut rec = rlra_matrix::Mat::zeros(80, 60);
        rlra_blas::gemm(
            1.0,
            kq.as_ref(),
            rlra_blas::Trans::No,
            q.as_ref(),
            rlra_blas::Trans::No,
            0.0,
            rec.as_mut(),
        )
        .unwrap();
        let diff = rlra_matrix::ops::sub(&block, &rec).unwrap();
        let err = rlra_matrix::norms::spectral_norm(diff.as_ref());
        assert!(
            err < 50.0 * sv[14].max(1e-300),
            "err {err:e} vs sigma_15 {:e}",
            sv[14]
        );
    }

    #[test]
    fn empty_cluster_rejected() {
        assert!(block_numerical_rank(Kernel::Cauchy { gamma: 1.0 }, &[], &[1.0], 1e-8).is_err());
    }
}
