//! Synthetic HapMap-like genotype matrices.
//!
//! The paper's third test matrix is built from the International HapMap
//! Project bulk release (503,783 SNPs × 506 individuals from four
//! populations: CEU, GIH, JPT, YRI), used to demonstrate low-rank
//! approximation for population clustering. That dataset cannot be
//! redistributed here, so we generate a synthetic stand-in from the
//! **Balding–Nichols model**, the standard population-genetics null model
//! for structured allele frequencies:
//!
//! 1. each SNP `s` has an ancestral allele frequency `π_s ~ U(0.05, 0.95)`,
//! 2. each population `p` drifts: `f_{p,s} ~ Beta(π_s·(1−F)/F,
//!    (1−π_s)·(1−F)/F)` with fixation index `F = Fst`,
//! 3. each individual from population `p` draws genotype
//!    `g ~ Binomial(2, f_{p,s})` — an allele count in `{0, 1, 2}`.
//!
//! The resulting matrix has the spectral signature that matters for the
//! paper's experiment: a handful of dominant directions encoding
//! population structure on top of a slowly decaying binomial-noise floor
//! (small condition number over the leading block, matching Table 1's
//! `κ(A) ≈ 2e+01`), and projecting individuals onto the top right
//! singular vectors clusters them by population.

use rand::Rng;
use rlra_matrix::{Mat, MatrixError, Result};

/// Configuration of the synthetic genotype matrix generator.
#[derive(Debug, Clone)]
pub struct HapmapConfig {
    /// Number of SNPs (matrix rows; the paper uses 503,783).
    pub snps: usize,
    /// Number of individuals (matrix columns; the paper uses 506).
    pub individuals: usize,
    /// Number of populations (the paper uses four: CEU, GIH, JPT, YRI).
    pub populations: usize,
    /// Wright's fixation index `Fst` controlling between-population drift
    /// (0.01–0.15 covers human populations; continental-scale structure
    /// like the paper's is ~0.1).
    pub fst: f64,
}

impl Default for HapmapConfig {
    fn default() -> Self {
        HapmapConfig {
            snps: 2000,
            individuals: 506,
            populations: 4,
            fst: 0.1,
        }
    }
}

impl HapmapConfig {
    /// Population label (0-based) of each individual: contiguous blocks of
    /// near-equal size, mirroring the four HapMap cohorts.
    pub fn population_of(&self, individual: usize) -> usize {
        let per = self.individuals.div_ceil(self.populations);
        (individual / per).min(self.populations - 1)
    }
}

/// Generates a synthetic `snps × individuals` allele-count matrix
/// (entries in `{0, 1, 2}`) from the Balding–Nichols model.
///
/// # Errors
///
/// Returns [`MatrixError::InvalidParameter`] for degenerate configurations
/// (no SNPs/individuals/populations, or `fst` outside `(0, 1)`).
pub fn hapmap_like(config: &HapmapConfig, rng: &mut impl Rng) -> Result<Mat> {
    if config.snps == 0 || config.individuals == 0 || config.populations == 0 {
        return Err(MatrixError::InvalidParameter {
            name: "config",
            message: "snps, individuals and populations must be positive".into(),
        });
    }
    if !(config.fst > 0.0 && config.fst < 1.0) {
        return Err(MatrixError::InvalidParameter {
            name: "fst",
            message: format!("fst = {} must lie in (0, 1)", config.fst),
        });
    }
    let mut a = Mat::zeros(config.snps, config.individuals);
    let drift = (1.0 - config.fst) / config.fst;
    // Per-SNP per-population allele frequencies.
    let mut freqs = vec![0.0f64; config.populations];
    for s in 0..config.snps {
        let pi = rng.gen_range(0.05..0.95);
        for f in freqs.iter_mut() {
            *f = sample_beta(pi * drift, (1.0 - pi) * drift, rng).clamp(1e-6, 1.0 - 1e-6);
        }
        for j in 0..config.individuals {
            let p = config.population_of(j);
            let f = freqs[p];
            // Binomial(2, f): two Bernoulli draws.
            let g = (rng.gen::<f64>() < f) as u8 + (rng.gen::<f64>() < f) as u8;
            a[(s, j)] = g as f64;
        }
    }
    Ok(a)
}

/// Samples `Beta(α, β)` via two Gamma draws.
fn sample_beta(alpha: f64, beta: f64, rng: &mut impl Rng) -> f64 {
    let x = sample_gamma(alpha, rng);
    let y = sample_gamma(beta, rng);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

/// Samples `Gamma(shape, 1)` with the Marsaglia–Tsang method (with the
/// standard boost for `shape < 1`).
fn sample_gamma(shape: f64, rng: &mut impl Rng) -> f64 {
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) · U^{1/a}.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = rlra_matrix::randn::standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v3 + d * v3.ln() {
            return d * v3;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn small_config() -> HapmapConfig {
        HapmapConfig {
            snps: 300,
            individuals: 60,
            populations: 4,
            fst: 0.15,
        }
    }

    #[test]
    fn entries_are_allele_counts() {
        let a = hapmap_like(&small_config(), &mut rng(1)).unwrap();
        for j in 0..a.cols() {
            for &x in a.col(j) {
                assert!(x == 0.0 || x == 1.0 || x == 2.0);
            }
        }
    }

    #[test]
    fn shape_matches_config() {
        let a = hapmap_like(&small_config(), &mut rng(2)).unwrap();
        assert_eq!(a.shape(), (300, 60));
    }

    #[test]
    fn population_blocks_cover_everyone() {
        let c = small_config();
        let mut counts = vec![0usize; c.populations];
        for j in 0..c.individuals {
            counts[c.population_of(j)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), c.individuals);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn leading_spectrum_is_flat_like_table1() {
        // Table 1: kappa(A) over the leading block ≈ 2e+01 and
        // sigma_{k+1}/sigma_0 ≈ 5e-2 — the genotype matrix is NOT sharply
        // low rank, which is exactly why random sampling struggles on it
        // (Fig. 6: errors ~0.8-0.99). Check the same signature.
        let a = hapmap_like(&small_config(), &mut rng(3)).unwrap();
        let s = rlra_lapack::singular_values(&a).unwrap();
        let kappa50 = s[0] / s[49];
        assert!(
            kappa50 > 3.0 && kappa50 < 100.0,
            "leading-block condition {kappa50:.1} should be O(10)"
        );
        // Dominant direction well above the noise floor.
        assert!(s[0] / s[10] > 2.0);
    }

    #[test]
    fn top_singular_vectors_cluster_populations() {
        // Project individuals on the top-4 right singular vectors and
        // check that within-population distances are smaller than
        // between-population distances on average (the paper's population
        // clustering use case).
        let c = small_config();
        let a = hapmap_like(&c, &mut rng(4)).unwrap();
        let svd = rlra_lapack::svd_jacobi(&a).unwrap();
        let k = 4;
        let proj: Vec<Vec<f64>> = (0..c.individuals)
            .map(|j| (1..k).map(|t| svd.v[(j, t)] * svd.sigma[t]).collect())
            .collect();
        let dist = |x: &[f64], y: &[f64]| -> f64 {
            x.iter()
                .zip(y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        let mut within = (0.0, 0usize);
        let mut between = (0.0, 0usize);
        for i in 0..c.individuals {
            for j in i + 1..c.individuals {
                let d = dist(&proj[i], &proj[j]);
                if c.population_of(i) == c.population_of(j) {
                    within.0 += d;
                    within.1 += 1;
                } else {
                    between.0 += d;
                    between.1 += 1;
                }
            }
        }
        let avg_within = within.0 / within.1 as f64;
        let avg_between = between.0 / between.1 as f64;
        assert!(
            avg_between > 1.3 * avg_within,
            "populations should separate: within {avg_within:.3} vs between {avg_between:.3}"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = small_config();
        c.fst = 0.0;
        assert!(hapmap_like(&c, &mut rng(5)).is_err());
        let mut c = small_config();
        c.snps = 0;
        assert!(hapmap_like(&c, &mut rng(6)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = hapmap_like(&small_config(), &mut rng(7)).unwrap();
        let b = hapmap_like(&small_config(), &mut rng(7)).unwrap();
        assert_eq!(a, b);
    }
}
