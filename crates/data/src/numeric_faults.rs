//! Deterministic *numerical* fault injection — the numeric counterpart
//! of the fleet-level `FaultPlan`.
//!
//! Where `rlra-core`'s fault injector kills simulated devices, the
//! generators here corrupt the *data*: graded near-rank-deficient
//! spectra (a condition-number knob that drives CholQR toward
//! breakdown), NaN-poisoned blocks (a payload the health checks must
//! catch before it propagates), and pathological row scaling (dynamic
//! range that squares into the Gram matrix). Everything is a pure
//! function of its arguments — the same inputs produce bit-identical
//! faults on every backend, which is what lets the cross-backend tests
//! assert identical ladder histograms.

use crate::spectra::Spectrum;
use rlra_matrix::{Mat, MatrixError, Result};

/// A spectrum with `rank` healthy singular values (`σᵢ = 1/(1+i)`)
/// followed by a flat tail at `tail` — the condition-number knob:
/// `κ = 1/tail`. At `tail ≈ 1e−7` the squared conditioning of the Gram
/// matrix (`κ² ≈ 1e14`) sits at plain CholQR's breakdown edge; at
/// `1e−9` it is square into round-off and only the shifted rung
/// survives; at `≲ 1e−12` even the shifted rung rejects the rescue and
/// the ladder escalates to Householder.
pub fn near_deficient_spectrum(n: usize, rank: usize, tail: f64) -> Spectrum {
    Spectrum {
        name: "near-deficient",
        values: (0..n)
            .map(|i| {
                if i < rank {
                    1.0 / (1.0 + i as f64)
                } else {
                    tail
                }
            })
            .collect(),
    }
}

/// Overwrites the `rows × cols` block of `a` at `(row0, col0)` with NaN —
/// the poisoned-payload fault the between-stage health checks exist to
/// catch.
///
/// # Errors
///
/// Returns [`MatrixError::InvalidParameter`] when the block does not fit
/// inside `a`.
pub fn poison_nan_block(
    a: &mut Mat,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
) -> Result<()> {
    if row0 + rows > a.rows() || col0 + cols > a.cols() {
        return Err(MatrixError::InvalidParameter {
            name: "poison_nan_block",
            message: format!(
                "block {rows}x{cols} at ({row0}, {col0}) exceeds the {}x{} matrix",
                a.rows(),
                a.cols()
            ),
        });
    }
    for i in row0..row0 + rows {
        for j in col0..col0 + cols {
            a[(i, j)] = f64::NAN;
        }
    }
    Ok(())
}

/// Grades the rows of `a` across `decades` orders of magnitude (row `i`
/// scaled by `10^{−decades·i/(m−1)}`) — pathological dynamic range that
/// *squares* into the Gram matrix, so CholQR feels `10^{2·decades}`.
pub fn pathological_row_scaling(a: &mut Mat, decades: f64) {
    let m = a.rows();
    if m < 2 {
        return;
    }
    let n = a.cols();
    for i in 0..m {
        let s = 10f64.powf(-decades * i as f64 / (m - 1) as f64);
        for j in 0..n {
            a[(i, j)] *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_matrix::gaussian_mat;

    #[test]
    fn near_deficient_condition_knob() {
        let s = near_deficient_spectrum(10, 4, 1e-9);
        assert_eq!(s.values.len(), 10);
        assert_eq!(s.values[3], 0.25);
        for &v in &s.values[4..] {
            assert_eq!(v, 1e-9);
        }
        assert!((s.condition() - 1e9).abs() / 1e9 < 1e-12);
    }

    #[test]
    fn poison_block_is_exact_and_bounded() {
        let mut a = Mat::zeros(6, 8);
        poison_nan_block(&mut a, 1, 2, 2, 3).unwrap();
        let nans = (0..6)
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .filter(|&(i, j)| a[(i, j)].is_nan())
            .count();
        assert_eq!(nans, 6);
        assert!(a[(0, 0)] == 0.0 && a[(3, 5)] == 0.0);
        assert!(poison_nan_block(&mut a, 5, 0, 2, 1).is_err());
        assert!(poison_nan_block(&mut a, 0, 7, 1, 2).is_err());
    }

    #[test]
    fn row_scaling_grades_across_decades() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut a = gaussian_mat(5, 7, &mut StdRng::seed_from_u64(3));
        let orig_last: Vec<f64> = (0..7).map(|j| a[(4, j)]).collect();
        pathological_row_scaling(&mut a, 8.0);
        for (j, &o) in orig_last.iter().enumerate() {
            assert!((a[(4, j)] - o * 1e-8).abs() <= 1e-20 + 1e-12 * o.abs());
        }
        // Row 0 untouched.
        assert_eq!(10f64.powf(0.0), 1.0);
    }

    #[test]
    fn deterministic_by_construction() {
        let s1 = near_deficient_spectrum(20, 5, 1e-7);
        let s2 = near_deficient_spectrum(20, 5, 1e-7);
        assert_eq!(s1, s2);
    }
}
