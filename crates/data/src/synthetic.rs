//! Synthetic matrices with prescribed singular spectra (`A = X·Σ·Yᵀ`).

use crate::spectra::Spectrum;
use rand::Rng;
use rlra_matrix::{gaussian_mat, Mat, MatrixError, Result};

/// A generated test matrix together with its exact spectrum (exact by
/// construction, since the factors are orthonormalized to machine
/// precision).
#[derive(Debug, Clone)]
pub struct TestMatrix {
    /// The matrix.
    pub a: Mat,
    /// The prescribed singular values (length `min(m, n)` or shorter; any
    /// remaining singular values are exactly zero).
    pub spectrum: Spectrum,
}

impl TestMatrix {
    /// `σ_{k+1}`, the reference value for the randomized error bound.
    pub fn sigma_after(&self, k: usize) -> f64 {
        self.spectrum.sigma_after(k)
    }

    /// `‖A‖₂ = σ₀`.
    pub fn norm2(&self) -> f64 {
        self.spectrum.sigma0()
    }
}

/// Generates an `m × n` matrix with orthonormal columns (`QᵀQ = I`) by
/// orthonormalizing a Gaussian matrix.
///
/// Gaussian matrices are almost surely full rank and well conditioned, so
/// CholQR with one reorthogonalization reaches machine-precision
/// orthogonality at BLAS-3 speed; if it ever broke down we fall back to
/// Householder QR.
///
/// # Errors
///
/// Returns [`MatrixError::InvalidParameter`] if `n > m`.
pub fn random_orthonormal(m: usize, n: usize, rng: &mut impl Rng) -> Result<Mat> {
    if n > m {
        return Err(MatrixError::InvalidParameter {
            name: "n",
            message: format!("cannot build {n} orthonormal columns in dimension {m}"),
        });
    }
    let g = gaussian_mat(m, n, rng);
    // analyze: allow(numerics, test-data generator outside any pipeline; a Gaussian draw is full-rank a.s. and the Householder fallback is exact)
    match rlra_lapack::cholqr2(&g) {
        Ok((q, _)) => Ok(q),
        Err(_) => Ok(rlra_lapack::form_q(&g)),
    }
}

/// Builds `A = X·Σ·Yᵀ` with random orthonormal `X` (`m × r`) and `Y`
/// (`n × r`), where `r = min(spectrum.values.len(), m, n)`.
///
/// The returned [`TestMatrix`] records the spectrum, making exact
/// `σ_{k+1}` available to error-bound checks without an SVD.
///
/// # Errors
///
/// Propagates factor-generation errors (none occur for valid shapes).
pub fn matrix_with_spectrum(
    m: usize,
    n: usize,
    spectrum: &Spectrum,
    rng: &mut impl Rng,
) -> Result<TestMatrix> {
    let r = spectrum.values.len().min(m).min(n);
    let x = random_orthonormal(m, r, rng)?;
    let y = random_orthonormal(n, r, rng)?;
    // A = (X · Σ) · Yᵀ; fold Σ into X's columns to avoid a third GEMM.
    let xs = Mat::from_fn(m, r, |i, j| x[(i, j)] * spectrum.values[j]);
    let mut a = Mat::zeros(m, n);
    rlra_blas::gemm(
        1.0,
        xs.as_ref(),
        rlra_blas::Trans::No,
        y.as_ref(),
        rlra_blas::Trans::Yes,
        0.0,
        a.as_mut(),
    )?;
    let spectrum = Spectrum {
        name: spectrum.name,
        values: spectrum.values[..r].to_vec(),
    };
    Ok(TestMatrix { a, spectrum })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectra::{exponent_spectrum, power_spectrum};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_lapack::householder::orthogonality_error;
    use rlra_matrix::norms::spectral_norm_mat;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_orthonormal_is_orthonormal() {
        let q = random_orthonormal(60, 12, &mut rng(1)).unwrap();
        assert_eq!(q.shape(), (60, 12));
        assert!(orthogonality_error(&q) < 1e-12);
    }

    #[test]
    fn random_orthonormal_rejects_wide() {
        assert!(random_orthonormal(5, 6, &mut rng(2)).is_err());
    }

    #[test]
    fn spectrum_is_realized_exactly() {
        let spec = power_spectrum(10);
        let tm = matrix_with_spectrum(40, 15, &spec, &mut rng(3)).unwrap();
        let got = rlra_lapack::singular_values(&tm.a).unwrap();
        for (g, e) in got.iter().zip(&spec.values) {
            assert!(
                (g - e).abs() < 1e-12 * (1.0 + e),
                "got {g:e} expected {e:e}"
            );
        }
    }

    #[test]
    fn norm2_matches_power_iteration() {
        let spec = exponent_spectrum(20);
        let tm = matrix_with_spectrum(50, 25, &spec, &mut rng(4)).unwrap();
        let pn = spectral_norm_mat(&tm.a);
        assert!((pn - tm.norm2()).abs() < 1e-8);
    }

    #[test]
    fn short_spectrum_gives_low_rank() {
        // Only 3 singular values prescribed -> rank 3.
        let spec = Spectrum {
            name: "rank3",
            values: vec![1.0, 0.5, 0.25],
        };
        let tm = matrix_with_spectrum(30, 12, &spec, &mut rng(5)).unwrap();
        let s = rlra_lapack::singular_values(&tm.a).unwrap();
        assert!((s[2] - 0.25).abs() < 1e-12);
        for &v in &s[3..] {
            assert!(v < 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = power_spectrum(5);
        let a = matrix_with_spectrum(10, 8, &spec, &mut rng(6)).unwrap();
        let b = matrix_with_spectrum(10, 8, &spec, &mut rng(6)).unwrap();
        assert_eq!(a.a, b.a);
    }

    #[test]
    fn sigma_after_reads_spectrum() {
        let spec = power_spectrum(20);
        let tm = matrix_with_spectrum(25, 20, &spec, &mut rng(7)).unwrap();
        assert_eq!(tm.sigma_after(3), spec.values[3]);
    }
}
