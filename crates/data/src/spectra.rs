//! Singular-value profiles from the paper's Table 1.

/// A named singular-value profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// Name used in tables and benchmark output (`power`, `exponent`, …).
    pub name: &'static str,
    /// Singular values in non-increasing order.
    pub values: Vec<f64>,
}

impl Spectrum {
    /// `σ₀` (the largest singular value).
    pub fn sigma0(&self) -> f64 {
        self.values.first().copied().unwrap_or(0.0)
    }

    /// `σ_{k+1}` in the paper's 1-based-after-k notation: the `(k+1)`-th
    /// largest singular value, i.e. `values[k]` (0-based). This is the
    /// quantity the randomized error bound is stated against.
    pub fn sigma_after(&self, k: usize) -> f64 {
        self.values.get(k).copied().unwrap_or(0.0)
    }

    /// Condition number `σ₀ / σ_min` over the stored values.
    pub fn condition(&self) -> f64 {
        let last = self.values.last().copied().unwrap_or(0.0);
        if last == 0.0 {
            f64::INFINITY
        } else {
            self.sigma0() / last
        }
    }
}

/// The paper's **power** profile: `σᵢ = (i + 1)⁻³` for `i = 0..n`
/// (Table 1: `σ₀ = 1`, `σ₅₁ ≈ 8e−6` at n = 500... the paper reports
/// `σₖ₊₁ = 8e−06` for k = 50, and indeed `51⁻³ ≈ 7.6e−6`).
pub fn power_spectrum(n: usize) -> Spectrum {
    Spectrum {
        name: "power",
        values: (0..n).map(|i| ((i + 1) as f64).powi(-3)).collect(),
    }
}

/// The paper's **exponent** profile: `σᵢ = 10^{−i/10}`
/// (Table 1: `σ₀ = 1`, `σₖ₊₁ ≈ 1.3e−05` for k = 50; `10^{−5} = 1e−5`,
/// matching to the table's precision with the off-by-one of `σ₅₁`).
pub fn exponent_spectrum(n: usize) -> Spectrum {
    Spectrum {
        name: "exponent",
        values: (0..n).map(|i| 10f64.powf(-(i as f64) / 10.0)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_matches_table1() {
        let s = power_spectrum(500);
        assert_eq!(s.sigma0(), 1.0);
        // Table 1 reports sigma_{k+1} = 8e-06 for k = 50.
        let sk1 = s.sigma_after(50);
        assert!((sk1 - 51f64.powi(-3)).abs() < 1e-18);
        assert!(sk1 > 7e-6 && sk1 < 9e-6, "sigma_51 = {sk1:e}");
        // Table 1 reports kappa = 1.3e+05, which is sigma_0 / sigma_{k+1}
        // (= 1 / 8e-06) rather than the full-spectrum condition number.
        let kappa = s.sigma0() / s.sigma_after(50);
        assert!(kappa > 1.2e5 && kappa < 1.35e5, "kappa = {kappa:e}");
    }

    #[test]
    fn exponent_matches_table1() {
        let s = exponent_spectrum(500);
        assert_eq!(s.sigma0(), 1.0);
        let sk1 = s.sigma_after(50);
        // 10^{-5} = 1.0e-5; the paper prints 1.3e-05 for sigma_{k+1}
        // which corresponds to sigma at index ~49 (10^{-4.9}): accept the
        // range.
        assert!(sk1 > 9e-6 && sk1 < 1.4e-5, "sigma_51 = {sk1:e}");
        // kappa = 10^{49.9/10}... Table 1 reports 7.9e+04 for n = 500:
        // our stored length-500 profile ends at 10^{-49.9}. The paper's
        // reported kappa corresponds to the *numerically nonzero* range;
        // just check monotone decay here.
        for w in s.values.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn sigma_after_out_of_range_is_zero() {
        let s = power_spectrum(10);
        assert_eq!(s.sigma_after(10), 0.0);
    }

    #[test]
    fn condition_of_flat_spectrum() {
        let s = Spectrum {
            name: "flat",
            values: vec![2.0; 5],
        };
        assert_eq!(s.condition(), 1.0);
    }

    #[test]
    fn empty_spectrum_is_degenerate() {
        let s = Spectrum {
            name: "empty",
            values: vec![],
        };
        assert_eq!(s.sigma0(), 0.0);
        assert!(s.condition().is_infinite());
    }
}

/// A "staircase" profile: `steps` plateaus separated by factor-`drop`
/// cliffs — the classic stress test for rank-revealing algorithms
/// (pivoting must not be fooled by ties within a plateau).
pub fn staircase_spectrum(n: usize, steps: usize, drop: f64) -> Spectrum {
    let per = n.div_ceil(steps.max(1));
    Spectrum {
        name: "staircase",
        values: (0..n).map(|i| drop.powi((i / per.max(1)) as i32)).collect(),
    }
}

/// A rank-`r` signal spectrum sitting on a flat noise floor — the shape
/// of a measured data matrix (e.g. the genotype matrix of Table 1).
pub fn low_rank_plus_noise_spectrum(n: usize, r: usize, noise: f64) -> Spectrum {
    Spectrum {
        name: "low-rank+noise",
        values: (0..n)
            .map(|i| if i < r { 1.0 / (1.0 + i as f64) } else { noise })
            .collect(),
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn staircase_has_plateaus_and_cliffs() {
        let s = staircase_spectrum(12, 3, 0.01);
        // Three plateaus of four.
        assert_eq!(s.values[0], s.values[3]);
        assert_eq!(s.values[4], s.values[7]);
        assert!((s.values[4] / s.values[0] - 0.01).abs() < 1e-15);
        assert!((s.values[8] / s.values[4] - 0.01).abs() < 1e-15);
    }

    #[test]
    fn low_rank_plus_noise_floor() {
        let s = low_rank_plus_noise_spectrum(10, 3, 1e-3);
        assert!(s.values[2] > 1e-1);
        for &v in &s.values[3..] {
            assert_eq!(v, 1e-3);
        }
    }

    #[test]
    fn staircase_defeats_nothing_here_but_shapes_hold() {
        let s = staircase_spectrum(7, 2, 0.5);
        assert_eq!(s.values.len(), 7);
        assert!(s.values.windows(2).all(|w| w[0] >= w[1]));
    }
}
