//! Shared test-matrix helpers for the workspace's unit tests.
//!
//! Every crate used to carry its own copy of these small generators;
//! they live here once so that cross-backend tests are guaranteed to
//! factor the *same* matrix.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_blas::Trans;
use rlra_matrix::{gaussian_mat, Mat};

/// A deterministic test RNG.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `A = X·Σ·Yᵀ` with geometric spectrum `σᵢ = decay^i` and random
/// orthogonal factors, plus the exact σ list.
pub fn decay_matrix(m: usize, n: usize, decay: f64, seed: u64) -> (Mat, Vec<f64>) {
    let r = m.min(n);
    let spec: Vec<f64> = (0..r).map(|i| decay.powi(i as i32)).collect();
    with_spectrum(m, n, &spec, seed)
}

/// Exponent-profile matrix `σᵢ = 10^{−i/10}` (the one the paper uses in
/// §10 for the adaptive study).
pub fn exponent_matrix(m: usize, n: usize, seed: u64) -> Mat {
    let r = m.min(n);
    let spec: Vec<f64> = (0..r).map(|i| 10f64.powf(-(i as f64) / 10.0)).collect();
    with_spectrum(m, n, &spec, seed).0
}

fn with_spectrum(m: usize, n: usize, spec: &[f64], seed: u64) -> (Mat, Vec<f64>) {
    let r = spec.len();
    let x = rlra_lapack::form_q(&gaussian_mat(m, r, &mut rng(seed)));
    let y = rlra_lapack::form_q(&gaussian_mat(n, r, &mut rng(seed + 1)));
    let xs = Mat::from_fn(m, r, |i, j| x[(i, j)] * spec[j]);
    let mut a = Mat::zeros(m, n);
    rlra_blas::gemm(
        1.0,
        xs.as_ref(),
        Trans::No,
        y.as_ref(),
        Trans::Yes,
        0.0,
        a.as_mut(),
    )
    .expect("conforming shapes by construction");
    (a, spec.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_matrix_is_deterministic_with_exact_spectrum() {
        let (a, spec) = decay_matrix(30, 20, 0.5, 7);
        let (b, _) = decay_matrix(30, 20, 0.5, 7);
        assert_eq!(a, b);
        assert_eq!(spec.len(), 20);
        assert!((spec[0] - 1.0).abs() < 1e-15);
        assert!((spec[1] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn exponent_matrix_shape_and_determinism() {
        let a = exponent_matrix(25, 15, 3);
        assert_eq!(a.shape(), (25, 15));
        assert_eq!(a, exponent_matrix(25, 15, 3));
    }
}
