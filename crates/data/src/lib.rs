//! # rlra-data
//!
//! Test-matrix generators reproducing the evaluation inputs of Mary et
//! al., SC'15 (Table 1):
//!
//! - [`spectra`] — the **power** (`σᵢ = (i+1)⁻³`) and **exponent**
//!   (`σᵢ = 10^{−i/10}`) singular-value profiles,
//! - [`synthetic`] — matrices `A = X·Σ·Yᵀ` with prescribed spectra and
//!   random orthogonal factors,
//! - [`numeric_faults`] — deterministic numerical fault injection
//!   (near-rank-deficient spectra, NaN-poisoned blocks, pathological
//!   scaling) for exercising the breakdown guards,
//! - [`hapmap`] — a synthetic substitute for the International HapMap
//!   genotype matrix: a Balding–Nichols population-structure model
//!   producing 0/1/2 allele-count matrices whose spectral signature (a
//!   few dominant population directions over a slowly decaying noise
//!   floor, κ(A) ≈ 20) matches the real dataset the paper uses.
//!   The real HapMap bulk release is not redistributable here; DESIGN.md
//!   documents the substitution.

#![forbid(unsafe_code)]

pub mod hapmap;
pub mod io;
pub mod kernels;
pub mod numeric_faults;
pub mod spectra;
pub mod synthetic;
pub mod testmat;

pub use hapmap::{hapmap_like, HapmapConfig};
pub use io::{parse_matrix_market, read_matrix_market, to_matrix_market, write_matrix_market};
pub use kernels::{interaction_block, kernel_matrix, uniform_points, Kernel};
pub use numeric_faults::{near_deficient_spectrum, pathological_row_scaling, poison_nan_block};
pub use spectra::{
    exponent_spectrum, low_rank_plus_noise_spectrum, power_spectrum, staircase_spectrum, Spectrum,
};
pub use synthetic::{matrix_with_spectrum, random_orthonormal, TestMatrix};
