//! MatrixMarket I/O — import real datasets (like the HapMap-derived
//! matrices the paper uses) and export results.
//!
//! Supports the two common flavors of the NIST MatrixMarket exchange
//! format for `real general` matrices:
//!
//! - `array` — dense column-major values,
//! - `coordinate` — sparse triplets, densified on read.
//!
//! Only what a dense low-rank workspace needs; pattern/complex/symmetry
//! variants are rejected with a clear error.

use rlra_matrix::{Mat, MatrixError, Result};
use std::fs;
use std::path::Path;

/// Parses a MatrixMarket string into a dense matrix.
///
/// # Errors
///
/// Returns [`MatrixError::InvalidParameter`] on malformed or unsupported
/// content.
pub fn parse_matrix_market(text: &str) -> Result<Mat> {
    let bad = |message: String| MatrixError::InvalidParameter {
        name: "matrix-market",
        message,
    };
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| bad("empty input".into()))?;
    let header_l = header.to_ascii_lowercase();
    if !header_l.starts_with("%%matrixmarket matrix") {
        return Err(bad(format!("bad header: {header}")));
    }
    let tokens: Vec<&str> = header_l.split_whitespace().collect();
    if tokens.len() < 5 {
        return Err(bad(format!("incomplete header: {header}")));
    }
    let layout = tokens[2];
    let field = tokens[3];
    let symmetry = tokens[4];
    if field != "real" && field != "integer" && field != "double" {
        return Err(bad(format!("unsupported field `{field}` (only real)")));
    }
    if symmetry != "general" {
        return Err(bad(format!(
            "unsupported symmetry `{symmetry}` (only general)"
        )));
    }
    // Skip comments and blanks.
    let mut data_lines = lines.filter(|l| {
        let t = l.trim();
        !t.is_empty() && !t.starts_with('%')
    });
    let size_line = data_lines
        .next()
        .ok_or_else(|| bad("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| bad(format!("bad size entry `{t}`: {e}")))
        })
        .collect::<Result<_>>()?;
    match layout {
        "array" => {
            if dims.len() != 2 {
                return Err(bad(format!(
                    "array size line needs 2 entries, got {}",
                    dims.len()
                )));
            }
            let (m, n) = (dims[0], dims[1]);
            let mut values = Vec::with_capacity(m * n);
            for line in data_lines {
                for tok in line.split_whitespace() {
                    values.push(
                        tok.parse::<f64>()
                            .map_err(|e| bad(format!("bad value `{tok}`: {e}")))?,
                    );
                }
            }
            if values.len() != m * n {
                return Err(bad(format!(
                    "expected {} values, found {}",
                    m * n,
                    values.len()
                )));
            }
            // MatrixMarket array data is column major — same as Mat.
            Mat::from_col_major(m, n, values)
        }
        "coordinate" => {
            if dims.len() != 3 {
                return Err(bad(format!(
                    "coordinate size line needs 3 entries, got {}",
                    dims.len()
                )));
            }
            let (m, n, nnz) = (dims[0], dims[1], dims[2]);
            let mut out = Mat::zeros(m, n);
            let mut count = 0usize;
            for line in data_lines {
                let toks: Vec<&str> = line.split_whitespace().collect();
                if toks.len() != 3 {
                    return Err(bad(format!("coordinate entry needs 3 tokens: `{line}`")));
                }
                let i: usize = toks[0]
                    .parse()
                    .map_err(|e| bad(format!("bad row `{}`: {e}", toks[0])))?;
                let j: usize = toks[1]
                    .parse()
                    .map_err(|e| bad(format!("bad col `{}`: {e}", toks[1])))?;
                let v: f64 = toks[2]
                    .parse()
                    .map_err(|e| bad(format!("bad value `{}`: {e}", toks[2])))?;
                if i == 0 || j == 0 || i > m || j > n {
                    return Err(bad(format!("entry ({i}, {j}) outside {m}x{n} (1-based)")));
                }
                out[(i - 1, j - 1)] = v;
                count += 1;
            }
            if count != nnz {
                return Err(bad(format!("expected {nnz} entries, found {count}")));
            }
            Ok(out)
        }
        other => Err(bad(format!("unsupported layout `{other}`"))),
    }
}

/// Renders a dense matrix in MatrixMarket `array real general` format.
pub fn to_matrix_market(a: &Mat) -> String {
    let mut out = String::with_capacity(a.rows() * a.cols() * 24 + 64);
    out.push_str("%%MatrixMarket matrix array real general\n");
    out.push_str(&format!("{} {}\n", a.rows(), a.cols()));
    for j in 0..a.cols() {
        for &v in a.col(j) {
            out.push_str(&format!("{v:.17e}\n"));
        }
    }
    out
}

/// Reads a MatrixMarket file from disk.
///
/// # Errors
///
/// I/O failures are surfaced as [`MatrixError::InvalidParameter`] with
/// the path in the message; parse errors as in [`parse_matrix_market`].
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<Mat> {
    let path = path.as_ref();
    let text = fs::read_to_string(path).map_err(|e| MatrixError::InvalidParameter {
        name: "path",
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    parse_matrix_market(&text)
}

/// Writes a matrix to disk in MatrixMarket format.
///
/// # Errors
///
/// I/O failures are surfaced as [`MatrixError::InvalidParameter`].
pub fn write_matrix_market(path: impl AsRef<Path>, a: &Mat) -> Result<()> {
    let path = path.as_ref();
    fs::write(path, to_matrix_market(a)).map_err(|e| MatrixError::InvalidParameter {
        name: "path",
        message: format!("cannot write {}: {e}", path.display()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_array_format() {
        let a = Mat::from_fn(3, 4, |i, j| (i as f64) - 2.5 * j as f64 + 0.125);
        let text = to_matrix_market(&a);
        let back = parse_matrix_market(&text).unwrap();
        assert!(back.approx_eq(&a, 0.0), "array round trip must be exact");
    }

    #[test]
    fn parses_coordinate_format() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 3\n\
                    1 1 2.5\n\
                    2 3 -1.0\n\
                    3 2 4.0\n";
        let a = parse_matrix_market(text).unwrap();
        assert_eq!(a[(0, 0)], 2.5);
        assert_eq!(a[(1, 2)], -1.0);
        assert_eq!(a[(2, 1)], 4.0);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn array_is_column_major() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
        let a = parse_matrix_market(text).unwrap();
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(1, 0)], 2.0);
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 1)], 4.0);
    }

    #[test]
    fn rejects_unsupported_variants() {
        assert!(
            parse_matrix_market("%%MatrixMarket matrix array complex general\n1 1\n1 0\n").is_err()
        );
        assert!(
            parse_matrix_market("%%MatrixMarket matrix array real symmetric\n1 1\n1\n").is_err()
        );
        assert!(parse_matrix_market("not a header\n1 1\n1\n").is_err());
        assert!(parse_matrix_market("").is_err());
    }

    #[test]
    fn rejects_malformed_data() {
        // Wrong count.
        assert!(
            parse_matrix_market("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n")
                .is_err()
        );
        // Out-of-range coordinate.
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"
        )
        .is_err());
        // Bad token.
        assert!(
            parse_matrix_market("%%MatrixMarket matrix array real general\n1 1\nxyz\n").is_err()
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("rlra_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mtx");
        let a = Mat::from_fn(5, 2, |i, j| (i * 2 + j) as f64 / 7.0);
        write_matrix_market(&path, &a).unwrap();
        let back = read_matrix_market(&path).unwrap();
        assert!(back.approx_eq(&a, 0.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_clear_error() {
        let e = read_matrix_market("/nonexistent/definitely/not/here.mtx");
        assert!(matches!(e, Err(MatrixError::InvalidParameter { .. })));
    }
}
