//! CUR decomposition — interpretable low-rank approximation from actual
//! rows and columns of `A`.
//!
//! The paper motivates low-rank approximation of the HapMap genotype
//! matrix through its references \[6\] (relative-error CUR) and \[14\]
//! ("CUR matrix decompositions for improved data analysis"): for data
//! matrices, an approximation built from *actual columns* (SNPs) and
//! *rows* (individuals) is far more interpretable than abstract singular
//! vectors. This module builds a CUR from the same machinery as the rest
//! of the crate: pivot columns/rows are selected by (tournament or
//! standard) QRCP of a randomly sampled sketch.

use crate::config::SamplerConfig;
use rand::Rng;
use rlra_blas::{gemm, Trans};
use rlra_matrix::{gaussian_mat, Mat, MatrixError, Result};

/// A CUR decomposition `A ≈ C·U·R` where `C` holds `k` actual columns of
/// `A`, `R` holds `k` actual rows, and `U` is the small linking matrix.
#[derive(Debug, Clone)]
pub struct CurDecomposition {
    /// Indices of the selected columns.
    pub col_indices: Vec<usize>,
    /// Indices of the selected rows.
    pub row_indices: Vec<usize>,
    /// The selected columns (`m × k`).
    pub c: Mat,
    /// The linking matrix (`k × k`).
    pub u: Mat,
    /// The selected rows (`k × n`).
    pub r: Mat,
}

impl CurDecomposition {
    /// Rank of the decomposition.
    pub fn rank(&self) -> usize {
        self.col_indices.len()
    }

    /// Reconstructs `C·U·R`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn reconstruct(&self) -> Result<Mat> {
        let mut cu = Mat::zeros(self.c.rows(), self.u.cols());
        gemm(
            1.0,
            self.c.as_ref(),
            Trans::No,
            self.u.as_ref(),
            Trans::No,
            0.0,
            cu.as_mut(),
        )?;
        let mut out = Mat::zeros(self.c.rows(), self.r.cols());
        gemm(
            1.0,
            cu.as_ref(),
            Trans::No,
            self.r.as_ref(),
            Trans::No,
            0.0,
            out.as_mut(),
        )?;
        Ok(out)
    }

    /// Spectral-norm error `‖A − CUR‖₂`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn error_spectral(&self, a: &Mat) -> Result<f64> {
        let rec = self.reconstruct()?;
        let diff = rlra_matrix::ops::sub(a, &rec)?;
        Ok(rlra_matrix::norms::spectral_norm(diff.as_ref()))
    }
}

/// Computes a rank-`k` CUR decomposition.
///
/// Column selection: QRCP of the randomly sampled sketch `Ω·A`
/// (`ℓ × n`) — exactly Step 2 of the paper's algorithm. Row selection:
/// the mirror construction, QRCP of `(A·Ωᵀ)ᵀ`. The linking matrix is the
/// least-squares optimum `U = C⁺·A·R⁺`, computed through the selected
/// blocks' QR factorizations.
///
/// # Errors
///
/// Returns configuration errors and propagates kernel failures.
pub fn cur_decomposition(
    a: &Mat,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<CurDecomposition> {
    let (m, n) = a.shape();
    cfg.validate(m, n)?;
    let l = cfg.l();
    let k = cfg.k;

    // --- Column selection from the row sketch ------------------------------
    let omega = gaussian_mat(l, m, rng);
    let mut sketch_cols = Mat::zeros(l, n);
    gemm(
        1.0,
        omega.as_ref(),
        Trans::No,
        a.as_ref(),
        Trans::No,
        0.0,
        sketch_cols.as_mut(),
    )?;
    let col_pick = rlra_lapack::qp3_blocked(&sketch_cols, k, 16.min(k.max(1)))?;
    let col_indices: Vec<usize> = col_pick.perm.as_slice()[..k].to_vec();

    // --- Row selection from the column sketch -------------------------------
    let omega2 = gaussian_mat(l, n, rng);
    // sketch_rows = A · Ω2ᵀ (m × l); QRCP its transpose to rank rows.
    let mut sketch_rows = Mat::zeros(m, l);
    gemm(
        1.0,
        a.as_ref(),
        Trans::No,
        omega2.as_ref(),
        Trans::Yes,
        0.0,
        sketch_rows.as_mut(),
    )?;
    let row_pick = rlra_lapack::qp3_blocked(&sketch_rows.transpose(), k, 16.min(k.max(1)))?;
    let row_indices: Vec<usize> = row_pick.perm.as_slice()[..k].to_vec();

    // --- Gather C and R -------------------------------------------------------
    let mut c = Mat::zeros(m, k);
    for (dst, &j) in col_indices.iter().enumerate() {
        c.col_mut(dst).copy_from_slice(a.col(j));
    }
    let r = Mat::from_fn(k, n, |i, j| a[(row_indices[i], j)]);

    // --- U = C⁺ · A · R⁺ -------------------------------------------------------
    // C⁺·A via QR of C: C = Q_c·R_c  ⟹  C⁺·A = R_c⁻¹·Q_cᵀ·A.
    let (qc, rc) = rlra_lapack::qr_factor(&c);
    let mut qca = Mat::zeros(k, n);
    gemm(
        1.0,
        qc.as_ref(),
        Trans::Yes,
        a.as_ref(),
        Trans::No,
        0.0,
        qca.as_mut(),
    )?;
    rlra_blas::trsm(
        rlra_blas::Side::Left,
        rlra_blas::UpLo::Upper,
        Trans::No,
        rlra_blas::Diag::NonUnit,
        1.0,
        rc.as_ref(),
        qca.as_mut(),
    )
    .map_err(|e| match e {
        MatrixError::SingularDiagonal { index } => MatrixError::InvalidParameter {
            name: "k",
            message: format!("selected columns are rank deficient at {index}; lower k"),
        },
        other => other,
    })?;
    // (C⁺A)·R⁺ via QR of Rᵀ: Rᵀ = Q_r·R_r  ⟹  R⁺ = Q_r·R_r⁻ᵀ.
    let (qr_, rr) = rlra_lapack::qr_factor(&r.transpose());
    let mut w = Mat::zeros(k, k);
    gemm(
        1.0,
        qca.as_ref(),
        Trans::No,
        qr_.as_ref(),
        Trans::No,
        0.0,
        w.as_mut(),
    )?;
    rlra_blas::trsm(
        rlra_blas::Side::Right,
        rlra_blas::UpLo::Upper,
        Trans::Yes,
        rlra_blas::Diag::NonUnit,
        1.0,
        rr.as_ref(),
        w.as_mut(),
    )?;
    Ok(CurDecomposition {
        col_indices,
        row_indices,
        c,
        u: w,
        r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_data::testmat::{decay_matrix, rng};

    #[test]
    fn c_and_r_are_actual_slices_of_a() {
        let (a, _) = decay_matrix(40, 30, 0.5, 1);
        let cur = cur_decomposition(&a, &SamplerConfig::new(5), &mut rng(2)).unwrap();
        for (dst, &j) in cur.col_indices.iter().enumerate() {
            assert_eq!(cur.c.col(dst), a.col(j), "C must hold real columns");
        }
        for (i, &src) in cur.row_indices.iter().enumerate() {
            for j in 0..30 {
                assert_eq!(cur.r[(i, j)], a[(src, j)], "R must hold real rows");
            }
        }
    }

    #[test]
    fn indices_are_distinct() {
        let (a, _) = decay_matrix(50, 35, 0.6, 3);
        let cur = cur_decomposition(&a, &SamplerConfig::new(8), &mut rng(4)).unwrap();
        let mut c = cur.col_indices.clone();
        c.sort_unstable();
        c.dedup();
        assert_eq!(c.len(), 8);
        let mut r = cur.row_indices.clone();
        r.sort_unstable();
        r.dedup();
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn error_within_factor_of_optimal() {
        let (a, spec) = decay_matrix(60, 40, 0.5, 5);
        let k = 6;
        let cur = cur_decomposition(&a, &SamplerConfig::new(k).with_p(8), &mut rng(6)).unwrap();
        let err = cur.error_spectral(&a).unwrap();
        // CUR is weaker than SVD truncation but must stay within a
        // modest factor on a decaying spectrum.
        assert!(
            err < 60.0 * spec[k],
            "CUR error {err:e} vs sigma_k+1 {:e}",
            spec[k]
        );
    }

    #[test]
    fn exact_on_low_rank() {
        let x = gaussian_mat(30, 3, &mut rng(7));
        let y = gaussian_mat(3, 20, &mut rng(8));
        let mut a = Mat::zeros(30, 20);
        gemm(
            1.0,
            x.as_ref(),
            Trans::No,
            y.as_ref(),
            Trans::No,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        let cur = cur_decomposition(&a, &SamplerConfig::new(3).with_p(5), &mut rng(9)).unwrap();
        let err = cur.error_spectral(&a).unwrap();
        let scale = rlra_matrix::norms::spectral_norm(a.as_ref());
        assert!(err < 1e-9 * scale, "rank-3 CUR must be exact: {err:e}");
    }

    #[test]
    fn dominant_column_and_row_selected() {
        let mut a = gaussian_mat(25, 18, &mut rng(10));
        for x in a.col_mut(7) {
            *x *= 500.0;
        }
        let cur = cur_decomposition(&a, &SamplerConfig::new(3).with_p(5), &mut rng(11)).unwrap();
        assert!(
            cur.col_indices.contains(&7),
            "dominant column must be kept: {:?}",
            cur.col_indices
        );
    }

    #[test]
    fn reconstruct_shapes() {
        let (a, _) = decay_matrix(20, 15, 0.5, 12);
        let cur = cur_decomposition(&a, &SamplerConfig::new(4).with_p(4), &mut rng(13)).unwrap();
        assert_eq!(cur.rank(), 4);
        assert_eq!(cur.reconstruct().unwrap().shape(), (20, 15));
    }
}
