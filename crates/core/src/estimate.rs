//! Probabilistic error estimation for the adaptive scheme.
//!
//! The adaptive-ℓ scheme estimates `‖A − A·BᵀB‖` from the projection
//! residual of a fresh random block `W = Ω_inc·A`:
//! `ε̃ = max_i ‖wᵢ − (wᵢBᵀ)B‖₂` over the `ℓ_inc` rows `wᵢ`. The estimate
//! obeys (paper eq. 4)
//!
//! `‖A − A·BᵀB‖ ≤ c_ad·√(2/π)·ε̃` with probability
//! `1 − min(m, n)·c_ad^{−ℓ_inc}`,
//!
//! so larger increments `ℓ_inc` allow a smaller constant `c_ad` for the
//! same failure probability — the effect visible in the paper's
//! Figure 16 (estimates with `ℓ_inc = 8` are slightly worse than with
//! larger increments).

use rlra_blas::Trans;
use rlra_matrix::{Mat, Result};

/// Residual estimate `ε̃`: the largest row norm of `W − (W·Bᵀ)·B`, where
/// `basis` has orthonormal rows spanning the current sampled subspace.
/// The `block` is consumed unchanged (a scratch copy is made).
///
/// # Errors
///
/// Propagates shape errors.
pub fn residual_estimate(block: &Mat, basis: &Mat) -> Result<f64> {
    let mut resid = block.clone();
    if basis.rows() > 0 {
        // coeff = W Bᵀ  (l_inc × l), resid = W − coeff·B.
        let mut coeff = Mat::zeros(block.rows(), basis.rows());
        rlra_blas::gemm(
            1.0,
            block.as_ref(),
            Trans::No,
            basis.as_ref(),
            Trans::Yes,
            0.0,
            coeff.as_mut(),
        )?;
        rlra_blas::gemm(
            -1.0,
            coeff.as_ref(),
            Trans::No,
            basis.as_ref(),
            Trans::No,
            1.0,
            resid.as_mut(),
        )?;
    }
    let mut worst = 0.0f64;
    for i in 0..resid.rows() {
        let row_norm_sq: f64 = (0..resid.cols()).map(|j| resid[(i, j)].powi(2)).sum();
        worst = worst.max(row_norm_sq.sqrt());
    }
    Ok(worst)
}

/// The constant `c_ad` for failure probability `gamma`:
/// `c_ad = (gamma / min(m, n))^{−1/ℓ_inc}` (paper §10).
pub fn cad(gamma: f64, min_mn: usize, l_inc: usize) -> f64 {
    (gamma / min_mn as f64).powf(-1.0 / l_inc as f64)
}

/// Upper bound on the true error implied by the estimate (paper eq. 4):
/// `c_ad·√(2/π)·ε̃`.
pub fn error_bound_from_estimate(estimate: f64, cad: f64) -> f64 {
    cad * (2.0 / std::f64::consts::PI).sqrt() * estimate
}

/// Exact residual `‖A − A·BᵀB‖₂` (spectral norm), the dashed "actual
/// error" line of Figure 16. `O(mnl)` — used as an offline diagnostic,
/// not inside the timed loop.
///
/// # Errors
///
/// Propagates shape errors.
pub fn actual_error(a: &Mat, basis: &Mat) -> Result<f64> {
    let (m, _n) = a.shape();
    let l = basis.rows();
    if l == 0 {
        return Ok(rlra_matrix::norms::spectral_norm(a.as_ref()));
    }
    // P = A Bᵀ (m × l), resid = A − P B.
    let mut p = Mat::zeros(m, l);
    rlra_blas::gemm(
        1.0,
        a.as_ref(),
        Trans::No,
        basis.as_ref(),
        Trans::Yes,
        0.0,
        p.as_mut(),
    )?;
    let mut resid = a.clone();
    rlra_blas::gemm(
        -1.0,
        p.as_ref(),
        Trans::No,
        basis.as_ref(),
        Trans::No,
        1.0,
        resid.as_mut(),
    )?;
    Ok(rlra_matrix::norms::spectral_norm(resid.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_matrix::gaussian_mat;

    #[test]
    fn zero_residual_when_block_in_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let basis = crate::power::orth_rows(&gaussian_mat(4, 30, &mut rng), true).unwrap();
        // Block = rows already in span(basis).
        let coeff = gaussian_mat(2, 4, &mut rng);
        let mut block = Mat::zeros(2, 30);
        rlra_blas::gemm(
            1.0,
            coeff.as_ref(),
            Trans::No,
            basis.as_ref(),
            Trans::No,
            0.0,
            block.as_mut(),
        )
        .unwrap();
        let est = residual_estimate(&block, &basis).unwrap();
        assert!(est < 1e-12, "est = {est:e}");
    }

    #[test]
    fn estimate_positive_for_new_directions() {
        let mut rng = StdRng::seed_from_u64(2);
        let basis = crate::power::orth_rows(&gaussian_mat(3, 20, &mut rng), true).unwrap();
        let block = gaussian_mat(2, 20, &mut rng);
        let est = residual_estimate(&block, &basis).unwrap();
        assert!(est > 0.1);
    }

    #[test]
    fn empty_basis_gives_row_norms() {
        let block = Mat::from_row_major(1, 2, &[3.0, 4.0]).unwrap();
        let est = residual_estimate(&block, &Mat::zeros(0, 2)).unwrap();
        assert!((est - 5.0).abs() < 1e-14);
    }

    #[test]
    fn cad_decreases_with_larger_increment() {
        let c8 = cad(0.01, 2500, 8);
        let c64 = cad(0.01, 2500, 64);
        assert!(c8 > c64, "c_ad(8) = {c8} should exceed c_ad(64) = {c64}");
        assert!(c64 > 1.0);
    }

    #[test]
    fn bound_dominates_actual_error_statistically() {
        // On a random low-rank-plus-noise matrix the certified bound must
        // hold (with the default constants it holds with high
        // probability; use a fixed seed).
        let mut rng = StdRng::seed_from_u64(3);
        let a = gaussian_mat(40, 25, &mut rng);
        let basis = crate::power::orth_rows(&gaussian_mat(6, 25, &mut rng), true).unwrap();
        let block_raw = gaussian_mat(8, 40, &mut rng);
        let mut block = Mat::zeros(8, 25);
        rlra_blas::gemm(
            1.0,
            block_raw.as_ref(),
            Trans::No,
            a.as_ref(),
            Trans::No,
            0.0,
            block.as_mut(),
        )
        .unwrap();
        // Normalize rows by sqrt(m) so the Gaussian test-vector scaling
        // matches the estimator's assumption E‖ω‖² = m.
        let est = residual_estimate(&block, &basis).unwrap() / (40f64).sqrt();
        let exact = actual_error(&a, &basis).unwrap();
        let bound = error_bound_from_estimate(est, cad(0.01, 25, 8));
        assert!(
            bound * 10.0 > exact,
            "bound {bound:e} should be within an order of the actual {exact:e}"
        );
    }

    #[test]
    fn actual_error_zero_for_complete_basis() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = gaussian_mat(10, 5, &mut rng);
        // Full row space: 5 orthonormal rows spanning R^5.
        let basis = crate::power::orth_rows(&gaussian_mat(5, 5, &mut rng), true).unwrap();
        let err = actual_error(&a, &basis).unwrap();
        assert!(err < 1e-10);
    }
}
