//! Telemetry wiring for executor runs: the [`FlightDeck`].
//!
//! `rlra-obs` deliberately sits *below* `rlra-core` in the crate DAG
//! (so the kernels it instruments can depend on it); this module is the
//! glue that points the other way. A [`FlightDeck`] bundles the three
//! observe-only instruments into one handle:
//!
//! - a metric [`Registry`] fed live by a [`RegistrySink`] on the run's
//!   tracer and, after the run, by [`FlightDeck::observe_report`];
//! - a [`FlightRecorder`] teed into the same tracer, keeping each
//!   device's recent events for postmortems;
//! - a postmortem dump path: classify a [`MatrixError`] into an
//!   incident, and write a bundle (event tail + registry snapshot +
//!   [`report_json`] + checkpoint pointer) next to the run.
//!
//! Everything stays observe-only — arming a deck changes neither the
//! factors nor any field of the [`ExecReport`] (pinned by
//! `tests/trace.rs` on every backend).

use crate::backend::ExecReport;
use rlra_matrix::MatrixError;
use rlra_obs::{
    names, registry_json, FanoutSink, FlightRecorder, Incident, Registry, RegistrySink,
};
use rlra_trace::json::num_json;
use rlra_trace::{metrics_json, Tracer};
use std::io;
use std::path::{Path, PathBuf};

/// Default per-device ring capacity of a deck's flight recorder.
pub const DEFAULT_RING_CAPACITY: usize = 512;

/// Renders an [`ExecReport`] as a JSON document (every scalar field,
/// the per-phase timeline breakdown, and the embedded metrics
/// registry). Postmortem bundles store this as `report.json`;
/// reconciliation tests parse it back with `rlra_trace::parse_json`.
pub fn report_json(rep: &ExecReport) -> String {
    let mut out = format!(
        "{{\"seconds\":{},\"launches\":{},\"syncs\":{},\"comms\":{},\"devices\":{},\
         \"faults_injected\":{},\"retries\":{},\"recovery_seconds\":{},\"devices_lost\":{},\
         \"breakdowns\":{},\"fallbacks\":{},\"ladder_histogram\":[{},{},{}],\
         \"speculations\":{},\"sdc_injected\":{},\"sdc_detected\":{},\
         \"sdc_corrected\":{},\"sdc_rollbacks\":{},\"timeline\":{{",
        num_json(rep.seconds),
        rep.launches,
        rep.syncs,
        num_json(rep.comms),
        rep.devices,
        rep.faults_injected,
        rep.retries,
        num_json(rep.recovery_seconds),
        rep.devices_lost,
        rep.breakdowns,
        rep.fallbacks,
        rep.ladder_histogram[0],
        rep.ladder_histogram[1],
        rep.ladder_histogram[2],
        rep.speculations,
        rep.sdc_injected,
        rep.sdc_detected,
        rep.sdc_corrected,
        rep.sdc_rollbacks,
    );
    for (i, (label, secs)) in rep.timeline.breakdown().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{}",
            rlra_trace::json::escape_json(label),
            num_json(*secs)
        ));
    }
    out.push_str(&format!("}},\"metrics\":{}}}", metrics_json(&rep.metrics)));
    out
}

/// Classifies an error into a postmortem incident kind, with the
/// checkpoint pointer when the error carries one. Errors that are not
/// run-level incidents (dimension mismatches, invalid parameters, ...)
/// return `None` — they do not warrant a bundle.
pub fn incident_of(err: &MatrixError) -> Option<(&'static str, Option<u64>)> {
    match *err {
        MatrixError::DeviceFault { .. } => Some(("device-fault", None)),
        MatrixError::NumericalBreakdown { .. } => Some(("numerical-breakdown", None)),
        MatrixError::DeadlineExceeded { snapshot, .. } => {
            Some(("deadline-exceeded", Some(snapshot)))
        }
        MatrixError::SilentCorruption { .. } => Some(("silent-corruption", None)),
        _ => None,
    }
}

/// The directory postmortem bundles land in: `$RLRA_POSTMORTEM_DIR`
/// when set, else `target/postmortem`.
pub fn postmortem_dir() -> PathBuf {
    match std::env::var_os("RLRA_POSTMORTEM_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("target/postmortem"),
    }
}

/// Armed telemetry for one or more executor runs: registry + flight
/// recorder + postmortem dumping, behind a single handle.
#[derive(Debug, Clone)]
pub struct FlightDeck {
    registry: Registry,
    recorder: FlightRecorder,
}

impl Default for FlightDeck {
    fn default() -> Self {
        FlightDeck::new(DEFAULT_RING_CAPACITY)
    }
}

impl FlightDeck {
    /// A deck whose flight recorder keeps `ring_capacity` events per
    /// device track.
    pub fn new(ring_capacity: usize) -> Self {
        FlightDeck {
            registry: Registry::new(),
            recorder: FlightRecorder::new(ring_capacity),
        }
    }

    /// Handle to the deck's metric registry.
    pub fn registry(&self) -> Registry {
        self.registry.clone()
    }

    /// Handle to the deck's flight recorder.
    pub fn recorder(&self) -> FlightRecorder {
        self.recorder.clone()
    }

    /// A tracer that tees every cost-model charge into the registry's
    /// time-series *and* the flight recorder's rings. Attach it via
    /// `set_tracer` on any simulated backend.
    pub fn tracer(&self) -> Tracer {
        Tracer::new(Box::new(FanoutSink::new(vec![
            Box::new(RegistrySink::new(self.registry.clone())),
            self.recorder.sink(),
        ])))
    }

    /// Folds a finished run's report into the registry: the per-device
    /// / per-kernel aggregates plus the end-to-end run histogram.
    pub fn observe_report(&self, rep: &ExecReport) {
        self.registry.ingest_metrics(&rep.metrics);
        self.registry.observe(names::RUN_SECONDS, "", rep.seconds);
        self.registry
            .counter_add(names::RUN_SDC_INJECTED_TOTAL, "", rep.sdc_injected);
        self.registry
            .counter_add(names::RUN_SDC_DETECTED_TOTAL, "", rep.sdc_detected);
        self.registry
            .counter_add(names::RUN_SDC_CORRECTED_TOTAL, "", rep.sdc_corrected);
        self.registry
            .counter_add(names::RUN_SDC_ROLLBACKS_TOTAL, "", rep.sdc_rollbacks);
    }

    /// If `err` is a run-level incident, writes a postmortem bundle
    /// into `dir` and returns the paths written (`MANIFEST.json`
    /// first); non-incident errors return `Ok(None)` without touching
    /// the filesystem. Pass the partial/last [`ExecReport`] when one
    /// survived the failure so the bundle can carry `report.json`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from writing the bundle.
    pub fn dump_on_error(
        &self,
        err: &MatrixError,
        report: Option<&ExecReport>,
        dir: &Path,
    ) -> io::Result<Option<Vec<PathBuf>>> {
        let Some((kind, checkpoint)) = incident_of(err) else {
            return Ok(None);
        };
        let detail = err.to_string();
        let metrics_doc = registry_json(&self.registry.snapshot());
        let report_doc = report.map(report_json);
        let incident = Incident {
            kind,
            detail: &detail,
            checkpoint,
            report_json: report_doc.as_deref(),
            metrics_json: Some(&metrics_doc),
        };
        self.recorder.dump_postmortem(dir, &incident).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_trace::parse_json;

    #[test]
    fn report_json_parses_and_carries_every_scalar() {
        let rep = ExecReport {
            seconds: 1.5,
            retries: 2,
            faults_injected: 3,
            recovery_seconds: 0.25,
            ladder_histogram: [0, 1, 0],
            sdc_injected: 4,
            sdc_detected: 3,
            sdc_corrected: 2,
            sdc_rollbacks: 1,
            ..ExecReport::default()
        };
        let doc = report_json(&rep);
        let j = parse_json(&doc).expect("report_json must parse");
        assert_eq!(j.get("seconds").unwrap().as_num(), Some(1.5));
        assert_eq!(j.get("retries").unwrap().as_num(), Some(2.0));
        assert_eq!(j.get("recovery_seconds").unwrap().as_num(), Some(0.25));
        assert_eq!(j.get("sdc_injected").unwrap().as_num(), Some(4.0));
        assert_eq!(j.get("sdc_detected").unwrap().as_num(), Some(3.0));
        assert_eq!(j.get("sdc_corrected").unwrap().as_num(), Some(2.0));
        assert_eq!(j.get("sdc_rollbacks").unwrap().as_num(), Some(1.0));
        let ladder = j.get("ladder_histogram").unwrap().as_arr().unwrap();
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[1].as_num(), Some(1.0));
        assert!(j.get("metrics").unwrap().get("devices").is_some());
    }

    #[test]
    fn incident_classification_covers_the_four_kinds() {
        use rlra_matrix::DeviceFaultKind;
        assert_eq!(
            incident_of(&MatrixError::DeviceFault {
                device: 1,
                kind: DeviceFaultKind::FailStop,
                at: 4,
            }),
            Some(("device-fault", None))
        );
        assert_eq!(
            incident_of(&MatrixError::NumericalBreakdown {
                stage: "tsqr",
                detail: "ladder exhausted",
            }),
            Some(("numerical-breakdown", None))
        );
        assert_eq!(
            incident_of(&MatrixError::DeadlineExceeded {
                snapshot: 7,
                budget: 1.0,
                elapsed: 1.2,
            }),
            Some(("deadline-exceeded", Some(7)))
        );
        assert_eq!(
            incident_of(&MatrixError::SilentCorruption {
                device: 2,
                kernel: "gemm_to_c",
                location: (1, 3),
            }),
            Some(("silent-corruption", None))
        );
        assert_eq!(
            incident_of(&MatrixError::SingularDiagonal { index: 0 }),
            None
        );
    }

    #[test]
    fn non_incident_errors_write_nothing() {
        let deck = FlightDeck::default();
        let dir = std::env::temp_dir().join("rlra_observe_noop_test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = deck
            .dump_on_error(&MatrixError::SingularDiagonal { index: 0 }, None, &dir)
            .unwrap();
        assert!(out.is_none());
        assert!(!dir.exists());
    }
}
