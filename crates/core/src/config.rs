//! Configuration of the fixed-rank sampler.

use crate::checkpoint::Deadline;
use rlra_fft::SrftScheme;
use rlra_matrix::{MatrixError, Result};

/// Which sampling operator generates `B = Ω·A`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingKind {
    /// Gaussian `Ω` (cuRAND + GEMM) — the paper's default, with the most
    /// established theory.
    Gaussian,
    /// Subsampled randomized FFT (cuFFT full transform + row selection,
    /// or the pruned evaluation).
    Fft(SrftScheme),
}

/// Which algorithm ranks the pivot columns of the sampled matrix in
/// Step 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step2Kind {
    /// Truncated QP3 (the paper's choice) — one synchronization per
    /// pivot.
    Qp3,
    /// Tournament pivoting (communication-avoiding, paper ref. \[4\]) —
    /// one synchronization per tournament round.
    Tournament,
}

/// Parameters of the fixed-rank randomized sampler (paper Fig. 1
/// notation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// Target rank `k`.
    pub k: usize,
    /// Oversampling `p` (the paper uses `p = 10`; `p = 0` costs about an
    /// order of magnitude in accuracy, §7).
    pub p: usize,
    /// Number of power iterations `q` (the paper sweeps 0–12; `q = 0`
    /// already matches QP3's error on its test matrices).
    pub q: usize,
    /// Sampling operator.
    pub sampling: SamplingKind,
    /// Re-orthogonalize with one extra CholQR pass (the paper's stability
    /// fix: "CholQR with one full reorthogonalization").
    pub reorth: bool,
    /// Step-2 pivot-selection algorithm.
    pub step2: Step2Kind,
    /// Simulated wall-clock budget, enforced by the *durable* pipeline
    /// (see [`crate::durable::run_fixed_rank_durable`]) at its
    /// checkpoint boundaries: on overrun the run returns
    /// [`MatrixError::DeadlineExceeded`](rlra_matrix::MatrixError) and
    /// leaves a checkpointed partial result behind. Ignored by the
    /// non-durable entry points.
    pub deadline: Option<Deadline>,
}

impl SamplerConfig {
    /// A configuration with the paper's defaults: `p = 10`, `q = 0`,
    /// Gaussian sampling, full reorthogonalization.
    pub fn new(k: usize) -> Self {
        SamplerConfig {
            k,
            p: 10,
            q: 0,
            sampling: SamplingKind::Gaussian,
            reorth: true,
            step2: Step2Kind::Qp3,
            deadline: None,
        }
    }

    /// Sets the durable-run deadline budget.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the oversampling parameter.
    pub fn with_p(mut self, p: usize) -> Self {
        self.p = p;
        self
    }

    /// Sets the number of power iterations.
    pub fn with_q(mut self, q: usize) -> Self {
        self.q = q;
        self
    }

    /// Sets the sampling operator.
    pub fn with_sampling(mut self, sampling: SamplingKind) -> Self {
        self.sampling = sampling;
        self
    }

    /// Disables the reorthogonalization pass (for ablation experiments).
    pub fn without_reorth(mut self) -> Self {
        self.reorth = false;
        self
    }

    /// Selects the Step-2 pivoting algorithm.
    pub fn with_step2(mut self, step2: Step2Kind) -> Self {
        self.step2 = step2;
        self
    }

    /// Total sampling dimension `ℓ = k + p`.
    pub fn l(&self) -> usize {
        self.k + self.p
    }

    /// Validates the configuration against an `m × n` input.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidParameter`] if `k = 0` or
    /// `ℓ > min(m, n)` (the sampled matrix must be short-wide and the
    /// QRCP step needs `k ≤ ℓ ≤ n`).
    pub fn validate(&self, m: usize, n: usize) -> Result<()> {
        if self.k == 0 {
            return Err(MatrixError::InvalidParameter {
                name: "k",
                message: "target rank must be positive".into(),
            });
        }
        let l = self.l();
        if l > m.min(n) {
            return Err(MatrixError::InvalidParameter {
                name: "l",
                message: format!(
                    "sampling dimension l = k + p = {l} exceeds min(m, n) = {}",
                    m.min(n)
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SamplerConfig::new(50);
        assert_eq!(c.p, 10);
        assert_eq!(c.q, 0);
        assert_eq!(c.l(), 60);
        assert_eq!(c.sampling, SamplingKind::Gaussian);
        assert!(c.reorth);
        assert_eq!(c.step2, Step2Kind::Qp3);
    }

    #[test]
    fn builder_chain() {
        let c = SamplerConfig::new(8).with_p(2).with_q(3).without_reorth();
        assert_eq!(c.l(), 10);
        assert_eq!(c.q, 3);
        assert!(!c.reorth);
    }

    #[test]
    fn validation() {
        assert!(SamplerConfig::new(50).validate(1000, 100).is_ok());
        assert!(SamplerConfig::new(0).validate(1000, 100).is_err());
        // l = 60 > n = 50.
        assert!(SamplerConfig::new(50).validate(1000, 50).is_err());
        // l = 60 > m = 55.
        assert!(SamplerConfig::new(50).validate(55, 100).is_err());
    }
}
