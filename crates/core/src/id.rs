//! Interpolative decomposition (ID): `A ≈ A[:, J]·X` where `J` indexes
//! `k` actual columns and `X` contains an identity block.
//!
//! The ID is the third standard output form of randomized low-rank
//! approximation (Halko et al. §5.2, the paper's reference \[9\]) next to
//! pivoted QR and SVD, and the paper's own Step 2 computes everything it
//! needs: after the QRCP of the sampled matrix,
//! `A·P ≈ A·P₁:ₖ·[I | T]` with `T = R̂₁:ₖ⁻¹·R̂ₖ₊₁:ₙ` — which *is* the ID
//! up to the permutation. Like CUR it is built from actual columns
//! (interpretable, structure-preserving); unlike CUR its coefficient
//! matrix is guaranteed well conditioned when the pivoting is.

use crate::config::{SamplerConfig, SamplingKind, Step2Kind};
use rand::Rng;
use rlra_blas::{gemm, Trans};
use rlra_fft::SrftOperator;
use rlra_matrix::{gaussian_mat, Mat, Result};

/// An interpolative decomposition `A ≈ A[:, J]·X`.
#[derive(Debug, Clone)]
pub struct InterpolativeDecomposition {
    /// The `k` selected column indices `J` (skeleton columns).
    pub col_indices: Vec<usize>,
    /// Coefficient matrix (`k × n`): column `j` of `A` is approximated by
    /// `A[:, J]·X[:, j]`. Contains the `k × k` identity on the selected
    /// columns.
    pub coeffs: Mat,
}

impl InterpolativeDecomposition {
    /// Rank of the decomposition.
    pub fn rank(&self) -> usize {
        self.col_indices.len()
    }

    /// Reconstructs the approximation of `A` given the original matrix
    /// (only the selected columns are read).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn reconstruct(&self, a: &Mat) -> Result<Mat> {
        let skeleton = gather_cols(a, &self.col_indices);
        let mut out = Mat::zeros(a.rows(), self.coeffs.cols());
        gemm(
            1.0,
            skeleton.as_ref(),
            Trans::No,
            self.coeffs.as_ref(),
            Trans::No,
            0.0,
            out.as_mut(),
        )?;
        Ok(out)
    }

    /// Spectral-norm error `‖A − A[:, J]·X‖₂`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn error_spectral(&self, a: &Mat) -> Result<f64> {
        let rec = self.reconstruct(a)?;
        let diff = rlra_matrix::ops::sub(a, &rec)?;
        Ok(rlra_matrix::norms::spectral_norm(diff.as_ref()))
    }

    /// Maximum absolute coefficient — the conditioning diagnostic; the
    /// theory wants it `O(1)` (QRCP keeps it bounded in practice).
    pub fn max_coeff(&self) -> f64 {
        rlra_matrix::norms::max_abs(self.coeffs.as_ref())
    }
}

/// Computes a rank-`k` interpolative decomposition of `a` via the
/// randomized sampling pipeline: sketch, pivot on the sketch (QP3 or
/// tournament per `cfg.step2`), and read the coefficients
/// `X·P = [I | T]` directly off the sketch's triangular factor.
///
/// # Errors
///
/// Returns configuration errors and propagates kernel failures.
pub fn interpolative_decomposition(
    a: &Mat,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<InterpolativeDecomposition> {
    let (m, n) = a.shape();
    cfg.validate(m, n)?;
    let l = cfg.l();
    let k = cfg.k;

    // Sketch B = Ω A (the power iteration adds nothing for the ID's
    // column selection beyond the plain sketch for modest q, but is
    // honored if configured).
    let b = match cfg.sampling {
        SamplingKind::Gaussian => {
            let omega = gaussian_mat(l, m, rng);
            let mut b = Mat::zeros(l, n);
            gemm(
                1.0,
                omega.as_ref(),
                Trans::No,
                a.as_ref(),
                Trans::No,
                0.0,
                b.as_mut(),
            )?;
            b
        }
        SamplingKind::Fft(scheme) => SrftOperator::new(m, l, scheme, rng)?.sample_rows(a)?,
    };
    let (b, _) = crate::power::power_iterate(
        a,
        &Mat::zeros(0, n),
        &Mat::zeros(0, m),
        b,
        cfg.q,
        cfg.reorth,
    )?;

    // Pivot on the sketch.
    let (r_hat, perm) = match cfg.step2 {
        Step2Kind::Qp3 => {
            let res = rlra_lapack::qp3_blocked(&b, k, rlra_lapack::qrcp::QP3_BLOCK.min(k.max(1)))?;
            (res.r(), res.perm.clone())
        }
        Step2Kind::Tournament => {
            let ca = rlra_lapack::tournament_qrcp(&b, k)?;
            (ca.r, ca.perm)
        }
    };
    let col_indices: Vec<usize> = perm.as_slice()[..k].to_vec();

    // T = R̂₁:ₖ⁻¹ R̂ₖ₊₁:ₙ, then X = [I | T]·Pᵀ.
    let r11 = r_hat.submatrix(0, 0, k, k);
    let mut t = r_hat.submatrix(0, k, k, n - k);
    if n > k {
        rlra_blas::trsm(
            rlra_blas::Side::Left,
            rlra_blas::UpLo::Upper,
            Trans::No,
            rlra_blas::Diag::NonUnit,
            1.0,
            r11.as_ref(),
            t.as_mut(),
        )?;
    }
    let mut x_permuted = Mat::zeros(k, n);
    for i in 0..k {
        x_permuted[(i, i)] = 1.0;
    }
    if n > k {
        x_permuted.set_submatrix(0, k, &t);
    }
    // Undo the permutation so coeffs addresses original column order.
    let coeffs = perm.inverse().apply_cols(&x_permuted)?;
    Ok(InterpolativeDecomposition {
        col_indices,
        coeffs,
    })
}

fn gather_cols(a: &Mat, cols: &[usize]) -> Mat {
    let mut out = Mat::zeros(a.rows(), cols.len());
    for (dst, &src) in cols.iter().enumerate() {
        out.col_mut(dst).copy_from_slice(a.col(src));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_data::testmat::{decay_matrix, rng};

    #[test]
    fn identity_block_on_selected_columns() {
        let (a, _) = decay_matrix(50, 30, 0.6, 1);
        let id =
            interpolative_decomposition(&a, &SamplerConfig::new(6).with_p(6), &mut rng(2)).unwrap();
        assert_eq!(id.rank(), 6);
        // X restricted to the selected columns is the identity.
        for (r, &j) in id.col_indices.iter().enumerate() {
            for i in 0..6 {
                let expect = if i == r { 1.0 } else { 0.0 };
                assert!((id.coeffs[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn error_within_factor_of_sigma() {
        let (a, spec) = decay_matrix(60, 40, 0.5, 3);
        let k = 7;
        let id =
            interpolative_decomposition(&a, &SamplerConfig::new(k).with_p(8), &mut rng(4)).unwrap();
        let err = id.error_spectral(&a).unwrap();
        assert!(
            err < 60.0 * spec[k],
            "ID error {err:e} vs sigma {:e}",
            spec[k]
        );
    }

    #[test]
    fn exact_on_low_rank() {
        let x = gaussian_mat(30, 3, &mut rng(5));
        let y = gaussian_mat(3, 22, &mut rng(6));
        let mut a = Mat::zeros(30, 22);
        gemm(
            1.0,
            x.as_ref(),
            Trans::No,
            y.as_ref(),
            Trans::No,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        let id =
            interpolative_decomposition(&a, &SamplerConfig::new(3).with_p(5), &mut rng(7)).unwrap();
        let err = id.error_spectral(&a).unwrap();
        assert!(err < 1e-9 * rlra_matrix::norms::spectral_norm(a.as_ref()));
    }

    #[test]
    fn coefficients_stay_bounded() {
        let (a, _) = decay_matrix(80, 50, 0.7, 8);
        let id = interpolative_decomposition(&a, &SamplerConfig::new(10).with_p(8), &mut rng(9))
            .unwrap();
        // QRCP-based selection keeps interpolation coefficients modest.
        assert!(id.max_coeff() < 10.0, "max coeff {}", id.max_coeff());
    }

    #[test]
    fn tournament_step2_supported() {
        let (a, spec) = decay_matrix(70, 60, 0.6, 10);
        let cfg = SamplerConfig::new(6)
            .with_p(6)
            .with_step2(Step2Kind::Tournament);
        let id = interpolative_decomposition(&a, &cfg, &mut rng(11)).unwrap();
        assert!(id.error_spectral(&a).unwrap() < 60.0 * spec[6]);
    }

    #[test]
    fn distinct_indices() {
        let (a, _) = decay_matrix(40, 25, 0.5, 12);
        let id = interpolative_decomposition(&a, &SamplerConfig::new(8).with_p(6), &mut rng(13))
            .unwrap();
        let mut sorted = id.col_indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }
}
