//! Iterative solvers that consume the randomized compressions as
//! preconditioners.
//!
//! A HODLR factorization built with a *small* rank budget is cheap to
//! construct and apply but only approximates `A⁻¹`; wrapped as a
//! preconditioner inside conjugate gradients it still delivers
//! direct-solver-like iteration counts — the standard deployment of
//! approximate hierarchical factorizations, and the end-to-end use case
//! for the paper's fast compression kernel.

use rlra_blas::{gemv, Trans};
use rlra_matrix::{Mat, MatrixError, Result};

/// Report of a PCG run.
#[derive(Debug, Clone)]
pub struct PcgResult {
    /// The solution iterate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Preconditioned conjugate gradients for a symmetric positive-definite
/// dense system `A·x = b`.
///
/// `precond` applies an approximation of `A⁻¹` (e.g.
/// [`crate::hodlr::HodlrMatrix::solve`]); pass [`identity_preconditioner`]
/// for plain CG.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape errors and
/// propagates preconditioner failures.
pub fn pcg<P>(a: &Mat, b: &[f64], mut precond: P, tol: f64, max_iter: usize) -> Result<PcgResult>
where
    P: FnMut(&[f64]) -> Result<Vec<f64>>,
{
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "pcg",
            expected: format!("A square of order == b.len() == {}", b.len()),
            found: format!("A {}x{}", a.rows(), a.cols()),
        });
    }
    let bnorm = rlra_matrix::norms::vec_norm2(b);
    if bnorm == 0.0 {
        return Ok(PcgResult {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
        });
    }
    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut z = precond(&r)?;
    let mut p = z.clone();
    let mut rz = rlra_blas::dot(&r, &z);
    let mut ap = vec![0.0f64; n];
    for it in 0..max_iter {
        gemv(1.0, a.as_ref(), Trans::No, &p, 0.0, &mut ap)?;
        let pap = rlra_blas::dot(&p, &ap);
        if pap <= 0.0 {
            return Err(MatrixError::InvalidParameter {
                name: "a",
                message: format!(
                    "matrix is not positive definite (p'Ap = {pap:e} at iteration {it})"
                ),
            });
        }
        let alpha = rz / pap;
        rlra_blas::axpy(alpha, &p, &mut x);
        rlra_blas::axpy(-alpha, &ap, &mut r);
        let rnorm = rlra_matrix::norms::vec_norm2(&r);
        if rnorm <= tol * bnorm {
            return Ok(PcgResult {
                x,
                iterations: it + 1,
                relative_residual: rnorm / bnorm,
                converged: true,
            });
        }
        z = precond(&r)?;
        let rz_new = rlra_blas::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, &zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }
    let rnorm = rlra_matrix::norms::vec_norm2(&r);
    Ok(PcgResult {
        x,
        iterations: max_iter,
        relative_residual: rnorm / bnorm,
        converged: false,
    })
}

/// The trivial preconditioner `M = I` (plain CG).
pub fn identity_preconditioner(r: &[f64]) -> Result<Vec<f64>> {
    Ok(r.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplerConfig;
    use crate::hodlr::HodlrMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_data::{kernel_matrix, uniform_points, Kernel};

    /// Mildly ill-conditioned SPD kernel system.
    fn system(n: usize) -> (Mat, Vec<f64>) {
        let pts = uniform_points(n);
        let mut a = kernel_matrix(Kernel::Exponential { gamma: 12.0 }, &pts);
        for i in 0..n {
            a[(i, i)] += 0.05; // small shift: conditioning ~ 1e3
        }
        let b: Vec<f64> = pts.iter().map(|&x| (5.0 * x).sin()).collect();
        (a, b)
    }

    #[test]
    fn plain_cg_converges_on_spd() {
        let (a, b) = system(128);
        let res = pcg(&a, &b, identity_preconditioner, 1e-10, 2000).unwrap();
        assert!(
            res.converged,
            "CG should converge: resid {:e}",
            res.relative_residual
        );
        // Verify against a direct solve.
        let x_direct = rlra_lapack::lu_solve(&a, &Mat::from_col_major(128, 1, b).unwrap()).unwrap();
        for (p, q) in res.x.iter().zip(x_direct.as_slice()) {
            assert!((p - q).abs() < 1e-7, "{p} vs {q}");
        }
    }

    #[test]
    fn hodlr_preconditioner_slashes_iteration_count() {
        let (a, b) = system(256);
        let plain = pcg(&a, &b, identity_preconditioner, 1e-10, 5000).unwrap();
        assert!(plain.converged);

        // Loose-rank HODLR as preconditioner.
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SamplerConfig::new(6).with_p(4).with_q(1);
        let h = HodlrMatrix::compress(&a, 64, &cfg, &mut rng).unwrap();
        let pre = pcg(&a, &b, |r| h.solve(r), 1e-10, 5000).unwrap();
        assert!(pre.converged);
        assert!(
            pre.iterations * 3 < plain.iterations,
            "preconditioned {} vs plain {} iterations",
            pre.iterations,
            plain.iterations
        );
        // Same answer.
        let d: f64 = pre
            .x
            .iter()
            .zip(&plain.x)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(d < 1e-6 * rlra_matrix::norms::vec_norm2(&plain.x));
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let (a, _) = system(32);
        let res = pcg(&a, &vec![0.0; 32], identity_preconditioner, 1e-12, 10).unwrap();
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let mut a = Mat::identity(4);
        a[(3, 3)] = -1.0;
        let b = vec![1.0; 4];
        // The negative curvature direction is hit within a few iterations.
        let e = pcg(&a, &b, identity_preconditioner, 1e-12, 10);
        assert!(e.is_err());
    }

    #[test]
    fn shape_validation() {
        let a = Mat::zeros(3, 4);
        assert!(pcg(&a, &[0.0; 3], identity_preconditioner, 1e-8, 5).is_err());
        let a = Mat::identity(3);
        assert!(pcg(&a, &[0.0; 4], identity_preconditioner, 1e-8, 5).is_err());
    }

    #[test]
    fn nonconvergence_reported_honestly() {
        let (a, b) = system(128);
        let res = pcg(&a, &b, identity_preconditioner, 1e-14, 3).unwrap();
        assert!(!res.converged);
        assert_eq!(res.iterations, 3);
        assert!(res.relative_residual > 1e-14);
    }
}
