//! The power iteration on the sampled subspace (paper Figure 2a).
//!
//! `POWER(A, B, C, j, k, q)` refines the rows `j..k` of the short-wide
//! sampled matrix `B` (`ℓ × n`) by alternating multiplications with `Aᵀ`
//! and `A`, re-orthogonalizing after every application: without the
//! orthogonalization the condition number of `B` grows like `κ(A)^{2q}`
//! and the iteration diverges in floating point (paper §6).
//!
//! The new rows are kept orthogonal to the previously accepted rows
//! (`B₁:ⱼ₋₁`, `C₁:ⱼ₋₁`) with the block Gram–Schmidt `BOrth`, which is what
//! lets the adaptive scheme grow the subspace incrementally.

use crate::backend::{IntegrityGuard, NumericGuard};
use rlra_blas::Trans;
use rlra_lapack::gram_schmidt::block_orth_rows;
use rlra_matrix::{Mat, Result};

/// State of the power iteration: the sampled matrices `B` (`ℓ × n`) and
/// `C` (`ℓ × m`), both row blocks.
#[derive(Debug, Clone)]
pub struct PowerState {
    /// Sampled matrix `B = Ω·A·(AᵀA)^t` (rows span the row space of `A`).
    pub b: Mat,
    /// Work matrix `C = B·Aᵀ` (rows span the column space of `A`).
    pub c: Mat,
}

/// Runs `q` power iterations on the row block `new` of `B`, keeping it
/// orthogonal to the accepted blocks `b_prev` (`ℓ₀ × n`) and `c_prev`
/// (`ℓ₀ × m`). Returns the refined `(b_new, c_new)` block pair; `c_new`
/// is empty when `q = 0`.
///
/// `reorth` enables the paper's extra CholQR pass.
///
/// # Errors
///
/// Propagates kernel errors (shape mismatches, CholQR breakdown falls
/// back internally).
pub fn power_iterate(
    a: &Mat,
    b_prev: &Mat,
    c_prev: &Mat,
    b_new: Mat,
    q: usize,
    reorth: bool,
) -> Result<(Mat, Mat)> {
    let mut guard = NumericGuard::default();
    power_iterate_guarded(a, b_prev, c_prev, b_new, q, reorth, &mut guard)
}

/// As [`power_iterate`], with an explicit [`NumericGuard`] so ladder
/// escalations inside the iteration are counted, charged and traced by
/// the caller (the pipeline drains the guard between stages).
///
/// # Errors
///
/// As [`power_iterate`], plus
/// [`rlra_matrix::MatrixError::NumericalBreakdown`] when the guard's
/// ladder is capped below the rung a breakdown needs.
pub fn power_iterate_guarded(
    a: &Mat,
    b_prev: &Mat,
    c_prev: &Mat,
    b_new: Mat,
    q: usize,
    reorth: bool,
    guard: &mut NumericGuard,
) -> Result<(Mat, Mat)> {
    let mut iguard = IntegrityGuard::default();
    power_iterate_protected(a, b_prev, c_prev, b_new, q, reorth, guard, &mut iguard)
}

/// As [`power_iterate_guarded`], with an explicit [`IntegrityGuard`] so
/// the iteration's GEMMs carry ABFT checksum references (buffers
/// `"power_c"` / `"power_b"`) and the CholQR ladder rungs verify their
/// row-norm invariant (buffers `"orth_b"` / `"orth_c"`). With the
/// default disarmed guard this is bit-identical to the unprotected
/// iteration.
///
/// # Errors
///
/// As [`power_iterate_guarded`], plus
/// [`rlra_matrix::MatrixError::SilentCorruption`] when the integrity
/// guard detects corruption it cannot (or may not) repair.
#[allow(clippy::too_many_arguments)]
pub fn power_iterate_protected(
    a: &Mat,
    b_prev: &Mat,
    c_prev: &Mat,
    mut b_new: Mat,
    q: usize,
    reorth: bool,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
) -> Result<(Mat, Mat)> {
    let (m, n) = a.shape();
    let lnew = b_new.rows();
    let mut c_new = Mat::zeros(0, m);
    for _ in 0..q {
        // Orthogonalize B_new against accepted rows, then internally.
        block_orth_rows(b_prev, &mut b_new, reorth)?;
        let w = b_new;
        b_new = iguard.orth_protected("orth_b", "orth_b", || {
            guard.ladder_rows("orth_b", &w, reorth)
        })?;
        // C_new = B_new · Aᵀ  (ℓnew × m).
        let mut c = Mat::zeros(lnew, m);
        iguard.gemm_protected(
            "gemm_to_c",
            "power_c",
            1.0,
            &b_new,
            Trans::No,
            a,
            Trans::Yes,
            &mut c,
        )?;
        // Orthogonalize C_new against accepted C rows, then internally.
        block_orth_rows(c_prev, &mut c, reorth)?;
        c_new = iguard.orth_protected("orth_c", "orth_c", || {
            guard.ladder_rows("orth_c", &c, reorth)
        })?;
        // B_new = C_new · A  (ℓnew × n).
        let mut b = Mat::zeros(lnew, n);
        iguard.gemm_protected(
            "gemm_to_b",
            "power_b",
            1.0,
            &c_new,
            Trans::No,
            a,
            Trans::No,
            &mut b,
        )?;
        b_new = b;
    }
    Ok((b_new, c_new))
}

/// Row-orthonormalizes a short-wide matrix with CholQR, escalating
/// through the guard's fallback ladder on breakdown (shifted CholQR2,
/// then Householder — the stable repair the paper recommends).
///
/// Convenience wrapper over [`NumericGuard::ladder_rows`] with a local
/// default guard: escalations still happen but are not reported. Code
/// running under an executor should use the guarded ladder directly so
/// fallbacks are counted, charged and traced.
pub fn orth_rows(b: &Mat, reorth: bool) -> Result<Mat> {
    NumericGuard::default().ladder_rows("orth_rows", b, reorth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_lapack::householder::orthogonality_error;
    use rlra_matrix::gaussian_mat;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn spectrum_matrix(m: usize, n: usize, decay: f64, seed: u64) -> Mat {
        // A = sum_i decay^i u_i v_i^T via prescribed-spectrum generator.
        let spec: Vec<f64> = (0..n.min(m)).map(|i| decay.powi(i as i32)).collect();
        let u = rlra_lapack::form_q(&gaussian_mat(m, spec.len(), &mut rng(seed)));
        let v = rlra_lapack::form_q(&gaussian_mat(n, spec.len(), &mut rng(seed + 1)));
        let us = Mat::from_fn(m, spec.len(), |i, j| u[(i, j)] * spec[j]);
        let mut a = Mat::zeros(m, n);
        rlra_blas::gemm(
            1.0,
            us.as_ref(),
            Trans::No,
            v.as_ref(),
            Trans::Yes,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        a
    }

    #[test]
    fn orth_rows_gives_orthonormal_rows() {
        let b = gaussian_mat(5, 30, &mut rng(1));
        let q = orth_rows(&b, true).unwrap();
        assert!(orthogonality_error(&q.transpose()) < 1e-12);
    }

    #[test]
    fn orth_rows_fallback_on_rank_deficiency() {
        let mut b = gaussian_mat(4, 20, &mut rng(2));
        // Duplicate a row to break CholQR.
        let r0: Vec<f64> = (0..20).map(|j| b[(0, j)]).collect();
        for (j, v) in r0.iter().enumerate() {
            b[(3, j)] = *v;
        }
        let q = orth_rows(&b, true).unwrap();
        assert_eq!(q.shape(), (4, 20));
        // The non-degenerate rows are still orthonormal among themselves.
        let g = rlra_blas::naive::gemm_ref(&q, Trans::No, &q, Trans::Yes);
        for i in 0..3 {
            assert!((g[(i, i)] - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn power_iteration_improves_subspace_capture() {
        // Slowly decaying spectrum: q > 0 must capture the dominant
        // subspace better than q = 0.
        let m = 80;
        let n = 40;
        let a = spectrum_matrix(m, n, 0.85, 3);
        let l = 6;
        let omega = gaussian_mat(l, m, &mut rng(4));
        let mut b0 = Mat::zeros(l, n);
        rlra_blas::gemm(
            1.0,
            omega.as_ref(),
            Trans::No,
            a.as_ref(),
            Trans::No,
            0.0,
            b0.as_mut(),
        )
        .unwrap();
        let empty_b = Mat::zeros(0, n);
        let empty_c = Mat::zeros(0, m);

        let capture = |b: &Mat| -> f64 {
            // ‖A − A BᵀB‖₂ with B row-orthonormalized.
            let q = orth_rows(b, true).unwrap();
            let mut abt = Mat::zeros(m, l);
            rlra_blas::gemm(
                1.0,
                a.as_ref(),
                Trans::No,
                q.as_ref(),
                Trans::Yes,
                0.0,
                abt.as_mut(),
            )
            .unwrap();
            let mut rec = Mat::zeros(m, n);
            rlra_blas::gemm(
                1.0,
                abt.as_ref(),
                Trans::No,
                q.as_ref(),
                Trans::No,
                0.0,
                rec.as_mut(),
            )
            .unwrap();
            let diff = rlra_matrix::ops::sub(&a, &rec).unwrap();
            rlra_matrix::norms::spectral_norm(diff.as_ref())
        };

        let err_q0 = capture(&b0);
        let (b2, _) = power_iterate(&a, &empty_b, &empty_c, b0.clone(), 2, true).unwrap();
        let err_q2 = capture(&b2);
        assert!(
            err_q2 < err_q0 * 0.9,
            "power iteration should help on slow decay: q0 {err_q0:e} vs q2 {err_q2:e}"
        );
    }

    #[test]
    fn q_zero_returns_input_unchanged() {
        let a = spectrum_matrix(20, 10, 0.5, 5);
        let b = gaussian_mat(3, 10, &mut rng(6));
        let (b_out, c_out) = power_iterate(
            &a,
            &Mat::zeros(0, 10),
            &Mat::zeros(0, 20),
            b.clone(),
            0,
            true,
        )
        .unwrap();
        assert_eq!(b_out, b);
        assert_eq!(c_out.rows(), 0);
    }

    #[test]
    fn new_block_stays_orthogonal_to_previous() {
        let m = 60;
        let n = 30;
        let a = spectrum_matrix(m, n, 0.7, 7);
        // Accepted basis: 4 orthonormal rows of B and matching C rows.
        let b_prev = orth_rows(&gaussian_mat(4, n, &mut rng(8)), true).unwrap();
        let mut c_prev_raw = Mat::zeros(4, m);
        rlra_blas::gemm(
            1.0,
            b_prev.as_ref(),
            Trans::No,
            a.as_ref(),
            Trans::Yes,
            0.0,
            c_prev_raw.as_mut(),
        )
        .unwrap();
        let c_prev = orth_rows(&c_prev_raw, true).unwrap();
        let b_new = gaussian_mat(3, n, &mut rng(9));
        let (b_out, c_out) = power_iterate(&a, &b_prev, &c_prev, b_new, 1, true).unwrap();
        // c_out rows orthogonal to c_prev rows.
        let cross = rlra_blas::naive::gemm_ref(&c_out, Trans::No, &c_prev, Trans::Yes);
        assert!(rlra_matrix::norms::max_abs(cross.as_ref()) < 1e-10);
        assert_eq!(b_out.shape(), (3, n));
    }
}
