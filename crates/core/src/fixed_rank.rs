//! CPU reference entry point of the fixed-rank randomized sampling
//! algorithm (paper Figure 2b), plus the host-side finishing steps
//! shared by every backend.
//!
//! The pipeline itself lives in [`crate::backend`]; this module keeps
//! the [`sample_fixed_rank`] convenience wrapper (the
//! [`crate::backend::CpuExec`] backend) and the Steps 2–3 host kernels
//! ([`finish_from_sampled_with`]) that the pipeline calls on every
//! computing backend.

use crate::config::{SamplerConfig, Step2Kind};
use crate::result::LowRankApprox;
use rand::Rng;
use rlra_blas::{Diag, Side, Trans, UpLo};
use rlra_matrix::{Mat, Result};

/// Computes a rank-`k` approximation `A·P ≈ Q·R` by random sampling
/// (Figure 2b of the paper), entirely on the CPU.
///
/// Steps: Gaussian/FFT sampling `B = ΩA` (`ℓ × n`, `ℓ = k + p`), `q`
/// power iterations with CholQR re-orthogonalization, truncated QP3 of
/// `B` to pick the `k` pivot columns, tall-skinny QR of `A·P₁:ₖ`, and the
/// triangular finish `R = R̄·[I | T]` with `T = R̂₁:ₖ⁻¹·R̂ₖ₊₁:ₙ`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rlra_core::{sample_fixed_rank, SamplerConfig};
/// use rlra_matrix::Mat;
///
/// // A rank-2 matrix is recovered exactly by a rank-2 sampler.
/// let u = Mat::from_fn(40, 2, |i, j| ((i + 1) * (j + 2)) as f64);
/// let v = Mat::from_fn(2, 20, |i, j| (i as f64) - 0.1 * j as f64 + 1.0);
/// let mut a = Mat::zeros(40, 20);
/// rlra_blas::gemm(1.0, u.as_ref(), rlra_blas::Trans::No,
///                 v.as_ref(), rlra_blas::Trans::No, 0.0, a.as_mut()).unwrap();
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let cfg = SamplerConfig::new(2).with_p(4);
/// let approx = sample_fixed_rank(&a, &cfg, &mut rng).unwrap();
/// assert!(approx.error_spectral(&a).unwrap() < 1e-9);
/// ```
///
/// # Errors
///
/// Returns parameter errors from [`SamplerConfig::validate`] and
/// propagates kernel failures.
pub fn sample_fixed_rank(
    a: &Mat,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<LowRankApprox> {
    let mut exec = crate::backend::CpuExec::new();
    let (approx, _report) =
        crate::backend::run_fixed_rank(&mut exec, crate::backend::Input::Values(a), cfg, rng)?;
    approx.ok_or(rlra_matrix::MatrixError::Internal {
        op: "sample_fixed_rank",
        invariant: "the CPU backend computes values",
    })
}

/// Steps 2 and 3 shared by the fixed-rank and fixed-accuracy paths:
/// truncated QP3 of the sampled matrix `b` (`ℓ × n`), tall-skinny QR of
/// `A·P₁:ₖ`, and the triangular finish.
///
/// # Errors
///
/// Propagates kernel failures.
pub fn finish_from_sampled(a: &Mat, b: &Mat, k: usize, reorth: bool) -> Result<LowRankApprox> {
    finish_from_sampled_with(a, b, k, reorth, Step2Kind::Qp3)
}

/// As [`finish_from_sampled`], with an explicit Step-2 pivoting choice
/// (the paper's QP3 or the communication-avoiding tournament).
///
/// # Errors
///
/// Propagates kernel failures.
pub fn finish_from_sampled_with(
    a: &Mat,
    b: &Mat,
    k: usize,
    reorth: bool,
    step2: Step2Kind,
) -> Result<LowRankApprox> {
    let mut guard = crate::backend::NumericGuard::default();
    finish_from_sampled_guarded(a, b, k, reorth, step2, &mut guard)
}

/// As [`finish_from_sampled_with`], with an explicit
/// [`crate::backend::NumericGuard`]: the Step-3 tall-skinny QR runs
/// through the guard's orthogonalization fallback ladder, so a
/// rank-deficient pivot block is repaired *and counted* instead of
/// silently rescued.
///
/// # Errors
///
/// Propagates kernel failures, plus
/// [`rlra_matrix::MatrixError::NumericalBreakdown`] when the guard's
/// ladder is capped below the rung the breakdown needs.
pub fn finish_from_sampled_guarded(
    a: &Mat,
    b: &Mat,
    k: usize,
    reorth: bool,
    step2: Step2Kind,
    guard: &mut crate::backend::NumericGuard,
) -> Result<LowRankApprox> {
    let n = a.cols();
    // Step 2: rank the pivot columns of the sampled matrix. Both methods
    // yield R̂ (k × n, upper-triangular leading block, pivot order) and
    // the permutation.
    let (r_hat, perm) = match step2 {
        Step2Kind::Qp3 => {
            let qrcp = rlra_lapack::qp3_blocked(b, k, rlra_lapack::qrcp::QP3_BLOCK.min(k.max(1)))?;
            (qrcp.r(), qrcp.perm.clone())
        }
        Step2Kind::Tournament => {
            let ca = rlra_lapack::tournament_qrcp(b, k)?;
            (ca.r, ca.perm)
        }
    };

    // T = R̂₁:ₖ⁻¹ · R̂ₖ₊₁:ₙ.
    let r11 = r_hat.submatrix(0, 0, k, k);
    let mut t = r_hat.submatrix(0, k, k, n - k);
    if n > k {
        rlra_blas::trsm(
            Side::Left,
            UpLo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            r11.as_ref(),
            t.as_mut(),
        )?;
    }

    // Step 3: tall-skinny QR of A·P₁:ₖ, through the fallback ladder.
    let ap1k = perm.apply_cols_truncated(a, k)?;
    let (q, r_bar) = guard.ladder_tall("tsqr", &ap1k, reorth)?;

    // R = R̄ · [I | T]  =  [R̄ | R̄·T].
    let mut r = Mat::zeros(k, n);
    r.set_submatrix(0, 0, &r_bar);
    if n > k {
        let mut rt = Mat::zeros(k, n - k);
        rlra_blas::gemm(
            1.0,
            r_bar.as_ref(),
            Trans::No,
            t.as_ref(),
            Trans::No,
            0.0,
            rt.as_mut(),
        )?;
        r.set_submatrix(0, k, &rt);
    }

    Ok(LowRankApprox { q, r, perm })
}

/// Incrementally grown `A·P ≈ Q·R` factors for the fixed-accuracy
/// pipeline: instead of re-running Steps 2–3 from scratch at the final
/// rank (the restart finish above), each accepted sample block extends
/// the factors by one `k_b ≤ b` column panel — sample-driven pivot
/// selection ([`rlra_lapack::sample_panel_step`]) plus exact projection
/// blocks ([`rlra_lapack::extend_r`]) — so the finish is a
/// permutation/assembly-only [`Self::finalize`].
///
/// The numerics are host-side and consume no RNG, so the factors are
/// bit-identical across computing backends for the same sample stream.
#[derive(Debug, Clone)]
pub struct IncrementalFactors {
    q: Mat,
    r: Mat,
    /// Accumulated sample buffer: every buffered sample block's raw
    /// rows, kept in the current global pivot order. Each step downdates
    /// its trailing columns against the accepted leading columns (the
    /// trailing-sample update, recomputed from scratch so later-arriving
    /// rows are covered too) before ranking pivots. Its growing row
    /// count is the within-block oversampling of the pivot selection.
    s_resid: Mat,
    perm: Vec<usize>,
    k_done: usize,
    m: usize,
    n: usize,
}

impl IncrementalFactors {
    /// Empty factors for an `m × n` operand.
    pub fn new(m: usize, n: usize) -> Self {
        IncrementalFactors {
            q: Mat::zeros(m, 0),
            r: Mat::zeros(0, n),
            s_resid: Mat::zeros(0, n),
            perm: (0..n).collect(),
            k_done: 0,
            m,
            n,
        }
    }

    /// Checkpoint export: borrows the full durable state,
    /// `(q, r, s_resid, perm, k_done, m, n)`. Together with
    /// [`Self::from_parts`] this is the serialization surface of the
    /// durability layer; the fields themselves stay private.
    pub(crate) fn parts(&self) -> (&Mat, &Mat, &Mat, &[usize], usize, usize, usize) {
        (
            &self.q,
            &self.r,
            &self.s_resid,
            &self.perm,
            self.k_done,
            self.m,
            self.n,
        )
    }

    /// Rebuilds factors from checkpointed parts (see [`Self::parts`]).
    /// Shapes are taken on trust here; a corrupt snapshot is caught by
    /// the checkpoint layer's checksum before this is reached.
    pub(crate) fn from_parts(
        q: Mat,
        r: Mat,
        s_resid: Mat,
        perm: Vec<usize>,
        k_done: usize,
        m: usize,
        n: usize,
    ) -> Self {
        IncrementalFactors {
            q,
            r,
            s_resid,
            perm,
            k_done,
            m,
            n,
        }
    }

    /// Columns accepted so far.
    pub fn k_done(&self) -> usize {
        self.k_done
    }

    /// Rows of the accumulated residual sample buffer (before the
    /// current step's block is stacked on).
    pub fn sample_rows(&self) -> usize {
        self.s_resid.rows()
    }

    /// `(k_done, n_trail, k_b)` for the next extension step: accepted
    /// columns, trailing (not yet accepted) columns, and the panel width
    /// the step accepts. A step holds the newest sample block in reserve
    /// as pivot oversampling and accepts the columns backed by the
    /// previously buffered rows
    /// (`k_b = min(sample_rows − k_done, n_trail, m − k_done)`); the
    /// finishing flush ([`Self::extend`] with an empty block) accepts
    /// the reserve too.
    pub fn step_dims(&self) -> (usize, usize, usize) {
        let n_trail = self.n - self.k_done;
        let pending = self.s_resid.rows() - self.k_done;
        let k_b = pending.min(n_trail).min(self.m - self.k_done.min(self.m));
        (self.k_done, n_trail, k_b)
    }

    /// The `k_b` newest accepted columns of `Q` (the panel the last
    /// [`Self::extend`] appended) as a standalone matrix — read by the
    /// integrity guard's panel verification.
    pub(crate) fn last_panel(&self, k_b: usize) -> Mat {
        self.q.submatrix(0, self.k_done - k_b, self.m, k_b)
    }

    /// Writes a (corrected) panel back over the `k_b` newest accepted
    /// columns of `Q`.
    pub(crate) fn set_last_panel(&mut self, k_b: usize, panel: &Mat) {
        self.q.set_submatrix(0, self.k_done - k_b, panel);
    }

    /// Extends the factors by one panel. The fresh sample block `w`
    /// (`b × n`, row-orthonormal against the prior sketch; may be empty
    /// for the finishing flush) is stacked onto the downdated residual
    /// sample and held in reserve; the step accepts the `k_b` columns
    /// backed by the *previously* buffered rows, so the truncated QP3
    /// that picks the pivots always sees one extra block of sample rows
    /// (the within-block oversampling that keeps a block's last pivots
    /// reliable). The gathered `A` panel is projected against the
    /// accepted `Q` and orthonormalized through the guard's ladder
    /// (stage `"adaptive_update_panel"`), and `R` grows by the exact
    /// coefficients plus the exact trailing coupling `Q_newᵀ·A_rest`
    /// (so the assembled factor is `R = Qᵀ·A·P` to working precision —
    /// the sample only picks the pivots).
    ///
    /// Returns the accepted panel width `k_b` (0 on the first step,
    /// which only buffers, and when the factors are already full).
    ///
    /// # Errors
    ///
    /// Propagates kernel failures and
    /// [`rlra_matrix::MatrixError::NumericalBreakdown`] when the guard's
    /// ladder is capped below the rung a degenerate panel needs.
    pub fn extend(
        &mut self,
        a: &Mat,
        w: &Mat,
        reorth: bool,
        guard: &mut crate::backend::NumericGuard,
    ) -> Result<usize> {
        let (k_done, n_trail, k_b) = self.step_dims();
        // Stack the fresh sample rows (in the current pivot order) onto
        // the downdated residual sample — the next step's oversampling.
        if w.rows() > 0 {
            let w_perm = Mat::from_fn(w.rows(), self.n, |i, j| w[(i, self.perm[j])]);
            self.s_resid = self.s_resid.vcat(&w_perm)?;
        }
        if k_b == 0 {
            return Ok(0);
        }
        let l_rows = self.s_resid.rows();
        // Trailing-sample update: project the trailing sample columns
        // against the accepted leading sample columns so QP3 ranks only
        // what the accepted columns have *not* captured. Recomputed from
        // scratch each step (Householder QR of the lead block plus two
        // gemms) so the reserve rows stacked after earlier acceptances
        // are downdated too — a compounded per-step update would leave
        // them raw and let already-captured content steer the pivots.
        let mut s_trail = self.s_resid.submatrix(0, k_done, l_rows, n_trail);
        if k_done > 0 {
            let s_lead = self.s_resid.submatrix(0, 0, l_rows, k_done);
            let (q_s, _) = rlra_lapack::qr_factor(&s_lead);
            let mut proj = Mat::zeros(q_s.cols(), n_trail);
            rlra_blas::gemm(
                1.0,
                q_s.as_ref(),
                Trans::Yes,
                s_trail.as_ref(),
                Trans::No,
                0.0,
                proj.as_mut(),
            )?;
            rlra_blas::gemm(
                -1.0,
                q_s.as_ref(),
                Trans::No,
                proj.as_ref(),
                Trans::No,
                1.0,
                s_trail.as_mut(),
            )?;
        }
        let step = rlra_lapack::sample_panel_step(&s_trail, k_b, rlra_lapack::qrcp::QP3_BLOCK)?;
        // Fold the local pivot order into the global permutation and into
        // the trailing columns of R and the residual sample.
        let old_trail = self.perm[k_done..].to_vec();
        for (j, &pj) in step.perm.iter().enumerate() {
            self.perm[k_done + j] = old_trail[pj];
        }
        if k_done > 0 {
            let r_old = self.r.clone();
            self.r = Mat::from_fn(k_done, self.n, |i, j| {
                if j < k_done {
                    r_old[(i, j)]
                } else {
                    r_old[(i, k_done + step.perm[j - k_done])]
                }
            });
        }
        let s_old = self.s_resid.clone();
        self.s_resid = Mat::from_fn(l_rows, self.n, |i, j| {
            if j < k_done {
                s_old[(i, j)]
            } else {
                s_old[(i, k_done + step.perm[j - k_done])]
            }
        });
        // Gather the accepted pivot columns of A, project them against
        // the accepted panels, and orthonormalize the remainder. The
        // projection always runs twice ("twice is enough"): late panels
        // are nearly inside span(Q), and a single block-CGS pass leaves
        // an in-span component of order `u·‖panel‖` that the residual's
        // normalization blows up into a loss of basis orthogonality.
        let mut panel = Mat::from_fn(self.m, k_b, |i, j| a[(i, self.perm[k_done + j])]);
        let coef = rlra_lapack::block_orth_cols(&self.q, &mut panel, true)?;
        let (q_new, r_new) = guard.ladder_tall("adaptive_update_panel", &panel, reorth)?;
        // Exact trailing coupling: one tall gemm against the not-yet
        // accepted columns keeps every entry of R an inner product with A.
        let n_rest = n_trail - k_b;
        let mut trail = Mat::zeros(k_b, n_rest);
        if n_rest > 0 {
            let a_rest = Mat::from_fn(self.m, n_rest, |i, j| a[(i, self.perm[k_done + k_b + j])]);
            rlra_blas::gemm(
                1.0,
                q_new.as_ref(),
                Trans::Yes,
                a_rest.as_ref(),
                Trans::No,
                0.0,
                trail.as_mut(),
            )?;
        }
        self.q = self.q.hcat(&q_new)?;
        self.r = rlra_lapack::extend_r(&self.r, &coef, &r_new, &trail)?;
        self.k_done += k_b;
        Ok(k_b)
    }

    /// Finalizes the factors into a [`LowRankApprox`] — permutation
    /// validation and assembly only; no Step-2 re-run.
    ///
    /// # Errors
    ///
    /// Propagates permutation-validation failures (an internal invariant;
    /// the folds in [`Self::extend`] keep the map a permutation).
    pub fn finalize(self) -> Result<LowRankApprox> {
        let perm = rlra_matrix::ColPerm::from_vec(self.perm)?;
        Ok(LowRankApprox {
            q: self.q,
            r: self.r,
            perm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplingKind;
    use rlra_data::testmat::{decay_matrix, rng};
    use rlra_fft::SrftScheme;
    use rlra_lapack::householder::orthogonality_error;
    use rlra_matrix::gaussian_mat;

    #[test]
    fn factors_have_expected_shapes_and_orthogonality() {
        let (a, _) = decay_matrix(60, 30, 0.5, 1);
        let cfg = SamplerConfig::new(5).with_p(3);
        let lr = sample_fixed_rank(&a, &cfg, &mut rng(2)).unwrap();
        assert_eq!(lr.q.shape(), (60, 5));
        assert_eq!(lr.r.shape(), (5, 30));
        assert_eq!(lr.perm.len(), 30);
        assert!(orthogonality_error(&lr.q) < 1e-11);
    }

    #[test]
    fn error_bounded_by_sigma_k_plus_1() {
        // Halko et al. bound: ‖A − QR‖ ≤ c(p, Ω)^{1/(2q+1)}·σ_{k+1}; with
        // p = 10 the constant is modest. Allow a generous factor.
        let (a, spec) = decay_matrix(80, 40, 0.6, 3);
        for q in [0usize, 1, 2] {
            let cfg = SamplerConfig::new(8).with_p(10).with_q(q);
            let lr = sample_fixed_rank(&a, &cfg, &mut rng(4)).unwrap();
            let err = lr.error_spectral(&a).unwrap();
            let sigma_k1 = spec[8];
            assert!(
                err < 30.0 * sigma_k1,
                "q = {q}: error {err:e} vs sigma_k+1 {sigma_k1:e}"
            );
            assert!(err >= sigma_k1 * 0.9, "cannot beat the best rank-k error");
        }
    }

    #[test]
    fn power_iterations_tighten_error_on_slow_decay() {
        let (a, _) = decay_matrix(100, 50, 0.9, 5);
        let err = |q: usize| {
            let cfg = SamplerConfig::new(6).with_p(4).with_q(q);
            sample_fixed_rank(&a, &cfg, &mut rng(6))
                .unwrap()
                .error_spectral(&a)
                .unwrap()
        };
        let e0 = err(0);
        let e2 = err(2);
        assert!(e2 < e0, "q=2 ({e2:e}) should beat q=0 ({e0:e})");
    }

    #[test]
    fn oversampling_improves_accuracy() {
        let (a, _) = decay_matrix(80, 40, 0.8, 7);
        // Average over seeds to suppress randomness.
        let avg_err = |p: usize| -> f64 {
            (0..5)
                .map(|s| {
                    let cfg = SamplerConfig::new(6).with_p(p);
                    sample_fixed_rank(&a, &cfg, &mut rng(100 + s))
                        .unwrap()
                        .error_spectral(&a)
                        .unwrap()
                })
                .sum::<f64>()
                / 5.0
        };
        let e_p0 = avg_err(0);
        let e_p10 = avg_err(10);
        assert!(
            e_p10 < e_p0,
            "p=10 ({e_p10:e}) should beat p=0 ({e_p0:e}) — the paper's §7 observation"
        );
    }

    #[test]
    fn exactly_low_rank_is_recovered_exactly() {
        let m = 50;
        let n = 25;
        let r = 4;
        let x = gaussian_mat(m, r, &mut rng(8));
        let y = gaussian_mat(r, n, &mut rng(9));
        let mut a = Mat::zeros(m, n);
        rlra_blas::gemm(
            1.0,
            x.as_ref(),
            Trans::No,
            y.as_ref(),
            Trans::No,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        let cfg = SamplerConfig::new(r).with_p(4);
        let lr = sample_fixed_rank(&a, &cfg, &mut rng(10)).unwrap();
        let err = lr.error_spectral(&a).unwrap();
        let scale = rlra_matrix::norms::spectral_norm(a.as_ref());
        assert!(
            err < 1e-10 * scale,
            "rank-{r} matrix must be captured exactly: {err:e}"
        );
    }

    #[test]
    fn fft_sampling_matches_gaussian_accuracy() {
        let (a, spec) = decay_matrix(64, 32, 0.55, 11);
        let g = sample_fixed_rank(&a, &SamplerConfig::new(6).with_p(6), &mut rng(12)).unwrap();
        let f = sample_fixed_rank(
            &a,
            &SamplerConfig::new(6)
                .with_p(6)
                .with_sampling(SamplingKind::Fft(SrftScheme::Full)),
            &mut rng(13),
        )
        .unwrap();
        let eg = g.error_spectral(&a).unwrap();
        let ef = f.error_spectral(&a).unwrap();
        // Same order of magnitude (paper §7: "FFT sampling gave the
        // approximation errors of the same order").
        assert!(
            ef < 30.0 * spec[6] && eg < 30.0 * spec[6],
            "gaussian {eg:e}, fft {ef:e}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = decay_matrix(40, 20, 0.5, 14);
        let cfg = SamplerConfig::new(4);
        let l1 = sample_fixed_rank(&a, &cfg, &mut rng(15)).unwrap();
        let l2 = sample_fixed_rank(&a, &cfg, &mut rng(15)).unwrap();
        assert_eq!(l1.q, l2.q);
        assert_eq!(l1.r, l2.r);
        assert_eq!(l1.perm.as_slice(), l2.perm.as_slice());
    }

    #[test]
    fn tournament_step2_matches_qp3_quality() {
        let (a, spec) = decay_matrix(70, 40, 0.6, 20);
        let k = 6;
        let base = SamplerConfig::new(k).with_p(8);
        let e_qp3 = sample_fixed_rank(&a, &base, &mut rng(21))
            .unwrap()
            .error_spectral(&a)
            .unwrap();
        let e_ca = sample_fixed_rank(&a, &base.with_step2(Step2Kind::Tournament), &mut rng(21))
            .unwrap()
            .error_spectral(&a)
            .unwrap();
        assert!(
            e_ca < 10.0 * e_qp3 + 1e-14,
            "tournament {e_ca:e} vs qp3 {e_qp3:e}"
        );
        assert!(e_ca < 30.0 * spec[k]);
    }

    #[test]
    fn invalid_configs_rejected() {
        let a = Mat::zeros(100, 30);
        // l = 60 > n = 30.
        assert!(sample_fixed_rank(&a, &SamplerConfig::new(50), &mut rng(16)).is_err());
    }
}
