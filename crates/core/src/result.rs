//! The low-rank factorization returned by every algorithm in this crate.

use rlra_blas::Trans;
use rlra_matrix::{ColPerm, Mat, MatrixError, Result};

/// A rank-`k` approximation `A·P ≈ Q·R` (the paper's equation (1)):
/// `Q` is `m × k` with orthonormal columns, `R` is `k × n` upper
/// trapezoidal, and `P` is a column permutation.
#[derive(Debug, Clone)]
pub struct LowRankApprox {
    /// Orthonormal factor (`m × k`).
    pub q: Mat,
    /// Triangular factor (`k × n`).
    pub r: Mat,
    /// Column permutation with `A·P ≈ Q·R`.
    pub perm: ColPerm,
}

impl LowRankApprox {
    /// The approximation rank `k`.
    pub fn rank(&self) -> usize {
        self.q.cols()
    }

    /// Reconstructs `Q·R` (the approximation of `A·P`, i.e. with columns
    /// in pivot order).
    ///
    /// # Errors
    ///
    /// Returns a dimension error if the factors were tampered with into
    /// inconsistent shapes (impossible for algorithm-produced values).
    pub fn reconstruct_permuted(&self) -> Result<Mat> {
        let mut out = Mat::zeros(self.q.rows(), self.r.cols());
        rlra_blas::gemm(
            1.0,
            self.q.as_ref(),
            Trans::No,
            self.r.as_ref(),
            Trans::No,
            0.0,
            out.as_mut(),
        )?;
        Ok(out)
    }

    /// Reconstructs the approximation of `A` itself (undoes the
    /// permutation): `Q·R·Pᵀ`.
    ///
    /// # Errors
    ///
    /// Propagates [`LowRankApprox::reconstruct_permuted`] errors.
    pub fn reconstruct(&self) -> Result<Mat> {
        let qr = self.reconstruct_permuted()?;
        self.perm.inverse().apply_cols(&qr)
    }

    /// Spectral-norm approximation error `‖A·P − Q·R‖₂` — the numerator
    /// of the error the paper reports in Figure 6.
    ///
    /// # Errors
    ///
    /// Returns dimension errors if `a` does not match the factorization.
    pub fn error_spectral(&self, a: &Mat) -> Result<f64> {
        let rec = self.reconstruct()?;
        let diff = rlra_matrix::ops::sub(a, &rec)?;
        Ok(rlra_matrix::norms::spectral_norm(diff.as_ref()))
    }

    /// Relative error `‖A·P − Q·R‖₂ / ‖A‖₂`, exactly the quantity in the
    /// paper's Figure 6. Pass `norm_a = None` to have `‖A‖₂` estimated by
    /// power iteration.
    ///
    /// # Errors
    ///
    /// Returns dimension errors if `a` does not match the factorization.
    pub fn relative_error(&self, a: &Mat, norm_a: Option<f64>) -> Result<f64> {
        let num = self.error_spectral(a)?;
        let den = norm_a.unwrap_or_else(|| rlra_matrix::norms::spectral_norm(a.as_ref()));
        Ok(if den == 0.0 { 0.0 } else { num / den })
    }

    /// Applies the approximation to a vector: `y ≈ A·x` computed as
    /// `Q·(R·(Pᵀx))` in `O((m + n)k)` — the downstream-use fast path.
    ///
    /// # Errors
    ///
    /// Returns dimension errors if `x.len() != n`.
    pub fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        let n = self.r.cols();
        let k = self.rank();
        if x.len() != n {
            return Err(MatrixError::DimensionMismatch {
                op: "LowRankApprox::apply",
                expected: format!("x.len() == {n}"),
                found: format!("x.len() == {}", x.len()),
            });
        }
        // P^T x: entry j of the permuted vector is x[perm[j]].
        let px: Vec<f64> = self.perm.as_slice().iter().map(|&j| x[j]).collect();
        let mut rx = vec![0.0; k];
        rlra_blas::gemv(1.0, self.r.as_ref(), Trans::No, &px, 0.0, &mut rx)?;
        let mut y = vec![0.0; self.q.rows()];
        rlra_blas::gemv(1.0, self.q.as_ref(), Trans::No, &rx, 0.0, &mut y)?;
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruct_and_apply_are_consistent() {
        // Small exact case: A itself rank-2.
        let q = Mat::from_row_major(3, 2, &[1.0, 0.0, 0.0, 1.0, 0.0, 0.0]).unwrap();
        let r = Mat::from_row_major(2, 3, &[1.0, 2.0, 3.0, 0.0, 4.0, 5.0]).unwrap();
        let perm = ColPerm::from_vec(vec![2, 0, 1]).unwrap();
        let lr = LowRankApprox { q, r, perm };
        let a = lr.reconstruct().unwrap();
        let x = vec![1.0, -1.0, 0.5];
        let direct = rlra_blas::naive::gemv_ref(&a, Trans::No, &x);
        let fast = lr.apply(&x).unwrap();
        for (d, f) in direct.iter().zip(&fast) {
            assert!((d - f).abs() < 1e-12);
        }
        // Exact reconstruction => zero error.
        assert!(lr.relative_error(&a, None).unwrap() < 1e-12);
    }

    #[test]
    fn rank_reports_columns_of_q() {
        let lr = LowRankApprox {
            q: Mat::zeros(5, 2),
            r: Mat::zeros(2, 4),
            perm: ColPerm::identity(4),
        };
        assert_eq!(lr.rank(), 2);
    }
}
