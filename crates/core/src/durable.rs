//! Durable drivers: checkpointed, deadline-bounded, resumable runs.
//!
//! These entry points wrap the same numerics as the plain pipelines —
//! [`crate::adaptive::sample_fixed_accuracy_exec`] and
//! [`crate::backend::run_fixed_rank`] — but write a versioned
//! [`crate::checkpoint`] snapshot at every boundary (each accepted
//! sample block of the adaptive loop; the sample and power stage
//! boundaries of the fixed-rank pipeline) and check the run's
//! [`Deadline`](crate::checkpoint::Deadline) budget there.
//!
//! The durability contract:
//!
//! - **Bit-identical resume.** Killing a durable run at *any* boundary
//!   (via [`CheckpointPlan::kill_after`]) and resuming from the
//!   snapshot on a fresh executor of the same backend produces factors
//!   *and* an [`ExecReport`] identical to the uninterrupted durable
//!   run — the snapshot carries the numeric state, the RNG stream
//!   position, the guard counters and the executor's absolute clocks,
//!   and the checkpoint charge itself is folded in *before* the
//!   account is captured.
//! - **Fresh executors.** Both the original durable run and every
//!   resume must start on a freshly constructed (or freshly reset, for
//!   the cluster backend) executor: the snapshot stores *absolute*
//!   clocks, so a pre-used executor would double-count.
//! - **Deadline overruns are checkpointed.** When the simulated clock
//!   overruns the configured budget at a boundary, the run writes the
//!   snapshot, assembles a best-effort partial result with a posterior
//!   error estimate into [`Durability::take_partial`], and returns
//!   [`MatrixError::DeadlineExceeded`] naming the snapshot to resume
//!   from (with a longer budget).

use crate::adaptive::{
    adaptive_step, finish_fixed_accuracy, AdaptiveConfig, AdaptiveCursor, AdaptiveResult,
    FinishMode, StepOutcome,
};
use crate::backend::{
    fixed_rank_finish_stage, fixed_rank_power_stage, fixed_rank_sample_stage, input_scale,
    posterior_error_bound, ExecReport, Executor, Input, IntegrityGuard, NumericGuard,
};
use crate::checkpoint::{
    checkpoint_boundary, AdaptiveSnapshot, CountingRng, Durability, DurableOutcome,
    FixedRankSnapshot, FixedRankStage, GuardCounters, Partial, SnapshotKind,
};
use crate::config::SamplerConfig;
use crate::fixed_rank::IncrementalFactors;
use crate::result::LowRankApprox;
use rand::RngCore;
use rlra_matrix::{Mat, MatrixError, Result};

/// The completed value of a durable fixed-accuracy run.
pub type FixedAccuracyOutput = (LowRankApprox, AdaptiveResult, ExecReport);

/// The completed value of a durable fixed-rank run.
pub type FixedRankOutput = (Option<LowRankApprox>, ExecReport);

/// How many times an unrecoverable silent corruption may roll a stage
/// back to the last boundary snapshot before the run fails. The wasted
/// attempts stay on the executor's clocks — a rollback is priced as the
/// lost work plus the redo.
const SDC_ROLLBACK_ATTEMPTS: usize = 2;

// ---------------------------------------------------------------------
// Fixed accuracy (adaptive)
// ---------------------------------------------------------------------

/// Runs the fixed-accuracy (adaptive) scheme durably: a checkpoint is
/// written after every accepted sample block, the deadline (if
/// `cfg.deadline` is set) is checked there, and the run can be killed
/// at a chosen snapshot via the [`Durability`]'s plan.
///
/// `exec` must be freshly constructed (see the module docs). The RNG is
/// a [`CountingRng`] so the snapshot can record the stream position.
///
/// # Errors
///
/// Everything [`crate::adaptive::sample_fixed_accuracy_exec`] returns,
/// plus [`MatrixError::DeadlineExceeded`] on a budget overrun (the
/// partial result is left in `dur`).
pub fn sample_fixed_accuracy_durable<E: Executor, R: RngCore>(
    exec: &mut E,
    a: &Mat,
    cfg: &AdaptiveConfig,
    rng: &mut CountingRng<R>,
    dur: &mut Durability,
) -> Result<DurableOutcome<FixedAccuracyOutput>> {
    let (m, n) = a.shape();
    let mut guard = NumericGuard::default();
    let mut iguard = IntegrityGuard::default();
    let factors = match cfg.finish {
        FinishMode::Incremental => Some(IncrementalFactors::new(m, n)),
        FinishMode::Restart => None,
    };
    let cur = AdaptiveCursor::start(exec, a, cfg, rng, &mut iguard)?;
    drive_fixed_accuracy(
        exec,
        a,
        cfg,
        rng,
        dur,
        &mut guard,
        &mut iguard,
        factors,
        cur,
    )
}

/// Resumes a fixed-accuracy run from a sealed [`AdaptiveSnapshot`] on a
/// *fresh* executor of the same backend, continuing bit-identically to
/// the uninterrupted run.
///
/// `fresh_rng` must be seeded exactly as the original run's RNG was —
/// the snapshot's recorded draw count fast-forwards it to the boundary.
///
/// # Errors
///
/// [`MatrixError::CheckpointCorrupt`] when the snapshot fails
/// validation or does not match `a`/`cfg`; otherwise everything
/// [`sample_fixed_accuracy_durable`] returns.
pub fn resume_fixed_accuracy<E: Executor, R: RngCore>(
    exec: &mut E,
    a: &Mat,
    cfg: &AdaptiveConfig,
    fresh_rng: R,
    sealed: &[u8],
    dur: &mut Durability,
) -> Result<DurableOutcome<FixedAccuracyOutput>> {
    cfg.validate()?;
    AdaptiveCursor::check_backend(exec)?;
    let snap = AdaptiveSnapshot::open(sealed)?;
    let (m, n) = a.shape();
    if snap.m != m || snap.n != n {
        return Err(corrupt("snapshot operand shape does not match the input"));
    }
    let factors = match (cfg.finish, snap.factors) {
        (FinishMode::Incremental, Some(f)) => Some(f),
        (FinishMode::Restart, None) => None,
        _ => {
            return Err(corrupt(
                "snapshot finish mode does not match the configuration",
            ))
        }
    };
    let t0 = exec.elapsed();
    exec.begin(m, n);
    exec.restore_account(&snap.account)?;
    let mut rng = CountingRng::resume(fresh_rng, snap.rng_drawn);
    let mut guard = NumericGuard::default();
    snap.guard.restore(&mut guard);
    dur.align_after(snap.id);
    let cur = AdaptiveCursor {
        basis: snap.basis,
        c_basis: snap.c_basis,
        w: snap.w,
        l_inc: snap.l_inc,
        best_estimate: snap.best_estimate,
        steps: snap.steps,
        t0,
    };
    let mut iguard = IntegrityGuard::default();
    drive_fixed_accuracy(
        exec,
        a,
        cfg,
        &mut rng,
        dur,
        &mut guard,
        &mut iguard,
        factors,
        cur,
    )
}

/// The checkpointed loop shared by the fresh and resumed entry points.
#[allow(clippy::too_many_arguments)]
fn drive_fixed_accuracy<E: Executor, R: RngCore>(
    exec: &mut E,
    a: &Mat,
    cfg: &AdaptiveConfig,
    rng: &mut CountingRng<R>,
    dur: &mut Durability,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
    mut factors: Option<IncrementalFactors>,
    mut cur: AdaptiveCursor,
) -> Result<DurableOutcome<FixedAccuracyOutput>> {
    let converged = loop {
        match adaptive_step(exec, a, cfg, rng, guard, iguard, factors.as_mut(), &mut cur)? {
            StepOutcome::Continue => {
                guard.drain(exec)?;
                let id = adaptive_boundary(exec, dur, a, &cur, factors.as_ref(), guard, rng)?;
                if dur.plan().kill_after == Some(id) {
                    return Ok(DurableOutcome::Suspended { snapshot: id });
                }
                if let Some(deadline) = cfg.deadline {
                    let elapsed = exec.elapsed() - cur.t0;
                    if deadline.exceeded(elapsed) {
                        let estimate = cur.steps.last().map_or(f64::INFINITY, |s| s.estimate);
                        let approx = partial_from_basis(a, &cur.basis, cfg.reorth);
                        dur.set_partial(Partial {
                            approx,
                            estimate,
                            snapshot: id,
                        });
                        return Err(MatrixError::DeadlineExceeded {
                            snapshot: id,
                            budget: deadline.seconds,
                            elapsed,
                        });
                    }
                }
            }
            StepOutcome::Converged => break true,
            StepOutcome::Stopped => break false,
        }
    };
    let adaptive = cur.into_result(converged);
    let approx = finish_fixed_accuracy(exec, a, cfg, guard, iguard, &adaptive, factors)?;
    guard.drain(exec)?;
    iguard.drain(exec)?;
    let mut report = exec.finish()?;
    guard.fold_into(&mut report);
    iguard.fold_into(&mut report);
    Ok(DurableOutcome::Complete((approx, adaptive, report)))
}

/// Writes one adaptive sample-block boundary snapshot.
fn adaptive_boundary<E: Executor, R: RngCore>(
    exec: &mut E,
    dur: &mut Durability,
    a: &Mat,
    cur: &AdaptiveCursor,
    factors: Option<&IncrementalFactors>,
    guard: &NumericGuard,
    rng: &CountingRng<R>,
) -> Result<u64> {
    let (m, n) = a.shape();
    let mut snap = AdaptiveSnapshot {
        id: 0,
        m,
        n,
        basis: cur.basis.clone(),
        c_basis: cur.c_basis.clone(),
        w: cur.w.clone(),
        l_inc: cur.l_inc,
        best_estimate: cur.best_estimate,
        steps: cur.steps.clone(),
        factors: factors.cloned(),
        guard: GuardCounters::capture(guard),
        rng_drawn: rng.drawn(),
        account: Vec::new(),
    };
    let bytes = snap.numeric_bytes();
    checkpoint_boundary(exec, dur, SnapshotKind::Adaptive, bytes, |id, account| {
        snap.id = id;
        snap.account = account;
        snap.to_bytes()
    })
}

/// Best-effort host-side factorization of the accepted basis for a
/// deadline-truncated partial result (`None` when nothing was accepted
/// yet or the finish itself breaks down — the snapshot still resumes).
fn partial_from_basis(a: &Mat, basis: &Mat, reorth: bool) -> Option<LowRankApprox> {
    if basis.rows() == 0 {
        return None;
    }
    let k = basis.rows().min(a.cols());
    let mut guard = NumericGuard::default();
    crate::fixed_rank::finish_from_sampled_guarded(
        a,
        basis,
        k,
        reorth,
        crate::config::Step2Kind::Qp3,
        &mut guard,
    )
    .ok()
}

// ---------------------------------------------------------------------
// Fixed rank
// ---------------------------------------------------------------------

/// Runs the fixed-rank (Figure 2b) pipeline durably: a checkpoint is
/// written after the sample stage and after the power stage, the
/// deadline (if `cfg.deadline` is set) is checked there, and the run
/// can be killed at a chosen snapshot via the [`Durability`]'s plan.
///
/// Works on every backend the plain pipeline supports, including the
/// dry-run ones (the snapshot then carries no sketch, only clocks and
/// the RNG position).
///
/// # Errors
///
/// Everything [`crate::backend::run_fixed_rank`] returns, plus
/// [`MatrixError::DeadlineExceeded`] on a budget overrun (the partial
/// result is left in `dur`).
pub fn run_fixed_rank_durable<E: Executor, R: RngCore>(
    exec: &mut E,
    a: Input<'_>,
    cfg: &SamplerConfig,
    rng: &mut CountingRng<R>,
    dur: &mut Durability,
) -> Result<DurableOutcome<FixedRankOutput>> {
    let mut iguard = IntegrityGuard::default();
    run_fixed_rank_durable_protected(exec, a, cfg, rng, dur, &mut iguard)
}

/// As [`run_fixed_rank_durable`], with an explicit [`IntegrityGuard`]
/// arming the ABFT integrity layer — and closing its escalation ladder
/// with the checkpoint rollback: a silent corruption the guard could
/// not (or, under detect-only, may not) repair locally rolls the stage
/// back to the last boundary snapshot — sketch, guard counters — and
/// re-runs it under a bounded budget ([`SDC_ROLLBACK_ATTEMPTS`] retries)
/// before the run fails. Each rollback is counted in the report's
/// `sdc_rollbacks`; the wasted attempt's charges stay on the executor's
/// clocks, so the report prices the rollback as lost work plus redo.
///
/// Corruption in the sample stage itself (before the first boundary)
/// has no snapshot to roll back to and fails the run directly.
///
/// # Errors
///
/// Everything [`run_fixed_rank_durable`] returns, plus
/// [`MatrixError::SilentCorruption`] when the rollback budget is
/// exhausted (or no boundary exists yet).
pub fn run_fixed_rank_durable_protected<E: Executor, R: RngCore>(
    exec: &mut E,
    a: Input<'_>,
    cfg: &SamplerConfig,
    rng: &mut CountingRng<R>,
    dur: &mut Durability,
    iguard: &mut IntegrityGuard,
) -> Result<DurableOutcome<FixedRankOutput>> {
    let (m, n) = a.shape();
    cfg.validate(m, n)?;
    exec.supports(cfg, a.values().is_some())?;
    if exec.computes() && a.values().is_none() {
        return Err(MatrixError::Unsupported {
            backend: exec.name(),
            feature: "shape-only input in compute mode".into(),
        });
    }
    let t0 = exec.elapsed();
    exec.begin(m, n);
    let mut guard = NumericGuard::default();
    let scale = input_scale(&a, exec.computes(), &guard)?;
    let b = fixed_rank_sample_stage(exec, &a, cfg, rng, &mut guard, iguard, scale)?;
    let (id, suspend) = fixed_rank_boundary(
        exec,
        dur,
        cfg,
        &a,
        FixedRankStage::Sampled,
        &b,
        &guard,
        rng,
        t0,
    )?;
    if suspend {
        return Ok(DurableOutcome::Suspended { snapshot: id });
    }
    finish_fixed_rank_durable(
        exec,
        a,
        cfg,
        rng,
        dur,
        guard,
        iguard,
        scale,
        b,
        Some(id),
        t0,
    )
}

/// Resumes a fixed-rank run from a sealed [`FixedRankSnapshot`] on a
/// *fresh* executor of the same backend, continuing bit-identically to
/// the uninterrupted run.
///
/// # Errors
///
/// [`MatrixError::CheckpointCorrupt`] when the snapshot fails
/// validation or does not match `a`/`cfg`/the backend; otherwise
/// everything [`run_fixed_rank_durable`] returns.
pub fn resume_fixed_rank<E: Executor, R: RngCore>(
    exec: &mut E,
    a: Input<'_>,
    cfg: &SamplerConfig,
    fresh_rng: R,
    sealed: &[u8],
    dur: &mut Durability,
) -> Result<DurableOutcome<FixedRankOutput>> {
    let (m, n) = a.shape();
    cfg.validate(m, n)?;
    exec.supports(cfg, a.values().is_some())?;
    if exec.computes() && a.values().is_none() {
        return Err(MatrixError::Unsupported {
            backend: exec.name(),
            feature: "shape-only input in compute mode".into(),
        });
    }
    let snap = FixedRankSnapshot::open(sealed)?;
    if snap.m != m || snap.n != n {
        return Err(corrupt("snapshot operand shape does not match the input"));
    }
    if snap.l != cfg.l() {
        return Err(corrupt(
            "snapshot sampling dimension does not match the configuration",
        ));
    }
    if exec.computes() && snap.b_host.is_none() {
        return Err(corrupt(
            "snapshot has no sketch but the backend computes values",
        ));
    }
    if !exec.computes() && snap.b_host.is_some() {
        return Err(corrupt(
            "snapshot carries a sketch but the backend is dry-run",
        ));
    }
    let t0 = exec.elapsed();
    exec.begin(m, n);
    exec.restore_account(&snap.account)?;
    let mut rng = CountingRng::resume(fresh_rng, snap.rng_drawn);
    let mut guard = NumericGuard::default();
    snap.guard.restore(&mut guard);
    dur.align_after(snap.id);
    let scale = input_scale(&a, exec.computes(), &guard)?;
    // Resume runs disarmed: the snapshot being resumed lives outside
    // `dur`, so there is no boundary to roll back to here.
    let mut iguard = IntegrityGuard::default();
    match snap.stage {
        FixedRankStage::Sampled => finish_fixed_rank_durable(
            exec,
            a,
            cfg,
            &mut rng,
            dur,
            guard,
            &mut iguard,
            scale,
            snap.b_host,
            None,
            t0,
        ),
        FixedRankStage::Powered => complete_fixed_rank(
            exec,
            a,
            cfg,
            dur,
            guard,
            &mut iguard,
            scale,
            snap.b_host,
            None,
        ),
    }
}

/// Everything after the sample-stage boundary: power stage, its
/// boundary, and the finish. Shared by the fresh run and the
/// resume-from-`Sampled` path.
#[allow(clippy::too_many_arguments)]
fn finish_fixed_rank_durable<E: Executor, R: RngCore>(
    exec: &mut E,
    a: Input<'_>,
    cfg: &SamplerConfig,
    rng: &mut CountingRng<R>,
    dur: &mut Durability,
    mut guard: NumericGuard,
    iguard: &mut IntegrityGuard,
    scale: f64,
    b: Option<Mat>,
    rollback: Option<u64>,
    t0: f64,
) -> Result<DurableOutcome<FixedRankOutput>> {
    let b = with_sdc_rollback(exec, &mut guard, iguard, dur, rollback, b, |e, g, ig, b| {
        fixed_rank_power_stage(e, &a, cfg, g, ig, scale, b)
    })?;
    let (id, suspend) = fixed_rank_boundary(
        exec,
        dur,
        cfg,
        &a,
        FixedRankStage::Powered,
        &b,
        &guard,
        rng,
        t0,
    )?;
    if suspend {
        return Ok(DurableOutcome::Suspended { snapshot: id });
    }
    complete_fixed_rank(exec, a, cfg, dur, guard, iguard, scale, b, Some(id))
}

/// The final (never-checkpointed) stage plus report assembly.
#[allow(clippy::too_many_arguments)]
fn complete_fixed_rank<E: Executor>(
    exec: &mut E,
    a: Input<'_>,
    cfg: &SamplerConfig,
    dur: &mut Durability,
    mut guard: NumericGuard,
    iguard: &mut IntegrityGuard,
    scale: f64,
    b: Option<Mat>,
    rollback: Option<u64>,
) -> Result<DurableOutcome<FixedRankOutput>> {
    let approx = with_sdc_rollback(exec, &mut guard, iguard, dur, rollback, b, |e, g, ig, b| {
        fixed_rank_finish_stage(e, &a, cfg, g, ig, scale, b)
    })?;
    guard.drain(exec)?;
    iguard.drain(exec)?;
    let mut report = exec.finish()?;
    guard.fold_into(&mut report);
    iguard.fold_into(&mut report);
    Ok(DurableOutcome::Complete((approx, report)))
}

/// Runs one fixed-rank stage under the integrity guard's rollback
/// escalation: on [`MatrixError::SilentCorruption`] the boundary
/// snapshot is reopened, the sketch and numeric-guard counters are
/// restored from it, the rollback is counted on the integrity guard,
/// and the stage re-runs under the [`SDC_ROLLBACK_ATTEMPTS`] budget.
/// The failed attempt's charges stay on the executor — a rollback is
/// priced as the lost work plus the redo.
fn with_sdc_rollback<E: Executor, T>(
    exec: &mut E,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
    dur: &Durability,
    boundary: Option<u64>,
    mut b: Option<Mat>,
    mut stage: impl FnMut(&mut E, &mut NumericGuard, &mut IntegrityGuard, Option<Mat>) -> Result<T>,
) -> Result<T> {
    let mut rollbacks = 0;
    loop {
        match stage(exec, guard, iguard, b.take()) {
            Ok(out) => return Ok(out),
            Err(MatrixError::SilentCorruption {
                device,
                kernel,
                location,
            }) if rollbacks < SDC_ROLLBACK_ATTEMPTS => {
                let err = MatrixError::SilentCorruption {
                    device,
                    kernel,
                    location,
                };
                // No boundary yet, or the snapshot is gone (a resumed
                // run's boundary lives outside this `dur`): the ladder
                // is exhausted, surface the corruption.
                let Some(snap) = boundary.and_then(|id| reopen_fixed_rank(dur, id)) else {
                    return Err(err);
                };
                rollbacks += 1;
                b = snap.b_host;
                snap.guard.restore(guard);
                iguard.note_rollback(kernel, device, 0);
                iguard.drain(exec)?;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reopens a sealed fixed-rank boundary snapshot for a rollback.
fn reopen_fixed_rank(dur: &Durability, id: u64) -> Option<FixedRankSnapshot> {
    FixedRankSnapshot::open(dur.get(id)?).ok()
}

/// Writes one fixed-rank stage boundary snapshot, applies the kill
/// plan and the deadline budget. Returns the snapshot id plus whether
/// the run must suspend at this boundary; the id also serves as the
/// rollback point for SDC escalation in the following stage.
#[allow(clippy::too_many_arguments)]
fn fixed_rank_boundary<E: Executor, R: RngCore>(
    exec: &mut E,
    dur: &mut Durability,
    cfg: &SamplerConfig,
    a: &Input<'_>,
    stage: FixedRankStage,
    b_host: &Option<Mat>,
    guard: &NumericGuard,
    rng: &mut CountingRng<R>,
    t0: f64,
) -> Result<(u64, bool)> {
    let (m, n) = a.shape();
    let mut snap = FixedRankSnapshot {
        id: 0,
        m,
        n,
        l: cfg.l(),
        stage,
        b_host: b_host.clone(),
        guard: GuardCounters::capture(guard),
        rng_drawn: rng.drawn(),
        account: Vec::new(),
    };
    let bytes = snap.numeric_bytes();
    let id = checkpoint_boundary(exec, dur, SnapshotKind::FixedRank, bytes, |id, account| {
        snap.id = id;
        snap.account = account;
        snap.to_bytes()
    })?;
    if dur.plan().kill_after == Some(id) {
        return Ok((id, true));
    }
    if let Some(deadline) = cfg.deadline {
        let elapsed = exec.elapsed() - t0;
        if deadline.exceeded(elapsed) {
            let partial = fixed_rank_partial(a, cfg, b_host, rng, id);
            dur.set_partial(partial);
            return Err(MatrixError::DeadlineExceeded {
                snapshot: id,
                budget: deadline.seconds,
                elapsed,
            });
        }
    }
    Ok((id, false))
}

/// Best-effort partial result at a fixed-rank deadline overrun: finish
/// the current sketch on the host and certify it with the posterior
/// probe bound (`None`/infinite on dry-run backends or when the finish
/// breaks down).
fn fixed_rank_partial<R: RngCore>(
    a: &Input<'_>,
    cfg: &SamplerConfig,
    b_host: &Option<Mat>,
    rng: &mut CountingRng<R>,
    id: u64,
) -> Partial {
    const PARTIAL_PROBES: usize = 8;
    let (approx, estimate) = match (a.values(), b_host) {
        (Some(am), Some(b)) => {
            let mut guard = NumericGuard::default();
            match crate::fixed_rank::finish_from_sampled_guarded(
                am,
                b,
                cfg.k.min(b.rows()),
                cfg.reorth,
                cfg.step2,
                &mut guard,
            ) {
                Ok(approx) => {
                    let est = posterior_error_bound(am, &approx, PARTIAL_PROBES, rng)
                        .unwrap_or(f64::INFINITY);
                    (Some(approx), est)
                }
                Err(_) => (None, f64::INFINITY),
            }
        }
        _ => (None, f64::INFINITY),
    };
    Partial {
        approx,
        estimate,
        snapshot: id,
    }
}

fn corrupt(detail: &'static str) -> MatrixError {
    MatrixError::CheckpointCorrupt { detail }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::GpuExec;
    use crate::checkpoint::{CheckpointPlan, Deadline};
    use rlra_data::testmat::{decay_matrix, rng};
    use rlra_gpu::Gpu;

    #[test]
    fn durable_fixed_rank_matches_plain_numerics() {
        let (a, _) = decay_matrix(60, 40, 0.6, 42);
        let cfg = SamplerConfig::new(10).with_p(5);

        let mut plain_gpu = Gpu::k40c();
        let mut plain_exec = GpuExec::new(&mut plain_gpu);
        let (plain, _) =
            crate::backend::run_fixed_rank(&mut plain_exec, Input::Values(&a), &cfg, &mut rng(3))
                .unwrap_or_else(|e| panic!("plain run failed: {e}"));

        let mut gpu = Gpu::k40c();
        let mut exec = GpuExec::new(&mut gpu);
        let mut crng = CountingRng::new(rng(3));
        let mut dur = Durability::new(CheckpointPlan::always());
        let out = run_fixed_rank_durable(&mut exec, Input::Values(&a), &cfg, &mut crng, &mut dur)
            .unwrap_or_else(|e| panic!("durable run failed: {e}"));
        let (durable, _) = out
            .complete()
            .unwrap_or_else(|| panic!("durable run suspended unexpectedly"));

        let p = plain.unwrap_or_else(|| panic!("plain produced no factors"));
        let d = durable.unwrap_or_else(|| panic!("durable produced no factors"));
        assert_eq!(p.q, d.q, "Q factors must be bit-identical");
        assert_eq!(p.r, d.r, "R factors must be bit-identical");
        assert_eq!(dur.snapshots().len(), 2, "one snapshot per stage boundary");
    }

    #[test]
    fn fixed_rank_deadline_overrun_leaves_partial() {
        let (a, _) = decay_matrix(60, 40, 0.6, 42);
        let cfg = SamplerConfig::new(10)
            .with_p(5)
            .with_q(2)
            .with_deadline(Deadline::new(1e-12));
        let mut gpu = Gpu::k40c();
        let mut exec = GpuExec::new(&mut gpu);
        let mut crng = CountingRng::new(rng(3));
        let mut dur = Durability::new(CheckpointPlan::always());
        let err = run_fixed_rank_durable(&mut exec, Input::Values(&a), &cfg, &mut crng, &mut dur)
            .err()
            .unwrap_or_else(|| panic!("expected a deadline overrun"));
        let MatrixError::DeadlineExceeded { snapshot, .. } = err else {
            panic!("expected DeadlineExceeded, got {err}");
        };
        let partial = dur
            .take_partial()
            .unwrap_or_else(|| panic!("overrun must leave a partial result"));
        assert_eq!(partial.snapshot, snapshot);
        assert!(partial.approx.is_some(), "computing backend builds factors");
        assert!(
            partial.estimate.is_finite(),
            "posterior estimate must certify the partial factors"
        );
        assert!(dur.get(snapshot).is_some(), "the snapshot is resumable");
    }

    #[test]
    fn resume_rejects_mismatched_operand() {
        let (a, _) = decay_matrix(60, 40, 0.6, 42);
        let cfg = SamplerConfig::new(10).with_p(5);
        let mut gpu = Gpu::k40c();
        let mut exec = GpuExec::new(&mut gpu);
        let mut crng = CountingRng::new(rng(3));
        let mut dur = Durability::new(CheckpointPlan::kill_after(1));
        let out = run_fixed_rank_durable(&mut exec, Input::Values(&a), &cfg, &mut crng, &mut dur)
            .unwrap_or_else(|e| panic!("durable run failed: {e}"));
        let id = out
            .suspended()
            .unwrap_or_else(|| panic!("kill plan must suspend the run"));
        let sealed = dur
            .get(id)
            .unwrap_or_else(|| panic!("missing snapshot"))
            .to_vec();

        let (b, _) = decay_matrix(50, 40, 0.6, 42);
        let mut gpu2 = Gpu::k40c();
        let mut exec2 = GpuExec::new(&mut gpu2);
        let mut dur2 = Durability::new(CheckpointPlan::always());
        let err = resume_fixed_rank(
            &mut exec2,
            Input::Values(&b),
            &cfg,
            rng(3),
            &sealed,
            &mut dur2,
        )
        .err()
        .unwrap_or_else(|| panic!("shape mismatch must be rejected"));
        assert!(matches!(err, MatrixError::CheckpointCorrupt { .. }));
    }

    #[test]
    fn adaptive_durable_completes_and_checkpoints() {
        let (a, _) = decay_matrix(60, 40, 0.6, 42);
        let cfg = AdaptiveConfig::new(1e-8, 8);
        let mut gpu = Gpu::k40c();
        let mut exec = GpuExec::new(&mut gpu);
        let mut crng = CountingRng::new(rng(5));
        let mut dur = Durability::new(CheckpointPlan::always());
        let out = sample_fixed_accuracy_durable(&mut exec, &a, &cfg, &mut crng, &mut dur)
            .unwrap_or_else(|e| panic!("durable adaptive run failed: {e}"));
        let (_, adaptive, _) = out
            .complete()
            .unwrap_or_else(|| panic!("run suspended unexpectedly"));
        assert!(adaptive.converged);
        assert!(
            !dur.snapshots().is_empty(),
            "each accepted block writes a boundary snapshot"
        );
    }

    #[test]
    fn adaptive_deadline_overrun_reports_snapshot() {
        let (a, _) = decay_matrix(60, 40, 0.6, 42);
        let mut cfg = AdaptiveConfig::new(1e-14, 4);
        cfg.deadline = Some(Deadline::new(1e-12));
        let mut gpu = Gpu::k40c();
        let mut exec = GpuExec::new(&mut gpu);
        let mut crng = CountingRng::new(rng(5));
        let mut dur = Durability::new(CheckpointPlan::always());
        let err = sample_fixed_accuracy_durable(&mut exec, &a, &cfg, &mut crng, &mut dur)
            .err()
            .unwrap_or_else(|| panic!("expected a deadline overrun"));
        assert!(matches!(err, MatrixError::DeadlineExceeded { .. }));
        let partial = dur
            .take_partial()
            .unwrap_or_else(|| panic!("overrun must leave a partial result"));
        assert!(partial.approx.is_some());
    }
}
